#!/usr/bin/env bash
# CI entry point: tier-1 verify (build + ctest), the micro-benchmark smoke
# run, and a tools/mcx flow smoke test.
#
# bench_micro_core exits non-zero if the word-parallel fast paths regress
# below their speedup gates (npn >= 5x, cut enumeration >= 2x, batched
# rewrite round >= 1x vs. the per-cut path) and emits BENCH_micro_core.json
# with per-stage ns/op, cache hit rates, and the batched-round A/B numbers.
#
# The flow smoke test runs `mcx --flow mc+xor` on one generator circuit and
# on one BENCH file (produced by the tool itself, so the BENCH parser is on
# the path); mcx exits non-zero when the post-flow equivalence check fails,
# which gates CI.  The per-pass JSON reports are left in the workspace as
# artifacts (FLOW_smoke_gen.json / FLOW_smoke_bench.json).
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

./build/bench_micro_core

# Flow smoke: generator input, then BENCH round-trip of the same circuit.
./build/tools/mcx --flow mc+xor gen:adder:16 \
    -o build/adder16_opt.bench --report FLOW_smoke_gen.json
./build/tools/mcx --flow cleanup gen:adder:16 -o build/adder16.bench
./build/tools/mcx --flow mc+xor build/adder16.bench \
    -o build/adder16_bench_opt.bench --report FLOW_smoke_bench.json
echo "ci.sh: all gates passed (JSON artifacts: BENCH_micro_core.json," \
     "FLOW_smoke_gen.json, FLOW_smoke_bench.json)"
