#!/usr/bin/env bash
# CI entry point: tier-1 verify (build + ctest), the micro-benchmark smoke
# run, a tools/mcx flow smoke test, CLI usage checks, and a documentation
# link check.
#
# bench_micro_core exits non-zero if the word-parallel fast paths regress
# below their speedup gates (npn >= 5x, cut enumeration >= 2x, classify
# >= 4x, batched rewrite round >= 1x vs. the per-cut path) and emits
# BENCH_micro_core.json with per-stage ns/op, cache hit rates, and the
# A/B numbers (schema: docs/artifacts.md).
#
# The flow smoke test runs `mcx --flow mc+xor` on one generator circuit and
# on one BENCH file (produced by the tool itself, so the BENCH parser is on
# the path); mcx exits non-zero when the post-flow equivalence check fails,
# which gates CI.  The per-pass JSON reports are left in the workspace as
# artifacts (FLOW_smoke_gen.json / FLOW_smoke_bench.json).
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

# The committed BENCH_micro_core.json is reference data; regenerating it
# must not change the schema (a bench that grows or renames keys has to
# commit the regenerated file alongside the code, docs/artifacts.md).
json_keys() { grep -oE '"[a-z_0-9]+":' "$1" | sort -u; }
json_keys BENCH_micro_core.json >build/bench_keys_committed.txt
./build/bench_micro_core
json_keys BENCH_micro_core.json >build/bench_keys_fresh.txt
diff -u build/bench_keys_committed.txt build/bench_keys_fresh.txt || {
    echo "ci.sh: BENCH_micro_core.json is stale" \
         "(regenerate it with ./build/bench_micro_core and commit)" >&2
    exit 1
}

# Flow smoke: generator input, then BENCH round-trip of the same circuit.
./build/tools/mcx --flow mc+xor gen:adder:16 \
    -o build/adder16_opt.bench --report FLOW_smoke_gen.json
./build/tools/mcx --flow cleanup gen:adder:16 -o build/adder16.bench
./build/tools/mcx --flow mc+xor build/adder16.bench \
    -o build/adder16_bench_opt.bench --report FLOW_smoke_bench.json

# Incremental-cuts smoke: maintaining cut sets across rounds (the default)
# must produce output bit-identical to full re-enumeration every round
# (src/cut/cut_incremental.h contract).
./build/tools/mcx --flow mc+xor --incremental-cuts off gen:adder:16 \
    -o build/adder16_noinc.bench
cmp build/adder16_opt.bench build/adder16_noinc.bench || {
    echo "ci.sh: --incremental-cuts off output differs from the default" >&2
    exit 1
}

# Incremental-evaluate smoke: the dirty-set evaluate cache (the default)
# must be byte-invisible next to full re-evaluation every round
# (docs/hot-path.md dirty-set contract).
./build/tools/mcx --flow mc+xor --incremental-eval off gen:adder:16 \
    -o build/adder16_noeval.bench
cmp build/adder16_opt.bench build/adder16_noeval.bench || {
    echo "ci.sh: --incremental-eval off output differs from the default" >&2
    exit 1
}

# All-oracle smoke: every incremental subsystem disabled at once, with the
# cold whole-network SAT miter as the verifier — the slowest, most direct
# pipeline there is.  Output must still match the all-incremental default,
# and the iterated flow must pass warm incremental SAT verification too.
./build/tools/mcx --flow mc+xor --incremental-cuts off --incremental-eval off \
    --verify sat-cold gen:adder:16 -o build/adder16_oracle.bench
cmp build/adder16_opt.bench build/adder16_oracle.bench || {
    echo "ci.sh: all-oracle run output differs from the incremental default" >&2
    exit 1
}
./build/tools/mcx --flow mc+xor --iterate --verify sat gen:adder:16 \
    -o build/adder16_satwarm.bench --report FLOW_smoke_sat.json
grep -q '"sat_conflicts"' FLOW_smoke_sat.json || {
    echo "ci.sh: --verify sat report lacks per-check solver records" >&2
    exit 1
}

# SAT-engine smoke (docs/sat.md): the retained legacy CDCL core must
# reach the same verified AND count as the modern default through the
# whole flow (both exit 0 only when equivalence holds; the synthesized
# structures may differ — exact-synthesis models are not unique — so the
# comparison is on the optimality claim, not bytes).  The report records
# which engine ran.  The cold whole-network miter — the verify path that
# exercises the modern core's preprocessor — must be byte-invisible next
# to the default simulation check.
./build/tools/mcx --flow mc+xor --sat-engine legacy gen:adder:16 \
    -o build/adder16_legacy.bench --report FLOW_smoke_satlegacy.json
python3 - FLOW_smoke_gen.json FLOW_smoke_satlegacy.json <<'PY'
import json, sys
modern, legacy = (json.load(open(p)) for p in sys.argv[1:3])
assert modern["sat_engine"] == "modern", modern["sat_engine"]
assert legacy["sat_engine"] == "legacy", legacy["sat_engine"]
for rep in (modern, legacy):
    assert rep["verified"], f'{rep["sat_engine"]} flow failed verification'
ma, la = modern["after"]["ands"], legacy["after"]["ands"]
assert ma == la, f"engine-dependent AND count: modern {ma} vs legacy {la}"
PY
./build/tools/mcx --flow mc+xor --verify sat-cold gen:adder:16 \
    -o build/adder16_satcold.bench
cmp build/adder16_opt.bench build/adder16_satcold.bench || {
    echo "ci.sh: --verify sat-cold run output differs from the default" >&2
    exit 1
}

# Parallel flow smoke: the two-phase engine at 4 workers must verify and
# produce output bit-identical to its 1-worker reference run
# (docs/parallel.md determinism contract).
./build/tools/mcx --flow mc+xor --threads 4 gen:adder:16 \
    -o build/adder16_par4.bench --report FLOW_smoke_par.json
./build/tools/mcx --flow mc+xor --threads 1 gen:adder:16 \
    -o build/adder16_par1.bench
cmp build/adder16_par4.bench build/adder16_par1.bench || {
    echo "ci.sh: --threads 4 output differs from --threads 1" >&2
    exit 1
}
grep -q '"threads": 4' FLOW_smoke_par.json || {
    echo "ci.sh: FLOW_smoke_par.json lacks the per-pass thread count" >&2
    exit 1
}

# Observability smoke (docs/observability.md).  --trace must emit a
# Perfetto-loadable Chrome trace-event JSON with the flow/pass/round/phase
# span hierarchy and per-worker lanes, and must not perturb the
# optimization (byte-identical output next to the untraced run above).
./build/tools/mcx --flow mc+xor --threads 4 \
    --trace build/adder16_trace.json gen:adder:16 \
    -o build/adder16_traced.bench >/dev/null
cmp build/adder16_opt.bench build/adder16_traced.bench || {
    echo "ci.sh: --trace changed the optimized output" >&2
    exit 1
}
python3 - build/adder16_trace.json <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
names = {e["name"] for e in events}
for required in ["process_name", "flow", "mc-rewrite", "round",
                 "phase.evaluate", "phase.commit", "pool.task"]:
    assert required in names, f"trace lacks a {required!r} event"
begins = sum(1 for e in events if e["ph"] == "B")
ends = sum(1 for e in events if e["ph"] == "E")
assert begins == ends and begins > 0, f"unbalanced B/E: {begins}/{ends}"
lanes = {e["tid"] for e in events if "tid" in e}
assert len(lanes) >= 2, f"expected >= 2 worker lanes, got {sorted(lanes)}"
PY
# The report carries the merged metrics registry, process stats, and the
# per-pass database traffic block (schemas: docs/artifacts.md) — and must
# still be valid JSON.
grep -q '"metrics"' FLOW_smoke_gen.json || {
    echo "ci.sh: flow report lacks the metrics block" >&2
    exit 1
}
grep -q '"process"' FLOW_smoke_gen.json || {
    echo "ci.sh: flow report lacks the process-stats block" >&2
    exit 1
}
grep -q '"db"' FLOW_smoke_gen.json || {
    echo "ci.sh: flow report lacks the per-pass db block" >&2
    exit 1
}
python3 -c 'import json; json.load(open("FLOW_smoke_gen.json"))'

# --progress writes periodic status to stderr only; the report and the
# emitted network must be untouched by it.
./build/tools/mcx --flow mc+xor --progress gen:adder:16 \
    -o build/adder16_progress.bench --report FLOW_smoke_progress.json \
    >/dev/null 2>build/progress.log
python3 -c 'import json; json.load(open("FLOW_smoke_progress.json"))'
cmp build/adder16_opt.bench build/adder16_progress.bench || {
    echo "ci.sh: --progress changed the optimized output" >&2
    exit 1
}

# Resource-governance smoke (docs/robustness.md).  Deadline: a budgeted
# MD5 flow must stop cooperatively, emit a verified best-effort network,
# and exit 0 — well within the wall-clock bound (deadline plus stop
# latency, verification, and I/O).  `timeout` turns a hung stop into a
# hard CI failure.
timeout 30 ./build/tools/mcx --deadline 3 --flow mc+xor gen:md5 \
    -o build/md5_deadline.bench --report FLOW_smoke_deadline.json
grep -q '"limit_hit": true' FLOW_smoke_deadline.json || {
    echo "ci.sh: deadline run did not record limit_hit" >&2
    exit 1
}
grep -q '"outcome": "deadline_exceeded"' FLOW_smoke_deadline.json || {
    echo "ci.sh: deadline run did not record its outcome" >&2
    exit 1
}
# With --on-limit fail the same limit hit must flip the exit code to 1.
if timeout 30 ./build/tools/mcx --deadline 3 --on-limit fail --flow mc \
    gen:md5 >/dev/null 2>&1; then
    echo "ci.sh: --on-limit fail did not fail on a limit hit" >&2
    exit 1
fi

# SIGINT smoke: interrupt mcx mid-flow; the cooperative stop must still
# verify and emit the best-effort network and exit 0, with the report
# recording the cancellation.
timeout 60 ./build/tools/mcx --flow mc+xor gen:md5 \
    -o build/md5_sigint.bench --report FLOW_smoke_sigint.json \
    >build/sigint.log 2>&1 &
mcx_pid=$!
sleep 2
kill -INT "$mcx_pid"
if ! wait "$mcx_pid"; then
    echo "ci.sh: SIGINT-interrupted mcx did not exit 0" >&2
    exit 1
fi
[ -s build/md5_sigint.bench ] || {
    echo "ci.sh: SIGINT run did not emit a network" >&2
    exit 1
}
grep -q '"outcome": "cancelled"' FLOW_smoke_sigint.json || {
    echo "ci.sh: SIGINT run did not record cancellation" >&2
    exit 1
}
# The interrupted run verified the network before writing it (that is
# what exit 0 certifies); re-reading the file proves the emitted BENCH
# itself is well-formed.
./build/tools/mcx --flow cleanup build/md5_sigint.bench >/dev/null

# Fault-injection smoke: an injected database-builder fault degrades the
# flow to a verified best-effort result (exit 0, typed outcome in the
# report); with --on-limit fail it becomes a hard failure.
MCX_FAULT_INJECT="db-build@1" ./build/tools/mcx --flow mc gen:adder:16 \
    --report FLOW_smoke_fault.json >/dev/null
grep -q '"outcome": "resource_exhausted"' FLOW_smoke_fault.json || {
    echo "ci.sh: fault run did not record resource exhaustion" >&2
    exit 1
}
if MCX_FAULT_INJECT="db-build@1" ./build/tools/mcx --flow mc \
    --on-limit fail gen:adder:16 >/dev/null 2>&1; then
    echo "ci.sh: --on-limit fail ignored an injected fault" >&2
    exit 1
fi
if MCX_FAULT_INJECT="not-a-site@1" ./build/tools/mcx --flow mc \
    gen:adder:4 >/dev/null 2>&1; then
    echo "ci.sh: a malformed MCX_FAULT_INJECT schedule was accepted" >&2
    exit 1
fi

# CLI usage smoke: --help exits 0 and documents every flag the README
# quickstart uses; an unknown flag fails with a pointed message, not a
# usage dump.
help_text=$(./build/tools/mcx --help)
for flag in --flow --iterate --rounds --cut-size --cut-limit --zero-gain \
            --verify --report --seed --no-batch --classify-baseline \
            --incremental-cuts --incremental-eval --sat-commits \
            --sat-engine \
            --deadline --pass-deadline --on-limit \
            --trace --progress \
            --threads --bristol --output --list-gens --list-flows; do
    grep -qe "$flag" <<<"$help_text" || {
        echo "ci.sh: mcx --help does not mention $flag" >&2
        exit 1
    }
done
if unknown_msg=$(./build/tools/mcx --definitely-not-a-flag 2>&1); then
    echo "ci.sh: mcx accepted an unknown flag" >&2
    exit 1
fi
grep -q "unknown option" <<<"$unknown_msg" || {
    echo "ci.sh: mcx unknown-flag message regressed" >&2
    exit 1
}

# Documentation checks: every file under docs/ is reachable from
# README.md, and no markdown file references a relative path that does
# not exist.
docs_failed=0
for doc in docs/*.md; do
    if ! grep -Fq "($doc)" README.md; then
        echo "ci.sh: $doc is not referenced from README.md" >&2
        docs_failed=1
    fi
done
for file in README.md docs/*.md; do
    dir=$(dirname "$file")
    while IFS= read -r link; do
        case "$link" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        target="$dir/${link%%#*}"
        if [ ! -e "$target" ]; then
            echo "ci.sh: dead link '$link' in $file" >&2
            docs_failed=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
done
[ "$docs_failed" -eq 0 ] || exit 1

# Thread+UB sanitizer job: the parallel subsystem (thread pool, sharded
# databases, two-phase round, level-parallel cut maintenance), the pass
# framework, and the governance/fault paths under TSan with UBSan riding
# along (-fno-sanitize-recover makes any UB a hard failure).  The par_test
# and cut_incremental_test determinism sweeps are trimmed to one
# representative family each — full generator sweeps under the ~10x
# sanitizer slowdown belong in a nightly, not the per-commit gate.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread,undefined -fno-sanitize-recover=undefined" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread,undefined"
cmake --build build-tsan -j"$(nproc)" --target par_test pass_test \
    cut_incremental_test incremental_eval_test robustness_test obs_test
(cd build-tsan &&
    GTEST_FILTER='work_deque.*:thread_pool.*:sharded_database.*:two_phase_determinism.aes_family' \
        ctest -R par_test --output-on-failure &&
    GTEST_FILTER='metrics.*:tracing.*' \
        ctest -R obs_test --output-on-failure &&
    GTEST_FILTER='cut_arena_incremental.*:cut_maintainer.*:incremental_differential.aes_family' \
        ctest -R cut_incremental_test --output-on-failure &&
    GTEST_FILTER='evaluate_differential.aes_family:evaluate_cache.*' \
        ctest -R incremental_eval_test --output-on-failure &&
    ctest -R pass_test --output-on-failure &&
    GTEST_FILTER='robustness.stopped_token_unblocks_waiter_on_stuck_builder:robustness.fault_matrix_verified_network_or_typed_error' \
        ctest -R robustness_test --output-on-failure)

# Address+UB sanitizer job over the SAT core: the arena with its
# relocation GC, the binary-watcher encoding, and the preprocessor's
# clause surgery are exactly the kind of raw-index pointer arithmetic
# ASan exists for.  The full sat_test suite — both engines, the
# differential fuzz, preprocessing units — runs under ASan+UBSan.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=undefined" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j"$(nproc)" --target sat_test
(cd build-asan && ctest -R sat_test --output-on-failure)

echo "ci.sh: all gates passed (JSON artifacts: BENCH_micro_core.json," \
     "FLOW_smoke_gen.json, FLOW_smoke_bench.json, FLOW_smoke_par.json," \
     "FLOW_smoke_sat.json, FLOW_smoke_satlegacy.json," \
     "FLOW_smoke_deadline.json, FLOW_smoke_sigint.json," \
     "FLOW_smoke_fault.json, FLOW_smoke_progress.json)"
