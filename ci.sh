#!/usr/bin/env bash
# CI entry point: tier-1 verify (build + ctest) plus the micro-benchmark
# smoke run.  bench_micro_core exits non-zero if the word-parallel fast
# paths regress below their speedup gates (npn >= 5x, cut enumeration
# >= 2x) and emits BENCH_micro_core.json with per-stage ns/op and cache
# hit rates.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

./build/bench_micro_core
echo "ci.sh: all gates passed"
