// mcx — the command-line front end of the optimizer: parse a circuit
// (BENCH, Bristol fashion, or a built-in generator), run a named flow of
// passes over one shared pass_context, verify equivalence against the
// unoptimized network, write the result (BENCH/Bristol/Verilog), and emit
// a per-pass JSON report.
//
//   $ mcx --flow mc+xor circuit.bench -o optimized.bench --report r.json
//   $ mcx --flow mc gen:adder:64
//   $ mcx --flow size-baseline --bristol input.txt -o out.txt
//   $ mcx --deadline 30 --flow mc gen:md5 -o best_effort.bench
//   $ mcx --list-gens
//
// Execution is resource-governed (docs/robustness.md): `--deadline` bounds
// the whole flow, `--pass-deadline` each pass, and SIGINT/SIGTERM request
// the same cooperative stop.  On any limit the flow halts at the next
// commit boundary, the network committed so far is equivalence-verified
// and emitted, and the JSON report records the outcome per pass.
//
// Exit codes (the contract ci.sh and scripts rely on):
//   0  success — equivalence verified; includes best-effort results under
//      a limit unless --on-limit=fail
//   1  failure — verification failed, input unreadable/malformed, or an
//      internal fault; with --on-limit=fail also any limit hit
//   2  usage error — bad flags, unknown generator/pass/mode
#include "core/budget.h"
#include "core/fault_inject.h"
#include "core/flow.h"
#include "gen/aes.h"
#include "gen/arithmetic.h"
#include "gen/control.h"
#include "gen/des.h"
#include "gen/hashes.h"
#include "gen/lightweight.h"
#include "io/bench.h"
#include "io/bristol.h"
#include "io/verilog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sat/equivalence.h"
#include "xag/cleanup.h"
#include "xag/depth.h"
#include "xag/verify.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace mcx;

// ------------------------------------------------------------- generators

struct generator_entry {
    const char* name;
    const char* usage; ///< e.g. "adder:<bits>"
    std::function<xag(const std::vector<uint32_t>&)> make;
};

uint32_t arg_at(const std::vector<uint32_t>& args, size_t i, uint32_t dflt)
{
    return i < args.size() ? args[i] : dflt;
}

xag make_aes_sbox()
{
    xag net;
    std::array<signal, 8> in;
    for (auto& s : in)
        s = net.create_pi();
    for (const auto s : aes_sbox_circuit(net, in))
        net.create_po(s);
    return net;
}

const std::vector<generator_entry>& generators()
{
    using A = const std::vector<uint32_t>&;
    static const std::vector<generator_entry> table = {
        // arithmetic
        {"adder", "adder:<bits>", [](A a) { return gen_adder(arg_at(a, 0, 32)); }},
        {"multiplier", "multiplier:<bits>",
         [](A a) { return gen_multiplier(arg_at(a, 0, 8)); }},
        {"square", "square:<bits>", [](A a) { return gen_square(arg_at(a, 0, 8)); }},
        {"divisor", "divisor:<bits>",
         [](A a) { return gen_divisor(arg_at(a, 0, 8)); }},
        {"log2", "log2:<bits>", [](A a) { return gen_log2(arg_at(a, 0, 8)); }},
        {"sqrt", "sqrt:<bits>", [](A a) { return gen_sqrt(arg_at(a, 0, 8)); }},
        {"sine", "sine:<bits>", [](A a) { return gen_sine(arg_at(a, 0, 8)); }},
        {"max", "max:<bits>[:<words>]",
         [](A a) { return gen_max(arg_at(a, 0, 8), arg_at(a, 1, 4)); }},
        {"barrel-shifter", "barrel-shifter:<bits>",
         [](A a) { return gen_barrel_shifter(arg_at(a, 0, 8)); }},
        {"comparator-lt", "comparator-lt:<bits>",
         [](A a) { return gen_comparator_lt_unsigned(arg_at(a, 0, 8)); }},
        {"comparator-leq", "comparator-leq:<bits>",
         [](A a) { return gen_comparator_leq_unsigned(arg_at(a, 0, 8)); }},
        {"int2float", "int2float",
         [](A) { return gen_int2float(); }},
        // control
        {"decoder", "decoder:<address-bits>",
         [](A a) { return gen_decoder(arg_at(a, 0, 4)); }},
        {"priority-encoder", "priority-encoder:<requests>",
         [](A a) { return gen_priority_encoder(arg_at(a, 0, 8)); }},
        {"arbiter", "arbiter:<requests>",
         [](A a) { return gen_round_robin_arbiter(arg_at(a, 0, 8)); }},
        {"voter", "voter:<inputs>", [](A a) { return gen_voter(arg_at(a, 0, 7)); }},
        {"alu-control", "alu-control", [](A) { return gen_alu_control(); }},
        {"router", "router", [](A) { return gen_xy_router(); }},
        // crypto
        {"aes-sbox", "aes-sbox", [](A) { return make_aes_sbox(); }},
        {"aes128", "aes128", [](A) { return gen_aes128(); }},
        {"des", "des:<rounds>", [](A a) { return gen_des(arg_at(a, 0, 16)); }},
        {"des-expanded", "des-expanded:<rounds>",
         [](A a) { return gen_des_expanded(arg_at(a, 0, 16)); }},
        {"md5", "md5", [](A) { return gen_md5(); }},
        {"sha1", "sha1", [](A) { return gen_sha1(); }},
        {"sha256", "sha256", [](A) { return gen_sha256(); }},
        {"simon", "simon:<word-bits>[:<rounds>]",
         [](A a) { return gen_simon(arg_at(a, 0, 16), arg_at(a, 1, 32)); }},
        {"keccak", "keccak:<lane-bits>",
         [](A a) { return gen_keccak_f(arg_at(a, 0, 8)); }},
    };
    return table;
}

std::optional<xag> make_generator_circuit(const std::string& spec)
{
    // spec = gen:<name>[:<uint>...]
    std::vector<std::string> parts;
    size_t begin = 0;
    while (begin <= spec.size()) {
        const auto end = spec.find(':', begin);
        parts.push_back(spec.substr(begin, end == std::string::npos
                                               ? std::string::npos
                                               : end - begin));
        if (end == std::string::npos)
            break;
        begin = end + 1;
    }
    if (parts.size() < 2 || parts[0] != "gen")
        return std::nullopt;
    std::vector<uint32_t> args;
    for (size_t i = 2; i < parts.size(); ++i)
        args.push_back(static_cast<uint32_t>(std::stoul(parts[i])));
    for (const auto& g : generators())
        if (parts[1] == g.name)
            return g.make(args);
    return std::nullopt;
}

// ------------------------------------------------------------------- JSON

void json_xag_stats(FILE* f, const char* key, const xag_stats& s)
{
    std::fprintf(f,
                 "\"%s\": {\"pis\": %u, \"pos\": %u, \"ands\": %u, "
                 "\"xors\": %u}",
                 key, s.num_pis, s.num_pos, s.num_ands, s.num_xors);
}

std::string json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void write_report(const std::string& path, const std::string& input,
                  const flow_result& result, bool verified,
                  const std::string& verify_method,
                  const std::vector<sat::verification_record>& verify_checks)
{
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write report %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"tool\": \"mcx\",\n  \"flow\": \"%s\",\n",
                 result.flow_name.c_str());
    std::fprintf(f, "  \"sat_engine\": \"%s\",\n",
                 sat::engine_name(sat::default_engine()));
    std::fprintf(f, "  \"input\": \"%s\",\n", json_escape(input).c_str());
    std::fprintf(f, "  ");
    json_xag_stats(f, "before", result.before);
    std::fprintf(f, ",\n  ");
    json_xag_stats(f, "after", result.after);
    std::fprintf(f, ",\n  \"iterations\": %u,\n  \"total_seconds\": %.4f,\n",
                 result.iterations, result.seconds);
    std::fprintf(f, "  \"outcome\": \"%s\",\n  \"limit_hit\": %s,\n",
                 to_string(result.status),
                 result.limit_hit ? "true" : "false");
    std::fprintf(f, "  \"passes\": [\n");
    for (size_t i = 0; i < result.passes.size(); ++i) {
        const auto& p = result.passes[i];
        std::fprintf(f, "    {\"name\": \"%s\", \"seconds\": %.4f, "
                     "\"threads\": %u, \"outcome\": \"%s\", ",
                     p.pass_name.c_str(), p.seconds, p.num_threads,
                     to_string(p.status));
        json_xag_stats(f, "before", p.before);
        std::fprintf(f, ", ");
        json_xag_stats(f, "after", p.after);
        std::fprintf(f, ", \"converged\": %s", p.converged ? "true" : "false");
        if (p.pass_name == "mc-rewrite" || p.pass_name == "size-rewrite")
            std::fprintf(
                f,
                ", \"db\": {\"hits\": %llu, \"misses\": %llu, "
                "\"entries\": %llu, \"exact\": %llu, \"heuristic\": %llu}",
                static_cast<unsigned long long>(p.db_hits),
                static_cast<unsigned long long>(p.db_misses),
                static_cast<unsigned long long>(p.db_entries),
                static_cast<unsigned long long>(p.db_exact),
                static_cast<unsigned long long>(p.db_heuristic));
        if (p.pass_name == "xor-resynthesis")
            std::fprintf(f, ", \"blocks\": %u, \"pairs_extracted\": %u",
                         p.xor_blocks, p.xor_pairs_extracted);
        if (!p.rounds.empty()) {
            std::fprintf(f, ", \"rounds\": [\n");
            for (size_t r = 0; r < p.rounds.size(); ++r) {
                const auto& rs = p.rounds[r];
                std::fprintf(
                    f,
                    "      {\"ands_before\": %u, \"ands_after\": %u, "
                    "\"cuts_evaluated\": %llu, \"candidates_built\": %llu, "
                    "\"replacements\": %llu, \"seconds\": %.4f, "
                    "\"cut_seconds\": %.4f, \"rewrite_seconds\": %.4f, "
                    "\"cut_nodes_reenumerated\": %llu, "
                    "\"cut_nodes_clean\": %llu, "
                    "\"nodes_evaluated\": %llu, \"nodes_clean\": %llu, "
                    "\"sat_verifications\": %llu, \"sat_conflicts\": %llu, "
                    "\"sat_warm_starts\": %llu, "
                    "\"canon_cache_hit_rate\": %.4f, \"db_hits\": %llu, "
                    "\"db_misses\": %llu}%s\n",
                    rs.ands_before, rs.ands_after,
                    static_cast<unsigned long long>(rs.cuts_evaluated),
                    static_cast<unsigned long long>(rs.candidates_built),
                    static_cast<unsigned long long>(rs.replacements),
                    rs.seconds, rs.cut_seconds, rs.rewrite_seconds,
                    static_cast<unsigned long long>(
                        rs.cut_stats.reenumerated_nodes),
                    static_cast<unsigned long long>(
                        rs.cut_stats.clean_nodes),
                    static_cast<unsigned long long>(rs.nodes_evaluated),
                    static_cast<unsigned long long>(rs.nodes_clean),
                    static_cast<unsigned long long>(rs.sat_verifications),
                    static_cast<unsigned long long>(rs.sat_conflicts),
                    static_cast<unsigned long long>(rs.sat_warm_starts),
                    rs.canon_cache_hit_rate(),
                    static_cast<unsigned long long>(rs.db_hits),
                    static_cast<unsigned long long>(rs.db_misses),
                    r + 1 < p.rounds.size() ? "," : "");
            }
            std::fprintf(f, "    ]");
        }
        std::fprintf(f, "}%s\n", i + 1 < result.passes.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Registry totals and process stats (docs/observability.md): every
    // counter any subsystem registered, merged across threads.
    const auto metrics = obs::metrics_snapshot();
    std::fprintf(f, "  \"metrics\": {");
    for (size_t i = 0; i < metrics.size(); ++i)
        std::fprintf(f, "%s\n    \"%s\": %llu", i != 0 ? "," : "",
                     metrics[i].name.c_str(),
                     static_cast<unsigned long long>(metrics[i].value));
    std::fprintf(f, "\n  },\n");
    const auto process = obs::read_process_stats();
    std::fprintf(f,
                 "  \"process\": {\"peak_rss_bytes\": %llu, "
                 "\"cpu_seconds\": %.4f, \"wall_seconds\": %.4f},\n",
                 static_cast<unsigned long long>(process.peak_rss_bytes),
                 process.cpu_seconds, process.wall_seconds);
    std::fprintf(f, "  \"verified\": %s,\n  \"verify_method\": \"%s\"",
                 verified ? "true" : "false", verify_method.c_str());
    if (!verify_checks.empty()) {
        // Per-output solves of the warm incremental CEC (--verify sat);
        // schema in docs/artifacts.md.
        std::fprintf(f, ",\n  \"verification\": {\"checks\": [\n");
        for (size_t i = 0; i < verify_checks.size(); ++i) {
            const auto& c = verify_checks[i];
            std::fprintf(f,
                         "    {\"index\": %u, \"sat_conflicts\": %llu, "
                         "\"warm_start\": %s}%s\n",
                         c.index,
                         static_cast<unsigned long long>(c.sat_conflicts),
                         c.warm_start ? "true" : "false",
                         i + 1 < verify_checks.size() ? "," : "");
        }
        std::fprintf(f, "  ]}");
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
}

// --------------------------------------------------------------- progress

/// Opt-in --progress heartbeat: a background thread samples the obs
/// registry and progress state every ~500 ms and prints one line to
/// stderr.  It only ever reads (relaxed counters, published pass/round),
/// so it cannot perturb the optimization or the report; stdout stays
/// untouched.
class progress_reporter {
public:
    progress_reporter(bool enabled, double deadline_seconds)
        : deadline_seconds_{deadline_seconds}
    {
        if (enabled)
            thread_ = std::thread{[this] { loop(); }};
    }

    ~progress_reporter()
    {
        {
            std::lock_guard lock{mutex_};
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable())
            thread_.join();
    }

private:
    void loop()
    {
        const auto start = std::chrono::steady_clock::now();
        const auto evaluated =
            obs::register_metric("rewrite.nodes_evaluated");
        const auto mc_miss = obs::register_metric("db.mc.miss");
        const auto size_miss = obs::register_metric("db.size.miss");
        std::unique_lock lock{mutex_};
        while (!cv_.wait_for(lock, std::chrono::milliseconds{500},
                             [this] { return stop_; })) {
            const auto [pass, round] = obs::progress_state();
            const auto elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            char deadline[32] = "";
            if (deadline_seconds_ > 0.0)
                std::snprintf(deadline, sizeof deadline, "/%.0fs",
                              deadline_seconds_);
            std::fprintf(stderr,
                         "progress: pass=%s round=%u evaluated=%llu "
                         "db_misses=%llu elapsed=%.1fs%s\n",
                         pass != nullptr ? pass : "-", round,
                         static_cast<unsigned long long>(evaluated.value()),
                         static_cast<unsigned long long>(mc_miss.value() +
                                                         size_miss.value()),
                         elapsed, deadline);
        }
    }

    double deadline_seconds_;
    bool stop_ = false;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::thread thread_;
};

// -------------------------------------------------------------------- CLI

/// Keep this text in sync with the quickstart table in README.md — ci.sh
/// smoke-asserts that the flags used there appear here.
void usage(FILE* out)
{
    std::fprintf(
        out,
        "usage: mcx [options] <input>\n"
        "\n"
        "input:\n"
        "  <file>.bench            BENCH netlist\n"
        "  <file>.txt|.bristol     Bristol-fashion circuit (implies --bristol)\n"
        "  gen:<name>[:<arg>...]   built-in generator (see --list-gens)\n"
        "\n"
        "flow options:\n"
        "  --flow <spec>           '+'-separated passes: mc, xor,\n"
        "                          size-baseline, cleanup (default: mc)\n"
        "  --rounds <n>            max rounds per rewrite pass (default 100)\n"
        "  --cut-size <k>          cut size 2..6 (default 6; size-baseline 4)\n"
        "  --cut-limit <l>         cuts kept per node (default 12)\n"
        "  --zero-gain             accept zero-gain replacements\n"
        "  --iterate               repeat the flow until AND convergence\n"
        "  -j, --threads <n>       rewrite passes on n workers (two-phase\n"
        "                          engine; output is bit-identical for any\n"
        "                          n >= 1 — see docs/parallel.md).  Default:\n"
        "                          the classic sequential loop\n"
        "  --no-batch              disable batched cone simulation (A/B)\n"
        "  --classify-baseline     use the scalar affine classifier (A/B)\n"
        "  --incremental-cuts <m>  on (default) | off: maintain cut sets\n"
        "                          incrementally across rounds vs. full\n"
        "                          re-enumeration every round (A/B; output\n"
        "                          is identical)\n"
        "  --incremental-eval <m>  on (default) | off: re-evaluate only the\n"
        "                          nodes whose cut/MFFC context changed since\n"
        "                          the last round vs. full evaluation every\n"
        "                          round (A/B; output is identical; see\n"
        "                          docs/hot-path.md)\n"
        "  --sat-commits <m>       on | off (default): SAT-check every\n"
        "                          replacement cone at commit time on a warm\n"
        "                          persistent solver (docs/robustness.md)\n"
        "  --sat-engine <e>        modern (default) | legacy: CDCL core for\n"
        "                          every SAT consumer — exact synthesis,\n"
        "                          equivalence checking, commit verification\n"
        "                          (docs/sat.md; verdicts and AND counts are\n"
        "                          engine-independent)\n"
        "\n"
        "resource limits (docs/robustness.md):\n"
        "  --deadline <sec>        wall-clock budget for the whole flow; on\n"
        "                          expiry the flow stops at the next commit\n"
        "                          boundary and emits the best verified\n"
        "                          network so far.  SIGINT/SIGTERM trigger\n"
        "                          the same cooperative stop\n"
        "  --pass-deadline <sec>   wall-clock budget per pass; a pass that\n"
        "                          overruns degrades to best-effort while\n"
        "                          the rest of the flow still runs\n"
        "  --on-limit <mode>       best-effort (default): a limit hit still\n"
        "                          exits 0 with the report flagged | fail:\n"
        "                          exit 1 when any limit was hit\n"
        "\n"
        "output and verification:\n"
        "  -o, --output <file>     write result (.bench/.v/.txt by extension)\n"
        "  --bristol               Bristol-fashion input (and output)\n"
        "  --verify <m>            sim (default) | sat (warm incremental\n"
        "                          CEC, one solver across outputs) |\n"
        "                          sat-cold (fresh whole-network miter) |\n"
        "                          none\n"
        "  --report <file>         per-pass JSON report (see docs/artifacts.md)\n"
        "  --seed <n>              random-simulation seed (default 1)\n"
        "\n"
        "observability (docs/observability.md):\n"
        "  --trace <file>          Chrome trace-event JSON of the run — load\n"
        "                          in Perfetto or chrome://tracing; one lane\n"
        "                          per worker.  Tracing never changes the\n"
        "                          optimized output\n"
        "  --progress              periodic progress line on stderr (pass,\n"
        "                          round, nodes evaluated, db misses,\n"
        "                          elapsed/deadline)\n"
        "\n"
        "info:\n"
        "  --list-gens             list built-in generators\n"
        "  --list-flows            list pass names\n"
        "  -h, --help              this text\n"
        "\n"
        "exit codes: 0 success (equivalence verified; includes best-effort\n"
        "            under a limit), 1 failure (verification/input/fault,\n"
        "            or limit hit with --on-limit fail), 2 usage error\n");
}

struct options {
    std::string input;
    std::string output;
    std::string report;
    std::string trace_path;
    std::string flow_spec = "mc";
    std::string verify = "sim";
    bool bristol = false;
    bool iterate = false;
    bool progress = false;
    bool fail_on_limit = false; ///< --on-limit fail
    double deadline_seconds = 0.0;
    double pass_deadline_seconds = 0.0;
    uint64_t seed = 1;
    flow_params params;
};

// Exit codes of the documented contract (header comment + usage()).
constexpr int exit_ok = 0;
constexpr int exit_failure = 1;
constexpr int exit_usage = 2;

bool ends_with(const std::string& s, const char* suffix)
{
    const auto n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

} // namespace

int main(int argc, char** argv)
{
    options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
                std::exit(exit_usage);
            }
            return argv[++i];
        };
        const auto next_number = [&]() -> uint64_t {
            const char* value = next();
            try {
                size_t consumed = 0;
                const auto n = std::stoull(value, &consumed);
                if (consumed != std::strlen(value))
                    throw std::invalid_argument{value};
                return n;
            } catch (const std::exception&) {
                std::fprintf(stderr, "error: %s needs a number, got '%s'\n",
                             arg.c_str(), value);
                std::exit(exit_usage);
            }
        };
        const auto next_seconds = [&]() -> double {
            const char* value = next();
            try {
                size_t consumed = 0;
                const auto s = std::stod(value, &consumed);
                if (consumed != std::strlen(value) || s <= 0.0)
                    throw std::invalid_argument{value};
                return s;
            } catch (const std::exception&) {
                std::fprintf(stderr,
                             "error: %s needs a positive number of seconds, "
                             "got '%s'\n",
                             arg.c_str(), value);
                std::exit(exit_usage);
            }
        };
        const auto parse_on_limit = [&](const std::string& mode) {
            if (mode == "best-effort")
                opt.fail_on_limit = false;
            else if (mode == "fail")
                opt.fail_on_limit = true;
            else {
                std::fprintf(stderr,
                             "error: --on-limit needs best-effort|fail, got "
                             "'%s'\n",
                             mode.c_str());
                std::exit(exit_usage);
            }
        };
        if (arg == "--flow")
            opt.flow_spec = next();
        else if (arg == "--rounds")
            opt.params.max_rounds = static_cast<uint32_t>(next_number());
        else if (arg == "--cut-size") {
            const auto k = static_cast<uint32_t>(next_number());
            opt.params.rewrite.cut_size = k;
            opt.params.size_rewrite.cut_size = std::min(k, 4u);
        } else if (arg == "--cut-limit") {
            const auto l = static_cast<uint32_t>(next_number());
            opt.params.rewrite.cut_limit = l;
            opt.params.size_rewrite.cut_limit = l;
        } else if (arg == "--zero-gain") {
            opt.params.rewrite.allow_zero_gain = true;
            opt.params.size_rewrite.allow_zero_gain = true;
        } else if (arg == "--iterate")
            opt.iterate = true;
        else if (arg == "-j" || arg == "--threads") {
            const auto n = static_cast<uint32_t>(next_number());
            if (n == 0) {
                std::fprintf(stderr,
                             "error: --threads needs a value >= 1\n");
                return exit_usage;
            }
            opt.params.num_threads = n;
        }
        else if (arg == "--no-batch") {
            opt.params.rewrite.batched_simulation = false;
            opt.params.size_rewrite.batched_simulation = false;
        } else if (arg == "--incremental-cuts") {
            const std::string mode = next();
            if (mode != "on" && mode != "off") {
                std::fprintf(stderr,
                             "error: --incremental-cuts needs on|off, got "
                             "'%s'\n",
                             mode.c_str());
                return exit_usage;
            }
            opt.params.rewrite.incremental_cuts = mode == "on";
            opt.params.size_rewrite.incremental_cuts = mode == "on";
        } else if (arg == "--incremental-eval") {
            const std::string mode = next();
            if (mode != "on" && mode != "off") {
                std::fprintf(stderr,
                             "error: --incremental-eval needs on|off, got "
                             "'%s'\n",
                             mode.c_str());
                return exit_usage;
            }
            opt.params.rewrite.incremental_evaluate = mode == "on";
            opt.params.size_rewrite.incremental_evaluate = mode == "on";
        } else if (arg == "--sat-commits") {
            const std::string mode = next();
            if (mode != "on" && mode != "off") {
                std::fprintf(stderr,
                             "error: --sat-commits needs on|off, got '%s'\n",
                             mode.c_str());
                return exit_usage;
            }
            opt.params.rewrite.sat_verify_commits = mode == "on";
            opt.params.size_rewrite.sat_verify_commits = mode == "on";
        } else if (arg == "--sat-engine") {
            const std::string mode = next();
            if (mode != "modern" && mode != "legacy") {
                std::fprintf(stderr,
                             "error: --sat-engine needs modern|legacy, got "
                             "'%s'\n",
                             mode.c_str());
                return exit_usage;
            }
            sat::set_default_engine(mode == "legacy" ? sat::sat_engine::legacy
                                                     : sat::sat_engine::modern);
        } else if (arg == "--classify-baseline")
            opt.params.rewrite.classification_word_parallel = false;
        else if (arg == "--deadline")
            opt.deadline_seconds = next_seconds();
        else if (arg == "--pass-deadline")
            opt.pass_deadline_seconds = next_seconds();
        else if (arg == "--on-limit")
            parse_on_limit(next());
        else if (arg.rfind("--on-limit=", 0) == 0)
            parse_on_limit(arg.substr(std::strlen("--on-limit=")));
        else if (arg == "-o" || arg == "--output")
            opt.output = next();
        else if (arg == "--bristol")
            opt.bristol = true;
        else if (arg == "--verify")
            opt.verify = next();
        else if (arg == "--report")
            opt.report = next();
        else if (arg == "--trace")
            opt.trace_path = next();
        else if (arg == "--progress")
            opt.progress = true;
        else if (arg == "--seed")
            opt.seed = next_number();
        else if (arg == "--list-gens") {
            for (const auto& g : generators())
                std::printf("gen:%s\n", g.usage);
            return 0;
        } else if (arg == "--list-flows") {
            for (const auto& name : flow_pass_names())
                std::printf("%s\n", name.c_str());
            std::printf("(join with '+', e.g. --flow mc+xor)\n");
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "error: unknown option '%s' (see --help)\n",
                         arg.c_str());
            return exit_usage;
        } else
            opt.input = arg;
    }
    if (opt.input.empty()) {
        std::fprintf(stderr, "error: no input given\n\n");
        usage(stderr);
        return exit_usage;
    }
    opt.params.iterate_until_convergence = opt.iterate;

    // Deterministic fault injection (tests/CI only; inert without the env
    // var).  A malformed schedule is a usage error.
    try {
        fault_injection::configure_from_env();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: bad MCX_FAULT_INJECT schedule: %s\n",
                     e.what());
        return exit_usage;
    }

    // SIGINT/SIGTERM and --deadline share one cooperative stop channel:
    // the signal source's token, narrowed by the flow deadline.
    install_signal_cancellation();
    opt.params.token =
        signal_cancellation().token().with_timeout(opt.deadline_seconds);
    opt.params.pass_deadline_seconds = opt.pass_deadline_seconds;

    // Validate the flow spec before touching the input: a bad spec is a
    // usage error, not an optimization failure.
    flow f;
    try {
        f = make_flow(opt.flow_spec, opt.params);
    } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "error: %s (see --list-flows)\n", e.what());
        return exit_usage;
    }

    try {
        // ------------------------------------------------------- read input
        xag net;
        if (opt.input.rfind("gen:", 0) == 0) {
            std::optional<xag> made;
            try {
                made = make_generator_circuit(opt.input);
            } catch (const std::exception&) {
                // stoul on a non-numeric generator argument
            }
            if (!made) {
                std::fprintf(stderr,
                             "error: unknown generator spec '%s' "
                             "(see --list-gens)\n",
                             opt.input.c_str());
                return exit_usage;
            }
            net = std::move(*made);
        } else if (opt.bristol || ends_with(opt.input, ".txt") ||
                   ends_with(opt.input, ".bristol")) {
            net = read_bristol_file(opt.input);
            opt.bristol = true;
        } else {
            net = read_bench_file(opt.input);
        }
        const auto golden = cleanup(net);
        std::printf("read %s: %u PIs, %u POs, %u AND, %u XOR, "
                    "mult. depth %u\n",
                    opt.input.c_str(), net.num_pis(), net.num_pos(),
                    net.num_ands(), net.num_xors(), and_depth(net));

        // --------------------------------------------------------- run flow
        // Tracing covers the flow and the verification below (SAT solves
        // included); it observes only, so the optimized network is
        // byte-identical with or without it (tests/obs_test.cpp).
        if (!opt.trace_path.empty())
            obs::trace::enable();
        pass_context ctx{context_params(opt.params)};
        flow_result result;
        {
            const progress_reporter reporter{opt.progress,
                                             opt.deadline_seconds};
            result = run_flow(net, f, ctx);
        }
        if (result.limit_hit)
            std::fprintf(stderr,
                         "note: limit hit (%s); the emitted network is the "
                         "best-effort state at the last commit boundary\n",
                         result.status == outcome::ok
                             ? "pass deadline"
                             : to_string(result.status));
        for (const auto& p : result.passes)
            std::printf("  pass %-16s %5u -> %5u AND, %6u -> %6u XOR "
                        "(%.2fs%s)\n",
                        p.pass_name.c_str(), p.before.num_ands,
                        p.after.num_ands, p.before.num_xors, p.after.num_xors,
                        p.seconds,
                        p.rounds.empty()
                            ? ""
                            : (", " + std::to_string(p.rounds.size()) +
                               " rounds")
                                  .c_str());

        auto optimized = cleanup(net);

        // ----------------------------------------------------------- verify
        bool verified = true;
        std::string method = "none";
        std::vector<sat::verification_record> verify_checks;
        if (opt.verify == "sim" || opt.verify == "sat" ||
            opt.verify == "sat-cold") {
            if (optimized.num_pis() <= 16) {
                verified = exhaustive_equal(optimized, golden);
                method = "exhaustive";
            } else {
                verified =
                    random_simulation_equal(optimized, golden, 64, opt.seed);
                method = "random-simulation";
            }
            if (verified && opt.verify == "sat") {
                // Warm path: the golden CNF is encoded once and every
                // output is decided under assumptions on the same solver.
                sat::incremental_cec cec{golden};
                const auto report = cec.check(optimized);
                verified =
                    report.result == sat::equivalence_result::equivalent;
                verify_checks = cec.records();
                method = "sat";
            } else if (verified && opt.verify == "sat-cold") {
                const auto report = sat::check_equivalence(optimized, golden);
                verified =
                    report.result == sat::equivalence_result::equivalent;
                method = "sat-cold";
            }
        } else if (opt.verify != "none") {
            std::fprintf(stderr, "error: unknown --verify mode '%s'\n",
                         opt.verify.c_str());
            return exit_usage;
        }

        if (!opt.trace_path.empty()) {
            // All parallel work has joined (the pool is idle between
            // jobs), so the rings are quiescent and safe to drain.
            obs::trace::disable();
            std::ofstream trace_os{opt.trace_path};
            if (!trace_os) {
                std::fprintf(stderr, "error: cannot write trace %s\n",
                             opt.trace_path.c_str());
            } else {
                obs::trace::write_chrome_trace(trace_os,
                                               obs::trace::collect());
                std::printf("wrote trace %s (%llu events dropped)\n",
                            opt.trace_path.c_str(),
                            static_cast<unsigned long long>(
                                obs::trace::dropped()));
            }
        }
        if (!opt.report.empty())
            write_report(opt.report, opt.input, result, verified, method,
                         verify_checks);
        if (!verified) {
            std::fprintf(stderr,
                         "FAIL: optimized network is NOT equivalent (%s)\n",
                         method.c_str());
            return exit_failure;
        }

        // ------------------------------------------------------------ write
        if (!opt.output.empty()) {
            if (opt.bristol || ends_with(opt.output, ".txt") ||
                ends_with(opt.output, ".bristol"))
                write_bristol_file(optimized, opt.output);
            else if (ends_with(opt.output, ".v"))
                write_verilog_file(optimized, opt.output);
            else
                write_bench_file(optimized, opt.output);
            std::printf("wrote %s\n", opt.output.c_str());
        }
        std::printf("flow '%s': %u -> %u AND, %u -> %u XOR, mult. depth %u "
                    "(%.2fs, %u iteration%s; %s)\n",
                    result.flow_name.c_str(), result.before.num_ands,
                    optimized.num_ands(), result.before.num_xors,
                    optimized.num_xors(), and_depth(optimized),
                    result.seconds, result.iterations,
                    result.iterations == 1 ? "" : "s",
                    method == "none" ? "unverified" : "verified");
        if (result.limit_hit && opt.fail_on_limit)
            return exit_failure;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return exit_failure;
    }
    return exit_ok;
}
