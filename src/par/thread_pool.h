// Work-stealing thread pool — the execution engine behind the parallel
// rewrite round (docs/parallel.md).
//
// The pool owns N workers: worker 0 is the thread that calls
// parallel_for (it participates, so a 1-worker pool runs everything
// inline on the caller with no synchronization), workers 1..N-1 are
// threads spawned at construction and parked on a condition variable
// between jobs.  A parallel_for splits its index range into chunks,
// deals them round-robin into per-worker Chase-Lev deques, and lets every
// worker drain its own deque bottom-first and steal from the top of the
// others' when it runs dry — the classic recipe: an owner's pop and a
// thief's steal only contend on the last element, so a worker whose
// chunks run long loses its queued work to idle workers instead of
// stalling them.
//
// Guarantees:
//  * every index in [begin, end) is visited exactly once, on some worker;
//  * the first exception thrown by the body is captured and rethrown on
//    the calling thread once every worker has stopped (remaining chunks
//    are abandoned, in-flight ones finish);
//  * nested parallel_for calls — from the body, on any worker — throw
//    std::logic_error instead of deadlocking on the worker team;
//  * the pool itself imposes no ordering, so callers that need
//    determinism must make the body's work independent per index and
//    combine results by index afterwards (the two-phase rewrite round's
//    evaluate/commit split, src/core/pass.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mcx {

/// Fixed-capacity Chase-Lev work-stealing deque of chunk indices.  The
/// owner pushes and pops at the bottom; thieves take from the top.  The
/// pool sizes the buffer to the chunk count of the current job, so the
/// buffer never grows and the classic algorithm applies without the
/// resize step.
class work_deque {
public:
    void reset(size_t capacity);

    /// Owner only.  Precondition: fewer than `capacity` elements pushed
    /// since reset (the pool deals each chunk to exactly one deque).
    void push(uint32_t chunk);

    /// Owner only: take the most recently pushed chunk.  Returns false
    /// when the deque is empty (or the last element was lost to a thief).
    bool pop(uint32_t& chunk);

    /// Any thread: take the oldest chunk.  Returns false when empty or
    /// when the steal raced with the owner and lost.
    bool steal(uint32_t& chunk);

private:
    std::atomic<int64_t> top_{0};
    std::atomic<int64_t> bottom_{0};
    std::vector<std::atomic<uint32_t>> buffer_;
};

class thread_pool {
public:
    /// `num_threads` = 0 picks std::thread::hardware_concurrency().
    /// A 1-worker pool spawns no threads and runs parallel_for inline.
    explicit thread_pool(uint32_t num_threads = 0);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    uint32_t num_workers() const { return num_workers_; }

    /// Cumulative per-worker execution counters.  `tasks` counts body
    /// indices executed by the worker (so the sum over workers equals the
    /// index count of every completed parallel_for), `steals` counts
    /// chunks taken from another worker's deque, `idle` counts times the
    /// worker ran dry (a full steal sweep found nothing).
    struct worker_stats {
        uint64_t tasks = 0;
        uint64_t steals = 0;
        uint64_t idle = 0;
    };
    worker_stats stats(uint32_t worker) const;

    /// Invoke `body(index, worker)` exactly once for every index in
    /// [begin, end), with worker in [0, num_workers()).  Blocks until all
    /// indices are done; rethrows the first body exception.  Indices are
    /// grouped into chunks of `grain` (0 = automatic) that are stolen
    /// whole, so neighbouring indices usually land on the same worker.
    /// Throws std::logic_error when called from inside a parallel_for
    /// body (the worker team cannot be re-entered).
    void parallel_for(size_t begin, size_t end,
                      const std::function<void(size_t, uint32_t)>& body,
                      size_t grain = 0);

private:
    void worker_loop(uint32_t worker);
    void run_job(uint32_t worker);

    /// One padded cell per worker so counting never shares a cache line.
    struct alignas(64) counter_cell {
        std::atomic<uint64_t> tasks{0};
        std::atomic<uint64_t> steals{0};
        std::atomic<uint64_t> idle{0};
    };

    uint32_t num_workers_;
    std::vector<std::thread> threads_;
    std::vector<std::unique_ptr<work_deque>> deques_;
    std::vector<std::unique_ptr<counter_cell>> counters_;

    // Current job (valid while job_active_); workers re-check under
    // mutex_ on wake-up.
    const std::function<void(size_t, uint32_t)>* body_ = nullptr;
    size_t job_begin_ = 0;
    size_t job_end_ = 0;
    size_t job_grain_ = 1;

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable work_done_;
    uint64_t job_id_ = 0;          ///< bumped per parallel_for
    uint32_t workers_running_ = 0; ///< helpers still inside run_job
    bool shutdown_ = false;

    std::atomic<bool> cancelled_{false};
    std::exception_ptr first_exception_;
    std::mutex exception_mutex_;
};

} // namespace mcx
