// Per-worker scratch state for the parallel rewrite round.
//
// The evaluate phase of the two-phase round (src/core/pass.cpp) runs one
// node per parallel_for index; everything a node evaluation mutates lives
// here, owned exclusively by one worker — so the phase needs no locking
// beyond the databases' internal stripes:
//
//  * the batched cone simulator's epoch-stamped buffers (simulate all of
//    a node's cut functions, verify nothing — verification happens at
//    commit time on the main thread);
//  * the canonization caches, as per-worker LRU *shards*: classification
//    and NPN canonization are pure functions, so sharding only costs
//    duplicate work when two workers see the same cut function, never
//    consistency.  Shard hit/miss counters are scheduling-dependent and
//    are reported in aggregate only — the determinism contract covers
//    networks and replacement counts, not cache traffic;
//  * the resolved-leaf pools and candidate buffers the sequential loop
//    kept as locals.
//
// The cut arena (pass_context::cuts()) stays shared: it is written once
// by cut enumeration before the phase starts and only read inside it.
#pragma once

#include "npn/npn.h"
#include "spectral/classification.h"
#include "xag/cone_batch.h"

#include <cstdint>
#include <vector>

namespace mcx {

struct pass_scratch {
    explicit pass_scratch(const classification_params& params)
        : classification{params}
    {
    }

    cone_simulator simulator;
    classification_cache classification; ///< per-worker shard
    npn_cache npn;                       ///< per-worker shard

    // Evaluate-phase buffers (capacity reused across nodes and rounds).
    std::vector<cone_simulator::leaf_set> resolved;
    std::vector<uint64_t> words;
    std::vector<uint64_t> chunk_words;
    std::vector<uint8_t> valid;
    std::vector<uint32_t> leaf_nodes;

    // Per-worker partial round counters, summed after the phase joins
    // (each is a function of the node set alone, so the sums are
    // thread-count-independent).
    uint64_t cuts_evaluated = 0;
    uint64_t classify_failures = 0;
    uint64_t candidates_built = 0;
};

} // namespace mcx
