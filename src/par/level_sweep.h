// Level-synchronized parallel iteration.
//
// Some sweeps are parallel only *within* a dependency level: cut
// enumeration of a node may start once its fanins' cut sets are finished,
// so the dirty region of a network is processed level by level — every
// item of level L runs on the pool concurrently, then a sequential commit
// publishes the level's results, then level L+1 starts.  The plan and
// commit steps run on the calling thread between parallel sections, which
// is what lets workers read shared state (the cut arena) without
// synchronization: it is frozen for the duration of each parallel section
// — and what lets the frontier be *dynamic*: the plan for level L+1 may
// depend on which of level L's results actually changed (change
// propagation with early termination).
//
// Levels with a single item — and the whole sweep when `pool` is null or
// has one worker — run inline on the caller, so the sequential and
// parallel executions share one code path (and, because each body must be
// a pure function of its item, identical results).
#pragma once

#include "par/thread_pool.h"

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mcx {

/// Run a level-synchronized sweep over `num_levels` dependency levels:
/// per level, `plan(level)` (sequential) stages the level's work items and
/// returns their count, `body(item, worker)` runs for every item in
/// [0, count) — concurrently on `pool` when it has more than one worker —
/// and `commit(level, count)` (sequential) publishes the results before
/// the next level is planned.  `body` must not touch state shared with
/// another item of its level.
inline void
level_synchronized_sweep(thread_pool* pool, size_t num_levels,
                         const std::function<size_t(size_t)>& plan,
                         const std::function<void(size_t, uint32_t)>& body,
                         const std::function<void(size_t, size_t)>& commit)
{
    for (size_t level = 0; level < num_levels; ++level) {
        const size_t count = plan(level);
        if (count == 0)
            continue;
        if (pool != nullptr && pool->num_workers() > 1 && count > 1) {
            pool->parallel_for(0, count, body);
        } else {
            for (size_t i = 0; i < count; ++i)
                body(i, 0);
        }
        commit(level, count);
    }
}

} // namespace mcx
