#include "par/thread_pool.h"

#include "core/fault_inject.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#include <algorithm>
#include <stdexcept>

namespace mcx {

namespace {

/// Set while the current thread executes a parallel_for body (either as a
/// pool worker or as the caller); guards against re-entering the team.
thread_local bool in_parallel_region = false;

} // namespace

// -------------------------------------------------------------- work_deque

void work_deque::reset(size_t capacity)
{
    if (buffer_.size() < capacity)
        buffer_ = std::vector<std::atomic<uint32_t>>(capacity);
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
}

void work_deque::push(uint32_t chunk)
{
    const auto b = bottom_.load(std::memory_order_relaxed);
    buffer_[static_cast<size_t>(b)].store(chunk, std::memory_order_relaxed);
    // Publish the element before making it visible to thieves.
    bottom_.store(b + 1, std::memory_order_release);
}

bool work_deque::pop(uint32_t& chunk)
{
    const auto b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    // The fence orders the bottom_ store before the top_ load — the owner
    // must see any steal that already claimed this last element.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    auto t = top_.load(std::memory_order_relaxed);
    if (t > b) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false; // empty
    }
    chunk = buffer_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
            bottom_.store(b + 1, std::memory_order_relaxed);
            return false; // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return true;
}

bool work_deque::steal(uint32_t& chunk)
{
    // Retry on a lost CAS (another thief or the owner claimed the top
    // element): the deque may still hold work, and reporting "empty" here
    // would let a worker abandon it.  top_ strictly increases on every
    // retry, so the loop terminates.
    while (true) {
        auto t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const auto b = bottom_.load(std::memory_order_acquire);
        if (t >= b)
            return false; // empty
        chunk =
            buffer_[static_cast<size_t>(t)].load(std::memory_order_relaxed);
        if (top_.compare_exchange_strong(t, t + 1,
                                         std::memory_order_seq_cst,
                                         std::memory_order_relaxed))
            return true;
    }
}

// -------------------------------------------------------------- thread_pool

thread_pool::thread_pool(uint32_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    num_workers_ = num_threads;
    deques_.reserve(num_workers_);
    counters_.reserve(num_workers_);
    for (uint32_t w = 0; w < num_workers_; ++w) {
        deques_.push_back(std::make_unique<work_deque>());
        counters_.push_back(std::make_unique<counter_cell>());
    }
    for (uint32_t w = 1; w < num_workers_; ++w)
        threads_.emplace_back([this, w] { worker_loop(w); });
}

thread_pool::~thread_pool()
{
    {
        std::lock_guard lock{mutex_};
        shutdown_ = true;
    }
    work_ready_.notify_all();
    for (auto& t : threads_)
        t.join();
}

thread_pool::worker_stats thread_pool::stats(uint32_t worker) const
{
    const auto& c = *counters_[worker];
    return {c.tasks.load(std::memory_order_relaxed),
            c.steals.load(std::memory_order_relaxed),
            c.idle.load(std::memory_order_relaxed)};
}

void thread_pool::worker_loop(uint32_t worker)
{
    uint64_t seen_job = 0;
    while (true) {
        {
            std::unique_lock lock{mutex_};
            work_ready_.wait(lock, [&] {
                return shutdown_ || job_id_ != seen_job;
            });
            if (shutdown_)
                return;
            seen_job = job_id_;
        }
        run_job(worker);
        {
            std::lock_guard lock{mutex_};
            --workers_running_;
        }
        work_done_.notify_one();
    }
}

void thread_pool::run_job(uint32_t worker)
{
    obs::trace::set_lane(worker);
    in_parallel_region = true;
    auto& own = *deques_[worker];
    auto& counters = *counters_[worker];
    uint64_t tasks = 0;
    uint64_t steals = 0;
    uint64_t idle = 0;
    uint32_t chunk = 0;
    while (!cancelled_.load(std::memory_order_relaxed)) {
        if (!own.pop(chunk)) {
            // Own deque dry: sweep the other workers' tops once; give up
            // when a full sweep yields nothing (all work claimed — any
            // still-running chunk is owned by the worker executing it).
            bool stolen = false;
            for (uint32_t i = 1; i < num_workers_ && !stolen; ++i)
                stolen = deques_[(worker + i) % num_workers_]->steal(chunk);
            if (!stolen) {
                ++idle;
                break;
            }
            ++steals;
        }
        const size_t lo = job_begin_ + size_t{chunk} * job_grain_;
        const size_t hi = std::min(job_end_, lo + job_grain_);
        obs::trace::trace_span span{"pool.task"};
        uint64_t executed = 0;
        try {
            for (size_t i = lo;
                 i < hi && !cancelled_.load(std::memory_order_relaxed);
                 ++i) {
                // Injected task failure rides the exact production path: it
                // is captured as first_exception_ and rethrown on the
                // caller, like any exception escaping a task body.
                fault_injection::fire(fault_site::worker_task);
                (*body_)(i, worker);
                ++executed;
            }
        } catch (...) {
            {
                std::lock_guard lock{exception_mutex_};
                if (!first_exception_)
                    first_exception_ = std::current_exception();
            }
            cancelled_.store(true, std::memory_order_relaxed);
        }
        span.set_arg(executed);
        tasks += executed;
    }
    counters.tasks.fetch_add(tasks, std::memory_order_relaxed);
    counters.steals.fetch_add(steals, std::memory_order_relaxed);
    counters.idle.fetch_add(idle, std::memory_order_relaxed);
    static const auto task_metric = obs::register_metric("pool.tasks");
    static const auto steal_metric = obs::register_metric("pool.steals");
    static const auto idle_metric = obs::register_metric("pool.idle");
    task_metric.add(tasks);
    steal_metric.add(steals);
    idle_metric.add(idle);
    in_parallel_region = false;
}

void thread_pool::parallel_for(
    size_t begin, size_t end,
    const std::function<void(size_t, uint32_t)>& body, size_t grain)
{
    if (in_parallel_region)
        throw std::logic_error{
            "thread_pool: nested parallel_for is not supported"};
    if (begin >= end)
        return;

    const size_t count = end - begin;
    if (num_workers_ == 1 || count == 1) {
        // Inline fast path: no chunking, no synchronization.
        in_parallel_region = true;
        obs::trace::trace_span span{"pool.task"};
        uint64_t executed = 0;
        const auto flush = [&] {
            span.set_arg(executed);
            counters_[0]->tasks.fetch_add(executed,
                                          std::memory_order_relaxed);
            static const auto task_metric =
                obs::register_metric("pool.tasks");
            task_metric.add(executed);
            in_parallel_region = false;
        };
        try {
            for (size_t i = begin; i < end; ++i) {
                fault_injection::fire(fault_site::worker_task);
                body(i, 0);
                ++executed;
            }
        } catch (...) {
            flush();
            throw;
        }
        flush();
        return;
    }

    if (grain == 0)
        grain = std::max<size_t>(1, count / (size_t{num_workers_} * 8));
    const auto chunks =
        static_cast<uint32_t>((count + grain - 1) / grain);

    body_ = &body;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = grain;
    cancelled_.store(false, std::memory_order_relaxed);
    first_exception_ = nullptr;

    // Deal chunks round-robin so every worker starts with a share and
    // stealing only happens once the shares get unbalanced.
    for (uint32_t w = 0; w < num_workers_; ++w)
        deques_[w]->reset((chunks + num_workers_ - 1) / num_workers_);
    for (uint32_t c = 0; c < chunks; ++c)
        deques_[c % num_workers_]->push(c);

    {
        std::lock_guard lock{mutex_};
        ++job_id_;
        workers_running_ = num_workers_ - 1;
    }
    work_ready_.notify_all();

    run_job(0); // the caller is worker 0

    {
        std::unique_lock lock{mutex_};
        work_done_.wait(lock, [&] { return workers_running_ == 0; });
    }
    body_ = nullptr;

    if (first_exception_)
        std::rethrow_exception(first_exception_);
}

} // namespace mcx
