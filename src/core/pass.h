// The pass framework: every optimization step (AND-minimizing rewrite, the
// generic size baseline, XOR resynthesis, cleanup) is a `pass` executed
// against a shared `pass_context`.
//
// The context owns everything the hot loop reuses across rounds and across
// passes — the arena-backed cut storage (src/cut/cut_arena.h), the batched
// cone simulator (src/xag/cone_batch.h), the LRU canonization caches, and
// the lazily constructed databases — so each resource is allocated once
// per flow instead of once per round.  `pass_stats` is the unified sink:
// one record per executed pass, with per-round breakdowns for the rewrite
// passes.
//
// The rewrite passes share ONE round implementation (pass.cpp): cut
// enumeration into the arena, batched evaluation of all of a node's cut
// functions in a single union-cone traversal, canonize/classify through
// the context caches, database splice, MFFC-gated commit.  mc vs. size
// differ only in a small strategy bundle (candidate builder + cost model).
//
// With `num_threads >= 1` the round runs on the parallel subsystem
// (src/par/): a work-stealing evaluate phase scores the best candidate
// per node against the frozen network (per-worker scratch, thread-safe
// databases), then a sequential commit phase applies non-conflicting
// winners in node order — bit-identical results for any thread count
// (docs/parallel.md).  `num_threads == 0` keeps the classic in-place
// loop, which commits as it scans and so sees its own rewrites within
// the round.
#pragma once

#include "core/budget.h"
#include "cut/cut_enumeration.h"
#include "cut/cut_incremental.h"
#include "db/mc_database.h"
#include "db/size_database.h"
#include "npn/npn.h"
#include "par/scratch.h"
#include "par/thread_pool.h"
#include "sat/equivalence.h"
#include "spectral/classification.h"
#include "xag/cone_batch.h"
#include "xag/xag.h"

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mcx {

// ------------------------------------------------------------- parameters

struct rewrite_params {
    uint32_t cut_size = 6;   ///< paper: 6-cuts (64-bit truth tables)
    uint32_t cut_limit = 12; ///< paper: 12 cuts per node
    uint64_t classification_iteration_limit = 100'000; ///< paper §5
    /// Classify cut functions with the packed-spectrum engine; false keeps
    /// the scalar classify_affine_baseline on the hot path (A/B switch,
    /// identical results — see classification_params::word_parallel).
    bool classification_word_parallel = true;
    bool allow_zero_gain = false;
    /// Batch all of a node's cut functions into one union-cone traversal
    /// (cone_simulator).  The per-cut cone_function path is retained for
    /// A/B measurement (bench/micro_core) — both produce identical results.
    bool batched_simulation = true;
    /// 0 = the classic sequential in-place loop (default).  >= 1 = the
    /// deterministic two-phase engine on that many workers; results are
    /// bit-identical for every value >= 1 (docs/parallel.md), so
    /// `num_threads = 1` is the reference run of the parallel engine.
    uint32_t num_threads = 0;
    /// Maintain cut sets incrementally across rounds (default): after the
    /// first round only the dirty region — replaced MFFCs' transitive
    /// fanout plus new gates — is re-enumerated, level-parallel on the
    /// worker pool when num_threads >= 1.  `false` is the full-rebuild
    /// oracle; both modes produce byte-identical networks
    /// (src/cut/cut_incremental.h).
    bool incremental_cuts = true;
    /// Re-score only nodes whose cut spans or cone context (MFFC, leaf
    /// liveness) changed since the previous round; clean nodes reuse the
    /// persistent per-node evaluation cache in the pass_context.  Requires
    /// incremental_cuts (the dirty set is derived from the same journal);
    /// with it off, every round evaluates every node — the full-evaluate
    /// oracle, byte-identical to the incremental path at any thread count
    /// (docs/hot-path.md, "The evaluate dirty-set contract").
    bool incremental_evaluate = true;
    /// Commit-time SAT verification: check each replacement cone against
    /// its pre-image miter under assumptions on the context's persistent
    /// cone_verifier before substituting.  Off by default — simulation
    /// verification is already exact for cut-bounded cones — but the
    /// counters it fills (round_stats::sat_*) feed the mcx report.
    bool sat_verify_commits = false;
    mc_database_params db;
};

struct size_rewrite_params {
    uint32_t cut_size = 4; ///< NPN-4 database
    uint32_t cut_limit = 12;
    bool allow_zero_gain = false;
    bool batched_simulation = true;  ///< see rewrite_params
    uint32_t num_threads = 0;        ///< see rewrite_params
    bool incremental_cuts = true;    ///< see rewrite_params
    bool incremental_evaluate = true; ///< see rewrite_params
    bool sat_verify_commits = false; ///< see rewrite_params
    size_database_params db;
};

// ------------------------------------------------------------------ stats

struct round_stats {
    uint32_t ands_before = 0;
    uint32_t ands_after = 0;
    uint32_t xors_before = 0;
    uint32_t xors_after = 0;
    uint64_t cuts_evaluated = 0;
    uint64_t classify_failures = 0;
    uint64_t candidates_built = 0;
    uint64_t replacements = 0;
    double seconds = 0.0;

    // --- per-stage breakdown of the hot loop (filled by every round) ------
    double cut_seconds = 0.0;     ///< time inside enumerate_cuts
    double rewrite_seconds = 0.0; ///< time in the canonize/classify/splice pass
    cut_enumeration_stats cut_stats; ///< merge/dedup/domination counters
    /// Canonization-cache traffic this round: classification_cache for the
    /// proposed method, npn_cache for the size baseline.
    uint64_t canon_cache_hits = 0;
    uint64_t canon_cache_misses = 0;
    /// Database traffic this round (lookup served vs. circuit synthesized).
    uint64_t db_hits = 0;
    uint64_t db_misses = 0;
    /// Incremental-evaluate traffic: nodes re-scored this round vs. nodes
    /// served from the persistent evaluation cache.  With the feature off
    /// every visited gate counts as evaluated; a quiescent incremental
    /// round reports nodes_evaluated == 0.
    uint64_t nodes_evaluated = 0;
    uint64_t nodes_clean = 0;
    /// Commit-time SAT verification traffic (sat_verify_commits only).
    uint64_t sat_verifications = 0;
    uint64_t sat_conflicts = 0;
    uint64_t sat_warm_starts = 0;
    /// Why the round ended: ok, or the limit/fault that stopped it early.
    /// Non-ok rounds leave the network consistent and function-equivalent —
    /// only the not-yet-visited nodes keep their old structure.
    outcome status = outcome::ok;

    double canon_cache_hit_rate() const
    {
        const auto total = canon_cache_hits + canon_cache_misses;
        return total == 0 ? 0.0
                          : static_cast<double>(canon_cache_hits) /
                                static_cast<double>(total);
    }
};

struct convergence_stats {
    std::vector<round_stats> rounds;
    bool converged = false; ///< a round produced no improvement
    outcome status = outcome::ok; ///< first non-ok round status, if any

    uint32_t ands_before() const
    {
        return rounds.empty() ? 0 : rounds.front().ands_before;
    }
    uint32_t ands_after() const
    {
        return rounds.empty() ? 0 : rounds.back().ands_after;
    }
    double total_seconds() const
    {
        double t = 0;
        for (const auto& r : rounds)
            t += r.seconds;
        return t;
    }
};

/// Outcome of one executed pass — the unified stats sink.  Rewrite passes
/// fill `rounds`; xor_resynthesis fills the xor counters; every pass fills
/// the network before/after shape and its wall time.
struct pass_stats {
    std::string pass_name;
    xag_stats before{};
    xag_stats after{};
    double seconds = 0.0;
    bool converged = false;
    /// Workers the pass ran on: 1 for the sequential engine and for
    /// non-rewrite passes, the two-phase engine's worker count otherwise.
    uint32_t num_threads = 1;
    std::vector<round_stats> rounds; ///< rewrite passes only
    uint32_t xor_blocks = 0;         ///< xor_resynthesis only
    uint32_t xor_pairs_extracted = 0; ///< xor_resynthesis only
    /// Database traffic over this pass (rewrite passes only): sharded_store
    /// hits/misses delta, entry count after the pass, and — for the mc
    /// database — how many of the entries ever built were certified
    /// optimal vs heuristic fallbacks.
    uint64_t db_hits = 0;
    uint64_t db_misses = 0;
    uint64_t db_entries = 0;
    uint64_t db_exact = 0;
    uint64_t db_heuristic = 0;
    /// Why the pass ended.  Non-ok means the pass stopped cooperatively at
    /// a commit boundary: the network is consistent, function-equivalent,
    /// and carries whatever gains were committed before the stop.
    outcome status = outcome::ok;
};

// ---------------------------------------------------------------- context

/// Best replacement found for one node by the two-phase evaluate phase.
/// Engine-internal except for its role as the evaluate cache's payload: a
/// pure function of (network, cut sets, node), which is what makes caching
/// it across rounds sound (docs/hot-path.md).
struct eval_winner {
    uint32_t node = 0;
    truth_table function;                 ///< support-shrunk cut function
    std::array<uint32_t, 6> cut_leaves{}; ///< resolved full leaf set
    std::array<uint8_t, 6> support{};     ///< indices into cut_leaves
    uint8_t num_cut_leaves = 0;
    uint8_t num_support = 0;
    /// Worker that scored this node — its cache shard already holds the
    /// function's classification, so the commit phase classifies through
    /// the same shard (a warm hit) instead of re-running the search cold.
    uint32_t worker = 0;
    bool valid = false;
};

/// Persistent per-node evaluation results, reused across rounds for nodes
/// the cut_maintainer's dirty set clears (rewrite_params::
/// incremental_evaluate).  Coherence handshake: the cache is only
/// consulted when it was populated at the maintainer's previous refresh
/// serial, that refresh chain is unbroken (last refresh incremental), and
/// every parameter that shapes an evaluation matches.  Any mismatch
/// resets the cache — correctness never depends on it.
struct evaluate_cache {
    const xag* net = nullptr;
    uint64_t serial = 0; ///< cut_maintainer::refresh_serial() at population
    uint32_t cut_size = 0;
    uint32_t cut_limit = 0;
    bool allow_zero_gain = false;
    bool batched = false;
    uint8_t strategy = 0; ///< 0 = mc, 1 = size
    uint8_t engine = 0;   ///< 0 = sequential in-place, 1 = two-phase
    /// Two-phase engine: cached winner per node id.
    std::vector<eval_winner> winners;
    std::vector<uint8_t> has_entry;
    /// Sequential engine: "visited, found no improvement" per node id
    /// (improvements commit immediately and kill the node, so this single
    /// bit is the whole cacheable outcome).
    std::vector<uint8_t> no_improvement;

    void reset()
    {
        net = nullptr;
        winners.clear();
        has_entry.clear();
        no_improvement.clear();
    }
};

struct pass_context_params {
    mc_database_params mc_db;
    size_database_params size_db;
    uint64_t classification_iteration_limit = 100'000;
    bool classification_word_parallel = true;
};

/// Shared execution state for a sequence of passes.  Databases and caches
/// are constructed lazily on first use; external instances (e.g. a database
/// loaded from disk) can be adopted instead.  All members persist across
/// rounds, passes, and flows, which is what makes the caches effective and
/// the arena/simulator allocation-free after warm-up.
class pass_context {
public:
    explicit pass_context(const pass_context_params& params = {})
        : params_{params}
    {
    }

    mc_database& mc_db();
    size_database& size_db();
    classification_cache& classification();
    npn_cache& npn();
    cut_sets& cuts() { return cuts_; }
    /// Incremental maintenance of cuts() across rounds — tracks one
    /// network at a time and falls back to a full rebuild whenever its
    /// change journal cannot vouch for the arena (different network, pass
    /// ran untracked, params changed).
    cut_maintainer& cut_maintenance() { return cut_maint_; }
    cone_simulator& simulator() { return simulator_; }

    /// Persistent evaluation cache for the incremental-evaluate path; the
    /// round engine owns its coherence protocol (see evaluate_cache).
    evaluate_cache& eval_cache() { return eval_cache_; }

    /// Persistent warm SAT solver for commit-time cone verification
    /// (rewrite_params::sat_verify_commits); one instance serves every
    /// round and pass so learnt clauses accumulate across commits.
    sat::cone_verifier& commit_verifier() { return commit_verifier_; }

    /// Worker team for the two-phase engine: exactly `num_threads`
    /// workers (>= 1), rebuilt only when the requested count changes.
    thread_pool& pool(uint32_t num_threads);

    /// Per-worker scratch (src/par/scratch.h), created on first request
    /// and persistent across rounds/passes/flows like every other context
    /// resource.  Not thread-safe to *create* — the engine touches every
    /// worker's scratch once before entering the parallel phase.
    pass_scratch& scratch(uint32_t worker);

    /// Adopt external components (nullptr restores the owned instance).
    /// The pointee must outlive the context's use.
    void adopt(mc_database* db) { external_mc_db_ = db; }
    void adopt(size_database* db) { external_size_db_ = db; }
    void adopt(classification_cache* cache) { external_cls_ = cache; }
    void adopt(npn_cache* cache) { external_npn_ = cache; }

    const pass_context_params& params() const { return params_; }

    /// Every pass executed against this context appends its record here.
    std::vector<pass_stats> history;

    /// Cooperative stop signal for every pass run against this context.
    /// Checked at commit boundaries (per node visit, per sweep level, per
    /// SAT conflict inside database miss synthesis); a stopped token makes
    /// the running pass finish early with a non-ok pass_stats::status and
    /// the network consistent.  Default: inert (never stops anything).
    cancellation_token token;

private:
    pass_context_params params_;
    std::unique_ptr<mc_database> mc_db_;
    std::unique_ptr<size_database> size_db_;
    std::unique_ptr<classification_cache> cls_cache_;
    std::unique_ptr<npn_cache> npn_cache_;
    mc_database* external_mc_db_ = nullptr;
    size_database* external_size_db_ = nullptr;
    classification_cache* external_cls_ = nullptr;
    npn_cache* external_npn_ = nullptr;
    cut_sets cuts_;
    cut_maintainer cut_maint_;
    cone_simulator simulator_;
    evaluate_cache eval_cache_;
    sat::cone_verifier commit_verifier_;
    std::unique_ptr<thread_pool> pool_;
    std::vector<std::unique_ptr<pass_scratch>> scratch_;
};

// ------------------------------------------------------------------ passes

/// One optimization step over a network.  run() appends its pass_stats to
/// ctx.history and also returns it.
class pass {
public:
    virtual ~pass() = default;
    virtual std::string_view name() const = 0;
    virtual pass_stats run(xag& network, pass_context& ctx) const = 0;
};

/// The paper's AND-minimizing rewrite (affine classification + MC
/// database), repeated until the AND count stops improving.
class mc_rewrite_pass final : public pass {
public:
    explicit mc_rewrite_pass(rewrite_params params = {},
                             uint32_t max_rounds = 100)
        : params_{params}, max_rounds_{max_rounds}
    {
    }
    std::string_view name() const override { return "mc-rewrite"; }
    pass_stats run(xag& network, pass_context& ctx) const override;

private:
    rewrite_params params_;
    uint32_t max_rounds_;
};

/// The generic size baseline (NPN-4 database, unit cost for AND and XOR),
/// repeated until the gate count stops improving.
class size_rewrite_pass final : public pass {
public:
    explicit size_rewrite_pass(size_rewrite_params params = {},
                               uint32_t max_rounds = 100)
        : params_{params}, max_rounds_{max_rounds}
    {
    }
    std::string_view name() const override { return "size-rewrite"; }
    pass_stats run(xag& network, pass_context& ctx) const override;

private:
    size_rewrite_params params_;
    uint32_t max_rounds_;
};

/// Paar-style resynthesis of maximal linear (XOR-only) blocks.  With
/// `num_threads >= 1` the quadratic pair-count seeding runs on the
/// context's worker pool and the admission budget scales with the team
/// (xor_resynthesis_params::pairing_work_budget).
class xor_resynthesis_pass final : public pass {
public:
    xor_resynthesis_pass() = default;
    explicit xor_resynthesis_pass(uint32_t num_threads)
        : num_threads_{num_threads}
    {
    }
    std::string_view name() const override { return "xor-resynthesis"; }
    pass_stats run(xag& network, pass_context& ctx) const override;

private:
    uint32_t num_threads_ = 0;
};

/// Rebuild a compacted, freshly strashed copy of the network.
class cleanup_pass final : public pass {
public:
    std::string_view name() const override { return "cleanup"; }
    pass_stats run(xag& network, pass_context& ctx) const override;
};

// ---------------------------------------------------- round-level engine

/// One round of the proposed method through a context (the single shared
/// pass-loop implementation; size_rewrite_round uses the same engine).
round_stats mc_rewrite_round(xag& network, pass_context& ctx,
                             const rewrite_params& params = {});

/// One round of the generic size baseline through a context.
round_stats size_rewrite_round(xag& network, pass_context& ctx,
                               const size_rewrite_params& params = {});

} // namespace mcx
