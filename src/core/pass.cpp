#include "core/pass.h"

#include "core/mffc.h"
#include "core/xor_resynthesis.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tt/operations.h"
#include "xag/cleanup.h"
#include "xag/simulate.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <optional>
#include <unordered_map>
#include <utility>

namespace mcx {

// ------------------------------------------------------- context accessors

mc_database& pass_context::mc_db()
{
    if (external_mc_db_)
        return *external_mc_db_;
    if (!mc_db_)
        mc_db_ = std::make_unique<mc_database>(params_.mc_db);
    return *mc_db_;
}

size_database& pass_context::size_db()
{
    if (external_size_db_)
        return *external_size_db_;
    if (!size_db_)
        size_db_ = std::make_unique<size_database>(params_.size_db);
    return *size_db_;
}

classification_cache& pass_context::classification()
{
    if (external_cls_)
        return *external_cls_;
    if (!cls_cache_)
        cls_cache_ = std::make_unique<classification_cache>(
            classification_params{
                .iteration_limit = params_.classification_iteration_limit,
                .word_parallel = params_.classification_word_parallel});
    return *cls_cache_;
}

npn_cache& pass_context::npn()
{
    if (external_npn_)
        return *external_npn_;
    if (!npn_cache_)
        npn_cache_ = std::make_unique<npn_cache>();
    return *npn_cache_;
}

thread_pool& pass_context::pool(uint32_t num_threads)
{
    if (num_threads == 0)
        num_threads = 1;
    if (!pool_ || pool_->num_workers() != num_threads)
        pool_ = std::make_unique<thread_pool>(num_threads);
    return *pool_;
}

pass_scratch& pass_context::scratch(uint32_t worker)
{
    while (scratch_.size() <= worker)
        scratch_.push_back(std::make_unique<pass_scratch>(
            classification_params{
                .iteration_limit = params_.classification_iteration_limit,
                .word_parallel = params_.classification_word_parallel}));
    return *scratch_[worker];
}

namespace {

/// Splice the representative circuit into `dst`, mirroring
/// affine_transform::apply: input i of the representative reads the parity
/// of the leaves selected by column i of M^T plus c_i; the output adds the
/// v-masked leaf parity and the optional complement.  Only XOR gates and
/// inverters are created around the representative — AND count is exactly
/// the database entry's (modulo structural hashing savings).
signal splice_affine(xag& dst, const affine_transform& t,
                     std::span<const signal> leaves, const xag& repr_circuit)
{
    std::vector<signal> repr_inputs(t.num_vars);
    for (uint32_t i = 0; i < t.num_vars; ++i) {
        auto acc = dst.get_constant(((t.c >> i) & 1) != 0);
        for (uint32_t k = 0; k < t.num_vars; ++k)
            if ((t.mt_column(k) >> i) & 1)
                acc = dst.create_xor(acc, leaves[k]);
        repr_inputs[i] = acc;
    }
    auto out = insert_network(dst, repr_circuit, repr_inputs)[0];
    for (uint32_t k = 0; k < t.num_vars; ++k)
        if ((t.v >> k) & 1)
            out = dst.create_xor(out, leaves[k]);
    return out ^ t.output_complement;
}

/// Splice for the NPN baseline: permutation, input and output complements
/// are all free on XAG edges.
signal splice_npn(xag& dst, const npn_transform& t,
                  std::span<const signal> leaves, const xag& repr_circuit)
{
    std::vector<signal> repr_inputs(t.num_vars);
    for (uint32_t i = 0; i < t.num_vars; ++i)
        repr_inputs[i] =
            leaves[t.perm[i]] ^ (((t.input_negation >> i) & 1) != 0);
    const auto out = insert_network(dst, repr_circuit, repr_inputs)[0];
    return out ^ t.output_negation;
}

/// Walk the candidate cone down to `leaves`; verify the computed function
/// and that `forbidden` (the rewrite root) is not part of the cone.  The
/// seed-faithful per-cone implementation, used when batched_simulation is
/// off (A/B reference).
bool verify_candidate_legacy(const xag& net, signal candidate,
                             std::span<const uint32_t> leaves,
                             const truth_table& expected, uint32_t forbidden)
{
    // Containment check by DFS.
    std::vector<uint32_t> stack{candidate.node()};
    std::unordered_map<uint32_t, uint8_t> visited;
    for (const auto l : leaves)
        visited.emplace(l, 1);
    while (!stack.empty()) {
        const auto n = stack.back();
        stack.pop_back();
        if (!visited.emplace(n, 1).second)
            continue;
        if (n == forbidden)
            return false;
        if (!net.is_gate(n))
            continue;
        stack.push_back(net.fanin0(n).node());
        stack.push_back(net.fanin1(n).node());
    }
    try {
        const auto tt = cone_function(net, candidate.node(), leaves);
        return (candidate.complemented() ? ~tt : tt) == expected;
    } catch (const std::invalid_argument&) {
        return false;
    }
}

/// Batched-path verification: one epoch-stamped traversal computes the
/// candidate's function word and performs the containment check at once.
bool verify_candidate(const xag& net, cone_simulator& sim, signal candidate,
                      std::span<const uint32_t> leaves,
                      const truth_table& expected, uint32_t forbidden)
{
    const auto word =
        sim.cone_word(net, candidate.node(), leaves, forbidden);
    if (!word)
        return false;
    const auto k = static_cast<uint32_t>(leaves.size());
    const auto tt = truth_table{k, *word};
    return (candidate.complemented() ? ~tt : tt) == expected;
}

/// Direct replacements for cuts whose (support-shrunk) function collapsed
/// to a constant or a single leaf (no database needed).  `f` is the
/// shrunk function, `leaf_sigs` its support leaves.
std::optional<signal> trivial_replacement(xag& net, const truth_table& f,
                                          std::span<const signal> leaf_sigs)
{
    if (leaf_sigs.empty())
        return net.get_constant(f.get_bit(0));
    if (leaf_sigs.size() == 1) {
        const auto x = truth_table::projection(1, 0);
        return leaf_sigs[0] ^ (f == ~x);
    }
    return std::nullopt;
}

/// Phases 1-2 of a node visit, shared verbatim by both engines (the
/// determinism story depends on them scoring identical cuts): resolve the
/// node's enumerated cuts to live, sorted, deduplicated leaf sets, then
/// evaluate every cut function — batched union-cone traversal or the
/// per-cut legacy path.  Returns the number of active cuts; leaf sets are
/// in pool[0..count), function words in `words`, per-cut validity in
/// `valid`.  `cuts_evaluated` is bumped once per resolved cut.
size_t resolve_and_simulate(const xag& net, std::span<const cut> node_cuts,
                            uint32_t n, cone_simulator& sim, bool batched,
                            std::vector<cone_simulator::leaf_set>& pool,
                            std::vector<uint64_t>& words,
                            std::vector<uint64_t>& chunk_words,
                            std::vector<uint8_t>& valid,
                            uint64_t& cuts_evaluated)
{
    // Leaves replaced earlier (by this round's commits in the sequential
    // engine, by earlier rounds otherwise) are followed to their live
    // equivalents; `pool` is an index-reused scratch: slots keep their
    // capacity across nodes.
    size_t count = 0;
    for (const auto& c : node_cuts) {
        if (c.num_leaves < 2 && c.leaves[0] == n)
            continue; // trivial cut
        if (pool.size() == count)
            pool.emplace_back();
        auto& cut_leaves = pool[count];
        cut_leaves.clear();
        bool leaves_ok = true;
        for (const auto l : c.leaf_span()) {
            const auto live = net.resolve(signal{l, false});
            if (net.is_dead(live.node()) || live.node() == n) {
                leaves_ok = false;
                break;
            }
            if (live.node() != 0)
                cut_leaves.push_back(live.node());
        }
        if (!leaves_ok || cut_leaves.empty())
            continue;
        std::sort(cut_leaves.begin(), cut_leaves.end());
        cut_leaves.erase(std::unique(cut_leaves.begin(), cut_leaves.end()),
                         cut_leaves.end());
        ++cuts_evaluated;
        ++count;
    }
    if (count == 0)
        return 0;
    const std::span<const cone_simulator::leaf_set> active{pool.data(),
                                                           count};

    words.assign(count, 0);
    valid.assign(count, 0);
    if (batched) {
        // Chunked so arbitrarily large per-node cut counts work (the
        // simulator evaluates up to 64 lanes per call).
        for (size_t base = 0; base < count; base += 64) {
            const auto chunk = std::min<size_t>(64, count - base);
            const auto mask = sim.simulate_cuts(
                net, n, active.subspan(base, chunk), chunk_words);
            for (size_t j = 0; j < chunk; ++j) {
                words[base + j] = chunk_words[j];
                valid[base + j] = static_cast<uint8_t>((mask >> j) & 1);
            }
        }
    } else {
        for (size_t i = 0; i < count; ++i) {
            try {
                words[i] = cone_function(net, n, active[i]).word();
                valid[i] = 1;
            } catch (const std::invalid_argument&) {
                // no longer a cut of n
            }
        }
    }
    return count;
}

/// A built, verified, scored candidate.  It holds one network reference —
/// the caller either substitutes it or releases it.
struct scored_candidate {
    signal sig{};
    int64_t gain = 0;
};

/// Commit-side kernel shared by both engines (the determinism story
/// depends on them applying the identical protocol): build the candidate
/// for a support-shrunk function — trivially, or through `make` — measure
/// the actual created cost, verify function and containment against the
/// current network, and score the DAG-aware gain (MFFC savings over the
/// full cut, computed while the candidate's references pin any shared
/// nodes, minus the created cost).  Returns nullopt with every temporary
/// reference released when the build fails or verification rejects.
template <typename Strategy, typename Make>
std::optional<scored_candidate> build_scored_candidate(
    xag& net, cone_simulator& sim, Strategy& strat, Make&& make,
    const truth_table& f, std::span<const signal> leaf_sigs,
    std::span<const uint32_t> support_nodes,
    std::span<const uint32_t> mffc_leaves, uint32_t n, bool batched,
    uint64_t* candidates_built)
{
    const auto cost_before = strat.created_cost();
    std::optional<signal> candidate = trivial_replacement(net, f, leaf_sigs);
    if (!candidate) {
        candidate = make(f, leaf_sigs);
        if (!candidate)
            return std::nullopt;
    }
    const auto created = strat.created_cost() - cost_before;
    if (candidates_built)
        ++*candidates_built;
    net.take_ref(*candidate);
    const bool ok =
        batched ? verify_candidate(net, sim, *candidate, support_nodes, f, n)
                : verify_candidate_legacy(net, *candidate, support_nodes, f,
                                          n);
    if (!ok) {
        net.release_ref(net.resolve(*candidate));
        return std::nullopt;
    }
    const int64_t saved = strat.mffc_cost(n, mffc_leaves);
    return scored_candidate{*candidate,
                            saved - static_cast<int64_t>(created)};
}

/// Incremental-evaluate and commit-verification wiring for one round,
/// derived by generic_round from the maintainer/cache coherence handshake.
/// `cache == nullptr` disables caching entirely; `cache_valid` says the
/// surviving entries may be consulted this round (`dirty` is then the
/// maintainer's fanout closure over everything that changed since they
/// were written).  `verifier`, when set, SAT-checks every replacement
/// cone against its pre-image before the substitute commits.
struct round_env {
    evaluate_cache* cache = nullptr;
    bool cache_valid = false;
    std::span<const uint8_t> dirty;
    sat::cone_verifier* verifier = nullptr;
};

/// The ONE rewrite loop shared by the proposed method and the size
/// baseline.  `Strategy` supplies the candidate builder and the cost model
/// (see mc_strategy / size_strategy below); everything else — leaf
/// resolution, batched cut-function evaluation, verification, MFFC-gated
/// commit — is common.
template <typename Strategy>
void run_rewrite_loop(xag& net, pass_context& ctx, round_stats& stats,
                      bool allow_zero_gain, bool batched, Strategy& strat,
                      const round_env& env)
{
    const obs::trace::trace_span loop_span{"phase.rewrite-loop"};
    const auto& cuts = ctx.cuts();
    auto& sim = ctx.simulator();

    std::vector<cone_simulator::leaf_set> resolved; // leaf sets, per cut
    std::vector<uint64_t> words;                    // batched function words
    std::vector<uint64_t> chunk_words;
    std::vector<uint8_t> valid;                     // per-cut validity
    std::vector<signal> leaf_sigs;
    std::vector<uint32_t> leaf_nodes;
    std::vector<uint32_t> best_leaves; // winning cut's full leaf set

    // The cacheable outcome of a sequential visit is one bit — "found no
    // improvement" — because improvements commit immediately and kill the
    // node (evaluate_cache::no_improvement).
    auto* cache = env.cache;
    if (cache != nullptr && cache->no_improvement.size() < net.size())
        cache->no_improvement.resize(net.size(), 0);

    // Within-round context overlay.  The maintainer's dirty set is frozen
    // at refresh time and cannot see this round's own commits, but this
    // engine evaluates against the live network — so a node is only
    // skipped when additionally nothing committed *this round* reaches
    // its cone.  After every visit the journal suffix is consumed under
    // the maintainer's seed rule (live journaled node plus fanins; stored
    // fanins of pre-existing nodes that died; nothing for nodes spliced
    // and released inside the round — net-zero on every neighbour) and
    // each seed's transitive fanout is marked through the explicit fanout
    // lists.  A disarmed or overflowed journal degrades the overlay to
    // all-dirty: skips stop, correctness keeps (docs/hot-path.md, "The
    // evaluate dirty-set contract").
    const uint32_t round_start_size = static_cast<uint32_t>(net.size());
    bool overlay_all =
        cache == nullptr || !net.changes().armed || net.changes().overflowed;
    std::vector<uint8_t> ctx_dirty;
    if (!overlay_all)
        ctx_dirty.assign(net.size(), 0);
    size_t journal_consumed = overlay_all ? 0 : net.changes().nodes.size();
    std::vector<uint32_t> tfo_stack;
    const auto seed_tfo = [&](uint32_t x) {
        if (x >= ctx_dirty.size() || ctx_dirty[x] != 0)
            return;
        ctx_dirty[x] = 1;
        tfo_stack.push_back(x);
        while (!tfo_stack.empty()) {
            const auto cur = tfo_stack.back();
            tfo_stack.pop_back();
            for (const auto parent : net.fanouts(cur))
                if (parent < ctx_dirty.size() && ctx_dirty[parent] == 0) {
                    ctx_dirty[parent] = 1;
                    tfo_stack.push_back(parent);
                }
        }
    };

    for (const auto n : net.topological_order()) {
        // Per-node visit = this engine's commit boundary: every earlier
        // substitute() is complete and function-preserving, so stopping
        // here leaves a consistent, equivalent network.
        if (ctx.token.stop_requested()) {
            stats.status = ctx.token.stop_reason();
            if (stats.status == outcome::ok)
                stats.status = outcome::cancelled;
            break;
        }
        if (!net.is_gate(n) || net.is_dead(n))
            continue;

        // ---- skip rule: the previous visit found no improvement, and
        // neither the refresh-level dirty set nor the within-round overlay
        // has reached n's cone since.  Skipped visits have no side effects
        // (candidate splicing is net-zero on refs, strash and fanouts), so
        // the resulting network is structurally identical to the oracle's.
        if (env.cache_valid && !overlay_all && n < env.dirty.size() &&
            env.dirty[n] == 0 && ctx_dirty[n] == 0 &&
            cache->no_improvement[n] != 0) {
            ++stats.nodes_clean;
            continue;
        }
        ++stats.nodes_evaluated;

        // ---- phases 1-2: resolve leaves, evaluate all cut functions -----
        // No candidate has been spliced yet for this node, so every
        // existing cone node keeps its value throughout phase 3: computing
        // the functions up front is exactly equivalent to the per-cut
        // re-simulation it replaces.
        const auto num_resolved = resolve_and_simulate(
            net, cuts[n], n, sim, batched, resolved, words, chunk_words,
            valid, stats.cuts_evaluated);
        if (num_resolved == 0) {
            if (cache != nullptr)
                cache->no_improvement[n] = 1;
            continue;
        }
        const std::span<const cone_simulator::leaf_set> active{
            resolved.data(), num_resolved};

        // ---- phase 3: candidate construction and MFFC-gated commit ------
        signal best{};
        int64_t best_gain = allow_zero_gain ? -1 : 0;
        bool have_best = false;

        for (size_t i = 0; i < active.size(); ++i) {
            if (!valid[i])
                continue;
            const auto& cut_leaves = active[i];
            const auto k = static_cast<uint32_t>(cut_leaves.size());
            const truth_table tt{k, words[i]};

            const auto view = shrink_to_support(tt);
            leaf_sigs.clear();
            leaf_nodes.clear();
            for (const auto idx : view.support) {
                leaf_nodes.push_back(cut_leaves[idx]);
                leaf_sigs.push_back(signal{cut_leaves[idx], false});
            }

            const auto scored = build_scored_candidate(
                net, sim, strat,
                [&](const truth_table& f, std::span<const signal> ls) {
                    return strat.make_candidate(f, ls);
                },
                view.function, leaf_sigs, leaf_nodes, cut_leaves, n, batched,
                &stats.candidates_built);
            if (!scored)
                continue;

            const bool structurally_new = scored->sig.node() != n;
            if (structurally_new && scored->gain > best_gain) {
                if (have_best)
                    net.release_ref(net.resolve(best));
                best = scored->sig;
                best_gain = scored->gain;
                have_best = true;
                best_leaves.assign(cut_leaves.begin(), cut_leaves.end());
            } else {
                net.release_ref(net.resolve(scored->sig));
            }
        }

        bool rejected = false;
        if (have_best && env.verifier != nullptr &&
            env.verifier->verify(net, n, best, best_leaves, 0, ctx.token) ==
                sat::equivalence_result::not_equivalent) {
            // The simulation proof and the SAT proof disagree: keep the
            // network untouched, and leave the node uncached so it is
            // re-examined next round.
            net.release_ref(net.resolve(best));
            have_best = false;
            rejected = true;
        }
        if (have_best) {
            net.substitute(n, best);
            net.release_ref(net.resolve(best));
            ++stats.replacements;
        } else if (cache != nullptr && !rejected) {
            cache->no_improvement[n] = 1;
        }

        // ---- consume the journal suffix this visit appended.
        if (!overlay_all) {
            if (!net.changes().armed || net.changes().overflowed) {
                overlay_all = true;
            } else {
                const auto& journal = net.changes().nodes;
                if (journal.size() > journal_consumed) {
                    if (ctx_dirty.size() < net.size())
                        ctx_dirty.resize(net.size(), 0);
                    for (size_t j = journal_consumed; j < journal.size();
                         ++j) {
                        const auto id = journal[j];
                        if (!net.is_dead(id)) {
                            seed_tfo(id);
                            if (net.is_gate(id)) {
                                seed_tfo(net.fanin0(id).node());
                                seed_tfo(net.fanin1(id).node());
                            }
                        } else if (id < round_start_size &&
                                   net.is_gate(id)) {
                            seed_tfo(net.fanin0(id).node());
                            seed_tfo(net.fanin1(id).node());
                        }
                        // else: spliced and released inside the round.
                    }
                    journal_consumed = journal.size();
                }
            }
        }
    }
}

// ------------------------------------------------ two-phase parallel round
//
// The deterministic engine behind `num_threads >= 1` (docs/parallel.md):
//
//  * EVALUATE (parallel): every gate node is scored independently against
//    the network as it stands at round start — resolve its cuts, batch-
//    simulate their functions on the worker's own cone_simulator, classify
//    through the worker's cache shard, look the class up in the (striped,
//    once-per-class) database, and record the best candidate by estimated
//    gain (MFFC savings minus the database entry's cost).  Nothing touches
//    the network, so the per-node result is a pure function of (network,
//    cut sets, node) and the winner array is identical for any thread
//    count and any work-stealing schedule.
//
//  * COMMIT (sequential, ascending node order): re-validate each winner
//    against the network as modified by the commits before it — the node
//    and every cut leaf must still be live and unmoved — then build the
//    real candidate, verify its function and containment, and commit when
//    the exact gain (actual created cost, current MFFC) clears the
//    threshold.  Winners invalidated by an earlier commit are simply
//    dropped; the next round re-enumerates and re-scores them (the
//    "deferred to the next round" half of the contract).
//
// Unlike the in-place loop, the evaluate phase never sees this round's own
// rewrites, so per-round replacement counts differ between the engines —
// but both converge, and the parallel engine's output depends only on the
// input network and the parameters, never on the thread count.

// (eval_winner lives in pass.h now: it doubles as the evaluate cache's
// payload for the incremental-evaluate path.)

template <typename Strategy>
void evaluate_node(const xag& net, const cut_sets& cuts, Strategy& strat,
                   pass_scratch& sc, bool allow_zero_gain, bool batched,
                   uint32_t n, eval_winner& winner)
{
    // ---- phases 1-2, shared with the in-place loop (resolution is a
    // formality here — the network is frozen during the phase — but the
    // filtering must stay identical so both engines score the same cuts).
    const auto num_resolved = resolve_and_simulate(
        net, cuts[n], n, sc.simulator, batched, sc.resolved, sc.words,
        sc.chunk_words, sc.valid, sc.cuts_evaluated);
    if (num_resolved == 0)
        return;
    const std::span<const cone_simulator::leaf_set> active{
        sc.resolved.data(), num_resolved};

    // ---- score: estimated gain = MFFC savings - database entry cost.
    int64_t best_gain = allow_zero_gain ? -1 : 0;
    for (size_t i = 0; i < active.size(); ++i) {
        if (!sc.valid[i])
            continue;
        const auto& cut_leaves = active[i];
        const auto k = static_cast<uint32_t>(cut_leaves.size());
        const truth_table tt{k, sc.words[i]};
        const auto view = shrink_to_support(tt);

        uint64_t created = 0;
        if (view.support.size() >= 2) {
            bool ok = false;
            created = strat.estimated_cost(view.function, sc, ok);
            if (!ok)
                continue;
        }
        ++sc.candidates_built;
        const int64_t saved = strat.mffc_cost(n, cut_leaves);
        const int64_t gain = saved - static_cast<int64_t>(created);
        if (gain <= best_gain)
            continue;
        best_gain = gain;
        winner.node = n;
        winner.function = view.function;
        winner.num_cut_leaves = static_cast<uint8_t>(cut_leaves.size());
        std::copy(cut_leaves.begin(), cut_leaves.end(),
                  winner.cut_leaves.begin());
        winner.num_support = static_cast<uint8_t>(view.support.size());
        for (size_t s = 0; s < view.support.size(); ++s)
            winner.support[s] = static_cast<uint8_t>(view.support[s]);
        winner.valid = true;
    }
}

template <typename Strategy>
void run_two_phase_round(xag& net, pass_context& ctx, round_stats& stats,
                         bool allow_zero_gain, bool batched,
                         uint32_t num_threads, Strategy& strat,
                         const round_env& env)
{
    // Gate nodes in topological order: the evaluate phase's index space
    // and the commit phase's application order.
    std::vector<uint32_t> nodes;
    for (const auto n : net.topological_order())
        if (net.is_gate(n) && !net.is_dead(n))
            nodes.push_back(n);

    auto& pool = ctx.pool(num_threads);
    const auto workers = pool.num_workers();
    uint64_t shard_hits0 = 0, shard_misses0 = 0;
    for (uint32_t w = 0; w < workers; ++w) {
        auto& sc = ctx.scratch(w); // created before the team needs it
        sc.cuts_evaluated = 0;
        sc.classify_failures = 0;
        sc.candidates_built = 0;
        const auto [h, m] = strat.scratch_traffic(sc);
        shard_hits0 += h;
        shard_misses0 += m;
    }

    // ---- phase 1: parallel evaluate over the frozen network — but only
    // for nodes the maintainer's dirty set reaches.  A winner is a pure
    // function of (network, cut sets, node), so a clean node's cached
    // winner from an earlier round is byte-equal to what re-evaluating it
    // would produce, at any thread count.
    auto* cache = env.cache;
    std::vector<eval_winner> winners(nodes.size());
    std::vector<uint32_t> fresh; // indices into `nodes` needing evaluation
    fresh.reserve(nodes.size());
    {
        obs::trace::trace_span eval_span{"phase.evaluate"};
        for (size_t idx = 0; idx < nodes.size(); ++idx) {
            const auto n = nodes[idx];
            if (env.cache_valid && n < env.dirty.size() &&
                env.dirty[n] == 0 && n < cache->has_entry.size() &&
                cache->has_entry[n] != 0) {
                winners[idx] = cache->winners[n];
                ++stats.nodes_clean;
            } else {
                fresh.push_back(static_cast<uint32_t>(idx));
            }
        }
        stats.nodes_evaluated += fresh.size();
        eval_span.set_arg(fresh.size());

        const auto& cuts = ctx.cuts();
        const auto& token = ctx.token;
        pool.parallel_for(0, fresh.size(), [&](size_t i, uint32_t worker) {
            if (token.stop_possible() && token.stop_requested())
                return; // leave the winner invalid; the round is discarded
            const auto idx = fresh[i];
            evaluate_node(net, cuts, strat, ctx.scratch(worker),
                          allow_zero_gain, batched, nodes[idx],
                          winners[idx]);
            winners[idx].worker = worker;
        });
    }
    const auto& token = ctx.token;

    for (uint32_t w = 0; w < workers; ++w) {
        auto& sc = ctx.scratch(w);
        stats.cuts_evaluated += sc.cuts_evaluated;
        stats.classify_failures += sc.classify_failures;
        stats.candidates_built += sc.candidates_built;
    }

    // A stop during evaluate discards the whole round before anything is
    // committed: a partially-scored winner array would make the committed
    // prefix depend on timing, and the network has not been touched yet —
    // dropping the round keeps uninterrupted runs bit-identical and the
    // interrupted one consistent.  The cache is poisoned by the same
    // partial scoring, so it resets too.
    if (token.stop_requested()) {
        if (cache != nullptr)
            cache->reset();
        stats.status = token.stop_reason();
        if (stats.status == outcome::ok)
            stats.status = outcome::cancelled;
        return;
    }

    // Store the freshly scored winners back by node id; the cache now
    // reflects the refresh this round started from (generic_round stamps
    // the serial after the engine returns).
    if (cache != nullptr) {
        if (cache->winners.size() < net.size()) {
            cache->winners.resize(net.size());
            cache->has_entry.resize(net.size(), 0);
        }
        for (const auto idx : fresh) {
            cache->winners[nodes[idx]] = winners[idx];
            cache->has_entry[nodes[idx]] = 1;
        }
    }

    // ---- phase 2: sequential commit in node order.
    const obs::trace::trace_span commit_span{"phase.commit"};
    auto& sim = ctx.simulator();
    std::vector<signal> leaf_sigs;
    std::vector<uint32_t> support_nodes;
    std::vector<uint32_t> full_leaves;
    for (const auto& w : winners) {
        // Between winners every commit is complete; stopping here keeps
        // the applied prefix (already equivalence-preserving) and drops
        // the rest.
        if (token.stop_possible() && token.stop_requested()) {
            stats.status = token.stop_reason();
            if (stats.status == outcome::ok)
                stats.status = outcome::cancelled;
            break;
        }
        if (!w.valid)
            continue;
        const auto n = w.node;
        if (net.is_dead(n))
            continue; // consumed by an earlier commit — next round's problem

        // Every leaf of the scored cut must still be exactly the node the
        // evaluation saw; a leaf merged or freed by an earlier commit
        // invalidates both the function and the MFFC bound.
        bool leaves_ok = true;
        full_leaves.clear();
        for (uint8_t k = 0; k < w.num_cut_leaves; ++k) {
            const auto l = w.cut_leaves[k];
            if (net.is_dead(l) ||
                net.resolve(signal{l, false}) != signal{l, false}) {
                leaves_ok = false;
                break;
            }
            full_leaves.push_back(l);
        }
        if (!leaves_ok)
            continue;
        leaf_sigs.clear();
        support_nodes.clear();
        for (uint8_t s = 0; s < w.num_support; ++s) {
            const auto l = w.cut_leaves[w.support[s]];
            support_nodes.push_back(l);
            leaf_sigs.push_back(signal{l, false});
        }

        // Exact gain against the *current* network: actual created cost
        // (structural hashing may have shared most of the candidate) and
        // the MFFC as it stands after the commits above.  Classification
        // goes through the scoring worker's shard, where it is a warm hit.
        auto& shard = ctx.scratch(w.worker);
        const auto scored = build_scored_candidate(
            net, sim, strat,
            [&](const truth_table& f, std::span<const signal> ls) {
                return strat.make_candidate_cached(f, ls, shard);
            },
            w.function, leaf_sigs, support_nodes, full_leaves, n, batched,
            nullptr);
        if (!scored)
            continue;
        bool commit = scored->sig.node() != n &&
                      scored->gain > (allow_zero_gain ? -1 : 0);
        if (commit && env.verifier != nullptr &&
            env.verifier->verify(net, n, scored->sig, full_leaves, 0,
                                 token) ==
                sat::equivalence_result::not_equivalent)
            commit = false; // simulation and SAT disagree: keep the node
        if (commit) {
            net.substitute(n, scored->sig);
            net.release_ref(net.resolve(scored->sig));
            ++stats.replacements;
        } else {
            net.release_ref(net.resolve(scored->sig));
        }
    }

    // Shard-cache traffic for this round's stats, including the commit
    // phase's (warm) lookups.
    uint64_t shard_hits1 = 0, shard_misses1 = 0;
    for (uint32_t w = 0; w < workers; ++w) {
        const auto [h, m] = strat.scratch_traffic(ctx.scratch(w));
        shard_hits1 += h;
        shard_misses1 += m;
    }
    stats.canon_cache_hits += shard_hits1 - shard_hits0;
    stats.canon_cache_misses += shard_misses1 - shard_misses0;
}

/// Round boilerplate shared by both rewrite flavors: network shape and
/// cache-traffic deltas, stage timing, cut refresh into the context's
/// arena (incremental across rounds by default — only the previous
/// round's dirty region is re-enumerated, level-parallel on the worker
/// pool when the two-phase engine is active), then the shared loop above.
/// `make_strategy(stats)` builds the flavor's strategy bound to this
/// round's stats object.
template <typename StrategyFactory>
round_stats generic_round(xag& network, pass_context& ctx, uint32_t cut_size,
                          uint32_t cut_limit, bool allow_zero_gain,
                          bool batched, uint32_t num_threads,
                          bool incremental_cuts, bool incremental_evaluate,
                          bool sat_verify, StrategyFactory&& make_strategy)
{
    const auto start = std::chrono::steady_clock::now();
    obs::trace::trace_span round_span{"round"};
    round_stats stats;
    auto strat = make_strategy(stats);
    using strategy_type = std::remove_reference_t<decltype(strat)>;
    stats.ands_before = network.num_ands();
    stats.xors_before = network.num_xors();
    const auto [cache_hits0, cache_misses0] = strat.cache_traffic();
    const auto [db_hits0, db_misses0] = strat.db_traffic();
    uint64_t verify_checks0 = 0, verify_conflicts0 = 0, verify_warm0 = 0;
    if (sat_verify) {
        const auto& v = ctx.commit_verifier();
        verify_checks0 = v.checks();
        verify_conflicts0 = v.conflicts();
        verify_warm0 = v.warm_starts();
    }

    // Exceptions from the layers below — cancelled_error unwinding out of
    // a cut sweep or a database build, an injected or organic fault from a
    // worker task — are converted to a typed round status right here, the
    // round boundary.  In every case the network itself is consistent:
    // substitutions are atomic and function-preserving, and the cut
    // maintainer invalidates itself when a sweep dies half-way (the next
    // round simply pays for a full rebuild).
    auto cuts_done = start;
    try {
        auto& maint = ctx.cut_maintenance();
        {
            const obs::trace::trace_span refresh_span{"phase.cut-refresh"};
            maint.refresh(
                network, ctx.cuts(),
                {.cut_size = cut_size, .cut_limit = cut_limit,
                 .incremental = incremental_cuts},
                &stats.cut_stats,
                num_threads >= 1 ? &ctx.pool(num_threads) : nullptr,
                ctx.token);
        }
        cuts_done = std::chrono::steady_clock::now();
        stats.cut_seconds =
            std::chrono::duration<double>(cuts_done - start).count();

        // ---- incremental-evaluate handshake (docs/hot-path.md).  The
        // cache is consulted iff it was populated against this exact
        // network at the previous refresh serial, the refresh chain is
        // unbroken (this refresh was incremental, so its dirty set covers
        // the whole window since the entries were written), and every
        // parameter that shapes an evaluation matches.  Anything else
        // resets the cache; it repopulates this round and is usable the
        // next.  The engine tag matters because the two engines cache
        // different payloads; the thread count does not — winners are
        // thread-count independent.
        round_env env;
        if (sat_verify)
            env.verifier = &ctx.commit_verifier();
        if (incremental_evaluate && incremental_cuts) {
            auto& cache = ctx.eval_cache();
            env.cache = &cache;
            const uint8_t engine = num_threads >= 1 ? 1 : 0;
            env.cache_valid =
                cache.net == &network && cache.cut_size == cut_size &&
                cache.cut_limit == cut_limit &&
                cache.allow_zero_gain == allow_zero_gain &&
                cache.batched == batched &&
                cache.strategy == strategy_type::kind &&
                cache.engine == engine &&
                maint.last_refresh_incremental() &&
                cache.serial + 1 == maint.refresh_serial();
            if (env.cache_valid) {
                env.dirty = maint.evaluate_dirty();
            } else {
                cache.reset();
                cache.net = &network;
                cache.cut_size = cut_size;
                cache.cut_limit = cut_limit;
                cache.allow_zero_gain = allow_zero_gain;
                cache.batched = batched;
                cache.strategy = strategy_type::kind;
                cache.engine = engine;
            }
        }

        if (num_threads >= 1)
            run_two_phase_round(network, ctx, stats, allow_zero_gain,
                                batched, num_threads, strat, env);
        else
            run_rewrite_loop(network, ctx, stats, allow_zero_gain, batched,
                             strat, env);

        if (env.cache != nullptr)
            env.cache->serial = maint.refresh_serial();
    } catch (const cancelled_error& e) {
        stats.status = e.reason();
        ctx.cut_maintenance().invalidate();
        ctx.eval_cache().reset();
    } catch (const std::exception&) {
        stats.status = outcome::resource_exhausted;
        ctx.cut_maintenance().invalidate();
        ctx.eval_cache().reset();
    }

    stats.ands_after = network.num_ands();
    stats.xors_after = network.num_xors();
    const auto end = std::chrono::steady_clock::now();
    stats.rewrite_seconds =
        std::chrono::duration<double>(end - cuts_done).count();
    stats.seconds = std::chrono::duration<double>(end - start).count();
    const auto [cache_hits1, cache_misses1] = strat.cache_traffic();
    const auto [db_hits1, db_misses1] = strat.db_traffic();
    // += : the two-phase engine has already added its per-worker shard
    // traffic; the shared-cache delta below covers the commit phase and
    // the whole of the sequential engine.
    stats.canon_cache_hits += cache_hits1 - cache_hits0;
    stats.canon_cache_misses += cache_misses1 - cache_misses0;
    stats.db_hits = db_hits1 - db_hits0;
    stats.db_misses = db_misses1 - db_misses0;
    if (sat_verify) {
        const auto& v = ctx.commit_verifier();
        stats.sat_verifications = v.checks() - verify_checks0;
        stats.sat_conflicts = v.conflicts() - verify_conflicts0;
        stats.sat_warm_starts = v.warm_starts() - verify_warm0;
    }

    static const auto rounds_metric = obs::register_metric("rewrite.rounds");
    static const auto replacements_metric =
        obs::register_metric("rewrite.replacements");
    static const auto cuts_metric =
        obs::register_metric("rewrite.cuts_evaluated");
    static const auto evaluated_metric =
        obs::register_metric("rewrite.nodes_evaluated");
    static const auto clean_metric =
        obs::register_metric("rewrite.nodes_clean");
    rounds_metric.add();
    replacements_metric.add(stats.replacements);
    cuts_metric.add(stats.cuts_evaluated);
    evaluated_metric.add(stats.nodes_evaluated);
    clean_metric.add(stats.nodes_clean);
    round_span.set_arg(stats.replacements);
    // A round cut short (deadline, cancellation, fault) leaves a marker at
    // the exact spot in the timeline; to_string yields a literal, which is
    // what the trace record stores.
    if (stats.status != outcome::ok)
        obs::trace::instant(to_string(stats.status));
    return stats;
}

/// Proposed method: affine classification + AND-minimal database, AND-count
/// cost model.
struct mc_strategy {
    static constexpr uint8_t kind = 0; ///< evaluate_cache::strategy tag
    xag& net;
    mc_database& db;
    classification_cache& cache;
    round_stats& stats;
    cancellation_token token;

    std::optional<signal> make_candidate(const truth_table& f,
                                         std::span<const signal> leaves)
    {
        const auto& cls = cache.classify(f);
        if (!cls.success) {
            ++stats.classify_failures;
            return std::nullopt;
        }
        const auto& entry = db.lookup_or_build(cls.representative, token);
        return splice_affine(net, cls.transform, leaves, entry.circuit);
    }
    /// Commit-phase builder (two-phase engine): identical to
    /// make_candidate but classifies through the scoring worker's shard,
    /// where the evaluate phase already paid for the search.  Failures
    /// are not re-counted — the evaluate phase counted them.
    std::optional<signal> make_candidate_cached(const truth_table& f,
                                                std::span<const signal>
                                                    leaves,
                                                pass_scratch& sc)
    {
        const auto& cls = sc.classification.classify(f);
        if (!cls.success)
            return std::nullopt;
        const auto& entry = db.lookup_or_build(cls.representative, token);
        return splice_affine(net, cls.transform, leaves, entry.circuit);
    }
    /// Evaluate-phase cost bound (two-phase engine): the database entry's
    /// AND count.  splice_affine adds only XOR gates around the entry, so
    /// this equals the real created cost up to structural-hashing savings
    /// (the commit phase re-measures exactly).  Thread-safe: touches only
    /// the worker's scratch and the striped database.
    uint64_t estimated_cost(const truth_table& f, pass_scratch& sc,
                            bool& ok) const
    {
        const auto& cls = sc.classification.classify(f);
        if (!cls.success) {
            ++sc.classify_failures;
            ok = false;
            return 0;
        }
        ok = true;
        return db.lookup_or_build(cls.representative, token).num_ands;
    }
    int64_t mffc_cost(uint32_t root, std::span<const uint32_t> leaves) const
    {
        return mffc_and_count(net, root, leaves);
    }
    uint64_t created_cost() const { return net.num_ands(); }
    std::pair<uint64_t, uint64_t> cache_traffic() const
    {
        return {cache.hits(), cache.misses()};
    }
    std::pair<uint64_t, uint64_t> scratch_traffic(const pass_scratch& sc) const
    {
        return {sc.classification.hits(), sc.classification.misses()};
    }
    std::pair<uint64_t, uint64_t> db_traffic() const
    {
        return {db.hits(), db.misses()};
    }
};

/// Size baseline: NPN canonization + gate-minimal database, unit cost for
/// AND and XOR.
struct size_strategy {
    static constexpr uint8_t kind = 1; ///< evaluate_cache::strategy tag
    xag& net;
    size_database& db;
    npn_cache& cache;
    round_stats& stats;
    cancellation_token token;

    std::optional<signal> make_candidate(const truth_table& f,
                                         std::span<const signal> leaves)
    {
        const auto& canon = cache.canonize(f);
        const auto& entry = db.lookup_or_build(canon.representative, token);
        return splice_npn(net, canon.transform, leaves, entry.circuit);
    }
    /// Commit-phase builder through the scoring worker's shard; see
    /// mc_strategy::make_candidate_cached.
    std::optional<signal> make_candidate_cached(const truth_table& f,
                                                std::span<const signal>
                                                    leaves,
                                                pass_scratch& sc)
    {
        const auto& canon = sc.npn.canonize(f);
        const auto& entry = db.lookup_or_build(canon.representative, token);
        return splice_npn(net, canon.transform, leaves, entry.circuit);
    }
    /// Evaluate-phase cost bound: the entry's gate count (splice_npn adds
    /// no gates — negations ride on the edges).  See mc_strategy.
    uint64_t estimated_cost(const truth_table& f, pass_scratch& sc,
                            bool& ok) const
    {
        const auto& canon = sc.npn.canonize(f);
        ok = true;
        return db.lookup_or_build(canon.representative, token).num_gates;
    }
    int64_t mffc_cost(uint32_t root, std::span<const uint32_t> leaves) const
    {
        return mffc_gate_count(net, root, leaves);
    }
    uint64_t created_cost() const { return net.num_gates(); }
    std::pair<uint64_t, uint64_t> cache_traffic() const
    {
        return {cache.hits(), cache.misses()};
    }
    std::pair<uint64_t, uint64_t> scratch_traffic(const pass_scratch& sc) const
    {
        return {sc.npn.hits(), sc.npn.misses()};
    }
    std::pair<uint64_t, uint64_t> db_traffic() const
    {
        return {db.hits(), db.misses()};
    }
};

/// The ONE convergence driver: repeat `round` until the cost (AND count or
/// gate count) stops improving, or `max_rounds`.
template <typename Round>
convergence_stats run_until_convergence(xag& network, Round&& round,
                                        uint32_t max_rounds, bool count_ands)
{
    convergence_stats result;
    for (uint32_t i = 0; i < max_rounds; ++i) {
        obs::set_progress_round(i + 1);
        const auto stats = round(network);
        result.rounds.push_back(stats);
        if (stats.status != outcome::ok) {
            // The round was cut short — its counters do not mean "no more
            // gains", so this is a stop, not convergence.
            result.status = stats.status;
            break;
        }
        const auto before = count_ands
                                ? stats.ands_before
                                : stats.ands_before + stats.xors_before;
        const auto after = count_ands ? stats.ands_after
                                      : stats.ands_after + stats.xors_after;
        if (after >= before) {
            result.converged = true;
            break;
        }
    }
    return result;
}

pass_stats finish_pass(pass_context& ctx, pass_stats ps, const xag& network,
                       std::chrono::steady_clock::time_point start)
{
    ps.after = stats_of(network);
    ps.seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    ctx.history.push_back(ps);
    return ps;
}

} // namespace

// ---------------------------------------------------------- round engine

round_stats mc_rewrite_round(xag& network, pass_context& ctx,
                             const rewrite_params& params)
{
    return generic_round(network, ctx, params.cut_size, params.cut_limit,
                         params.allow_zero_gain, params.batched_simulation,
                         params.num_threads, params.incremental_cuts,
                         params.incremental_evaluate,
                         params.sat_verify_commits,
                         [&](round_stats& stats) {
                             return mc_strategy{network, ctx.mc_db(),
                                                ctx.classification(), stats,
                                                ctx.token};
                         });
}

round_stats size_rewrite_round(xag& network, pass_context& ctx,
                               const size_rewrite_params& params)
{
    return generic_round(network, ctx, params.cut_size, params.cut_limit,
                         params.allow_zero_gain, params.batched_simulation,
                         params.num_threads, params.incremental_cuts,
                         params.incremental_evaluate,
                         params.sat_verify_commits,
                         [&](round_stats& stats) {
                             return size_strategy{network, ctx.size_db(),
                                                  ctx.npn(), stats,
                                                  ctx.token};
                         });
}

// ----------------------------------------------------------------- passes

pass_stats mc_rewrite_pass::run(xag& network, pass_context& ctx) const
{
    const auto start = std::chrono::steady_clock::now();
    pass_stats ps;
    ps.pass_name = name();
    ps.before = stats_of(network);
    ps.num_threads = std::max(1u, params_.num_threads);
    auto& db = ctx.mc_db();
    const auto db_hits0 = db.hits();
    const auto db_misses0 = db.misses();
    const auto conv = run_until_convergence(
        network,
        [&](xag& net) { return mc_rewrite_round(net, ctx, params_); },
        max_rounds_, true);
    ps.rounds = conv.rounds;
    ps.converged = conv.converged;
    ps.status = conv.status;
    ps.db_hits = db.hits() - db_hits0;
    ps.db_misses = db.misses() - db_misses0;
    ps.db_entries = db.size();
    ps.db_exact = db.exact_entries();
    ps.db_heuristic = db.heuristic_entries();
    return finish_pass(ctx, std::move(ps), network, start);
}

pass_stats size_rewrite_pass::run(xag& network, pass_context& ctx) const
{
    const auto start = std::chrono::steady_clock::now();
    pass_stats ps;
    ps.pass_name = name();
    ps.before = stats_of(network);
    ps.num_threads = std::max(1u, params_.num_threads);
    auto& db = ctx.size_db();
    const auto db_hits0 = db.hits();
    const auto db_misses0 = db.misses();
    const auto conv = run_until_convergence(
        network,
        [&](xag& net) { return size_rewrite_round(net, ctx, params_); },
        max_rounds_, false);
    ps.rounds = conv.rounds;
    ps.converged = conv.converged;
    ps.status = conv.status;
    ps.db_hits = db.hits() - db_hits0;
    ps.db_misses = db.misses() - db_misses0;
    ps.db_entries = db.size();
    return finish_pass(ctx, std::move(ps), network, start);
}

pass_stats xor_resynthesis_pass::run(xag& network, pass_context& ctx) const
{
    const auto start = std::chrono::steady_clock::now();
    pass_stats ps;
    ps.pass_name = name();
    ps.before = stats_of(network);
    xor_resynthesis_params xp;
    xp.token = ctx.token;
    if (num_threads_ >= 1) {
        xp.pool = &ctx.pool(num_threads_);
        ps.num_threads = num_threads_;
    }
    const auto stats = xor_resynthesis(network, xp);
    ps.xor_blocks = stats.blocks;
    ps.xor_pairs_extracted = stats.pairs_extracted;
    ps.status = stats.status;
    ps.converged = stats.status == outcome::ok;
    return finish_pass(ctx, std::move(ps), network, start);
}

pass_stats cleanup_pass::run(xag& network, pass_context& ctx) const
{
    const auto start = std::chrono::steady_clock::now();
    pass_stats ps;
    ps.pass_name = name();
    ps.before = stats_of(network);
    network = cleanup(network);
    ps.converged = true;
    return finish_pass(ctx, std::move(ps), network, start);
}

} // namespace mcx
