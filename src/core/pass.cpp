#include "core/pass.h"

#include "core/mffc.h"
#include "core/xor_resynthesis.h"
#include "tt/operations.h"
#include "xag/cleanup.h"
#include "xag/simulate.h"

#include <chrono>
#include <optional>
#include <unordered_map>
#include <utility>

namespace mcx {

// ------------------------------------------------------- context accessors

mc_database& pass_context::mc_db()
{
    if (external_mc_db_)
        return *external_mc_db_;
    if (!mc_db_)
        mc_db_ = std::make_unique<mc_database>(params_.mc_db);
    return *mc_db_;
}

size_database& pass_context::size_db()
{
    if (external_size_db_)
        return *external_size_db_;
    if (!size_db_)
        size_db_ = std::make_unique<size_database>(params_.size_db);
    return *size_db_;
}

classification_cache& pass_context::classification()
{
    if (external_cls_)
        return *external_cls_;
    if (!cls_cache_)
        cls_cache_ = std::make_unique<classification_cache>(
            classification_params{
                .iteration_limit = params_.classification_iteration_limit,
                .word_parallel = params_.classification_word_parallel});
    return *cls_cache_;
}

npn_cache& pass_context::npn()
{
    if (external_npn_)
        return *external_npn_;
    if (!npn_cache_)
        npn_cache_ = std::make_unique<npn_cache>();
    return *npn_cache_;
}

namespace {

/// Splice the representative circuit into `dst`, mirroring
/// affine_transform::apply: input i of the representative reads the parity
/// of the leaves selected by column i of M^T plus c_i; the output adds the
/// v-masked leaf parity and the optional complement.  Only XOR gates and
/// inverters are created around the representative — AND count is exactly
/// the database entry's (modulo structural hashing savings).
signal splice_affine(xag& dst, const affine_transform& t,
                     std::span<const signal> leaves, const xag& repr_circuit)
{
    std::vector<signal> repr_inputs(t.num_vars);
    for (uint32_t i = 0; i < t.num_vars; ++i) {
        auto acc = dst.get_constant(((t.c >> i) & 1) != 0);
        for (uint32_t k = 0; k < t.num_vars; ++k)
            if ((t.mt_column(k) >> i) & 1)
                acc = dst.create_xor(acc, leaves[k]);
        repr_inputs[i] = acc;
    }
    auto out = insert_network(dst, repr_circuit, repr_inputs)[0];
    for (uint32_t k = 0; k < t.num_vars; ++k)
        if ((t.v >> k) & 1)
            out = dst.create_xor(out, leaves[k]);
    return out ^ t.output_complement;
}

/// Splice for the NPN baseline: permutation, input and output complements
/// are all free on XAG edges.
signal splice_npn(xag& dst, const npn_transform& t,
                  std::span<const signal> leaves, const xag& repr_circuit)
{
    std::vector<signal> repr_inputs(t.num_vars);
    for (uint32_t i = 0; i < t.num_vars; ++i)
        repr_inputs[i] =
            leaves[t.perm[i]] ^ (((t.input_negation >> i) & 1) != 0);
    const auto out = insert_network(dst, repr_circuit, repr_inputs)[0];
    return out ^ t.output_negation;
}

/// Walk the candidate cone down to `leaves`; verify the computed function
/// and that `forbidden` (the rewrite root) is not part of the cone.  The
/// seed-faithful per-cone implementation, used when batched_simulation is
/// off (A/B reference).
bool verify_candidate_legacy(const xag& net, signal candidate,
                             std::span<const uint32_t> leaves,
                             const truth_table& expected, uint32_t forbidden)
{
    // Containment check by DFS.
    std::vector<uint32_t> stack{candidate.node()};
    std::unordered_map<uint32_t, uint8_t> visited;
    for (const auto l : leaves)
        visited.emplace(l, 1);
    while (!stack.empty()) {
        const auto n = stack.back();
        stack.pop_back();
        if (!visited.emplace(n, 1).second)
            continue;
        if (n == forbidden)
            return false;
        if (!net.is_gate(n))
            continue;
        stack.push_back(net.fanin0(n).node());
        stack.push_back(net.fanin1(n).node());
    }
    try {
        const auto tt = cone_function(net, candidate.node(), leaves);
        return (candidate.complemented() ? ~tt : tt) == expected;
    } catch (const std::invalid_argument&) {
        return false;
    }
}

/// Batched-path verification: one epoch-stamped traversal computes the
/// candidate's function word and performs the containment check at once.
bool verify_candidate(const xag& net, cone_simulator& sim, signal candidate,
                      std::span<const uint32_t> leaves,
                      const truth_table& expected, uint32_t forbidden)
{
    const auto word =
        sim.cone_word(net, candidate.node(), leaves, forbidden);
    if (!word)
        return false;
    const auto k = static_cast<uint32_t>(leaves.size());
    const auto tt = truth_table{k, *word};
    return (candidate.complemented() ? ~tt : tt) == expected;
}

/// Direct replacements for cuts whose function collapsed to a constant or a
/// single leaf (no database needed).
std::optional<signal> trivial_replacement(xag& net, const support_view& view,
                                          std::span<const signal> leaf_sigs)
{
    if (view.support.empty())
        return net.get_constant(view.function.get_bit(0));
    if (view.support.size() == 1) {
        const auto x = truth_table::projection(1, 0);
        return leaf_sigs[0] ^ (view.function == ~x);
    }
    return std::nullopt;
}

/// The ONE rewrite loop shared by the proposed method and the size
/// baseline.  `Strategy` supplies the candidate builder and the cost model
/// (see mc_strategy / size_strategy below); everything else — leaf
/// resolution, batched cut-function evaluation, verification, MFFC-gated
/// commit — is common.
template <typename Strategy>
void run_rewrite_loop(xag& net, pass_context& ctx, round_stats& stats,
                      bool allow_zero_gain, bool batched, Strategy& strat)
{
    const auto& cuts = ctx.cuts();
    auto& sim = ctx.simulator();

    std::vector<cone_simulator::leaf_set> resolved; // leaf sets, per cut
    std::vector<uint64_t> words;                    // batched function words
    std::vector<uint64_t> chunk_words;
    std::vector<uint8_t> valid;                     // per-cut validity
    std::vector<signal> leaf_sigs;
    std::vector<uint32_t> leaf_nodes;

    for (const auto n : net.topological_order()) {
        if (!net.is_gate(n) || net.is_dead(n))
            continue;

        // ---- phase 1: resolve every cut's leaves to live nodes ----------
        // Leaves replaced earlier in this pass are followed to their live
        // equivalents; without this, every rewrite would blind its fanout
        // cones to the freshly created shared logic.  `resolved` is an
        // index-reused pool: slots keep their capacity across nodes.
        size_t num_resolved = 0;
        for (const auto& c : cuts[n]) {
            if (c.num_leaves < 2 && c.leaves[0] == n)
                continue; // trivial cut
            if (resolved.size() == num_resolved)
                resolved.emplace_back();
            auto& cut_leaves = resolved[num_resolved];
            cut_leaves.clear();
            bool leaves_ok = true;
            for (const auto l : c.leaf_span()) {
                const auto live = net.resolve(signal{l, false});
                if (net.is_dead(live.node()) || live.node() == n) {
                    leaves_ok = false;
                    break;
                }
                if (live.node() != 0)
                    cut_leaves.push_back(live.node());
            }
            if (!leaves_ok || cut_leaves.empty())
                continue;
            std::sort(cut_leaves.begin(), cut_leaves.end());
            cut_leaves.erase(
                std::unique(cut_leaves.begin(), cut_leaves.end()),
                cut_leaves.end());
            ++stats.cuts_evaluated;
            ++num_resolved;
        }
        if (num_resolved == 0)
            continue;
        const std::span<const cone_simulator::leaf_set> active{
            resolved.data(), num_resolved};

        // ---- phase 2: all cut functions in one union-cone traversal -----
        // No candidate has been spliced yet for this node, so every
        // existing cone node keeps its value throughout phase 3: computing
        // the functions up front is exactly equivalent to the per-cut
        // re-simulation it replaces.
        words.assign(active.size(), 0);
        valid.assign(active.size(), 0);
        if (batched) {
            // Chunked so arbitrarily large per-node cut counts work (the
            // simulator evaluates up to 64 lanes per call).
            for (size_t base = 0; base < active.size(); base += 64) {
                const auto count = std::min<size_t>(64, active.size() - base);
                const auto mask = sim.simulate_cuts(
                    net, n, active.subspan(base, count), chunk_words);
                for (size_t j = 0; j < count; ++j) {
                    words[base + j] = chunk_words[j];
                    valid[base + j] =
                        static_cast<uint8_t>((mask >> j) & 1);
                }
            }
        } else {
            for (size_t i = 0; i < active.size(); ++i) {
                try {
                    words[i] = cone_function(net, n, active[i]).word();
                    valid[i] = 1;
                } catch (const std::invalid_argument&) {
                    // no longer a cut of n
                }
            }
        }

        // ---- phase 3: candidate construction and MFFC-gated commit ------
        signal best{};
        int64_t best_gain = allow_zero_gain ? -1 : 0;
        bool have_best = false;

        for (size_t i = 0; i < active.size(); ++i) {
            if (!valid[i])
                continue;
            const auto& cut_leaves = active[i];
            const auto k = static_cast<uint32_t>(cut_leaves.size());
            const truth_table tt{k, words[i]};

            const auto view = shrink_to_support(tt);
            leaf_sigs.clear();
            leaf_nodes.clear();
            for (const auto idx : view.support) {
                leaf_nodes.push_back(cut_leaves[idx]);
                leaf_sigs.push_back(signal{cut_leaves[idx], false});
            }

            const auto cost_before = strat.created_cost();
            std::optional<signal> candidate =
                trivial_replacement(net, view, leaf_sigs);
            if (!candidate) {
                candidate = strat.make_candidate(view.function, leaf_sigs);
                if (!candidate)
                    continue;
            }
            const auto created = strat.created_cost() - cost_before;
            ++stats.candidates_built;
            net.take_ref(*candidate);

            const bool ok =
                batched ? verify_candidate(net, sim, *candidate, leaf_nodes,
                                           view.function, n)
                        : verify_candidate_legacy(net, *candidate, leaf_nodes,
                                                  view.function, n);
            if (!ok) {
                net.release_ref(net.resolve(*candidate));
                continue;
            }

            // DAG-aware gain: the candidate's references already pin any
            // shared nodes, so the MFFC below counts only what would truly
            // be freed.
            const int64_t saved = strat.mffc_cost(n, cut_leaves);
            const int64_t gain = saved - static_cast<int64_t>(created);
            const bool structurally_new = candidate->node() != n;
            if (structurally_new && gain > best_gain) {
                if (have_best)
                    net.release_ref(net.resolve(best));
                best = *candidate;
                best_gain = gain;
                have_best = true;
            } else {
                net.release_ref(net.resolve(*candidate));
            }
        }

        if (have_best) {
            net.substitute(n, best);
            net.release_ref(net.resolve(best));
            ++stats.replacements;
        }
    }
}

/// Round boilerplate shared by both rewrite flavors: network shape and
/// cache-traffic deltas, stage timing, cut enumeration into the context's
/// arena, then the shared loop above.  `make_strategy(stats)` builds the
/// flavor's strategy bound to this round's stats object.
template <typename StrategyFactory>
round_stats generic_round(xag& network, pass_context& ctx, uint32_t cut_size,
                          uint32_t cut_limit, bool allow_zero_gain,
                          bool batched, StrategyFactory&& make_strategy)
{
    const auto start = std::chrono::steady_clock::now();
    round_stats stats;
    auto strat = make_strategy(stats);
    stats.ands_before = network.num_ands();
    stats.xors_before = network.num_xors();
    const auto [cache_hits0, cache_misses0] = strat.cache_traffic();
    const auto [db_hits0, db_misses0] = strat.db_traffic();

    enumerate_cuts(network, ctx.cuts(),
                   {.cut_size = cut_size, .cut_limit = cut_limit},
                   &stats.cut_stats);
    const auto cuts_done = std::chrono::steady_clock::now();
    stats.cut_seconds =
        std::chrono::duration<double>(cuts_done - start).count();

    run_rewrite_loop(network, ctx, stats, allow_zero_gain, batched, strat);

    stats.ands_after = network.num_ands();
    stats.xors_after = network.num_xors();
    const auto end = std::chrono::steady_clock::now();
    stats.rewrite_seconds =
        std::chrono::duration<double>(end - cuts_done).count();
    stats.seconds = std::chrono::duration<double>(end - start).count();
    const auto [cache_hits1, cache_misses1] = strat.cache_traffic();
    const auto [db_hits1, db_misses1] = strat.db_traffic();
    stats.canon_cache_hits = cache_hits1 - cache_hits0;
    stats.canon_cache_misses = cache_misses1 - cache_misses0;
    stats.db_hits = db_hits1 - db_hits0;
    stats.db_misses = db_misses1 - db_misses0;
    return stats;
}

/// Proposed method: affine classification + AND-minimal database, AND-count
/// cost model.
struct mc_strategy {
    xag& net;
    mc_database& db;
    classification_cache& cache;
    round_stats& stats;

    std::optional<signal> make_candidate(const truth_table& f,
                                         std::span<const signal> leaves)
    {
        const auto& cls = cache.classify(f);
        if (!cls.success) {
            ++stats.classify_failures;
            return std::nullopt;
        }
        const auto& entry = db.lookup_or_build(cls.representative);
        return splice_affine(net, cls.transform, leaves, entry.circuit);
    }
    int64_t mffc_cost(uint32_t root, std::span<const uint32_t> leaves) const
    {
        return mffc_and_count(net, root, leaves);
    }
    uint64_t created_cost() const { return net.num_ands(); }
    std::pair<uint64_t, uint64_t> cache_traffic() const
    {
        return {cache.hits(), cache.misses()};
    }
    std::pair<uint64_t, uint64_t> db_traffic() const
    {
        return {db.hits(), db.misses()};
    }
};

/// Size baseline: NPN canonization + gate-minimal database, unit cost for
/// AND and XOR.
struct size_strategy {
    xag& net;
    size_database& db;
    npn_cache& cache;
    round_stats& stats;

    std::optional<signal> make_candidate(const truth_table& f,
                                         std::span<const signal> leaves)
    {
        const auto& canon = cache.canonize(f);
        const auto& entry = db.lookup_or_build(canon.representative);
        return splice_npn(net, canon.transform, leaves, entry.circuit);
    }
    int64_t mffc_cost(uint32_t root, std::span<const uint32_t> leaves) const
    {
        return mffc_gate_count(net, root, leaves);
    }
    uint64_t created_cost() const { return net.num_gates(); }
    std::pair<uint64_t, uint64_t> cache_traffic() const
    {
        return {cache.hits(), cache.misses()};
    }
    std::pair<uint64_t, uint64_t> db_traffic() const
    {
        return {db.hits(), db.misses()};
    }
};

/// The ONE convergence driver: repeat `round` until the cost (AND count or
/// gate count) stops improving, or `max_rounds`.
template <typename Round>
convergence_stats run_until_convergence(xag& network, Round&& round,
                                        uint32_t max_rounds, bool count_ands)
{
    convergence_stats result;
    for (uint32_t i = 0; i < max_rounds; ++i) {
        const auto stats = round(network);
        result.rounds.push_back(stats);
        const auto before = count_ands
                                ? stats.ands_before
                                : stats.ands_before + stats.xors_before;
        const auto after = count_ands ? stats.ands_after
                                      : stats.ands_after + stats.xors_after;
        if (after >= before) {
            result.converged = true;
            break;
        }
    }
    return result;
}

pass_stats finish_pass(pass_context& ctx, pass_stats ps, const xag& network,
                       std::chrono::steady_clock::time_point start)
{
    ps.after = stats_of(network);
    ps.seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    ctx.history.push_back(ps);
    return ps;
}

} // namespace

// ---------------------------------------------------------- round engine

round_stats mc_rewrite_round(xag& network, pass_context& ctx,
                             const rewrite_params& params)
{
    return generic_round(network, ctx, params.cut_size, params.cut_limit,
                         params.allow_zero_gain, params.batched_simulation,
                         [&](round_stats& stats) {
                             return mc_strategy{network, ctx.mc_db(),
                                                ctx.classification(), stats};
                         });
}

round_stats size_rewrite_round(xag& network, pass_context& ctx,
                               const size_rewrite_params& params)
{
    return generic_round(network, ctx, params.cut_size, params.cut_limit,
                         params.allow_zero_gain, params.batched_simulation,
                         [&](round_stats& stats) {
                             return size_strategy{network, ctx.size_db(),
                                                  ctx.npn(), stats};
                         });
}

// ----------------------------------------------------------------- passes

pass_stats mc_rewrite_pass::run(xag& network, pass_context& ctx) const
{
    const auto start = std::chrono::steady_clock::now();
    pass_stats ps;
    ps.pass_name = name();
    ps.before = stats_of(network);
    const auto conv = run_until_convergence(
        network,
        [&](xag& net) { return mc_rewrite_round(net, ctx, params_); },
        max_rounds_, true);
    ps.rounds = conv.rounds;
    ps.converged = conv.converged;
    return finish_pass(ctx, std::move(ps), network, start);
}

pass_stats size_rewrite_pass::run(xag& network, pass_context& ctx) const
{
    const auto start = std::chrono::steady_clock::now();
    pass_stats ps;
    ps.pass_name = name();
    ps.before = stats_of(network);
    const auto conv = run_until_convergence(
        network,
        [&](xag& net) { return size_rewrite_round(net, ctx, params_); },
        max_rounds_, false);
    ps.rounds = conv.rounds;
    ps.converged = conv.converged;
    return finish_pass(ctx, std::move(ps), network, start);
}

pass_stats xor_resynthesis_pass::run(xag& network, pass_context& ctx) const
{
    const auto start = std::chrono::steady_clock::now();
    pass_stats ps;
    ps.pass_name = name();
    ps.before = stats_of(network);
    const auto stats = xor_resynthesis(network);
    ps.xor_blocks = stats.blocks;
    ps.xor_pairs_extracted = stats.pairs_extracted;
    ps.converged = true;
    return finish_pass(ctx, std::move(ps), network, start);
}

pass_stats cleanup_pass::run(xag& network, pass_context& ctx) const
{
    const auto start = std::chrono::steady_clock::now();
    pass_stats ps;
    ps.pass_name = name();
    ps.before = stats_of(network);
    network = cleanup(network);
    ps.converged = true;
    return finish_pass(ctx, std::move(ps), network, start);
}

} // namespace mcx
