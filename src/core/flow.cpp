#include "core/flow.h"

#include "obs/metrics.h"
#include "obs/trace.h"

#include <chrono>
#include <stdexcept>

namespace mcx {

namespace {

std::shared_ptr<const pass> make_pass(std::string_view token,
                                      const flow_params& params)
{
    if (token == "mc")
        return std::make_shared<mc_rewrite_pass>(params.rewrite,
                                                 params.max_rounds);
    if (token == "size" || token == "size-baseline")
        return std::make_shared<size_rewrite_pass>(params.size_rewrite,
                                                   params.max_rounds);
    if (token == "xor")
        return std::make_shared<xor_resynthesis_pass>(params.num_threads);
    if (token == "cleanup")
        return std::make_shared<cleanup_pass>();
    throw std::invalid_argument{"make_flow: unknown pass '" +
                                std::string{token} + "'"};
}

} // namespace

flow_result run_flow(xag& network, const flow& f, pass_context& ctx)
{
    const auto start = std::chrono::steady_clock::now();
    const obs::trace::trace_span flow_span{"flow"};
    flow_result result;
    result.flow_name = f.name;
    result.before = stats_of(network);

    // Each pass runs under the flow token plus a fresh per-pass deadline.
    // The context token is restored afterwards so a caller-owned context
    // is not left governed by this flow's limits.
    const auto saved_token = ctx.token;
    const auto& flow_token = f.params.token;
    bool stop_flow = false;

    const uint32_t max_iters =
        f.params.iterate_until_convergence ? f.params.max_flow_iterations : 1;
    uint32_t ands = network.num_ands();
    for (uint32_t iter = 0; iter < max_iters && !stop_flow; ++iter) {
        ++result.iterations;
        for (const auto& p : f.passes) {
            if (flow_token.stop_requested()) {
                result.status = flow_token.stop_reason();
                result.limit_hit = true;
                stop_flow = true;
                break;
            }
            ctx.token =
                flow_token.with_timeout(f.params.pass_deadline_seconds);
            // name() returns a view over a literal, so the pointer has the
            // static lifetime the span record and progress state need.
            obs::set_progress_pass(p->name().data());
            obs::set_progress_round(0);
            static const auto passes_metric =
                obs::register_metric("flow.passes");
            passes_metric.add();
            pass_stats ps;
            {
                const obs::trace::trace_span pass_span{p->name().data()};
                ps = p->run(network, ctx);
            }
            result.passes.push_back(ps);
            if (ps.status == outcome::ok)
                continue;
            result.limit_hit = true;
            obs::trace::instant(to_string(ps.status));
            if (ps.status == outcome::deadline_exceeded &&
                !flow_token.stop_requested()) {
                // Only the pass-local deadline fired: that pass degraded
                // to best-effort, the rest of the flow still runs (each
                // with its own fresh budget).
                continue;
            }
            // Flow-level stop (deadline/cancel) or a fault: end the flow
            // at this pass boundary.  The network carries every commit
            // the finished and partial passes made — all of them
            // function-preserving.
            result.status = ps.status;
            stop_flow = true;
            break;
        }
        if (stop_flow)
            break;
        const auto ands_now = network.num_ands();
        if (ands_now >= ands)
            break;
        ands = ands_now;
    }
    ctx.token = saved_token;

    result.after = stats_of(network);
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
}

pass_context_params context_params(const flow_params& params)
{
    return {.mc_db = params.rewrite.db,
            .size_db = params.size_rewrite.db,
            .classification_iteration_limit =
                params.rewrite.classification_iteration_limit,
            .classification_word_parallel =
                params.rewrite.classification_word_parallel};
}

flow make_flow(std::string_view spec, const flow_params& params)
{
    flow f;
    f.name = std::string{spec};
    f.params = params;
    if (f.params.num_threads != 0) {
        f.params.rewrite.num_threads = f.params.num_threads;
        f.params.size_rewrite.num_threads = f.params.num_threads;
    }
    size_t begin = 0;
    while (begin <= spec.size()) {
        size_t end = begin;
        // '+' and ',' both separate; "size-baseline" keeps its '-'.
        while (end < spec.size() && spec[end] != '+' && spec[end] != ',')
            ++end;
        const auto token = spec.substr(begin, end - begin);
        if (!token.empty())
            f.passes.push_back(make_pass(token, f.params));
        if (end == spec.size())
            break;
        begin = end + 1;
    }
    if (f.passes.empty())
        throw std::invalid_argument{"make_flow: empty flow spec"};
    return f;
}

std::vector<std::string> flow_pass_names()
{
    return {"mc", "size-baseline", "xor", "cleanup"};
}

} // namespace mcx
