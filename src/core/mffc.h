// Maximum fanout-free cone measurement: the set of nodes that become
// dangling when a root is replaced, bounded below by a cut's leaves.  The
// AND count of the MFFC is the DAG-aware "what we save" side of the
// rewriting gain (paper §4, following Mishchenko's AIG rewriting).
#pragma once

#include "xag/xag.h"

#include <cstdint>
#include <span>

namespace mcx {

/// Number of AND gates in the MFFC of `root` with respect to `leaves`.
uint32_t mffc_and_count(const xag& network, uint32_t root,
                        std::span<const uint32_t> leaves);

/// Number of gates (AND + XOR) in the MFFC of `root` w.r.t. `leaves`.
uint32_t mffc_gate_count(const xag& network, uint32_t root,
                         std::span<const uint32_t> leaves);

} // namespace mcx
