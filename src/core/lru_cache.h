// Bounded LRU memoization for the hot-loop caches (NPN canonization,
// affine classification).  On AES/DES/SHA netlists the same cut functions
// recur constantly, so these caches convert the dominant per-cut cost into
// a hash lookup while the bound keeps memory flat on adversarial inputs.
#pragma once

#include "obs/metrics.h"

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

namespace mcx {

/// Fixed-capacity least-recently-used map.  `find` promotes the entry to
/// most-recently-used; `insert` beyond capacity evicts the LRU entry.
/// Values live in list nodes, so a reference returned by find/insert stays
/// valid until that entry is evicted (at least `capacity` inserts later —
/// callers consume the reference before touching the cache again).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class lru_cache {
public:
    explicit lru_cache(size_t capacity = default_capacity)
        : capacity_{capacity == 0 ? 1 : capacity}
    {
    }

    static constexpr size_t default_capacity = size_t{1} << 20;

    /// Pointer to the cached value, or nullptr on a miss.  Counts hit/miss.
    Value* find(const Key& key)
    {
        const auto it = map_.find(key);
        if (it == map_.end()) {
            ++misses_;
            miss_metric_.add();
            return nullptr;
        }
        ++hits_;
        hit_metric_.add();
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->second;
    }

    /// Insert (or overwrite) and return a reference to the stored value.
    Value& insert(const Key& key, Value value)
    {
        if (const auto it = map_.find(key); it != map_.end()) {
            it->second->second = std::move(value);
            order_.splice(order_.begin(), order_, it->second);
            return it->second->second;
        }
        order_.emplace_front(key, std::move(value));
        map_.emplace(key, order_.begin());
        if (map_.size() > capacity_) {
            map_.erase(order_.back().first);
            order_.pop_back();
        }
        return order_.front().second;
    }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    /// Mirror hits/misses into registry counters (obs/metrics.h) on top of
    /// the per-instance totals — many instances (per-worker shards) may
    /// share one registry name, aggregating process-wide.
    void set_metrics(obs::metric hit, obs::metric miss)
    {
        hit_metric_ = hit;
        miss_metric_ = miss;
    }
    size_t size() const { return map_.size(); }
    size_t capacity() const { return capacity_; }

    void clear()
    {
        map_.clear();
        order_.clear();
    }

private:
    using entry_list = std::list<std::pair<Key, Value>>;

    size_t capacity_;
    entry_list order_; ///< most-recently-used first
    std::unordered_map<Key, typename entry_list::iterator, Hash> map_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    obs::metric hit_metric_;
    obs::metric miss_metric_;
};

} // namespace mcx
