// Legacy entry points of the optimizer — thin, deprecated shims over the
// pass framework (src/core/pass.h), kept so pre-pass-framework callers
// still compile.
//
// The actual implementation — cut enumeration into the context's arena,
// batched cone simulation, affine/NPN canonization through the shared
// caches, database splice, MFFC-gated commit, and the convergence driver —
// lives in pass.cpp as ONE loop shared by both the proposed method
// (mc_rewrite_pass) and the generic size baseline (size_rewrite_pass).
// New code should construct passes and a pass_context directly, or run a
// flow (src/core/flow.h); these wrappers only adapt the old signatures.
//
// `rewrite_params`, `size_rewrite_params`, `round_stats` and
// `convergence_stats` moved to pass.h and are re-exported here.
#pragma once

#include "core/pass.h"
#include "db/mc_database.h"
#include "db/size_database.h"
#include "npn/npn.h"
#include "spectral/classification.h"
#include "xag/xag.h"

#include <cstdint>

namespace mcx {

/// \deprecated Use mc_rewrite_round(xag&, pass_context&, ...) — this shim
/// builds a throwaway context adopting `db` and `cache`.
round_stats mc_rewrite_round(xag& network, mc_database& db,
                             classification_cache& cache,
                             const rewrite_params& params = {});

/// \deprecated Use mc_rewrite_pass{params, max_rounds}.run(network, ctx).
convergence_stats mc_rewrite(xag& network, mc_database& db,
                             classification_cache& cache,
                             const rewrite_params& params = {},
                             uint32_t max_rounds = 100);

/// \deprecated Convenience overload with a private database and cache.
convergence_stats mc_rewrite(xag& network, const rewrite_params& params = {},
                             uint32_t max_rounds = 100);

// ---------------------------------------------------------------- baseline

/// \deprecated Use size_rewrite_round(xag&, pass_context&, ...).
round_stats size_rewrite_round(xag& network, size_database& db,
                               npn_cache& cache,
                               const size_rewrite_params& params = {});

/// \deprecated Convenience overload with a throwaway canonization cache.
round_stats size_rewrite_round(xag& network, size_database& db,
                               const size_rewrite_params& params = {});

/// \deprecated Use size_rewrite_pass{params, max_rounds}.run(network, ctx).
convergence_stats size_rewrite(xag& network, size_database& db,
                               const size_rewrite_params& params = {},
                               uint32_t max_rounds = 100);
convergence_stats size_rewrite(xag& network,
                               const size_rewrite_params& params = {},
                               uint32_t max_rounds = 100);

} // namespace mcx
