// Cut rewriting (paper Algorithm 1 and §4): the proposed AND-minimizing
// optimizer and the generic-size baseline it is compared against.
//
// Per node and per 6-feasible cut the local function is computed, reduced to
// its support, affinely classified, looked up in the database of AND-minimal
// representative circuits, and spliced back with the free affine interface
// (XORs / inverters / permutations).  A replacement is committed when it
// removes more AND gates (MFFC) than it adds (after structural hashing).
// "One round" is a single topological pass; "repeat until convergence"
// iterates rounds until the AND count stops improving (paper Tables 1, 2).
#pragma once

#include "cut/cut_enumeration.h"
#include "db/mc_database.h"
#include "db/size_database.h"
#include "npn/npn.h"
#include "spectral/classification.h"
#include "xag/xag.h"

#include <cstdint>
#include <vector>

namespace mcx {

struct rewrite_params {
    uint32_t cut_size = 6;   ///< paper: 6-cuts (64-bit truth tables)
    uint32_t cut_limit = 12; ///< paper: 12 cuts per node
    uint64_t classification_iteration_limit = 100'000; ///< paper §5
    bool allow_zero_gain = false;
    mc_database_params db;
};

struct round_stats {
    uint32_t ands_before = 0;
    uint32_t ands_after = 0;
    uint32_t xors_before = 0;
    uint32_t xors_after = 0;
    uint64_t cuts_evaluated = 0;
    uint64_t classify_failures = 0;
    uint64_t candidates_built = 0;
    uint64_t replacements = 0;
    double seconds = 0.0;

    // --- per-stage breakdown of the hot loop (filled by every round) ------
    double cut_seconds = 0.0;     ///< time inside enumerate_cuts
    double rewrite_seconds = 0.0; ///< time in the canonize/classify/splice pass
    cut_enumeration_stats cut_stats; ///< merge/dedup/domination counters
    /// Canonization-cache traffic this round: classification_cache for the
    /// proposed method, npn_cache for the size baseline.
    uint64_t canon_cache_hits = 0;
    uint64_t canon_cache_misses = 0;
    /// Database traffic this round (lookup served vs. circuit synthesized).
    uint64_t db_hits = 0;
    uint64_t db_misses = 0;

    double canon_cache_hit_rate() const
    {
        const auto total = canon_cache_hits + canon_cache_misses;
        return total == 0 ? 0.0
                          : static_cast<double>(canon_cache_hits) /
                                static_cast<double>(total);
    }
};

struct convergence_stats {
    std::vector<round_stats> rounds;
    bool converged = false; ///< a round produced no improvement

    uint32_t ands_before() const
    {
        return rounds.empty() ? 0 : rounds.front().ands_before;
    }
    uint32_t ands_after() const
    {
        return rounds.empty() ? 0 : rounds.back().ands_after;
    }
    double total_seconds() const
    {
        double t = 0;
        for (const auto& r : rounds)
            t += r.seconds;
        return t;
    }
};

/// One pass of the proposed method over `network` (in place).  The database
/// and classification cache persist across calls — the paper reuses both
/// "for several rewriting calls".
round_stats mc_rewrite_round(xag& network, mc_database& db,
                             classification_cache& cache,
                             const rewrite_params& params = {});

/// Repeat mc_rewrite_round until no improvement (or `max_rounds`).
convergence_stats mc_rewrite(xag& network, mc_database& db,
                             classification_cache& cache,
                             const rewrite_params& params = {},
                             uint32_t max_rounds = 100);

/// Convenience overload with a private database and cache.
convergence_stats mc_rewrite(xag& network, const rewrite_params& params = {},
                             uint32_t max_rounds = 100);

// ---------------------------------------------------------------- baseline

struct size_rewrite_params {
    uint32_t cut_size = 4; ///< NPN-4 database
    uint32_t cut_limit = 12;
    bool allow_zero_gain = false;
    size_database_params db;
};

/// One pass of the generic size baseline (unit cost for AND and XOR).  The
/// npn_cache memoizes canonization across calls, mirroring the proposed
/// method's classification cache.
round_stats size_rewrite_round(xag& network, size_database& db,
                               npn_cache& cache,
                               const size_rewrite_params& params = {});

/// Convenience overload with a throwaway canonization cache.
round_stats size_rewrite_round(xag& network, size_database& db,
                               const size_rewrite_params& params = {});

/// Repeat size_rewrite_round until no improvement (or `max_rounds`).
convergence_stats size_rewrite(xag& network, size_database& db,
                               const size_rewrite_params& params = {},
                               uint32_t max_rounds = 100);
convergence_stats size_rewrite(xag& network,
                               const size_rewrite_params& params = {},
                               uint32_t max_rounds = 100);

} // namespace mcx
