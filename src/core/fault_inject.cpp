#include "core/fault_inject.h"

#include "obs/trace.h"

#include <array>
#include <cstdlib>
#include <mutex>

namespace mcx {

const char* to_string(fault_site site)
{
    switch (site) {
    case fault_site::sat_budget: return "sat-budget";
    case fault_site::db_build: return "db-build";
    case fault_site::worker_task: return "worker-task";
    case fault_site::journal_overflow: return "journal-overflow";
    case fault_site::parse: return "parse";
    case fault_site::count_: break;
    }
    return "unknown";
}

fault_injected_error::fault_injected_error(fault_site site)
    : std::runtime_error{std::string{"injected fault at "} +
                         to_string(site)},
      site_{site}
{
}

namespace fault_injection {

namespace {

constexpr size_t num_sites = static_cast<size_t>(fault_site::count_);

struct site_state {
    // 0 = disarmed; otherwise the (1-based) hit count that fires.
    std::atomic<uint64_t> fire_at{0};
    std::atomic<uint64_t> hits{0};
};

std::array<site_state, num_sites>& sites()
{
    static std::array<site_state, num_sites> s{};
    return s;
}

// Serializes arm/disarm/configure against each other; fire() itself stays
// lock-free so armed sites perturb parallel timing as little as possible.
std::mutex& config_mutex()
{
    static std::mutex m;
    return m;
}

void refresh_any_armed_locked()
{
    bool armed = false;
    for (auto& s : sites())
        if (s.fire_at.load(std::memory_order_relaxed) != 0)
            armed = true;
    detail::any_armed.store(armed, std::memory_order_relaxed);
}

uint64_t splitmix64(uint64_t& state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

fault_site parse_site(const std::string& name)
{
    for (size_t i = 0; i < num_sites; ++i) {
        const auto site = static_cast<fault_site>(i);
        if (name == to_string(site))
            return site;
    }
    throw std::invalid_argument{"unknown fault site: " + name};
}

} // namespace

namespace detail {

std::atomic<bool> any_armed{false};

void fire_slow(fault_site site)
{
    auto& s = sites()[static_cast<size_t>(site)];
    const uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t target = s.fire_at.load(std::memory_order_relaxed);
    if (target != 0 && hit >= target) {
        // One-shot: only the thread that wins the exchange throws, so a
        // site reached concurrently by several workers injects exactly
        // one fault per arming.
        if (s.fire_at.compare_exchange_strong(target, 0,
                                              std::memory_order_relaxed)) {
            std::lock_guard<std::mutex> lock{config_mutex()};
            refresh_any_armed_locked();
            obs::trace::instant(to_string(site));
            throw fault_injected_error{site};
        }
    }
}

} // namespace detail

void arm(fault_site site, uint64_t nth)
{
    std::lock_guard<std::mutex> lock{config_mutex()};
    auto& s = sites()[static_cast<size_t>(site)];
    s.hits.store(0, std::memory_order_relaxed);
    s.fire_at.store(nth == 0 ? 1 : nth, std::memory_order_relaxed);
    refresh_any_armed_locked();
}

void disarm_all()
{
    std::lock_guard<std::mutex> lock{config_mutex()};
    for (auto& s : sites()) {
        s.fire_at.store(0, std::memory_order_relaxed);
        s.hits.store(0, std::memory_order_relaxed);
    }
    detail::any_armed.store(false, std::memory_order_relaxed);
}

void configure(const std::string& schedule)
{
    uint64_t rng = 0;
    bool seeded = false;
    size_t pos = 0;
    while (pos < schedule.size()) {
        size_t comma = schedule.find(',', pos);
        if (comma == std::string::npos)
            comma = schedule.size();
        std::string term = schedule.substr(pos, comma - pos);
        pos = comma + 1;
        // Trim surrounding spaces.
        while (!term.empty() && term.front() == ' ')
            term.erase(term.begin());
        while (!term.empty() && term.back() == ' ')
            term.pop_back();
        if (term.empty())
            continue;
        if (term.rfind("seed=", 0) == 0) {
            try {
                rng = std::stoull(term.substr(5));
            } catch (const std::exception&) {
                throw std::invalid_argument{"bad fault seed: " + term};
            }
            seeded = true;
            continue;
        }
        const size_t at = term.find('@');
        uint64_t nth = 1;
        std::string name = term;
        if (at != std::string::npos) {
            name = term.substr(0, at);
            try {
                nth = std::stoull(term.substr(at + 1));
            } catch (const std::exception&) {
                throw std::invalid_argument{"bad fault count: " + term};
            }
            if (nth == 0)
                throw std::invalid_argument{"fault count must be >= 1: " +
                                            term};
        } else if (seeded) {
            // Seeded schedule: derive a small non-trivial hit index so a
            // single integer reproduces a varied arming pattern.
            nth = 1 + splitmix64(rng) % 8;
        }
        arm(parse_site(name), nth);
    }
}

bool configure_from_env()
{
    const char* env = std::getenv("MCX_FAULT_INJECT");
    if (env == nullptr || *env == '\0')
        return false;
    configure(env);
    return true;
}

uint64_t hits(fault_site site)
{
    return sites()[static_cast<size_t>(site)].hits.load(
        std::memory_order_relaxed);
}

} // namespace fault_injection
} // namespace mcx
