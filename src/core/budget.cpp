#include "core/budget.h"

#include <csignal>
#include <mutex>
#include <string>

namespace mcx {

const char* to_string(outcome o)
{
    switch (o) {
    case outcome::ok: return "ok";
    case outcome::deadline_exceeded: return "deadline_exceeded";
    case outcome::cancelled: return "cancelled";
    case outcome::resource_exhausted: return "resource_exhausted";
    case outcome::infeasible_input: return "infeasible_input";
    }
    return "unknown";
}

cancelled_error::cancelled_error(outcome reason)
    : std::runtime_error{std::string{"execution stopped: "} +
                         to_string(reason)},
      reason_{reason}
{
}

void throw_if_stopped(const cancellation_token& token)
{
    if (token.stop_requested()) {
        auto reason = token.stop_reason();
        if (reason == outcome::ok) // deadline raced between the two reads
            reason = outcome::cancelled;
        throw cancelled_error{reason};
    }
}

namespace {

// A signal handler may run at any point, so it must not touch shared_ptr
// machinery.  The raw atomic is resolved once while installing handlers
// (the state lives in a function-local static source, so it outlives the
// process) and the handler only performs async-signal-safe operations: a
// lock-free CAS on the first signal, std::signal + std::raise on the
// second.
std::atomic<uint8_t>* signal_reason_slot = nullptr;

extern "C" void mcx_signal_handler(int sig)
{
    // Two-strike policy: the first signal requests the cooperative stop;
    // a second one (the stop wedged, or the user is impatient) restores
    // the default disposition and re-raises, so the process dies the
    // conventional way instead of being unkillable short of SIGKILL.
    if (signal_reason_slot != nullptr) {
        uint8_t expected = 0;
        if (signal_reason_slot->compare_exchange_strong(
                expected, static_cast<uint8_t>(outcome::cancelled),
                std::memory_order_relaxed))
            return;
    }
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

} // namespace

cancellation_source& signal_cancellation()
{
    static cancellation_source source;
    return source;
}

void install_signal_cancellation()
{
    static std::once_flag flag;
    std::call_once(flag, [] {
        signal_reason_slot = &signal_cancellation().state_->reason;
        std::signal(SIGINT, mcx_signal_handler);
        std::signal(SIGTERM, mcx_signal_handler);
    });
}

} // namespace mcx
