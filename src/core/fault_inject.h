// Deterministic fault injection for robustness testing.
//
// Production code calls `fault_injection::fire(site)` at the handful of
// places where real faults originate (SAT budget exhaustion, database
// builder failure, worker-task exception, change-journal overflow, parser
// errors).  When the site is disarmed — the default, and the only state
// reachable without an explicit opt-in — `fire` is a single relaxed
// atomic load; when armed for the nth hit it throws
// `fault_injected_error` exactly once, so a test (or a `MCX_FAULT_INJECT`
// environment schedule) can reproduce "the builder threw on the 3rd miss"
// bit-for-bit on every run.
//
// The harness is compiled in always: the code paths exercised under
// injection are the same ones that run in production, not an #ifdef
// variant, and the disarmed cost is one load per potential fault site.
//
// Schedules are strings of `site@nth` terms, comma-separated:
//
//     MCX_FAULT_INJECT="db-build@3,sat-budget@1" ./mcx ...
//
// `site@nth` arms `site` to throw on its nth hit (1-based); a bare `site`
// means `site@1`.  A `seed=S` term derives the nth for every *following*
// site-without-@ from a splitmix64 stream, giving a reproducible but
// non-trivial schedule from a single integer.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace mcx {

enum class fault_site : uint8_t {
    sat_budget = 0,   ///< sat::solver::solve entry — forces budget exhaustion
    db_build,         ///< database miss-synthesis builder throws
    worker_task,      ///< thread-pool task body throws
    journal_overflow, ///< xag change journal forced to overflow
    parse,            ///< BENCH/Bristol reader throws mid-parse
    count_,           ///< sentinel, keep last
};

const char* to_string(fault_site site);

/// Thrown by an armed injection point.  Deliberately NOT derived from the
/// errors the real faults produce: tests can tell an injected fault apart
/// from an organic one, while error-handling paths still see "some
/// std::exception from deep inside", exactly like production.
class fault_injected_error : public std::runtime_error {
public:
    explicit fault_injected_error(fault_site site);
    fault_site site() const { return site_; }

private:
    fault_site site_;
};

namespace fault_injection {

/// Arm `site` to throw on its `nth` subsequent hit (1-based).  One-shot:
/// the site disarms itself as it fires.  Re-arming resets the countdown.
void arm(fault_site site, uint64_t nth = 1);

/// Disarm every site and zero all hit counters.
void disarm_all();

/// Parse and apply a `site@nth,...` schedule (see file comment).  Throws
/// std::invalid_argument on malformed schedules or unknown site names.
void configure(const std::string& schedule);

/// Apply the schedule in $MCX_FAULT_INJECT, if set.  Returns true when a
/// schedule was applied.
bool configure_from_env();

/// Times `fire(site)` was reached *while the harness was armed* since the
/// last disarm_all() (the disarmed fast path does no counter traffic).
uint64_t hits(fault_site site);

namespace detail {
extern std::atomic<bool> any_armed;
void fire_slow(fault_site site);
} // namespace detail

/// Injection point.  Disarmed cost: one relaxed load (shared across all
/// sites), no counter traffic.
inline void fire(fault_site site)
{
    if (detail::any_armed.load(std::memory_order_relaxed))
        detail::fire_slow(site);
}

} // namespace fault_injection
} // namespace mcx
