#include "core/xor_resynthesis.h"

#include "core/mffc.h"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_map>
#include <set>
#include <vector>

namespace mcx {

namespace {

/// A linear block root expressed over terminals: value = parity of the
/// terminal node values in `terms`, complemented if `constant`.
struct linear_row {
    uint32_t root = 0;
    std::set<uint32_t> terms;
    bool constant = false;
};

/// Expands XOR cones down to non-XOR terminals with cancellation (a
/// terminal reached by an even number of paths vanishes).
///
/// A terminal's membership is the parity of the number of root-to-terminal
/// paths, and the row constant is the parity of complemented-edge
/// traversals over all paths — so instead of enumerating paths (the seed
/// implementation, exponential on reconvergent XOR structure such as hash
/// accumulators), propagate path-count parity through the cone in one
/// topological sweep: each cone node is visited exactly once.
class linear_expander {
public:
    explicit linear_expander(const xag& net) : net_{net}
    {
        topo_index_.resize(net.size(), 0);
        uint32_t i = 0;
        for (const auto n : net.topological_order())
            topo_index_[n] = ++i;
        parity_.resize(net.size(), 0);
        in_cone_.resize(net.size(), 0);
    }

    linear_row expand(uint32_t root)
    {
        linear_row row;
        row.root = root;

        // Collect the XOR cone (root plus XOR nodes reachable through XOR
        // fanins) once per root.
        cone_.clear();
        cone_.push_back(root);
        in_cone_[root] = 1;
        for (size_t i = 0; i < cone_.size(); ++i) {
            for (const auto fi :
                 {net_.fanin0(cone_[i]), net_.fanin1(cone_[i])}) {
                const auto m = fi.node();
                if (net_.is_xor(m) && !in_cone_[m]) {
                    in_cone_[m] = 1;
                    cone_.push_back(m);
                }
            }
        }
        // Fanins before fanouts globally, so descending topo index
        // processes every node before its cone fanins.
        std::sort(cone_.begin(), cone_.end(), [&](uint32_t a, uint32_t b) {
            return topo_index_[a] > topo_index_[b];
        });

        parity_[root] = 1;
        for (const auto n : cone_) {
            const auto p = parity_[n];
            parity_[n] = 0; // reset for the next expand() call
            in_cone_[n] = 0;
            if (p == 0)
                continue;
            for (const auto fi : {net_.fanin0(n), net_.fanin1(n)}) {
                row.constant ^= fi.complemented();
                const auto m = fi.node();
                if (net_.is_xor(m)) {
                    parity_[m] ^= 1;
                } else if (m != 0) {
                    // Terminal: AND node or PI (node 0 contributes nothing).
                    if (const auto it = row.terms.find(m);
                        it != row.terms.end())
                        row.terms.erase(it);
                    else
                        row.terms.insert(m);
                }
            }
        }
        return row;
    }

private:
    const xag& net_;
    std::vector<uint32_t> topo_index_;
    std::vector<uint8_t> parity_;
    std::vector<uint8_t> in_cone_;
    std::vector<uint32_t> cone_;
};

} // namespace

xor_resynthesis_stats xor_resynthesis(xag& network)
{
    xor_resynthesis_stats stats;
    stats.xors_before = network.num_xors();

    // Block roots: XOR nodes consumed by an AND gate or a primary output.
    // Interior XOR nodes (all fanouts are XOR gates feeding the same
    // blocks) are swallowed by the expansion.
    std::vector<uint32_t> roots;
    {
        std::vector<uint8_t> is_root(network.size(), 0);
        for (const auto n : network.topological_order()) {
            if (!network.is_and(n))
                continue;
            for (const auto fi : {network.fanin0(n), network.fanin1(n)})
                if (network.is_xor(fi.node()))
                    is_root[fi.node()] = 1;
        }
        for (uint32_t i = 0; i < network.num_pos(); ++i)
            if (network.is_xor(network.po_at(i).node()))
                is_root[network.po_at(i).node()] = 1;
        for (uint32_t n = 0; n < network.size(); ++n)
            if (is_root[n] && !network.is_dead(n))
                roots.push_back(n);
    }
    if (roots.empty()) {
        stats.xors_after = stats.xors_before;
        return stats;
    }

    std::vector<linear_row> rows;
    rows.reserve(roots.size());
    linear_expander expander{network};
    for (const auto r : roots)
        rows.push_back(expander.expand(r));
    stats.blocks = static_cast<uint32_t>(rows.size());

    // Original (real-node) terminals per row: the MFFC boundary for the
    // per-row gain decision below.
    std::vector<std::vector<uint32_t>> original_terms(rows.size());
    for (size_t r = 0; r < rows.size(); ++r)
        original_terms[r].assign(rows[r].terms.begin(), rows[r].terms.end());

    // Paar's greedy algorithm on the whole system: extract the most common
    // terminal pair as a new shared term until no pair repeats.  Pair
    // counts are maintained incrementally (rebuilding them per extraction
    // is quadratic and intractable on hash-sized linear systems), with a
    // lazily-invalidated max-heap selecting the next pair.
    struct planned_pair {
        uint32_t a, b;   ///< term ids (node ids or planned ids)
        uint32_t id;     ///< id of the new term
    };
    std::vector<planned_pair> plan;
    uint32_t next_term_id = network.size(); // ids above nodes = planned

    // Rows beyond this width are emitted as plain chains: pairing work is
    // quadratic in the row width and the widest rows (hash-function
    // accumulators with hundreds of terms) contribute the least sharing.
    constexpr size_t max_pairing_width = 16;

    using term_pair = std::pair<uint32_t, uint32_t>;
    struct pair_hash {
        size_t operator()(const term_pair& p) const
        {
            return (static_cast<size_t>(p.first) << 32) ^ p.second;
        }
    };
    std::unordered_map<term_pair, uint32_t, pair_hash> pair_count;
    std::unordered_map<uint32_t, std::vector<uint32_t>> rows_of_term;
    std::priority_queue<std::pair<uint32_t, term_pair>> heap;

    const auto ordered = [](uint32_t a, uint32_t b) {
        return a < b ? term_pair{a, b} : term_pair{b, a};
    };
    const auto bump = [&](uint32_t a, uint32_t b, int delta) {
        const auto key = ordered(a, b);
        auto& count = pair_count[key];
        count = static_cast<uint32_t>(static_cast<int>(count) + delta);
        if (delta > 0 && count >= 2)
            heap.push({count, key});
    };

    for (uint32_t r = 0; r < rows.size(); ++r) {
        if (rows[r].terms.size() > max_pairing_width)
            continue;
        std::vector<uint32_t> t(rows[r].terms.begin(), rows[r].terms.end());
        for (size_t i = 0; i < t.size(); ++i) {
            rows_of_term[t[i]].push_back(r);
            for (size_t j = i + 1; j < t.size(); ++j)
                bump(t[i], t[j], 1);
        }
    }

    while (!heap.empty()) {
        const auto [count, key] = heap.top();
        heap.pop();
        const auto it = pair_count.find(key);
        if (it == pair_count.end() || it->second != count) {
            // Stale entry: if the pair still qualifies with its decreased
            // count, requeue it at that count (strictly smaller each time,
            // so this terminates).
            if (it != pair_count.end() && it->second >= 2 &&
                it->second < count)
                heap.push({it->second, key});
            continue;
        }
        if (count < 2)
            break;
        const auto [a, b] = key;
        const auto id = next_term_id++;
        plan.push_back({a, b, id});
        ++stats.pairs_extracted;

        for (const auto r : rows_of_term[a]) {
            auto& terms = rows[r].terms;
            if (!terms.count(a) || !terms.count(b))
                continue;
            // Update counts for every other term of this row.
            for (const auto t : terms)
                if (t != a && t != b) {
                    bump(a, t, -1);
                    bump(b, t, -1);
                    bump(id, t, +1);
                }
            bump(a, b, -1);
            terms.erase(a);
            terms.erase(b);
            terms.insert(id);
            rows_of_term[id].push_back(r);
        }
    }

    // Pin every real terminal: substitution cascades below may restructure
    // later rows' old cones and would otherwise free terminals before
    // their new chains are built.
    std::set<uint32_t> protected_terms;
    for (const auto& row : rows)
        for (const auto term : row.terms)
            if (term < network.size())
                protected_terms.insert(term);
    for (const auto& p : plan) {
        if (p.a < network.size())
            protected_terms.insert(p.a);
        if (p.b < network.size())
            protected_terms.insert(p.b);
    }
    for (const auto term : protected_terms)
        network.take_ref(signal{term, false});

    // Materialize: planned pair gates first, then one XOR chain per row.
    // Terminals merged away by cascades are followed via resolve().
    std::map<uint32_t, signal> term_signal;
    const auto signal_of = [&](uint32_t term) {
        if (const auto it = term_signal.find(term); it != term_signal.end())
            return network.resolve(it->second);
        return network.resolve(signal{term, false});
    };
    for (const auto& p : plan) {
        const auto g = network.create_xor(signal_of(p.a), signal_of(p.b));
        term_signal[p.id] = g;
        network.take_ref(g);
    }

    for (size_t r = 0; r < rows.size(); ++r) {
        const auto& row = rows[r];
        if (network.is_dead(row.root))
            continue; // collapsed by an earlier substitution in this pass
        if (row.terms.size() > max_pairing_width)
            continue; // wide accumulators keep their existing trees
        const auto xors_before_row = network.num_xors();
        auto acc = network.get_constant(row.constant);
        for (const auto term : row.terms)
            acc = network.create_xor(acc, signal_of(term));
        const auto created = network.num_xors() - xors_before_row;
        const auto resolved = network.resolve(acc);
        if (resolved.node() == row.root)
            continue; // already in optimal form
        network.take_ref(resolved);
        // Gain check mirroring the rewriting engine: what the new chain
        // costs (after strashing) vs. the XOR gates exclusively owned by
        // the old cone (the chain's references pin anything shared).
        const auto freed =
            mffc_gate_count(network, row.root, original_terms[r]) -
            mffc_and_count(network, row.root, original_terms[r]);
        if (created <= freed) {
            network.substitute(row.root, resolved);
            network.release_ref(network.resolve(resolved));
        } else {
            network.release_ref(resolved);
        }
    }

    // Release the tokens on the nodes they were taken on: a reference taken
    // on a node that was merged away afterwards must not be released on the
    // merge survivor (that would steal one of its real references).
    for (const auto& p : plan)
        network.release_ref(term_signal.at(p.id));
    for (const auto term : protected_terms)
        network.release_ref(signal{term, false});

    stats.xors_after = network.num_xors();
    return stats;
}

} // namespace mcx
