#include "core/xor_resynthesis.h"

#include "core/mffc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"

#include <algorithm>
#include <bit>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace mcx {

namespace {

/// A linear block root expressed over terminals: value = parity of the
/// terminal node values in `terms` (sorted ascending), complemented if
/// `constant`.
struct linear_row {
    uint32_t root = 0;
    std::vector<uint32_t> terms;
    bool constant = false;
};

/// Packed bitset rows over a dense term-id space (remapped terminal ids
/// first, planned pair ids above them), one row per linear block that
/// takes part in pair extraction.  Replaces the per-row std::set:
/// membership is one bit test, the expander's XOR-cancellation is one
/// flip, and the ascending iteration order the chain rebuild relies on
/// falls out of the word scan.  All rows live in one flat pool sized
/// once, and the same bits flow from the pairing loop into the chain
/// rebuild — no per-step container churn.
class packed_rows {
public:
    packed_rows(size_t num_rows, size_t id_limit)
        : stride_{(id_limit + 63) / 64}, pool_(num_rows * stride_, 0)
    {
    }

    bool test(uint32_t row, uint32_t id) const
    {
        return (word(row, id) >> (id & 63)) & 1;
    }

    void insert(uint32_t row, uint32_t id)
    {
        word(row, id) |= uint64_t{1} << (id & 63);
    }

    void erase(uint32_t row, uint32_t id)
    {
        word(row, id) &= ~(uint64_t{1} << (id & 63));
    }

    /// Visit the row's term ids in ascending order (the std::set order the
    /// seed implementation iterated in).
    template <typename F>
    void for_each(uint32_t row, F&& f) const
    {
        const uint64_t* words = pool_.data() + row * stride_;
        for (size_t i = 0; i < stride_; ++i)
            for (uint64_t w = words[i]; w != 0; w &= w - 1)
                f(static_cast<uint32_t>(64 * i + std::countr_zero(w)));
    }

private:
    uint64_t& word(uint32_t row, uint32_t id)
    {
        return pool_[row * stride_ + (id >> 6)];
    }
    const uint64_t& word(uint32_t row, uint32_t id) const
    {
        return pool_[row * stride_ + (id >> 6)];
    }

    size_t stride_;
    std::vector<uint64_t> pool_;
};

/// Expands XOR cones down to non-XOR terminals with cancellation (a
/// terminal reached by an even number of paths vanishes).
///
/// A terminal's membership is the parity of the number of root-to-terminal
/// paths, and the row constant is the parity of complemented-edge
/// traversals over all paths — so instead of enumerating paths (the seed
/// implementation, exponential on reconvergent XOR structure such as hash
/// accumulators), propagate path-count parity through the cone in one
/// topological sweep: each cone node is visited exactly once.  Terminal
/// membership itself is one shared scratch bitset (flip on every arrival,
/// survivors collected and reset afterwards) instead of set insert/erase.
class linear_expander {
public:
    explicit linear_expander(const xag& net) : net_{net}
    {
        topo_index_.resize(net.size(), 0);
        uint32_t i = 0;
        for (const auto n : net.topological_order())
            topo_index_[n] = ++i;
        parity_.resize(net.size(), 0);
        in_cone_.resize(net.size(), 0);
        term_bit_.resize((net.size() + 63) / 64, 0);
    }

    linear_row expand(uint32_t root)
    {
        linear_row row;
        row.root = root;

        // Collect the XOR cone (root plus XOR nodes reachable through XOR
        // fanins) once per root.
        cone_.clear();
        cone_.push_back(root);
        in_cone_[root] = 1;
        for (size_t i = 0; i < cone_.size(); ++i) {
            for (const auto fi :
                 {net_.fanin0(cone_[i]), net_.fanin1(cone_[i])}) {
                const auto m = fi.node();
                if (net_.is_xor(m) && !in_cone_[m]) {
                    in_cone_[m] = 1;
                    cone_.push_back(m);
                }
            }
        }
        // Fanins before fanouts globally, so descending topo index
        // processes every node before its cone fanins.
        std::sort(cone_.begin(), cone_.end(), [&](uint32_t a, uint32_t b) {
            return topo_index_[a] > topo_index_[b];
        });

        touched_.clear();
        parity_[root] = 1;
        for (const auto n : cone_) {
            const auto p = parity_[n];
            parity_[n] = 0; // reset for the next expand() call
            in_cone_[n] = 0;
            if (p == 0)
                continue;
            for (const auto fi : {net_.fanin0(n), net_.fanin1(n)}) {
                row.constant ^= fi.complemented();
                const auto m = fi.node();
                if (net_.is_xor(m)) {
                    parity_[m] ^= 1;
                } else if (m != 0) {
                    // Terminal: AND node or PI (node 0 contributes nothing).
                    term_bit_[m >> 6] ^= uint64_t{1} << (m & 63);
                    touched_.push_back(m);
                }
            }
        }
        // Survivors (odd path parity) in ascending order; reset the scratch.
        std::sort(touched_.begin(), touched_.end());
        touched_.erase(std::unique(touched_.begin(), touched_.end()),
                       touched_.end());
        for (const auto m : touched_)
            if ((term_bit_[m >> 6] >> (m & 63)) & 1) {
                row.terms.push_back(m);
                term_bit_[m >> 6] &= ~(uint64_t{1} << (m & 63));
            }
        return row;
    }

private:
    const xag& net_;
    std::vector<uint32_t> topo_index_;
    std::vector<uint8_t> parity_;
    std::vector<uint8_t> in_cone_;
    std::vector<uint64_t> term_bit_; ///< scratch terminal-parity bitset
    std::vector<uint32_t> cone_;
    std::vector<uint32_t> touched_;
};

} // namespace

xor_resynthesis_stats xor_resynthesis(xag& network,
                                      const xor_resynthesis_params& params)
{
    xor_resynthesis_stats stats;
    stats.xors_before = network.num_xors();
    const uint32_t base_size = network.size(); // term ids below are real

    // Block roots: XOR nodes consumed by an AND gate or a primary output.
    // Interior XOR nodes (all fanouts are XOR gates feeding the same
    // blocks) are swallowed by the expansion.
    std::vector<uint32_t> roots;
    {
        std::vector<uint8_t> is_root(network.size(), 0);
        for (const auto n : network.topological_order()) {
            if (!network.is_and(n))
                continue;
            for (const auto fi : {network.fanin0(n), network.fanin1(n)})
                if (network.is_xor(fi.node()))
                    is_root[fi.node()] = 1;
        }
        for (uint32_t i = 0; i < network.num_pos(); ++i)
            if (network.is_xor(network.po_at(i).node()))
                is_root[network.po_at(i).node()] = 1;
        for (uint32_t n = 0; n < network.size(); ++n)
            if (is_root[n] && !network.is_dead(n))
                roots.push_back(n);
    }
    if (roots.empty()) {
        stats.xors_after = stats.xors_before;
        return stats;
    }

    std::vector<linear_row> rows;
    rows.reserve(roots.size());
    {
        obs::trace::trace_span expand_span{"phase.xor-expand"};
        linear_expander expander{network};
        for (const auto r : roots)
            rows.push_back(expander.expand(r));
        expand_span.set_arg(rows.size());
    }
    stats.blocks = static_cast<uint32_t>(rows.size());

    // Paar's greedy algorithm on the whole system: extract the most common
    // terminal pair as a new shared term until no pair repeats.  Pair
    // counts are maintained incrementally (rebuilding them per extraction
    // is quadratic and intractable on hash-sized linear systems), with a
    // lazily-invalidated max-heap selecting the next pair.
    //
    // Pairing works in a DENSE id space: the distinct terminals of the
    // narrow rows get ids [0, num_terms) in ascending node order, planned
    // pair ids follow from num_terms — so the bitset rows span only the
    // ids that can actually occur instead of the whole network, and only
    // narrow rows get a bitset at all.  The mapping is monotone, so pair
    // ordering, heap tie-breaking, and the ascending chain-rebuild scan
    // are unchanged from the node-id formulation.
    struct planned_pair {
        uint32_t a, b;   ///< dense term ids (terminal or earlier planned)
        uint32_t id;     ///< dense id of the new term
    };
    std::vector<planned_pair> plan;

    // Wide rows take part in pair extraction too (the old code emitted
    // everything above 16 terms as a plain chain).  Pair seeding is
    // quadratic per row, so admission is narrowest-first under a Σwidth²
    // work budget (plus an optional hard cap): every row of rewrite-scale
    // circuits qualifies, while the widest accumulator rows of full-hash
    // linear systems — whose unbounded seeding would be ~10¹⁰ operations
    // on MD5 — keep their existing trees.  Admission depends only on the
    // multiset of row widths, so the result is deterministic.
    const size_t max_pairing_width = params.max_pairing_width == 0
                                         ? SIZE_MAX
                                         : params.max_pairing_width;

    // The per-worker budget scales with the team: seeding is the quadratic
    // part and it parallelizes row-by-row, so a W-worker pool admits up to
    // W× the sequential work instead of finishing early and idling.
    const uint32_t seed_workers =
        params.pool != nullptr ? params.pool->num_workers() : 1;
    const uint64_t effective_budget =
        params.pairing_work_budget == 0
            ? 0
            : params.pairing_work_budget * seed_workers;
    stats.seed_workers = seed_workers;
    stats.effective_pairing_budget = effective_budget;

    const std::vector<uint8_t> narrow = [&] {
        std::vector<uint8_t> flags(rows.size(), 0);
        std::vector<uint32_t> by_width(rows.size());
        for (uint32_t r = 0; r < rows.size(); ++r) {
            by_width[r] = r;
            stats.widest_row =
                std::max(stats.widest_row,
                         static_cast<uint32_t>(rows[r].terms.size()));
        }
        std::stable_sort(by_width.begin(), by_width.end(),
                         [&](uint32_t a, uint32_t b) {
                             return rows[a].terms.size() <
                                    rows[b].terms.size();
                         });
        uint64_t work = 0;
        for (const auto r : by_width) {
            const auto w = static_cast<uint64_t>(rows[r].terms.size());
            if (w > max_pairing_width)
                break; // sorted: every later row is at least as wide
            if (effective_budget != 0 && work + w * w > effective_budget)
                break;
            work += w * w;
            flags[r] = 1;
            ++stats.rows_paired;
            stats.widest_row_paired =
                std::max(stats.widest_row_paired, static_cast<uint32_t>(w));
        }
        return flags;
    }();
    std::vector<uint32_t> slot(rows.size(), 0); // narrow row -> bitset row
    uint32_t num_narrow = 0;
    for (size_t r = 0; r < rows.size(); ++r)
        if (narrow[r])
            slot[r] = num_narrow++;

    // term_of: dense id -> node id (ascending); dense_of: node id -> dense.
    std::vector<uint32_t> term_of;
    size_t narrow_instances = 0;
    for (size_t r = 0; r < rows.size(); ++r)
        if (narrow[r]) {
            narrow_instances += rows[r].terms.size();
            term_of.insert(term_of.end(), rows[r].terms.begin(),
                           rows[r].terms.end());
        }
    std::sort(term_of.begin(), term_of.end());
    term_of.erase(std::unique(term_of.begin(), term_of.end()),
                  term_of.end());
    const auto num_terms = static_cast<uint32_t>(term_of.size());
    std::vector<uint32_t> dense_of(base_size, 0);
    for (uint32_t d = 0; d < num_terms; ++d)
        dense_of[term_of[d]] = d;
    uint32_t next_term_id = num_terms; // dense ids above terminals = planned

    // Every extraction removes two term instances per affected row (>= 2
    // rows) and mints exactly one new id, so the planned-id space is
    // bounded by half the narrow rows' initial term instances.
    const size_t id_limit = num_terms + narrow_instances / 2 + 1;

    packed_rows bits{num_narrow, id_limit};

    using term_pair = std::pair<uint32_t, uint32_t>;
    struct pair_hash {
        size_t operator()(const term_pair& p) const
        {
            return (static_cast<size_t>(p.first) << 32) ^ p.second;
        }
    };
    std::unordered_map<term_pair, uint32_t, pair_hash> pair_count;
    std::unordered_map<uint32_t, std::vector<uint32_t>> rows_of_term;
    std::priority_queue<std::pair<uint32_t, term_pair>> heap;

    const auto ordered = [](uint32_t a, uint32_t b) {
        return a < b ? term_pair{a, b} : term_pair{b, a};
    };
    const auto bump = [&](uint32_t a, uint32_t b, int delta) {
        const auto key = ordered(a, b);
        auto& count = pair_count[key];
        count = static_cast<uint32_t>(static_cast<int>(count) + delta);
        if (delta > 0 && count >= 2)
            heap.push({count, key});
    };

    // Linear setup (bitsets, term->row index) stays sequential; only the
    // quadratic pair counting fans out.
    std::vector<uint32_t> narrow_rows;
    narrow_rows.reserve(stats.rows_paired);
    for (uint32_t r = 0; r < rows.size(); ++r) {
        if (!narrow[r])
            continue;
        narrow_rows.push_back(r);
        const auto& t = rows[r].terms;
        for (size_t i = 0; i < t.size(); ++i) {
            bits.insert(slot[r], dense_of[t[i]]);
            rows_of_term[dense_of[t[i]]].push_back(r);
        }
    }
    if (params.pool != nullptr && narrow_rows.size() > 1) {
        // Per-worker count maps over a work-stealing partition of (row,
        // outer-index-range) chunks, merged into the shared map afterwards.
        // Chunking the outer index of the quadratic per-row loop means one
        // very wide admitted row (a hash accumulator row can dominate the
        // whole Σwidth² budget) spreads across the team instead of
        // serializing on one worker.  Per-pair sums are schedule-
        // independent, and the heap is seeded once per pair at its final
        // count — the heap's valid-tuple set (count, key) is exactly the
        // sequential path's, so extraction pops the same pairs in the same
        // order (stale lower-count entries, which only the sequential path
        // carries, are discarded by the staleness check).
        struct seed_chunk {
            uint32_t row;            ///< index into narrow_rows
            uint32_t begin, end;     ///< outer-index range [begin, end)
        };
        uint64_t total_pairs = 0;
        for (const auto r : narrow_rows) {
            const auto w = static_cast<uint64_t>(rows[r].terms.size());
            total_pairs += w * (w - 1) / 2;
        }
        // ~8 chunks per worker smooths the work-stealing partition; the
        // floor keeps per-chunk map overhead negligible for small rounds.
        const uint64_t chunk_target = std::max<uint64_t>(
            4096, total_pairs / (uint64_t{8} * seed_workers + 1));
        std::vector<seed_chunk> chunks;
        for (uint32_t i = 0; i < narrow_rows.size(); ++i) {
            const auto w =
                static_cast<uint32_t>(rows[narrow_rows[i]].terms.size());
            uint32_t begin = 0;
            uint64_t acc = 0;
            for (uint32_t a = 0; a + 1 < w; ++a) {
                acc += w - a - 1; // pairs contributed by outer index a
                if (acc >= chunk_target) {
                    chunks.push_back({i, begin, a + 1});
                    begin = a + 1;
                    acc = 0;
                }
            }
            if (begin + 1 < w)
                chunks.push_back({i, begin, w - 1});
        }
        std::vector<std::unordered_map<term_pair, uint32_t, pair_hash>>
            local(seed_workers);
        params.pool->parallel_for(
            0, chunks.size(), [&](size_t i, uint32_t worker) {
                const auto& chunk = chunks[i];
                const auto& t = rows[narrow_rows[chunk.row]].terms;
                auto& counts = local[worker];
                for (size_t a = chunk.begin; a < chunk.end; ++a)
                    for (size_t b = a + 1; b < t.size(); ++b)
                        ++counts[ordered(dense_of[t[a]], dense_of[t[b]])];
            });
        for (const auto& counts : local)
            for (const auto& [key, c] : counts)
                pair_count[key] += c;
        for (const auto& [key, c] : pair_count)
            if (c >= 2)
                heap.push({c, key});
    } else {
        for (const auto r : narrow_rows) {
            const auto& t = rows[r].terms;
            for (size_t i = 0; i < t.size(); ++i)
                for (size_t j = i + 1; j < t.size(); ++j)
                    bump(dense_of[t[i]], dense_of[t[j]], 1);
        }
    }

    // Stopping mid-extraction (or mid-rebuild below) must not throw: the
    // protected-ref release sweeps at the end are unconditional cleanup,
    // so the token breaks out of the loops and the stats carry the reason.
    uint64_t extract_steps = 0;
    const auto stop_reason = [&]() -> outcome {
        const auto reason = params.token.stop_reason();
        return reason == outcome::ok ? outcome::cancelled : reason;
    };
    // Ends after the extraction loop via reset() — the loop body is too
    // entangled with surrounding locals for a scoped block.
    std::optional<obs::trace::trace_span> pair_span{std::in_place,
                                                    "phase.xor-pair"};
    while (!heap.empty()) {
        if ((++extract_steps & 1023u) == 0 &&
            params.token.stop_requested()) {
            stats.status = stop_reason();
            break;
        }
        const auto [count, key] = heap.top();
        heap.pop();
        const auto it = pair_count.find(key);
        if (it == pair_count.end() || it->second != count) {
            // Stale entry: if the pair still qualifies with its decreased
            // count, requeue it at that count (strictly smaller each time,
            // so this terminates).
            if (it != pair_count.end() && it->second >= 2 &&
                it->second < count)
                heap.push({it->second, key});
            continue;
        }
        if (count < 2)
            break;
        const auto [a, b] = key;
        const auto id = next_term_id++;
        plan.push_back({a, b, id});
        ++stats.pairs_extracted;

        for (const auto r : rows_of_term[a]) {
            if (!bits.test(slot[r], a) || !bits.test(slot[r], b))
                continue;
            // Update counts for every other term of this row.
            bits.for_each(slot[r], [&](uint32_t t) {
                if (t != a && t != b) {
                    bump(a, t, -1);
                    bump(b, t, -1);
                    bump(id, t, +1);
                }
            });
            bump(a, b, -1);
            bits.erase(slot[r], a);
            bits.erase(slot[r], b);
            bits.insert(slot[r], id);
            rows_of_term[id].push_back(r);
        }
    }
    if (pair_span)
        pair_span->set_arg(stats.pairs_extracted);
    pair_span.reset();

    // Pin every real terminal: substitution cascades below may restructure
    // later rows' old cones and would otherwise free terminals before
    // their new chains are built.  Flags instead of a set; the take/release
    // sweeps walk them in the same ascending order.
    std::vector<uint8_t> is_protected(base_size, 0);
    for (uint32_t r = 0; r < rows.size(); ++r) {
        if (narrow[r])
            bits.for_each(slot[r], [&](uint32_t term) {
                if (term < num_terms)
                    is_protected[term_of[term]] = 1;
            });
        else
            for (const auto term : rows[r].terms)
                is_protected[term] = 1;
    }
    for (const auto& p : plan) {
        if (p.a < num_terms)
            is_protected[term_of[p.a]] = 1;
        if (p.b < num_terms)
            is_protected[term_of[p.b]] = 1;
    }
    for (uint32_t term = 0; term < base_size; ++term)
        if (is_protected[term])
            network.take_ref(signal{term, false});

    // Materialize lazily: a planned pair gate is created the first time a
    // chain consumes it (recursively: pairs of pairs), so its cost lands in
    // that chain's `created` and the gain check below charges the first
    // consumer for it — later consumers share it for free, and a pair no
    // chain ever uses is never built.  Building all pairs up front instead
    // charged them to nobody, which let wide-row pairing *grow* the
    // network when rebuilds were rejected.  Terminals merged away by
    // cascades are followed via resolve().
    std::vector<signal> planned_signal(plan.size());
    std::vector<uint8_t> planned_built(plan.size(), 0);
    std::vector<uint32_t> built_this_row;
    const auto signal_of = [&](auto&& self, uint32_t term) -> signal {
        if (term < num_terms)
            return network.resolve(signal{term_of[term], false});
        const auto idx = term - num_terms;
        if (!planned_built[idx]) {
            const auto& p = plan[idx];
            const auto g = network.create_xor(self(self, p.a),
                                              self(self, p.b));
            planned_signal[idx] = g;
            planned_built[idx] = 1;
            built_this_row.push_back(idx);
            network.take_ref(g);
        }
        return network.resolve(planned_signal[idx]);
    };
    // Drop the pair gates a rejected rebuild materialized (reverse build
    // order releases pair-of-pair parents before their children): keeping
    // them would hand later rows gates whose cost no gain check ever
    // approved.  A later chain that does profit re-creates them and pays.
    const auto rollback_pairs = [&] {
        for (auto it = built_this_row.rbegin(); it != built_this_row.rend();
             ++it) {
            network.release_ref(planned_signal[*it]);
            planned_built[*it] = 0;
        }
    };

    for (uint32_t r = 0; r < rows.size(); ++r) {
        if (params.token.stop_requested()) {
            // Rows already rebuilt keep their gains; the rest keep their
            // old trees.  Either way the network stays equivalent.
            stats.status = stop_reason();
            break;
        }
        const auto& row = rows[r];
        if (network.is_dead(row.root))
            continue; // collapsed by an earlier substitution in this pass
        if (!narrow[r])
            continue; // rows beyond the pairing budget keep their trees
        built_this_row.clear();
        const auto xors_before_row = network.num_xors();
        auto acc = network.get_constant(row.constant);
        bits.for_each(slot[r], [&](uint32_t term) {
            acc = network.create_xor(acc, signal_of(signal_of, term));
        });
        const auto created = network.num_xors() - xors_before_row;
        const auto resolved = network.resolve(acc);
        if (resolved.node() == row.root) {
            // Already in optimal form: every chain gate strash-hit an
            // existing node, so only this row's fresh pair gates (if any)
            // need dropping.
            rollback_pairs();
            continue;
        }
        network.take_ref(resolved);
        // Gain check mirroring the rewriting engine: what the new chain
        // costs (after strashing) vs. the XOR gates exclusively owned by
        // the old cone (the chain's references pin anything shared).
        const auto freed =
            mffc_gate_count(network, row.root, row.terms) -
            mffc_and_count(network, row.root, row.terms);
        if (created <= freed) {
            network.substitute(row.root, resolved);
            network.release_ref(network.resolve(resolved));
        } else {
            network.release_ref(resolved);
            rollback_pairs();
        }
    }

    // Release the tokens on the nodes they were taken on: a reference taken
    // on a node that was merged away afterwards must not be released on the
    // merge survivor (that would steal one of its real references).  Pair
    // gates only the rejected rebuilds needed die right here.
    for (const auto& p : plan)
        if (planned_built[p.id - num_terms])
            network.release_ref(planned_signal[p.id - num_terms]);
    for (uint32_t term = 0; term < base_size; ++term)
        if (is_protected[term])
            network.release_ref(signal{term, false});

    static const auto blocks_metric = obs::register_metric("xor.blocks");
    static const auto pairs_metric = obs::register_metric("xor.pairs");
    blocks_metric.add(stats.blocks);
    pairs_metric.add(stats.pairs_extracted);
    stats.xors_after = network.num_xors();
    return stats;
}

} // namespace mcx
