// Deprecated shims: the old free-function optimizer API expressed over the
// pass framework.  Each wrapper builds a pass_context that adopts the
// caller's database/cache (so persistence semantics are unchanged) and
// delegates to the single shared engine in pass.cpp.
#include "core/rewrite.h"

namespace mcx {

namespace {

pass_context_params context_params(const rewrite_params& params)
{
    return {.mc_db = params.db,
            .classification_iteration_limit =
                params.classification_iteration_limit,
            .classification_word_parallel =
                params.classification_word_parallel};
}

pass_context_params context_params(const size_rewrite_params& params)
{
    return {.size_db = params.db};
}

} // namespace

round_stats mc_rewrite_round(xag& network, mc_database& db,
                             classification_cache& cache,
                             const rewrite_params& params)
{
    pass_context ctx{context_params(params)};
    ctx.adopt(&db);
    ctx.adopt(&cache);
    return mc_rewrite_round(network, ctx, params);
}

convergence_stats mc_rewrite(xag& network, mc_database& db,
                             classification_cache& cache,
                             const rewrite_params& params, uint32_t max_rounds)
{
    pass_context ctx{context_params(params)};
    ctx.adopt(&db);
    ctx.adopt(&cache);
    const auto ps = mc_rewrite_pass{params, max_rounds}.run(network, ctx);
    return {ps.rounds, ps.converged};
}

convergence_stats mc_rewrite(xag& network, const rewrite_params& params,
                             uint32_t max_rounds)
{
    pass_context ctx{context_params(params)};
    const auto ps = mc_rewrite_pass{params, max_rounds}.run(network, ctx);
    return {ps.rounds, ps.converged};
}

round_stats size_rewrite_round(xag& network, size_database& db,
                               npn_cache& cache,
                               const size_rewrite_params& params)
{
    pass_context ctx{context_params(params)};
    ctx.adopt(&db);
    ctx.adopt(&cache);
    return size_rewrite_round(network, ctx, params);
}

round_stats size_rewrite_round(xag& network, size_database& db,
                               const size_rewrite_params& params)
{
    npn_cache cache;
    return size_rewrite_round(network, db, cache, params);
}

convergence_stats size_rewrite(xag& network, size_database& db,
                               const size_rewrite_params& params,
                               uint32_t max_rounds)
{
    pass_context ctx{context_params(params)};
    ctx.adopt(&db);
    const auto ps = size_rewrite_pass{params, max_rounds}.run(network, ctx);
    return {ps.rounds, ps.converged};
}

convergence_stats size_rewrite(xag& network, const size_rewrite_params& params,
                               uint32_t max_rounds)
{
    pass_context ctx{context_params(params)};
    const auto ps = size_rewrite_pass{params, max_rounds}.run(network, ctx);
    return {ps.rounds, ps.converged};
}

} // namespace mcx
