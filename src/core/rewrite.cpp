#include "core/rewrite.h"

#include "core/mffc.h"
#include "cut/cut_enumeration.h"
#include "npn/npn.h"
#include "tt/operations.h"
#include "xag/cleanup.h"
#include "xag/simulate.h"

#include <chrono>
#include <optional>
#include <unordered_map>

namespace mcx {

namespace {

/// Splice the representative circuit into `dst`, mirroring
/// affine_transform::apply: input i of the representative reads the parity
/// of the leaves selected by column i of M^T plus c_i; the output adds the
/// v-masked leaf parity and the optional complement.  Only XOR gates and
/// inverters are created around the representative — AND count is exactly
/// the database entry's (modulo structural hashing savings).
signal splice_affine(xag& dst, const affine_transform& t,
                     std::span<const signal> leaves, const xag& repr_circuit)
{
    std::vector<signal> repr_inputs(t.num_vars);
    for (uint32_t i = 0; i < t.num_vars; ++i) {
        auto acc = dst.get_constant(((t.c >> i) & 1) != 0);
        for (uint32_t k = 0; k < t.num_vars; ++k)
            if ((t.mt_column(k) >> i) & 1)
                acc = dst.create_xor(acc, leaves[k]);
        repr_inputs[i] = acc;
    }
    auto out = insert_network(dst, repr_circuit, repr_inputs)[0];
    for (uint32_t k = 0; k < t.num_vars; ++k)
        if ((t.v >> k) & 1)
            out = dst.create_xor(out, leaves[k]);
    return out ^ t.output_complement;
}

/// Splice for the NPN baseline: permutation, input and output complements
/// are all free on XAG edges.
signal splice_npn(xag& dst, const npn_transform& t,
                  std::span<const signal> leaves, const xag& repr_circuit)
{
    std::vector<signal> repr_inputs(t.num_vars);
    for (uint32_t i = 0; i < t.num_vars; ++i)
        repr_inputs[i] =
            leaves[t.perm[i]] ^ (((t.input_negation >> i) & 1) != 0);
    const auto out = insert_network(dst, repr_circuit, repr_inputs)[0];
    return out ^ t.output_negation;
}

/// Walk the candidate cone down to `leaves`; verify the computed function
/// and that `forbidden` (the rewrite root) is not part of the cone.
bool verify_candidate(const xag& net, signal candidate,
                      std::span<const uint32_t> leaves,
                      const truth_table& expected, uint32_t forbidden)
{
    // Containment check by DFS.
    std::vector<uint32_t> stack{candidate.node()};
    std::unordered_map<uint32_t, uint8_t> visited;
    for (const auto l : leaves)
        visited.emplace(l, 1);
    while (!stack.empty()) {
        const auto n = stack.back();
        stack.pop_back();
        if (!visited.emplace(n, 1).second)
            continue;
        if (n == forbidden)
            return false;
        if (!net.is_gate(n))
            continue;
        stack.push_back(net.fanin0(n).node());
        stack.push_back(net.fanin1(n).node());
    }
    try {
        const auto tt = cone_function(net, candidate.node(), leaves);
        return (candidate.complemented() ? ~tt : tt) == expected;
    } catch (const std::invalid_argument&) {
        return false;
    }
}

/// Direct replacements for cuts whose function collapsed to a constant or a
/// single leaf (no database needed).
std::optional<signal> trivial_replacement(xag& net, const support_view& view,
                                          std::span<const signal> leaf_sigs)
{
    if (view.support.empty())
        return net.get_constant(view.function.get_bit(0));
    if (view.support.size() == 1) {
        const auto x = truth_table::projection(1, 0);
        return leaf_sigs[0] ^ (view.function == ~x);
    }
    return std::nullopt;
}

struct pass_context {
    xag& net;
    const std::vector<std::vector<cut>>& cuts;
    round_stats& stats;
};

/// Generic single-pass driver: `make_candidate` builds a replacement signal
/// for a support-reduced cut function (or returns nullopt), `cone_cost`
/// measures what a replacement saves.
template <typename MakeCandidate, typename MffcCost, typename CreatedCost>
void rewrite_pass(pass_context ctx, uint32_t min_leaves,
                  MakeCandidate&& make_candidate, MffcCost&& mffc_cost,
                  CreatedCost&& created_cost, bool allow_zero_gain)
{
    auto& net = ctx.net;
    for (const auto n : net.topological_order()) {
        if (!net.is_gate(n) || net.is_dead(n))
            continue;
        signal best{};
        int64_t best_gain = allow_zero_gain ? -1 : 0;
        bool have_best = false;

        for (const auto& c : ctx.cuts[n]) {
            if (c.num_leaves < min_leaves && c.leaves[0] == n)
                continue; // trivial cut
            // Leaves replaced earlier in this pass are followed to their
            // live equivalents; without this, every rewrite would blind its
            // fanout cones to the freshly created shared logic.
            std::vector<uint32_t> cut_leaves;
            bool leaves_ok = true;
            for (const auto l : c.leaf_span()) {
                const auto live = net.resolve(signal{l, false});
                if (net.is_dead(live.node()) || live.node() == n) {
                    leaves_ok = false;
                    break;
                }
                if (live.node() != 0)
                    cut_leaves.push_back(live.node());
            }
            if (!leaves_ok || cut_leaves.empty())
                continue;
            std::sort(cut_leaves.begin(), cut_leaves.end());
            cut_leaves.erase(
                std::unique(cut_leaves.begin(), cut_leaves.end()),
                cut_leaves.end());
            ++ctx.stats.cuts_evaluated;

            // Recompute the cut function: earlier replacements in this pass
            // may have restructured the cone (or invalidated the cut).
            truth_table tt;
            try {
                tt = cone_function(net, n, cut_leaves);
            } catch (const std::invalid_argument&) {
                continue; // no longer a cut of n
            }

            const auto view = shrink_to_support(tt);
            std::vector<signal> leaf_sigs;
            std::vector<uint32_t> leaf_nodes;
            for (const auto idx : view.support) {
                leaf_nodes.push_back(cut_leaves[idx]);
                leaf_sigs.push_back(signal{cut_leaves[idx], false});
            }

            const auto cost_before = created_cost();
            std::optional<signal> candidate =
                trivial_replacement(net, view, leaf_sigs);
            if (!candidate) {
                candidate = make_candidate(view.function, leaf_sigs);
                if (!candidate)
                    continue;
            }
            const auto created = created_cost() - cost_before;
            ++ctx.stats.candidates_built;
            net.take_ref(*candidate);

            if (!verify_candidate(net, *candidate, leaf_nodes, view.function,
                                  n)) {
                net.release_ref(net.resolve(*candidate));
                continue;
            }

            // DAG-aware gain: the candidate's references already pin any
            // shared nodes, so the MFFC below counts only what would truly
            // be freed.
            const int64_t saved = mffc_cost(n, cut_leaves);
            const int64_t gain = saved - static_cast<int64_t>(created);
            const bool structurally_new =
                candidate->node() != n;
            if (structurally_new && gain > best_gain) {
                if (have_best)
                    net.release_ref(net.resolve(best));
                best = *candidate;
                best_gain = gain;
                have_best = true;
            } else {
                net.release_ref(net.resolve(*candidate));
            }
        }

        if (have_best) {
            net.substitute(n, best);
            net.release_ref(net.resolve(best));
            ++ctx.stats.replacements;
        }
    }
}

template <typename Round>
convergence_stats run_until_convergence(xag& network, Round&& round,
                                        uint32_t max_rounds, bool count_ands)
{
    convergence_stats result;
    for (uint32_t i = 0; i < max_rounds; ++i) {
        const auto stats = round(network);
        result.rounds.push_back(stats);
        const auto before = count_ands
                                ? stats.ands_before
                                : stats.ands_before + stats.xors_before;
        const auto after = count_ands ? stats.ands_after
                                      : stats.ands_after + stats.xors_after;
        if (after >= before) {
            result.converged = true;
            break;
        }
    }
    return result;
}

} // namespace

round_stats mc_rewrite_round(xag& network, mc_database& db,
                             classification_cache& cache,
                             const rewrite_params& params)
{
    const auto start = std::chrono::steady_clock::now();
    round_stats stats;
    stats.ands_before = network.num_ands();
    stats.xors_before = network.num_xors();
    const auto cache_hits0 = cache.hits();
    const auto cache_misses0 = cache.misses();
    const auto db_hits0 = db.hits();
    const auto db_misses0 = db.misses();

    const auto cuts = enumerate_cuts(
        network, {.cut_size = params.cut_size, .cut_limit = params.cut_limit},
        &stats.cut_stats);
    const auto cuts_done = std::chrono::steady_clock::now();
    stats.cut_seconds =
        std::chrono::duration<double>(cuts_done - start).count();

    pass_context ctx{network, cuts, stats};
    rewrite_pass(
        ctx, 2,
        [&](const truth_table& f,
            std::span<const signal> leaves) -> std::optional<signal> {
            const auto& cls = cache.classify(f);
            if (!cls.success) {
                ++stats.classify_failures;
                return std::nullopt;
            }
            const auto& entry = db.lookup_or_build(cls.representative);
            return splice_affine(network, cls.transform, leaves,
                                 entry.circuit);
        },
        [&](uint32_t root, std::span<const uint32_t> leaves) {
            return mffc_and_count(network, root, leaves);
        },
        [&] { return network.num_ands(); }, params.allow_zero_gain);

    stats.ands_after = network.num_ands();
    stats.xors_after = network.num_xors();
    const auto end = std::chrono::steady_clock::now();
    stats.rewrite_seconds =
        std::chrono::duration<double>(end - cuts_done).count();
    stats.seconds = std::chrono::duration<double>(end - start).count();
    stats.canon_cache_hits = cache.hits() - cache_hits0;
    stats.canon_cache_misses = cache.misses() - cache_misses0;
    stats.db_hits = db.hits() - db_hits0;
    stats.db_misses = db.misses() - db_misses0;
    return stats;
}

convergence_stats mc_rewrite(xag& network, mc_database& db,
                             classification_cache& cache,
                             const rewrite_params& params, uint32_t max_rounds)
{
    return run_until_convergence(
        network,
        [&](xag& net) { return mc_rewrite_round(net, db, cache, params); },
        max_rounds, true);
}

convergence_stats mc_rewrite(xag& network, const rewrite_params& params,
                             uint32_t max_rounds)
{
    mc_database db{params.db};
    classification_cache cache{
        {.iteration_limit = params.classification_iteration_limit}};
    return mc_rewrite(network, db, cache, params, max_rounds);
}

round_stats size_rewrite_round(xag& network, size_database& db,
                               npn_cache& cache,
                               const size_rewrite_params& params)
{
    const auto start = std::chrono::steady_clock::now();
    round_stats stats;
    stats.ands_before = network.num_ands();
    stats.xors_before = network.num_xors();
    const auto cache_hits0 = cache.hits();
    const auto cache_misses0 = cache.misses();
    const auto db_hits0 = db.hits();
    const auto db_misses0 = db.misses();

    const auto cuts = enumerate_cuts(
        network, {.cut_size = params.cut_size, .cut_limit = params.cut_limit},
        &stats.cut_stats);
    const auto cuts_done = std::chrono::steady_clock::now();
    stats.cut_seconds =
        std::chrono::duration<double>(cuts_done - start).count();

    pass_context ctx{network, cuts, stats};
    rewrite_pass(
        ctx, 2,
        [&](const truth_table& f,
            std::span<const signal> leaves) -> std::optional<signal> {
            const auto& canon = cache.canonize(f);
            const auto& entry = db.lookup_or_build(canon.representative);
            return splice_npn(network, canon.transform, leaves,
                              entry.circuit);
        },
        [&](uint32_t root, std::span<const uint32_t> leaves) {
            return mffc_gate_count(network, root, leaves);
        },
        [&] { return network.num_gates(); }, params.allow_zero_gain);

    stats.ands_after = network.num_ands();
    stats.xors_after = network.num_xors();
    const auto end = std::chrono::steady_clock::now();
    stats.rewrite_seconds =
        std::chrono::duration<double>(end - cuts_done).count();
    stats.seconds = std::chrono::duration<double>(end - start).count();
    stats.canon_cache_hits = cache.hits() - cache_hits0;
    stats.canon_cache_misses = cache.misses() - cache_misses0;
    stats.db_hits = db.hits() - db_hits0;
    stats.db_misses = db.misses() - db_misses0;
    return stats;
}

round_stats size_rewrite_round(xag& network, size_database& db,
                               const size_rewrite_params& params)
{
    npn_cache cache;
    return size_rewrite_round(network, db, cache, params);
}

convergence_stats size_rewrite(xag& network, size_database& db,
                               const size_rewrite_params& params,
                               uint32_t max_rounds)
{
    npn_cache cache;
    return run_until_convergence(
        network,
        [&](xag& net) { return size_rewrite_round(net, db, cache, params); },
        max_rounds, false);
}

convergence_stats size_rewrite(xag& network, const size_rewrite_params& params,
                               uint32_t max_rounds)
{
    size_database db{params.db};
    return size_rewrite(network, db, params, max_rounds);
}

} // namespace mcx
