#include "core/mffc.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mcx {

namespace {

uint32_t mffc_count(const xag& network, uint32_t root,
                    std::span<const uint32_t> leaves, bool count_xor)
{
    const std::unordered_set<uint32_t> leaf_set(leaves.begin(), leaves.end());
    std::unordered_map<uint32_t, uint32_t> remaining;
    uint32_t count = 0;

    // Simulated dereferencing: a fanin whose (local) reference count drops
    // to zero joins the cone.
    std::vector<uint32_t> stack{root};
    while (!stack.empty()) {
        const auto n = stack.back();
        stack.pop_back();
        if (network.is_and(n) || count_xor)
            ++count;
        for (const auto fi : {network.fanin0(n), network.fanin1(n)}) {
            const auto child = fi.node();
            if (!network.is_gate(child) || leaf_set.count(child))
                continue;
            auto [it, inserted] =
                remaining.try_emplace(child, network.ref_count(child));
            if (--it->second == 0)
                stack.push_back(child);
        }
    }
    return count;
}

} // namespace

uint32_t mffc_and_count(const xag& network, uint32_t root,
                        std::span<const uint32_t> leaves)
{
    return mffc_count(network, root, leaves, false);
}

uint32_t mffc_gate_count(const xag& network, uint32_t root,
                         std::span<const uint32_t> leaves)
{
    return mffc_count(network, root, leaves, true);
}

} // namespace mcx
