// Resource-governed execution: typed outcomes, deadlines, and cooperative
// cancellation for every long-running layer of the stack.
//
// Exact synthesis is intrinsically unpredictable — a single SAT instance
// can blow from milliseconds to hours — so every loop that can run long
// (rewrite rounds, cut sweeps, SAT search, database miss synthesis, XOR
// resynthesis) polls a `cancellation_token` at its natural commit
// boundaries and stops *cooperatively*: the work committed so far is kept,
// the network stays function-equivalent, and the caller receives a typed
// `outcome` instead of an exception or a wedged thread.
//
// The pieces:
//
//  * `outcome` — the typed result of a pass/flow/synthesis run.  `ok`
//    means the work ran to completion; everything else names the limit
//    that stopped it.  Non-ok never implies a broken network: stopping is
//    only permitted where the network is consistent and verifiable.
//  * `cancellation_token` — a cheap copyable view over a shared cancel
//    flag plus an optional deadline.  A default-constructed token never
//    stops anything.  Tokens compose: `with_timeout` derives a child whose
//    deadline is the earlier of its own and the parent's, so a per-pass
//    deadline naturally nests inside a flow deadline.
//  * `cancellation_source` — owns the shared flag; `request()` stops every
//    token derived from it.  Thread-safe; a single relaxed atomic store,
//    so it is also safe from signal handlers (see signal_cancellation).
//  * `cancelled_error` — the one sanctioned unwinding exception for layers
//    that cannot return an outcome through their result type (database
//    builders deep inside a parallel evaluate, level-synchronized cut
//    sweeps).  It is always caught at the pass boundary and converted to a
//    typed outcome; it never escapes run_flow.
//
// Polling cost: `stop_requested()` is one relaxed atomic load plus — only
// when a deadline is set — one steady_clock read (~20 ns via vDSO).  Every
// call site polls at a granularity where that is noise (per node visit,
// per SAT conflict, per sweep level, per linear block).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace mcx {

/// Typed result of a governed unit of work (pass, flow, synthesis call).
enum class outcome : uint8_t {
    ok = 0,             ///< ran to completion
    deadline_exceeded,  ///< a wall-clock deadline expired
    cancelled,          ///< SIGINT/SIGTERM or programmatic cancellation
    resource_exhausted, ///< an internal budget ran out or a component failed
    infeasible_input,   ///< the input itself cannot be processed
};

const char* to_string(outcome o);

namespace detail {
struct cancel_state {
    /// 0 = not cancelled; otherwise the outcome that stops the work.
    std::atomic<uint8_t> reason{0};
};
} // namespace detail

/// Cooperative stop signal: shared cancel flag + optional deadline.
/// Copyable and cheap (a shared_ptr and a time point); a default token is
/// inert and every query on it is false/ok.
class cancellation_token {
public:
    cancellation_token() = default;

    /// True when this token can ever request a stop (it carries a source
    /// or a deadline) — lets hot loops skip polling entirely for the
    /// common ungoverned case.
    bool stop_possible() const
    {
        return state_ != nullptr || has_deadline_;
    }

    bool stop_requested() const
    {
        if (state_ != nullptr &&
            state_->reason.load(std::memory_order_relaxed) != 0)
            return true;
        return has_deadline_ &&
               std::chrono::steady_clock::now() >= deadline_;
    }

    /// The outcome that stops the work: the source's reason, else
    /// deadline_exceeded when the deadline has passed, else ok.
    outcome stop_reason() const
    {
        if (state_ != nullptr) {
            const auto r = state_->reason.load(std::memory_order_relaxed);
            if (r != 0)
                return static_cast<outcome>(r);
        }
        if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_)
            return outcome::deadline_exceeded;
        return outcome::ok;
    }

    /// A child token that additionally stops at `deadline` (the earlier of
    /// the two deadlines wins, so nesting can only tighten the bound).
    cancellation_token
    with_deadline(std::chrono::steady_clock::time_point deadline) const
    {
        cancellation_token child{*this};
        if (!child.has_deadline_ || deadline < child.deadline_)
            child.deadline_ = deadline;
        child.has_deadline_ = true;
        return child;
    }

    /// A child token that stops `seconds` from now (<= the parent's own
    /// deadline).  Non-positive seconds leaves the token unchanged.
    cancellation_token with_timeout(double seconds) const
    {
        if (seconds <= 0.0)
            return *this;
        return with_deadline(std::chrono::steady_clock::now() +
                             std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(seconds)));
    }

private:
    friend class cancellation_source;
    std::shared_ptr<const detail::cancel_state> state_;
    std::chrono::steady_clock::time_point deadline_{};
    bool has_deadline_ = false;
};

/// Owner of a cancel flag.  request() stops every token derived from it.
class cancellation_source {
public:
    cancellation_source()
        : state_{std::make_shared<detail::cancel_state>()}
    {
    }

    void request(outcome reason = outcome::cancelled)
    {
        state_->reason.store(static_cast<uint8_t>(reason),
                             std::memory_order_relaxed);
    }

    bool stop_requested() const
    {
        return state_->reason.load(std::memory_order_relaxed) != 0;
    }

    /// Clear a previous request (tests; a served request in a long-lived
    /// daemon).  Not meant to race an in-flight request().
    void reset()
    {
        state_->reason.store(0, std::memory_order_relaxed);
    }

    cancellation_token token() const
    {
        cancellation_token t;
        t.state_ = state_;
        return t;
    }

private:
    friend void install_signal_cancellation();
    std::shared_ptr<detail::cancel_state> state_;
};

/// The sanctioned unwinding exception for layers whose signatures cannot
/// carry an outcome (sharded-store builders and waiters, cut sweeps).
/// Always caught at the pass boundary and converted to a typed outcome.
class cancelled_error : public std::runtime_error {
public:
    explicit cancelled_error(outcome reason);
    outcome reason() const { return reason_; }

private:
    outcome reason_;
};

/// Throw cancelled_error carrying `token.stop_reason()` when the token has
/// stopped (no-op otherwise).  For call sites that unwind instead of
/// returning an outcome.
void throw_if_stopped(const cancellation_token& token);

/// Process-wide source wired to SIGINT/SIGTERM by
/// install_signal_cancellation().  Tokens derived from it make any flow
/// interruptible from the terminal: the first signal performs one
/// lock-free store (async-signal-safe) and the governed loops notice at
/// their next poll; a second signal of the same kind restores the default
/// disposition and re-raises, so a wedged stop never leaves the process
/// unkillable.
cancellation_source& signal_cancellation();

/// Install SIGINT and SIGTERM handlers that request cancellation on
/// signal_cancellation().  Idempotent.
void install_signal_cancellation();

} // namespace mcx
