// The flow engine: an ordered list of passes with a convergence policy,
// executed against one shared pass_context.
//
// A flow is built either programmatically (push passes) or from a spec
// string of '+'/',' separated pass names — the vocabulary behind the mcx
// CLI's `--flow mc`, `--flow mc+xor`, `--flow size-baseline`:
//
//   mc             the paper's AND-minimizing rewrite (to convergence)
//   xor            Paar resynthesis of the linear blocks
//   size-baseline  the generic gate-count baseline (alias: size)
//   cleanup        compact + re-strash
//
// `iterate_until_convergence` repeats the whole pass list while the AND
// count keeps improving — the multi-pass schedules of related work (e.g.
// alternating rewrites with cleanup) become one-line specs.
#pragma once

#include "core/pass.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mcx {

/// Per-pass knobs a flow spec can override (applied to the passes that
/// consume them; unrelated passes ignore them).
struct flow_params {
    rewrite_params rewrite;
    size_rewrite_params size_rewrite;
    uint32_t max_rounds = 100; ///< per rewrite pass invocation
    /// Repeat the whole pass list until the AND count stops improving
    /// (bounded by max_flow_iterations).
    bool iterate_until_convergence = false;
    uint32_t max_flow_iterations = 10;
    /// Flow-level worker count (`mcx --threads`): when non-zero it
    /// overrides rewrite.num_threads and size_rewrite.num_threads, so
    /// every rewrite pass of the flow runs the deterministic two-phase
    /// engine on this many workers.  0 leaves the per-pass values (and
    /// their sequential default) alone.  Results are bit-identical for
    /// any value >= 1 — see docs/parallel.md.
    uint32_t num_threads = 0;
    /// Flow-level cooperative stop (`mcx --deadline`, SIGINT/SIGTERM).
    /// When it stops, the running pass finishes at its next commit
    /// boundary and the flow ends — no further passes run.
    cancellation_token token;
    /// Per-pass wall-clock budget in seconds (`mcx --pass-deadline`;
    /// 0 = none).  Each pass gets a fresh deadline nested inside `token`,
    /// so one slow pass degrades gracefully while the rest of the flow
    /// still runs.
    double pass_deadline_seconds = 0.0;
};

struct flow {
    std::string name;
    std::vector<std::shared_ptr<const pass>> passes;
    flow_params params;
};

struct flow_result {
    std::string flow_name;
    xag_stats before{};
    xag_stats after{};
    double seconds = 0.0;
    uint32_t iterations = 0; ///< pass-list repetitions executed
    std::vector<pass_stats> passes; ///< one record per executed pass
    /// Why the flow ended: ok, or the reason it stopped early (flow
    /// deadline, cancellation, fault).  A pass-local deadline alone does
    /// NOT stop the flow and leaves this ok — it only sets limit_hit.
    outcome status = outcome::ok;
    /// True when any pass was cut short by a limit or fault, including
    /// pass-local deadlines the flow recovered from.  The emitted network
    /// is then best-effort: consistent and function-equivalent, but not
    /// necessarily converged.
    bool limit_hit = false;
};

/// Execute `f` over `network` through `ctx` (whose caches/databases/arena
/// persist across passes and across run_flow calls).
flow_result run_flow(xag& network, const flow& f, pass_context& ctx);

/// Context parameters matching a flow's pass parameters (database knobs,
/// classification iteration limit) — use when building the pass_context a
/// flow will run through, so the context's lazily-built resources honor
/// the flow's configuration.
pass_context_params context_params(const flow_params& params);

/// Build a flow from a spec string (see file comment).  Throws
/// std::invalid_argument on an unknown pass name.
flow make_flow(std::string_view spec, const flow_params& params = {});

/// The pass names make_flow accepts, for --list-flows style help.
std::vector<std::string> flow_pass_names();

} // namespace mcx
