// XOR-count resynthesis of linear blocks — the complementary optimization
// the paper explicitly leaves to related work ("Note that we do not
// consider any XOR optimization in this work. An algorithm to minimize the
// number of XOR for cryptography applications can be found in [14]").
//
// The XAG is partitioned into maximal XOR-only cones (linear blocks over
// GF(2)); each block is a linear system  y = M x  over its terminals
// (AND nodes, PIs).  The blocks are re-synthesized with Paar's greedy
// common-subexpression algorithm: repeatedly materialize the pair of
// columns that co-occurs in the most rows.  AND count — the paper's cost
// function — is untouched by construction.
#pragma once

#include "core/budget.h"
#include "xag/xag.h"

#include <cstdint>

namespace mcx {

class thread_pool;

struct xor_resynthesis_params {
    /// Hard width cap: rows wider than this never take part in pair
    /// extraction (0, the default, disables the cap — the pre-PR-4
    /// behavior was a fixed cap of 16).
    uint32_t max_pairing_width = 0;
    /// Seeding-work budget: rows join the pairing narrowest-first while
    /// the cumulative sum of width² stays under this bound (pair seeding
    /// is quadratic per row, and extraction cost tracks the same sum).
    /// The default admits every row of rewrite-scale circuits — 16-term
    /// and 200-term rows alike — while full-hash linear systems (MD5's
    /// widest accumulator rows run to ~4 500 terms, Σwidth² ≈ 8.5 · 10¹⁰)
    /// degrade gracefully: their widest rows keep their trees exactly as
    /// the old hard cap left them.  0 = unlimited.  Selection depends
    /// only on the sorted row widths, so it is deterministic.
    ///
    /// The budget is per worker: with a pool of W workers the effective
    /// admission bound is W × this value — the quadratic seeding is the
    /// part that parallelizes, so idle capacity is spent admitting wider
    /// rows instead of finishing early.  For a fixed admission set the
    /// pairing outcome is identical with and without a pool, at any
    /// worker count (xor_resynthesis_test exercises both).
    uint64_t pairing_work_budget = 2'000'000;
    /// Worker team for pair-count seeding (the Σwidth² part); nullptr
    /// runs the classic sequential seeding.  Extraction and the chain
    /// rebuilds stay sequential — they mutate shared state and their cost
    /// is linear in the extracted pairs.
    thread_pool* pool = nullptr;
    /// Cooperative stop.  Checked between pair extractions and between row
    /// rebuilds; stopping skips the remaining work (the rows already
    /// rebuilt keep their gains, the rest keep their old trees) and the
    /// stats carry the stop reason — the network is always left consistent
    /// and function-equivalent.
    cancellation_token token;
};

struct xor_resynthesis_stats {
    uint32_t xors_before = 0;
    uint32_t xors_after = 0;
    uint32_t blocks = 0;         ///< linear block roots rewritten
    uint32_t pairs_extracted = 0; ///< shared pair gates materialized
    uint32_t widest_row = 0;      ///< terms in the widest linear row seen
    uint32_t rows_paired = 0;     ///< rows admitted to pair extraction
    uint32_t widest_row_paired = 0; ///< widest row admitted
    uint32_t seed_workers = 1;    ///< workers the pair seeding ran on
    uint64_t effective_pairing_budget = 0; ///< per-worker budget × workers
    outcome status = outcome::ok; ///< non-ok when a token stopped the pass
};

/// Rewrite all maximal linear blocks.  Function-preserving; the AND count
/// never increases (it can drop when collapsed linear cones let downstream
/// AND gates constant-fold).
xor_resynthesis_stats xor_resynthesis(xag& network,
                                      const xor_resynthesis_params& params = {});

} // namespace mcx
