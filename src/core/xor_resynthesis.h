// XOR-count resynthesis of linear blocks — the complementary optimization
// the paper explicitly leaves to related work ("Note that we do not
// consider any XOR optimization in this work. An algorithm to minimize the
// number of XOR for cryptography applications can be found in [14]").
//
// The XAG is partitioned into maximal XOR-only cones (linear blocks over
// GF(2)); each block is a linear system  y = M x  over its terminals
// (AND nodes, PIs).  The blocks are re-synthesized with Paar's greedy
// common-subexpression algorithm: repeatedly materialize the pair of
// columns that co-occurs in the most rows.  AND count — the paper's cost
// function — is untouched by construction.
#pragma once

#include "xag/xag.h"

#include <cstdint>

namespace mcx {

struct xor_resynthesis_stats {
    uint32_t xors_before = 0;
    uint32_t xors_after = 0;
    uint32_t blocks = 0;         ///< linear block roots rewritten
    uint32_t pairs_extracted = 0; ///< shared pair gates materialized
};

/// Rewrite all maximal linear blocks.  Function-preserving; the AND count
/// never increases (it can drop when collapsed linear cones let downstream
/// AND gates constant-fold).
xor_resynthesis_stats xor_resynthesis(xag& network);

} // namespace mcx
