// Depth views of an XAG.  Both plain depth (every gate costs one level) and
// multiplicative depth (only AND gates count) are provided; the latter is
// the relevant metric for levelled FHE schemes.
#pragma once

#include "xag/xag.h"

#include <cstdint>

namespace mcx {

/// Longest PI-to-PO path counting every gate.
uint32_t depth(const xag& network);

/// Longest PI-to-PO path counting only AND gates (multiplicative depth).
uint32_t and_depth(const xag& network);

} // namespace mcx
