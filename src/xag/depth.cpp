#include "xag/depth.h"

#include <algorithm>
#include <vector>

namespace mcx {

namespace {

uint32_t longest_path(const xag& network, bool count_xor)
{
    std::vector<uint32_t> level(network.size(), 0);
    uint32_t worst = 0;
    for (const auto n : network.topological_order()) {
        if (!network.is_gate(n))
            continue;
        const auto in_level = std::max(level[network.fanin0(n).node()],
                                       level[network.fanin1(n).node()]);
        const uint32_t cost = network.is_and(n) ? 1 : (count_xor ? 1 : 0);
        level[n] = in_level + cost;
    }
    for (uint32_t i = 0; i < network.num_pos(); ++i)
        worst = std::max(worst, level[network.po_at(i).node()]);
    return worst;
}

} // namespace

uint32_t depth(const xag& network) { return longest_path(network, true); }

uint32_t and_depth(const xag& network)
{
    return longest_path(network, false);
}

} // namespace mcx
