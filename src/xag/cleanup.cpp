#include "xag/cleanup.h"

#include <stdexcept>

namespace mcx {

std::vector<signal> insert_network(xag& dst, const xag& src,
                                   std::span<const signal> leaf_map)
{
    if (leaf_map.size() != src.num_pis())
        throw std::invalid_argument{"insert_network: one signal per src PI"};

    std::vector<signal> map(src.size(), dst.get_constant(false));
    for (uint32_t i = 0; i < src.num_pis(); ++i)
        map[src.pi_at(i)] = leaf_map[i];

    for (const auto n : src.topological_order()) {
        if (!src.is_gate(n))
            continue;
        const auto f0 = src.fanin0(n);
        const auto f1 = src.fanin1(n);
        const auto a = map[f0.node()] ^ f0.complemented();
        const auto b = map[f1.node()] ^ f1.complemented();
        map[n] = src.is_and(n) ? dst.create_and(a, b) : dst.create_xor(a, b);
    }

    std::vector<signal> outputs;
    outputs.reserve(src.num_pos());
    for (uint32_t i = 0; i < src.num_pos(); ++i) {
        const auto po = src.po_at(i);
        outputs.push_back(map[po.node()] ^ po.complemented());
    }
    return outputs;
}

xag cleanup(const xag& network)
{
    xag fresh;
    std::vector<signal> leaves;
    leaves.reserve(network.num_pis());
    for (uint32_t i = 0; i < network.num_pis(); ++i)
        leaves.push_back(fresh.create_pi());
    for (const auto po : insert_network(fresh, network, leaves))
        fresh.create_po(po);
    return fresh;
}

} // namespace mcx
