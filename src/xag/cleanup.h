// Network hygiene: rebuilding a compacted copy (drop dead/dangling nodes,
// re-strash) and splicing one network into another (used to insert database
// circuits during rewriting and to compose generator blocks).
#pragma once

#include "xag/xag.h"

#include <span>
#include <vector>

namespace mcx {

/// A compacted, freshly strashed copy of `network`: only cones reachable
/// from the primary outputs survive, node ids are in topological order.
xag cleanup(const xag& network);

/// Copy the logic of `src` into `dst`, substituting `leaf_map[i]` (a signal
/// in dst) for PI i of src.  Returns the dst signals of src's primary
/// outputs.  Shares structure with dst through strashing.
std::vector<signal> insert_network(xag& dst, const xag& src,
                                   std::span<const signal> leaf_map);

} // namespace mcx
