// Functional-equivalence checks between two XAGs with the same interface.
// Exhaustive simulation for small input counts, word-parallel random
// simulation otherwise.  (Formal SAT-based checking lives in sat/equivalence.h.)
#pragma once

#include "xag/xag.h"

#include <cstdint>

namespace mcx {

/// Exhaustively compare two networks (<= 16 PIs).
bool exhaustive_equal(const xag& a, const xag& b);

/// Compare under `rounds` batches of 64 random patterns.  A `false` result
/// is definitive; `true` means no counterexample was found.
bool random_simulation_equal(const xag& a, const xag& b,
                             uint32_t rounds = 64, uint64_t seed = 1);

} // namespace mcx
