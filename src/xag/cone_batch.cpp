#include "xag/cone_batch.h"

#include "tt/truth_table.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace mcx {

void cone_simulator::ensure_size(size_t num_nodes)
{
    if (leaf_epoch_.size() < num_nodes) {
        leaf_epoch_.resize(num_nodes, 0);
        leaf_mask_.resize(num_nodes, 0);
        visit_epoch_.resize(num_nodes, 0);
        slot_.resize(num_nodes, 0);
    }
}

uint32_t cone_simulator::run_chunk(const xag& net, uint32_t root,
                                   std::span<const leaf_set> cuts,
                                   std::span<uint64_t> out, uint32_t forbidden)
{
    const auto C = static_cast<uint32_t>(cuts.size());
    const uint32_t full =
        C >= 32 ? ~0u : ((1u << C) - 1);
    ensure_size(net.size());
    if (epoch_ == UINT32_MAX) { // stamp wrap: invalidate everything once
        std::fill(leaf_epoch_.begin(), leaf_epoch_.end(), 0u);
        std::fill(visit_epoch_.begin(), visit_epoch_.end(), 0u);
        epoch_ = 0;
    }
    ++epoch_; // one epoch serves both leaf stamps and visit stamps
    ++traversals_;

    // Stamp leaf membership: leaf_mask_[l] = lanes where l is a leaf.
    for (uint32_t j = 0; j < C; ++j) {
        for (const auto l : cuts[j]) {
            if (l >= leaf_mask_.size())
                throw std::invalid_argument{"cone_simulator: bad leaf id"};
            if (leaf_epoch_[l] != epoch_) {
                leaf_epoch_[l] = epoch_;
                leaf_mask_[l] = 0;
            }
            leaf_mask_[l] |= 1u << j;
        }
    }
    const auto leaves_of = [&](uint32_t n) -> uint32_t {
        return leaf_epoch_[n] == epoch_ ? leaf_mask_[n] : 0;
    };

    // Iterative post-order DFS of the union cone: expand a gate's fanins
    // unless it is a leaf in every lane.
    order_.clear();
    stack_.clear();
    stack_.push_back(uint64_t{root} << 1);
    while (!stack_.empty()) {
        const auto top = stack_.back();
        stack_.pop_back();
        const auto n = static_cast<uint32_t>(top >> 1);
        if (top & 1) { // children done: emit
            order_.push_back(n);
            continue;
        }
        if (visit_epoch_[n] == epoch_)
            continue; // already scheduled or emitted
        visit_epoch_[n] = epoch_;
        stack_.push_back(top | 1);
        if (net.is_gate(n) && leaves_of(n) != full) {
            const auto n0 = net.fanin0(n).node();
            const auto n1 = net.fanin1(n).node();
            if (visit_epoch_[n0] != epoch_)
                stack_.push_back(uint64_t{n0} << 1);
            if (visit_epoch_[n1] != epoch_)
                stack_.push_back(uint64_t{n1} << 1);
        }
    }

    // Evaluate in post-order; slot_[n] indexes the lane pool.
    lanes_.resize(order_.size() * C);
    fail_.resize(order_.size());
    nodes_evaluated_ += order_.size();
    for (uint32_t s = 0; s < order_.size(); ++s) {
        const auto n = order_[s];
        slot_[n] = s;
        auto* v = lanes_.data() + static_cast<size_t>(s) * C;
        const auto lm = leaves_of(n);
        uint32_t failed;
        if (net.is_gate(n) && lm != full) {
            const auto f0 = net.fanin0(n);
            const auto f1 = net.fanin1(n);
            const auto* a = lanes_.data() +
                            static_cast<size_t>(slot_[f0.node()]) * C;
            const auto* b = lanes_.data() +
                            static_cast<size_t>(slot_[f1.node()]) * C;
            const uint64_t ca = f0.complemented() ? ~uint64_t{0} : 0;
            const uint64_t cb = f1.complemented() ? ~uint64_t{0} : 0;
            if (net.is_and(n)) {
                for (uint32_t j = 0; j < C; ++j)
                    v[j] = (a[j] ^ ca) & (b[j] ^ cb);
            } else {
                for (uint32_t j = 0; j < C; ++j)
                    v[j] = (a[j] ^ ca) ^ (b[j] ^ cb);
            }
            failed = fail_[slot_[f0.node()]] | fail_[slot_[f1.node()]];
        } else if (net.is_constant(n)) {
            std::fill(v, v + C, uint64_t{0});
            failed = 0;
        } else {
            // PI, or a gate that is a leaf in every lane: no intrinsic
            // value.  A PI read by a lane it does not serve as a leaf makes
            // that lane escape its boundary.
            std::fill(v, v + C, uint64_t{0});
            failed = net.is_gate(n) ? 0 : full;
        }
        if (n == forbidden)
            failed = full;
        // Leaf lanes override with their projection word and never fail.
        uint32_t pending = lm;
        while (pending != 0) {
            const auto j = static_cast<uint32_t>(std::countr_zero(pending));
            pending &= pending - 1;
            const auto& ls = cuts[j];
            const auto it = std::lower_bound(ls.begin(), ls.end(), n);
            v[j] = tt_projection_word(
                static_cast<uint32_t>(it - ls.begin()));
            failed &= ~(1u << j);
        }
        fail_[s] = failed;
    }

    const auto root_slot = slot_[root];
    const auto* rv = lanes_.data() + static_cast<size_t>(root_slot) * C;
    uint32_t valid = full & ~fail_[root_slot];
    for (uint32_t j = 0; j < C; ++j) {
        const auto k = static_cast<uint32_t>(cuts[j].size());
        if (k > 6) { // single-word limit; cuts never exceed 6 leaves
            valid &= ~(1u << j);
            out[j] = 0;
            continue;
        }
        out[j] = rv[j] & tt_mask(k);
    }
    return valid;
}

uint64_t cone_simulator::simulate_cuts(const xag& net, uint32_t root,
                                       std::span<const leaf_set> cuts,
                                       std::vector<uint64_t>& out,
                                       uint32_t forbidden)
{
    if (cuts.size() > 64)
        throw std::invalid_argument{"simulate_cuts: at most 64 cuts per call"};
    out.assign(cuts.size(), 0);
    uint64_t valid = 0;
    for (size_t base = 0; base < cuts.size(); base += max_lanes) {
        const auto n = std::min<size_t>(max_lanes, cuts.size() - base);
        const auto chunk_valid =
            run_chunk(net, root, cuts.subspan(base, n),
                      std::span<uint64_t>{out.data() + base, n}, forbidden);
        valid |= static_cast<uint64_t>(chunk_valid) << base;
    }
    return valid;
}

std::optional<uint64_t> cone_simulator::cone_word(
    const xag& net, uint32_t root, std::span<const uint32_t> leaves,
    uint32_t forbidden)
{
    single_.assign(leaves.begin(), leaves.end());
    uint64_t word = 0;
    const auto valid =
        run_chunk(net, root, {&single_, 1}, {&word, 1}, forbidden);
    if ((valid & 1) == 0)
        return std::nullopt;
    return word;
}

} // namespace mcx
