#include "xag/simulate.h"

#include <stdexcept>
#include <unordered_map>

namespace mcx {

std::vector<truth_table> simulate(const xag& network, uint32_t max_vars)
{
    const auto n = network.num_pis();
    if (n > max_vars)
        throw std::invalid_argument{
            "simulate: too many PIs for exhaustive simulation"};

    std::vector<truth_table> values(network.size(), truth_table{n});
    for (uint32_t i = 0; i < n; ++i)
        values[network.pi_at(i)] = truth_table::projection(n, i);

    for (const auto node : network.topological_order()) {
        if (!network.is_gate(node))
            continue;
        const auto f0 = network.fanin0(node);
        const auto f1 = network.fanin1(node);
        const auto a =
            f0.complemented() ? ~values[f0.node()] : values[f0.node()];
        const auto b =
            f1.complemented() ? ~values[f1.node()] : values[f1.node()];
        values[node] = network.is_and(node) ? (a & b) : (a ^ b);
    }

    std::vector<truth_table> outputs;
    outputs.reserve(network.num_pos());
    for (uint32_t i = 0; i < network.num_pos(); ++i) {
        const auto po = network.po_at(i);
        outputs.push_back(po.complemented() ? ~values[po.node()]
                                            : values[po.node()]);
    }
    return outputs;
}

std::vector<uint64_t> simulate_words(const xag& network,
                                     std::span<const uint64_t> pi_words)
{
    if (pi_words.size() != network.num_pis())
        throw std::invalid_argument{"simulate_words: one word per PI"};

    std::vector<uint64_t> values(network.size(), 0);
    for (uint32_t i = 0; i < network.num_pis(); ++i)
        values[network.pi_at(i)] = pi_words[i];

    for (const auto node : network.topological_order()) {
        if (!network.is_gate(node))
            continue;
        const auto f0 = network.fanin0(node);
        const auto f1 = network.fanin1(node);
        const auto a = values[f0.node()] ^
                       (f0.complemented() ? ~uint64_t{0} : 0);
        const auto b = values[f1.node()] ^
                       (f1.complemented() ? ~uint64_t{0} : 0);
        values[node] = network.is_and(node) ? (a & b) : (a ^ b);
    }

    std::vector<uint64_t> outputs;
    outputs.reserve(network.num_pos());
    for (uint32_t i = 0; i < network.num_pos(); ++i) {
        const auto po = network.po_at(i);
        outputs.push_back(values[po.node()] ^
                          (po.complemented() ? ~uint64_t{0} : 0));
    }
    return outputs;
}

std::vector<bool> simulate_pattern(const xag& network,
                                   const std::vector<bool>& inputs)
{
    std::vector<uint64_t> words(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i)
        words[i] = inputs[i] ? 1 : 0;
    const auto out_words = simulate_words(network, words);
    std::vector<bool> outputs(out_words.size());
    for (size_t i = 0; i < out_words.size(); ++i)
        outputs[i] = (out_words[i] & 1) != 0;
    return outputs;
}

truth_table cone_function(const xag& network, uint32_t root,
                          std::span<const uint32_t> leaves)
{
    const auto k = static_cast<uint32_t>(leaves.size());
    if (k > 16)
        throw std::invalid_argument{"cone_function: too many leaves"};

    std::unordered_map<uint32_t, truth_table> values;
    for (uint32_t i = 0; i < k; ++i)
        values.emplace(leaves[i], truth_table::projection(k, i));

    // Recursive evaluation with memoization over the cone.
    std::vector<uint32_t> stack{root};
    while (!stack.empty()) {
        const auto n = stack.back();
        if (values.count(n)) {
            stack.pop_back();
            continue;
        }
        if (n == 0) {
            values.emplace(n, truth_table::constant(k, false));
            stack.pop_back();
            continue;
        }
        if (!network.is_gate(n))
            throw std::invalid_argument{
                "cone_function: cone escapes the leaf boundary"};
        const auto n0 = network.fanin0(n).node();
        const auto n1 = network.fanin1(n).node();
        const auto it0 = values.find(n0);
        const auto it1 = values.find(n1);
        if (it0 == values.end() || it1 == values.end()) {
            if (it0 == values.end())
                stack.push_back(n0);
            if (it1 == values.end())
                stack.push_back(n1);
            continue;
        }
        const auto a =
            network.fanin0(n).complemented() ? ~it0->second : it0->second;
        const auto b =
            network.fanin1(n).complemented() ? ~it1->second : it1->second;
        values.emplace(n, network.is_and(n) ? (a & b) : (a ^ b));
        stack.pop_back();
    }
    return values.at(root);
}

} // namespace mcx
