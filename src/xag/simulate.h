// XAG simulation: exhaustive (truth table per output) for small input
// counts, and 64-pattern word-parallel simulation for large networks.
#pragma once

#include "tt/truth_table.h"
#include "xag/xag.h"

#include <cstdint>
#include <span>
#include <vector>

namespace mcx {

/// Exhaustive simulation: one truth table over all PIs per primary output.
/// Guarded to at most `max_vars` PIs (default 16) — beyond that the tables
/// no longer fit in memory for realistic networks.
std::vector<truth_table> simulate(const xag& network, uint32_t max_vars = 16);

/// Word-parallel simulation of 64 input patterns: `pi_words[i]` holds the 64
/// values of PI i; returns one word per primary output.
std::vector<uint64_t> simulate_words(const xag& network,
                                     std::span<const uint64_t> pi_words);

/// Single-pattern simulation (convenience wrapper over simulate_words).
std::vector<bool> simulate_pattern(const xag& network,
                                   const std::vector<bool>& inputs);

/// Truth table of an arbitrary internal cone: function of `root` expressed
/// over the given `leaves` (at most 16).  Nodes outside the cone of the
/// leaves must not be reachable from root without passing a leaf.
truth_table cone_function(const xag& network, uint32_t root,
                          std::span<const uint32_t> leaves);

} // namespace mcx
