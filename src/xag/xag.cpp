#include "xag/xag.h"

#include <algorithm>
#include <atomic>

namespace mcx {

xag::xag()
{
    // Version numbers never collide across networks (each instance claims a
    // disjoint 2^32 range), so a consumer holding a (pointer, version) pair
    // cannot be fooled by a different network reusing the same address.
    static std::atomic<uint64_t> next_version_base{0};
    structural_version_ = next_version_base.fetch_add(1) << 32;
    nodes_.emplace_back(); // node 0: constant false
    fanouts_.emplace_back();
}

void xag::arm_change_log()
{
    changes_.armed = true;
    changes_.overflowed = false;
    changes_.base_version = structural_version_;
    changes_.nodes.clear();
}

void xag::disarm_change_log()
{
    changes_.armed = false;
    changes_.overflowed = false;
    changes_.nodes.clear();
    changes_.nodes.shrink_to_fit();
}

signal xag::create_pi()
{
    const auto id = static_cast<uint32_t>(nodes_.size());
    node n;
    n.kind = node_kind::pi;
    n.aux = static_cast<uint32_t>(pis_.size());
    nodes_.push_back(n);
    fanouts_.emplace_back();
    pis_.push_back(id);
    log_change(id);
    return signal{id, false};
}

uint32_t xag::pi_index(uint32_t n) const
{
    if (!is_pi(n))
        throw std::invalid_argument{"pi_index: node is not a PI"};
    return nodes_[n].aux;
}

uint32_t xag::create_po(signal s)
{
    incr_ref(s.node());
    pos_.push_back(s);
    // A new PO can make an externally-held cone reachable, so conservatively
    // dirty its root for incremental consumers.
    log_change(s.node());
    return static_cast<uint32_t>(pos_.size() - 1);
}

bool xag::try_fold(node_kind kind, signal a, signal b, signal& folded) const
{
    if (kind == node_kind::and_gate) {
        if (a == b) {
            folded = a;
            return true;
        }
        if (a == !b) {
            folded = get_constant(false);
            return true;
        }
        if (a.node() == 0) {
            folded = a.complemented() ? b : get_constant(false);
            return true;
        }
        if (b.node() == 0) {
            folded = b.complemented() ? a : get_constant(false);
            return true;
        }
    } else {
        if (a == b) {
            folded = get_constant(false);
            return true;
        }
        if (a == !b) {
            folded = get_constant(true);
            return true;
        }
        if (a.node() == 0) {
            folded = b ^ a.complemented();
            return true;
        }
        if (b.node() == 0) {
            folded = a ^ b.complemented();
            return true;
        }
    }
    return false;
}

xag::canon_gate xag::canonicalize(node_kind kind, signal a, signal b) const
{
    canon_gate c{a, b, false};
    if (kind == node_kind::xor_gate) {
        c.output_parity = a.complemented() ^ b.complemented();
        c.a = signal{a.node(), false};
        c.b = signal{b.node(), false};
    }
    if (c.a.literal() > c.b.literal())
        std::swap(c.a, c.b);
    return c;
}

signal xag::create_gate(node_kind kind, signal a, signal b)
{
    signal folded;
    if (try_fold(kind, a, b, folded))
        return folded;

    const auto canon = canonicalize(kind, a, b);
    const auto key = strash_key(kind, canon.a, canon.b);
    if (const auto it = strash_.find(key); it != strash_.end())
        return signal{it->second} ^ canon.output_parity;

    const auto id = static_cast<uint32_t>(nodes_.size());
    node n;
    n.kind = kind;
    n.fanin[0] = canon.a;
    n.fanin[1] = canon.b;
    nodes_.push_back(n);
    fanouts_.emplace_back();
    incr_ref(canon.a.node());
    incr_ref(canon.b.node());
    add_fanout(canon.a.node(), id);
    add_fanout(canon.b.node(), id);
    strash_.emplace(key, signal{id, false}.literal());
    if (kind == node_kind::and_gate)
        ++num_ands_;
    else
        ++num_xors_;
    log_change(id);
    return signal{id, false} ^ canon.output_parity;
}

signal xag::create_and(signal a, signal b)
{
    return create_gate(node_kind::and_gate, a, b);
}

signal xag::create_xor(signal a, signal b)
{
    return create_gate(node_kind::xor_gate, a, b);
}

void xag::add_fanout(uint32_t n, uint32_t parent)
{
    fanouts_[n].push_back(parent);
}

void xag::remove_fanout(uint32_t n, uint32_t parent)
{
    auto& list = fanouts_[n];
    const auto it = std::find(list.begin(), list.end(), parent);
    if (it != list.end()) {
        *it = list.back();
        list.pop_back();
    }
}

void xag::decr_ref(uint32_t n)
{
    auto& nd = nodes_[n];
    if (nd.refs == 0)
        throw std::logic_error{"decr_ref: reference count underflow"};
    if (--nd.refs == 0 && is_gate(n) && !nd.dead)
        take_out(n);
}

void xag::unhash(uint32_t n)
{
    const auto& nd = nodes_[n];
    const auto canon = canonicalize(nd.kind, nd.fanin[0], nd.fanin[1]);
    const auto key = strash_key(nd.kind, canon.a, canon.b);
    if (const auto it = strash_.find(key);
        it != strash_.end() && signal{it->second}.node() == n)
        strash_.erase(it);
}

void xag::take_out(uint32_t n)
{
    auto& nd = nodes_[n];
    unhash(n);
    log_change(n);
    nd.dead = true;
    nd.repl = signal{n, false}; // dangling death: no replacement
    if (nd.kind == node_kind::and_gate)
        --num_ands_;
    else
        --num_xors_;
    for (const auto fi : {nd.fanin[0], nd.fanin[1]}) {
        remove_fanout(fi.node(), n);
        decr_ref(fi.node());
    }
}

signal xag::resolve(signal s) const
{
    while (nodes_[s.node()].dead) {
        const auto repl = nodes_[s.node()].repl;
        if (repl.node() == s.node())
            break; // dangling death, nothing better to offer
        s = repl ^ s.complemented();
    }
    return s;
}

void xag::take_ref(signal s)
{
    incr_ref(s.node());
}

void xag::release_ref(signal s)
{
    decr_ref(s.node());
}

void xag::substitute(uint32_t old_node, signal replacement)
{
    if (is_pi(old_node) || is_constant(old_node))
        throw std::invalid_argument{"substitute: can only substitute gates"};

    struct item {
        uint32_t old_node;
        signal replacement; ///< protected by one reference until processed
    };
    std::vector<item> queue;
    const auto enqueue = [&](uint32_t o, signal s) {
        incr_ref(s.node());
        queue.push_back({o, s});
    };
    enqueue(old_node, replacement);

    for (size_t qi = 0; qi < queue.size(); ++qi) {
        const auto [o, original_s] = queue[qi];
        const auto s = resolve(original_s);
        auto& old_nd = nodes_[o];
        if (old_nd.dead || (s.node() == o && !s.complemented())) {
            decr_ref(original_s.node());
            continue;
        }
        if (s.node() == o)
            throw std::logic_error{"substitute: node equals own complement"};

        // Retire o: mark dead with a forwarding literal.
        unhash(o);
        log_change(o);
        old_nd.dead = true;
        old_nd.repl = s;
        if (old_nd.kind == node_kind::and_gate)
            --num_ands_;
        else
            --num_xors_;

        // Re-point primary outputs.
        for (auto& po : pos_)
            if (po.node() == o) {
                const auto updated = s ^ po.complemented();
                incr_ref(updated.node());
                --old_nd.refs;
                po = updated;
            }

        // Re-point fanouts, folding and re-hashing each affected parent.
        const auto fanout_list = std::move(fanouts_[o]);
        fanouts_[o].clear();
        for (const auto p : fanout_list) {
            auto& pn = nodes_[p];
            if (pn.dead)
                continue;
            unhash(p);
            log_change(p); // fanin rewired below: p's cut sets are stale
            for (auto& fi : pn.fanin)
                if (fi.node() == o) {
                    const auto updated = s ^ fi.complemented();
                    incr_ref(updated.node());
                    add_fanout(updated.node(), p);
                    --old_nd.refs;
                    fi = updated;
                }
            signal folded;
            if (try_fold(pn.kind, pn.fanin[0], pn.fanin[1], folded)) {
                enqueue(p, folded);
                continue;
            }
            const auto canon = canonicalize(pn.kind, pn.fanin[0], pn.fanin[1]);
            const auto key = strash_key(pn.kind, canon.a, canon.b);
            if (const auto it = strash_.find(key); it != strash_.end()) {
                const auto existing = signal{it->second};
                if (existing.node() != p)
                    enqueue(p, existing ^ canon.output_parity);
            } else {
                strash_.emplace(key,
                                (signal{p, false} ^ canon.output_parity)
                                    .literal());
            }
        }

        // Release o's cone.
        for (const auto fi : {old_nd.fanin[0], old_nd.fanin[1]}) {
            remove_fanout(fi.node(), o);
            decr_ref(fi.node());
        }
        decr_ref(original_s.node());
    }
}

std::vector<uint32_t> xag::topological_order() const
{
    // Post-order DFS with three colours: a node is appended only when all
    // its fanins are finalized.  (Marking at push time is not enough: a node
    // reachable through paths of different depths could otherwise appear
    // after one of its fanouts.)
    std::vector<uint32_t> order;
    order.reserve(nodes_.size());
    std::vector<uint8_t> colour(nodes_.size(), 0); // 0 new, 1 open, 2 done
    colour[0] = 2;
    for (const auto pi : pis_) {
        order.push_back(pi);
        colour[pi] = 2;
    }
    std::vector<std::pair<uint32_t, uint8_t>> stack;
    for (const auto po : pos_) {
        if (colour[po.node()] == 2)
            continue;
        stack.emplace_back(po.node(), 0);
        while (!stack.empty()) {
            const auto [n, phase] = stack.back();
            if (phase == 0) {
                if (colour[n] == 2) {
                    stack.pop_back();
                    continue;
                }
                colour[n] = 1;
                stack.back().second = 1;
                const auto f0 = fanin0(n).node();
                const auto f1 = fanin1(n).node();
                if (colour[f0] != 2)
                    stack.emplace_back(f0, 0);
                if (colour[f1] != 2)
                    stack.emplace_back(f1, 0);
            } else {
                if (colour[n] != 2) {
                    colour[n] = 2;
                    order.push_back(n);
                }
                stack.pop_back();
            }
        }
    }
    return order;
}

void xag::check_integrity() const
{
    std::vector<uint32_t> expected_refs(nodes_.size(), 0);
    uint32_t live_ands = 0, live_xors = 0;
    for (uint32_t n = 0; n < nodes_.size(); ++n) {
        const auto& nd = nodes_[n];
        if (nd.dead || !is_gate(n))
            continue;
        (nd.kind == node_kind::and_gate ? live_ands : live_xors) += 1;
        for (const auto fi : {nd.fanin[0], nd.fanin[1]}) {
            if (nodes_[fi.node()].dead)
                throw std::logic_error{"live node references dead fanin"};
            ++expected_refs[fi.node()];
            const auto& list = fanouts_[fi.node()];
            if (std::find(list.begin(), list.end(), n) == list.end())
                throw std::logic_error{"fanout list missing a parent"};
        }
        const auto canon = canonicalize(nd.kind, nd.fanin[0], nd.fanin[1]);
        const auto it = strash_.find(strash_key(nd.kind, canon.a, canon.b));
        if (it == strash_.end())
            throw std::logic_error{"live gate missing from strash table"};
        if (signal{it->second}.node() != n)
            throw std::logic_error{"strash entry does not match live gate"};
    }
    for (const auto po : pos_) {
        if (nodes_[po.node()].dead)
            throw std::logic_error{"primary output references dead node"};
        ++expected_refs[po.node()];
    }
    for (uint32_t n = 0; n < nodes_.size(); ++n)
        if (!nodes_[n].dead && nodes_[n].refs != expected_refs[n])
            throw std::logic_error{
                "reference count mismatch at node " + std::to_string(n) +
                ": stored " + std::to_string(nodes_[n].refs) + ", expected " +
                std::to_string(expected_refs[n])};
    if (live_ands != num_ands_ || live_xors != num_xors_)
        throw std::logic_error{"gate counters out of sync"};

    // Acyclicity via DFS colouring.
    std::vector<uint8_t> colour(nodes_.size(), 0);
    for (const auto po : pos_) {
        std::vector<std::pair<uint32_t, uint8_t>> stack{{po.node(), 0}};
        while (!stack.empty()) {
            const auto [n, phase] = stack.back();
            if (phase == 0) {
                if (colour[n] == 1)
                    throw std::logic_error{"cycle detected"};
                if (colour[n] == 2 || !is_gate(n)) {
                    stack.pop_back();
                    continue;
                }
                colour[n] = 1;
                stack.back().second = 1;
                const auto f0 = fanin0(n).node();
                const auto f1 = fanin1(n).node();
                stack.emplace_back(f0, 0);
                stack.emplace_back(f1, 0);
            } else {
                colour[n] = 2;
                stack.pop_back();
            }
        }
    }
}

} // namespace mcx
