// Batched word-parallel cone evaluation — the rewrite engine's replacement
// for per-cut cone_function re-simulation (PR 1 measured that re-simulation
// as the dominant cost of a rewriting round).
//
// All cut functions have at most 6 leaves, so every value is one 64-bit
// word.  The simulator owns epoch-stamped dense buffers (no per-call
// unordered_map, no truth_table heap traffic) and evaluates all cuts of one
// root in a single traversal of the union cone: node values are vectors of
// C lanes (one lane per cut), leaves override their lane with a projection
// word, and a per-lane "failed" mask tracks cones that escape their leaf
// boundary (the batched equivalent of cone_function's
// `cone escapes the leaf boundary` exception).
//
// A lane's value at nodes below that cut's leaves is garbage by design —
// the leaf override cuts it off before it can reach the root, exactly as
// the per-cut traversal would never have visited those nodes.
#pragma once

#include "xag/xag.h"

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mcx {

class cone_simulator {
public:
    /// Lanes evaluated per traversal; larger requests are chunked.
    static constexpr uint32_t max_lanes = 32;

    /// One cut request: sorted, duplicate-free leaf node ids (<= 6).
    using leaf_set = std::vector<uint32_t>;

    /// Evaluate the function of `root` over each leaf set in `cuts` in one
    /// traversal per chunk of `max_lanes`.  `out[j]` receives the function
    /// word of cut j (masked to tt_mask(k_j)); bit j of the returned mask is
    /// set when lane j is valid.  A lane fails when its cone escapes the
    /// leaf boundary (reaches a PI that is not one of its leaves) or when it
    /// contains `forbidden`.
    uint64_t simulate_cuts(const xag& net, uint32_t root,
                           std::span<const leaf_set> cuts,
                           std::vector<uint64_t>& out,
                           uint32_t forbidden = UINT32_MAX);

    /// Single-cone convenience lane: function word of `root` over `leaves`,
    /// or nullopt when the cone escapes the boundary / contains `forbidden`.
    std::optional<uint64_t> cone_word(const xag& net, uint32_t root,
                                     std::span<const uint32_t> leaves,
                                     uint32_t forbidden = UINT32_MAX);

    /// Nodes evaluated across all traversals (perf counter).
    uint64_t nodes_evaluated() const { return nodes_evaluated_; }
    /// Traversals run (one per root-chunk).
    uint64_t traversals() const { return traversals_; }

private:
    void ensure_size(size_t num_nodes);
    uint32_t run_chunk(const xag& net, uint32_t root,
                       std::span<const leaf_set> cuts,
                       std::span<uint64_t> out, uint32_t forbidden);

    // Epoch-stamped per-node state (dense, index = node id).
    std::vector<uint32_t> leaf_epoch_; ///< stamp for leaf_mask_
    std::vector<uint32_t> leaf_mask_;  ///< lanes where the node is a leaf
    std::vector<uint32_t> visit_epoch_;///< stamp for slot_/visited state
    std::vector<uint32_t> slot_;       ///< index into the lane value pool
    uint32_t epoch_ = 0;

    // Per-traversal scratch (capacity reused across calls).
    std::vector<uint32_t> order_;      ///< post-order of the union cone
    std::vector<uint64_t> lanes_;      ///< values: slot * C + lane
    std::vector<uint32_t> fail_;       ///< failed-lane mask per slot
    std::vector<uint64_t> stack_;      ///< DFS stack: (node << 1) | expanded
    leaf_set single_;                  ///< cone_word's one-lane request

    uint64_t nodes_evaluated_ = 0;
    uint64_t traversals_ = 0;
};

} // namespace mcx
