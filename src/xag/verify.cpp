#include "xag/verify.h"

#include "xag/simulate.h"

#include <random>
#include <stdexcept>

namespace mcx {

bool exhaustive_equal(const xag& a, const xag& b)
{
    if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos())
        return false;
    return simulate(a) == simulate(b);
}

bool random_simulation_equal(const xag& a, const xag& b, uint32_t rounds,
                             uint64_t seed)
{
    if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos())
        return false;
    std::mt19937_64 rng{seed};
    std::vector<uint64_t> words(a.num_pis());
    for (uint32_t round = 0; round < rounds; ++round) {
        for (auto& w : words)
            w = rng();
        if (simulate_words(a, words) != simulate_words(b, words))
            return false;
    }
    return true;
}

} // namespace mcx
