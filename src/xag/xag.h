// XOR-AND graph (XAG): the paper's logic-network data structure (§2.1).
//
// An XAG is a DAG whose internal nodes are 2-input AND or XOR gates and whose
// edges may be complemented.  The number of AND nodes is the multiplicative
// complexity of the network, the cost function the whole library minimizes.
//
// The network keeps
//  * structural hashing (strash) with constant folding, so that syntactically
//    equal gates are created once;
//  * reference (fanout) counts, needed for MFFC-based rewriting gains;
//  * explicit fanout lists, enabling in-place node substitution with
//    cascading merge/fold (the "DAG-aware" part of DAG-aware rewriting).
#pragma once

#include "core/fault_inject.h"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace mcx {

/// A polarized edge: node index plus complement flag, packed as a literal.
class signal {
public:
    constexpr signal() = default;
    constexpr explicit signal(uint32_t literal) : lit_{literal} {}
    constexpr signal(uint32_t node, bool complemented)
        : lit_{(node << 1) | static_cast<uint32_t>(complemented)} {}

    constexpr uint32_t node() const { return lit_ >> 1; }
    constexpr bool complemented() const { return (lit_ & 1) != 0; }
    constexpr uint32_t literal() const { return lit_; }

    constexpr signal operator!() const { return signal{lit_ ^ 1}; }
    constexpr signal operator^(bool c) const
    {
        return signal{lit_ ^ static_cast<uint32_t>(c)};
    }

    constexpr bool operator==(const signal&) const = default;

private:
    uint32_t lit_ = 0;
};

enum class node_kind : uint8_t { constant, pi, and_gate, xor_gate };

class xag {
public:
    /// Node 0 is the constant-false node; `get_constant(true)` is its
    /// complemented literal.
    xag();

    // ------------------------------------------------------------ building
    signal get_constant(bool value) const { return signal{0u, value}; }
    signal create_pi();
    signal create_and(signal a, signal b);
    signal create_xor(signal a, signal b);

    signal create_not(signal a) const { return !a; }
    signal create_or(signal a, signal b) { return !create_and(!a, !b); }
    signal create_nand(signal a, signal b) { return !create_and(a, b); }
    signal create_nor(signal a, signal b) { return create_and(!a, !b); }
    signal create_xnor(signal a, signal b) { return !create_xor(a, b); }

    /// if-then-else with one AND gate: ite(c,t,e) = ((t ^ e) & c) ^ e.
    signal create_ite(signal c, signal t, signal e)
    {
        return create_xor(create_and(create_xor(t, e), c), e);
    }

    /// Majority-of-three with one AND gate (the paper's Example 3.1 shows
    /// MC(<abc>) = 1): <abc> = ((a ^ b) & (a ^ c)) ^ a.
    signal create_maj(signal a, signal b, signal c)
    {
        return create_xor(create_and(create_xor(a, b), create_xor(a, c)), a);
    }

    /// Majority-of-three the "textbook" way (3 AND gates); used by generators
    /// that intentionally start from non-MC-optimized structures.
    signal create_maj_naive(signal a, signal b, signal c)
    {
        return create_or(create_or(create_and(a, b), create_and(a, c)),
                         create_and(b, c));
    }

    uint32_t create_po(signal s);

    // ------------------------------------------------------------- access
    uint32_t size() const { return static_cast<uint32_t>(nodes_.size()); }
    uint32_t num_pis() const { return static_cast<uint32_t>(pis_.size()); }
    uint32_t num_pos() const { return static_cast<uint32_t>(pos_.size()); }
    uint32_t num_ands() const { return num_ands_; }
    uint32_t num_xors() const { return num_xors_; }
    /// Live gates (AND + XOR).
    uint32_t num_gates() const { return num_ands_ + num_xors_; }

    node_kind kind(uint32_t n) const { return nodes_[n].kind; }
    bool is_constant(uint32_t n) const { return n == 0; }
    bool is_pi(uint32_t n) const { return nodes_[n].kind == node_kind::pi; }
    bool is_and(uint32_t n) const
    {
        return nodes_[n].kind == node_kind::and_gate;
    }
    bool is_xor(uint32_t n) const
    {
        return nodes_[n].kind == node_kind::xor_gate;
    }
    bool is_gate(uint32_t n) const { return is_and(n) || is_xor(n); }
    bool is_dead(uint32_t n) const { return nodes_[n].dead; }

    signal fanin0(uint32_t n) const { return nodes_[n].fanin[0]; }
    signal fanin1(uint32_t n) const { return nodes_[n].fanin[1]; }

    uint32_t pi_at(uint32_t index) const { return pis_[index]; }
    signal po_at(uint32_t index) const { return pos_[index]; }
    /// Index of a PI node among the PIs (node must be a PI).
    uint32_t pi_index(uint32_t n) const;

    /// Number of referencing fanouts (gate fanins + primary outputs).
    uint32_t ref_count(uint32_t n) const { return nodes_[n].refs; }
    const std::vector<uint32_t>& fanouts(uint32_t n) const
    {
        return fanouts_[n];
    }

    // ------------------------------------------------------- manipulation
    /// Replace every reference to node `old_node` by `replacement` (which
    /// must compute the same function).  Merges with structurally equal
    /// nodes, folds constants, and recursively removes dangling cones.
    /// Precondition: the cone of `replacement` does not contain `old_node`
    /// (otherwise rewiring would alter the replacement's own function);
    /// callers such as the rewriting engine check this before substituting.
    void substitute(uint32_t old_node, signal replacement);

    /// Hold an external reference on a signal (e.g. a candidate circuit that
    /// is not yet attached anywhere), preventing cleanup of its cone.
    void take_ref(signal s);

    /// Release a reference taken with take_ref; a cone whose references drop
    /// to zero is removed recursively.
    void release_ref(signal s);

    /// Follow substitution chains: the live signal currently representing s.
    signal resolve(signal s) const;

    /// Nodes in a topological order (fanins before fanouts), live nodes
    /// reachable from the primary outputs only.  Includes PIs, excludes the
    /// constant node.
    std::vector<uint32_t> topological_order() const;

    /// Verify internal invariants (ref counts, fanout lists, strash, acyclicity).
    /// Throws std::logic_error with a description on violation.  For tests.
    void check_integrity() const;

    // ------------------------------------------- structural-change tracking
    //
    // Incremental consumers (the cut maintainer, src/cut/cut_incremental.h)
    // need to know which nodes' local structure changed between two points
    // in time.  The network keeps a monotone `structural_version` (seeded
    // from a process-global counter, so two different networks never share
    // a version) and an opt-in journal: while armed, every node whose
    // structure changes — a gate created, a fanin rewired by substitute, a
    // node dying — is appended to `changes().nodes` (duplicates allowed;
    // consumers dedup).  A consumer arms the log, remembers the version,
    // and later trusts the journal exactly when the log is still armed with
    // the same base version — any re-arm, copy, or object replacement in
    // between breaks the match and forces a full rebuild.

    // The journal is bounded: once more nodes have been recorded than an
    // incremental consumer could profitably use (several times the node
    // count), recording stops, the memory is released, and `overflowed`
    // tells consumers to fall back to a full rebuild.  This also caps the
    // cost of an armed log that its consumer abandoned (e.g. a destroyed
    // pass_context) on a long-lived network.
    struct change_log {
        bool armed = false;
        bool overflowed = false;     ///< recording stopped; do a full rebuild
        uint64_t base_version = 0;   ///< structural_version at arm time
        std::vector<uint32_t> nodes; ///< touched node ids since armed
    };

    uint64_t structural_version() const { return structural_version_; }
    /// Clear the journal and start recording; base_version is the current
    /// structural_version.
    void arm_change_log();
    /// Stop recording and drop the journal.
    void disarm_change_log();
    const change_log& changes() const { return changes_; }

private:
    struct node {
        node_kind kind = node_kind::constant;
        bool dead = false;
        signal fanin[2] = {signal{0}, signal{0}};
        uint32_t refs = 0;
        uint32_t aux = 0; ///< PI index for PI nodes
        signal repl{0};   ///< replacement literal once dead by substitution
    };

    uint64_t strash_key(node_kind kind, signal a, signal b) const
    {
        return (static_cast<uint64_t>(kind) << 62) |
               (static_cast<uint64_t>(a.literal()) << 31) |
               static_cast<uint64_t>(b.literal());
    }

    /// Constant-fold a gate; returns true and sets `folded` when the gate
    /// collapses to an existing signal.
    bool try_fold(node_kind kind, signal a, signal b, signal& folded) const;

    /// Canonical strash form of a gate: orders fanins and, for XOR, strips
    /// fanin complements into the returned output parity.
    struct canon_gate {
        signal a, b;
        bool output_parity;
    };
    canon_gate canonicalize(node_kind kind, signal a, signal b) const;

    signal create_gate(node_kind kind, signal a, signal b);

    void add_fanout(uint32_t n, uint32_t parent);
    void remove_fanout(uint32_t n, uint32_t parent);
    void incr_ref(uint32_t n) { ++nodes_[n].refs; }
    void decr_ref(uint32_t n);

    /// Mark a zero-ref gate dead and release its fanins, recursively.
    void take_out(uint32_t n);

    /// Erase n's current strash entry if it points at n.
    void unhash(uint32_t n);

    /// Record a structural change of node n (journal + version bump).
    void log_change(uint32_t n)
    {
        ++structural_version_;
        if (!changes_.armed || changes_.overflowed)
            return;
        // An injected journal-overflow fault takes the same degradation
        // path as a real one — overflow is a state, not an exception, so
        // the injection is absorbed here rather than thrown onward.
        bool force_overflow = false;
        try {
            fault_injection::fire(fault_site::journal_overflow);
        } catch (const fault_injected_error&) {
            force_overflow = true;
        }
        if (force_overflow ||
            changes_.nodes.size() >= 8 * nodes_.size() + 65536) {
            changes_.overflowed = true;
            changes_.nodes.clear();
            changes_.nodes.shrink_to_fit();
            return;
        }
        changes_.nodes.push_back(n);
    }

    std::vector<node> nodes_;
    std::vector<uint32_t> pis_;
    std::vector<signal> pos_;
    std::vector<std::vector<uint32_t>> fanouts_;
    std::unordered_map<uint64_t, uint32_t> strash_; ///< key -> stored literal
    uint32_t num_ands_ = 0;
    uint32_t num_xors_ = 0;
    uint64_t structural_version_ = 0; ///< seeded per network, see xag()
    change_log changes_;
};

/// Statistics bundle used by reports and benches.
struct xag_stats {
    uint32_t num_pis = 0;
    uint32_t num_pos = 0;
    uint32_t num_ands = 0;
    uint32_t num_xors = 0;
};

inline xag_stats stats_of(const xag& network)
{
    return {network.num_pis(), network.num_pos(), network.num_ands(),
            network.num_xors()};
}

} // namespace mcx
