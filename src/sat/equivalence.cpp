#include "sat/equivalence.h"

#include "sat/cnf.h"

#include <stdexcept>

namespace mcx::sat {

equivalence_report check_equivalence(const xag& a, const xag& b,
                                     uint64_t conflict_budget)
{
    if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos())
        throw std::invalid_argument{
            "check_equivalence: interface mismatch"};

    solver s;
    std::vector<literal> pis;
    pis.reserve(a.num_pis());
    for (uint32_t i = 0; i < a.num_pis(); ++i)
        pis.push_back(literal{s.add_variable(), false});

    const auto enc_a = encode(s, a, pis);
    const auto enc_b = encode(s, b, pis);

    // Miter: OR over pairwise XOR of outputs must be satisfiable for a
    // difference to exist.
    std::vector<literal> any_diff;
    any_diff.reserve(a.num_pos());
    for (uint32_t i = 0; i < a.num_pos(); ++i) {
        const auto x = enc_a.po_literals[i];
        const auto y = enc_b.po_literals[i];
        const literal d{s.add_variable(), false};
        s.add_clause({~d, x, y});
        s.add_clause({~d, ~x, ~y});
        s.add_clause({d, ~x, y});
        s.add_clause({d, x, ~y});
        any_diff.push_back(d);
    }
    s.add_clause(any_diff);

    equivalence_report report;
    switch (s.solve(conflict_budget)) {
    case solve_result::unsatisfiable:
        report.result = equivalence_result::equivalent;
        break;
    case solve_result::satisfiable: {
        report.result = equivalence_result::not_equivalent;
        std::vector<bool> cex(a.num_pis());
        for (uint32_t i = 0; i < a.num_pis(); ++i)
            cex[i] = s.model_value(pis[i].var());
        report.counterexample = std::move(cex);
        break;
    }
    case solve_result::undecided:
        report.result = equivalence_result::undecided;
        break;
    }
    report.stats = s.stats();
    return report;
}

} // namespace mcx::sat
