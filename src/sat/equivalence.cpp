#include "sat/equivalence.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace mcx::sat {

equivalence_report check_equivalence(const xag& a, const xag& b,
                                     uint64_t conflict_budget)
{
    if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos())
        throw std::invalid_argument{
            "check_equivalence: interface mismatch"};

    // A cold miter is built once and solved once: exactly the pattern the
    // modern core's bounded preprocessor is sound for.  Warm sessions
    // (incremental_cec, cone_verifier below) must NOT enable it — they
    // keep adding clauses and solving under assumptions.
    solver s{sat_params{.preprocess = true}};
    std::vector<literal> pis;
    pis.reserve(a.num_pis());
    for (uint32_t i = 0; i < a.num_pis(); ++i)
        pis.push_back(literal{s.add_variable(), false});

    const auto enc_a = encode(s, a, pis);
    const auto enc_b = encode(s, b, pis);

    // Miter: OR over pairwise XOR of outputs must be satisfiable for a
    // difference to exist.
    std::vector<literal> any_diff;
    any_diff.reserve(a.num_pos());
    for (uint32_t i = 0; i < a.num_pos(); ++i) {
        const auto x = enc_a.po_literals[i];
        const auto y = enc_b.po_literals[i];
        const literal d{s.add_variable(), false};
        s.add_clause({~d, x, y});
        s.add_clause({~d, ~x, ~y});
        s.add_clause({d, ~x, y});
        s.add_clause({d, x, ~y});
        any_diff.push_back(d);
    }
    s.add_clause(any_diff);

    equivalence_report report;
    switch (s.solve(conflict_budget)) {
    case solve_result::unsatisfiable:
        report.result = equivalence_result::equivalent;
        break;
    case solve_result::satisfiable: {
        report.result = equivalence_result::not_equivalent;
        std::vector<bool> cex(a.num_pis());
        for (uint32_t i = 0; i < a.num_pis(); ++i)
            cex[i] = s.model_value(pis[i].var());
        report.counterexample = std::move(cex);
        break;
    }
    case solve_result::undecided:
        report.result = equivalence_result::undecided;
        break;
    }
    report.stats = s.stats();
    return report;
}

// ------------------------------------------------------- incremental_cec

incremental_cec::incremental_cec(const xag& golden, uint32_t rebuild_growth)
    : golden_{&golden}, rebuild_growth_{std::max(2u, rebuild_growth)}
{
    rebuild();
    rebuilds_ = 0; // the constructor's build is not a GC event
}

void incremental_cec::rebuild()
{
    // Variable remapper: the golden encoding is deterministic (same
    // add_variable order on a fresh solver), so golden variables map to
    // themselves in the new solver and learnt clauses confined to
    // [0, base_vars_) migrate verbatim.  Clauses derived through any
    // session clause carry that session's ~activation literal — a
    // session variable — so the range filter is exactly the soundness
    // filter: everything it admits is implied by the golden CNF alone.
    std::vector<std::vector<literal>> migrated;
    if (solver_)
        for (auto& c : solver_->export_learnt(8)) {
            bool golden_only = true;
            for (const auto l : c)
                if (l.var() >= base_vars_) {
                    golden_only = false;
                    break;
                }
            if (golden_only)
                migrated.push_back(std::move(c));
        }

    solver_ = std::make_unique<solver>();
    session_ = {}; // its variables died with the old solver
    pis_.clear();
    pis_.reserve(golden_->num_pis());
    for (uint32_t i = 0; i < golden_->num_pis(); ++i)
        pis_.push_back(literal{solver_->add_variable(), false});
    golden_enc_ = encode(*solver_, *golden_, pis_);
    base_vars_ = solver_->num_vars();
    for (const auto& c : migrated)
        solver_->add_clause(c);
    warm_ = !migrated.empty();
    ++rebuilds_;
}

namespace {

/// Exact structural signature: two networks produce the same word
/// sequence iff they have identical node arrays and interfaces (node
/// ids included — reuse targets the re-check of a literally unchanged
/// network, not isomorphism detection).
std::vector<uint64_t> shape_of(const xag& n)
{
    const auto code = [](signal s) {
        return (static_cast<uint64_t>(s.node()) << 1) |
               static_cast<uint64_t>(s.complemented());
    };
    std::vector<uint64_t> shape;
    shape.reserve(2 * n.size() + n.num_pis() + n.num_pos() + 2);
    shape.push_back(n.num_pis());
    shape.push_back(n.size());
    for (uint32_t i = 0; i < n.num_pis(); ++i)
        shape.push_back(n.pi_at(i));
    for (uint32_t v = 0; v < n.size(); ++v)
        if (n.is_gate(v)) {
            shape.push_back((static_cast<uint64_t>(v) << 1) |
                            static_cast<uint64_t>(n.is_xor(v)));
            shape.push_back(code(n.fanin0(v)) << 32 | code(n.fanin1(v)));
        }
    for (uint32_t i = 0; i < n.num_pos(); ++i)
        shape.push_back(code(n.po_at(i)));
    return shape;
}

} // namespace

void incremental_cec::retire(literal activation)
{
    solver_->add_clause({~activation});
}

equivalence_report incremental_cec::check(const xag& optimized,
                                          uint64_t conflict_budget,
                                          const cancellation_token& token)
{
    if (optimized.num_pis() != golden_->num_pis() ||
        optimized.num_pos() != golden_->num_pos())
        throw std::invalid_argument{"incremental_cec: interface mismatch"};

    // GC: once retired-session garbage outweighs the golden encoding,
    // rebuild and migrate golden-only learnt clauses.
    if (solver_->num_vars() >
        static_cast<uint64_t>(rebuild_growth_) * base_vars_)
        rebuild();

    // The previous candidate's session is still live.  If this candidate
    // is structurally identical — re-verification in a converged iterated
    // flow — re-solve on the same variables: the session's learnt clauses
    // (which mention its activation and miter literals, so they never
    // migrate) short-circuit every proof they refuted before.  Otherwise
    // retire the old session and encode this candidate fresh.
    auto shape = shape_of(optimized);
    if (session_.valid && session_.shape == shape) {
        ++session_reuses_;
    } else {
        if (session_.valid)
            retire(session_.act);
        session_ = {};
        const literal act{solver_->add_variable(), false};
        const auto opt_enc = encode_guarded(*solver_, optimized, act, pis_);
        session_.valid = true;
        session_.act = act;
        session_.outputs = opt_enc.po_literals;
        session_.shape = std::move(shape);
    }
    const literal act = session_.act;

    equivalence_report report;
    report.result = equivalence_result::equivalent;
    uint64_t spent = 0;
    for (uint32_t i = 0; i < golden_->num_pos(); ++i) {
        const auto x = golden_enc_.po_literals[i];
        const auto y = session_.outputs[i];
        literal d;
        if (i < session_.diffs.size()) {
            d = session_.diffs[i];
        } else {
            d = literal{solver_->add_variable(), false};
            solver_->add_clause({~d, x, y, ~act});
            solver_->add_clause({~d, ~x, ~y, ~act});
            solver_->add_clause({d, ~x, y, ~act});
            solver_->add_clause({d, x, ~y, ~act});
            session_.diffs.push_back(d);
        }

        uint64_t budget = 0;
        if (conflict_budget != 0) {
            if (spent >= conflict_budget) {
                report.result = equivalence_result::undecided;
                break;
            }
            budget = conflict_budget - spent;
        }
        const auto before = solver_->stats().conflicts;
        const std::array<literal, 2> assumptions{act, d};
        const auto res = solver_->solve(assumptions, budget, token);
        const auto delta = solver_->stats().conflicts - before;
        spent += delta;
        records_.push_back({i, delta, warm_});
        warm_ = true;

        if (res == solve_result::satisfiable) {
            report.result = equivalence_result::not_equivalent;
            std::vector<bool> cex(golden_->num_pis());
            for (uint32_t k = 0; k < golden_->num_pis(); ++k)
                cex[k] = solver_->model_value(pis_[k].var());
            report.counterexample = std::move(cex);
            break;
        }
        if (res == solve_result::undecided) {
            report.result = equivalence_result::undecided;
            break;
        }
    }
    // The session is NOT retired here: it stays live so an identical
    // next candidate re-solves on it.  Retirement happens when a
    // different candidate arrives or the GC rebuild fires.
    report.stats = solver_->stats();
    return report;
}

// -------------------------------------------------------- cone_verifier

equivalence_result cone_verifier::verify(const xag& network,
                                         uint32_t old_root,
                                         signal replacement,
                                         std::span<const uint32_t> leaves,
                                         uint64_t conflict_budget,
                                         const cancellation_token& token)
{
    if (!solver_ || solver_->num_vars() > rebuild_after_vars_) {
        // Cone sessions share no variables, so nothing migrates: a fresh
        // solver IS the garbage collection.
        solver_ = std::make_unique<solver>();
        if (warm_)
            ++rebuilds_;
        warm_ = false;
    }

    const literal act{solver_->add_variable(), false};
    const std::array<signal, 2> roots{signal{old_root, false}, replacement};
    const auto root_lits =
        encode_cones(*solver_, network, leaves, roots, act);

    // Miter literal: m <-> (old != new), guarded by the session.
    const auto x = root_lits[0];
    const auto y = root_lits[1];
    const literal m{solver_->add_variable(), false};
    solver_->add_clause({~m, x, y, ~act});
    solver_->add_clause({~m, ~x, ~y, ~act});
    solver_->add_clause({m, ~x, y, ~act});
    solver_->add_clause({m, x, ~y, ~act});

    const auto before = solver_->stats().conflicts;
    const std::array<literal, 2> assumptions{act, m};
    const auto res = solver_->solve(assumptions, conflict_budget, token);
    const auto delta = solver_->stats().conflicts - before;
    records_.push_back(
        {static_cast<uint32_t>(checks_), delta, warm_});
    ++checks_;
    conflicts_ += delta;
    if (warm_)
        ++warm_starts_;
    warm_ = true;
    solver_->add_clause({~act}); // retire the session

    switch (res) {
    case solve_result::unsatisfiable:
        return equivalence_result::equivalent;
    case solve_result::satisfiable:
        return equivalence_result::not_equivalent;
    default:
        return equivalence_result::undecided;
    }
}

} // namespace mcx::sat
