#include "sat/legacy_solver.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcx::sat {

namespace {
constexpr uint32_t heap_npos = ~uint32_t{0};

} // namespace

legacy_solver::legacy_solver() = default;

uint32_t legacy_solver::add_variable()
{
    const auto v = static_cast<uint32_t>(assign_.size());
    assign_.push_back(-1);
    level_.push_back(0);
    reason_.push_back(no_reason);
    activity_.push_back(0.0);
    saved_phase_.push_back(0);
    seen_.push_back(0);
    heap_pos_.push_back(heap_npos);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_insert(v);
    return v;
}

bool legacy_solver::add_clause(std::span<const literal> lits)
{
    if (unsat_)
        return false;
    if (decision_level() != 0)
        throw std::logic_error{"add_clause: only at decision level 0"};

    // Sort, deduplicate, drop false literals, detect tautology.
    std::vector<literal> cl(lits.begin(), lits.end());
    std::sort(cl.begin(), cl.end(),
              [](literal a, literal b) { return a.code() < b.code(); });
    cl.erase(std::unique(cl.begin(), cl.end()), cl.end());
    std::vector<literal> filtered;
    for (size_t i = 0; i < cl.size(); ++i) {
        if (i + 1 < cl.size() && cl[i] == ~cl[i + 1])
            return true; // tautology
        const auto val = value_of(cl[i]);
        if (val == 1)
            return true; // already satisfied at top level
        if (val == -1)
            filtered.push_back(cl[i]);
    }
    if (filtered.empty()) {
        unsat_ = true;
        return false;
    }
    if (filtered.size() == 1) {
        enqueue(filtered[0], no_reason);
        if (propagate() != no_reason) {
            unsat_ = true;
            return false;
        }
        return true;
    }
    clauses_.push_back({std::move(filtered), 0.0, false});
    attach_clause(static_cast<uint32_t>(clauses_.size() - 1));
    return true;
}

void legacy_solver::attach_clause(uint32_t index)
{
    const auto& c = clauses_[index];
    watches_[(~c.lits[0]).code()].push_back({index, c.lits[1]});
    watches_[(~c.lits[1]).code()].push_back({index, c.lits[0]});
}

void legacy_solver::enqueue(literal l, uint32_t reason)
{
    assign_[l.var()] = l.negative() ? 0 : 1;
    level_[l.var()] = decision_level();
    reason_[l.var()] = reason;
    trail_.push_back(l);
}

uint32_t legacy_solver::propagate()
{
    while (qhead_ < trail_.size()) {
        const auto p = trail_[qhead_++];
        ++stats_.propagations;
        auto& ws = watches_[p.code()]; // clauses where ~p is watched
        size_t keep = 0;
        uint32_t conflict = no_reason;
        for (size_t i = 0; i < ws.size(); ++i) {
            const auto w = ws[i];
            if (conflict != no_reason) {
                ws[keep++] = w;
                continue;
            }
            if (value_of(w.blocker) == 1) {
                ws[keep++] = w;
                continue;
            }
            auto& c = clauses_[w.clause_index];
            // Normalize: false literal (~p) at position 1.
            const literal false_lit = ~p;
            if (c.lits[0] == false_lit)
                std::swap(c.lits[0], c.lits[1]);
            if (value_of(c.lits[0]) == 1) {
                ws[keep++] = {w.clause_index, c.lits[0]};
                continue;
            }
            // Find a new literal to watch.
            bool moved = false;
            for (size_t k = 2; k < c.lits.size(); ++k) {
                if (value_of(c.lits[k]) != 0) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches_[(~c.lits[1]).code()].push_back(
                        {w.clause_index, c.lits[0]});
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            // Unit or conflicting.
            ws[keep++] = w;
            if (value_of(c.lits[0]) == 0)
                conflict = w.clause_index;
            else
                enqueue(c.lits[0], w.clause_index);
        }
        ws.resize(keep);
        if (conflict != no_reason)
            return conflict;
    }
    return no_reason;
}

void legacy_solver::analyze(uint32_t conflict, std::vector<literal>& learnt,
                     uint32_t& backtrack_level)
{
    learnt.clear();
    learnt.push_back(literal{}); // placeholder for the asserting literal
    uint32_t counter = 0;
    literal p{};
    bool first = true;
    size_t index = trail_.size();

    for (;;) {
        auto& c = clauses_[conflict];
        if (c.learnt)
            bump_clause(c);
        const size_t start = first ? 0 : 1;
        for (size_t k = start; k < c.lits.size(); ++k) {
            const auto q = c.lits[k];
            if (!seen_[q.var()] && level_[q.var()] > 0) {
                seen_[q.var()] = 1;
                bump_var(q.var());
                if (level_[q.var()] == decision_level())
                    ++counter;
                else
                    learnt.push_back(q);
            }
        }
        // Next literal on the trail that is marked.
        do {
            p = trail_[--index];
        } while (!seen_[p.var()]);
        seen_[p.var()] = 0;
        first = false;
        if (--counter == 0)
            break;
        conflict = reason_[p.var()];
    }
    learnt[0] = ~p;

    // Cheap self-subsumption minimization: drop literals whose reason
    // clause is entirely marked.
    const auto redundant = [&](literal q) {
        const auto r = reason_[q.var()];
        if (r == no_reason)
            return false;
        for (size_t k = 1; k < clauses_[r].lits.size(); ++k) {
            const auto x = clauses_[r].lits[k];
            if (!seen_[x.var()] && level_[x.var()] > 0)
                return false;
        }
        return true;
    };
    // learnt[1..] are still marked in seen_ from the resolution loop; use
    // the marks for the redundancy test, then clear them all — including
    // literals dropped by the minimization (clearing after the in-place
    // compaction would miss them and poison later conflict analyses).
    to_clear_.assign(learnt.begin() + 1, learnt.end());
    size_t keep = 1;
    for (size_t i = 1; i < learnt.size(); ++i)
        if (!redundant(learnt[i]))
            learnt[keep++] = learnt[i];
    learnt.resize(keep);
    for (const auto q : to_clear_)
        seen_[q.var()] = 0;

    if (learnt.size() == 1) {
        backtrack_level = 0;
        return;
    }
    // Second-highest decision level; move its literal to position 1.
    size_t max_i = 1;
    for (size_t i = 2; i < learnt.size(); ++i)
        if (level_[learnt[i].var()] > level_[learnt[max_i].var()])
            max_i = i;
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[learnt[1].var()];
}

void legacy_solver::analyze_final(literal p)
{
    // MiniSat's analyzeFinal: which assumptions does the falsification of
    // `p` depend on?  Walk the trail top-down from the first assumption
    // level, expanding reason clauses; literals with no reason above level
    // 0 are assumption decisions.  Invoked from the assumption-
    // establishment step, so no real decisions are on the trail yet.
    failed_assumptions_.clear();
    failed_assumptions_.push_back(p);
    if (decision_level() == 0)
        return;
    seen_[p.var()] = 1;
    for (size_t i = trail_.size(); i-- > trail_lim_[0];) {
        const auto v = trail_[i].var();
        if (!seen_[v])
            continue;
        if (reason_[v] == no_reason) {
            failed_assumptions_.push_back(trail_[i]);
        } else {
            const auto& c = clauses_[reason_[v]];
            for (size_t k = 1; k < c.lits.size(); ++k)
                if (level_[c.lits[k].var()] > 0)
                    seen_[c.lits[k].var()] = 1;
        }
        seen_[v] = 0;
    }
    seen_[p.var()] = 0;
}

std::vector<std::vector<literal>> legacy_solver::export_learnt(size_t max_len) const
{
    std::vector<std::vector<literal>> out;
    for (const auto idx : learnt_indices_) {
        const auto& c = clauses_[idx];
        // reduce_learnts() clears dead clauses in place; skip them.
        if (c.lits.empty() || c.lits.size() > max_len)
            continue;
        out.emplace_back(c.lits.begin(), c.lits.end());
    }
    return out;
}

void legacy_solver::backtrack(uint32_t target)
{
    if (decision_level() <= target)
        return;
    const auto bound = trail_lim_[target];
    for (size_t i = trail_.size(); i-- > bound;) {
        const auto v = trail_[i].var();
        saved_phase_[v] = assign_[v];
        assign_[v] = -1;
        reason_[v] = no_reason;
        if (heap_pos_[v] == heap_npos)
            heap_insert(v);
    }
    trail_.resize(bound);
    trail_lim_.resize(target);
    qhead_ = trail_.size();
}

void legacy_solver::bump_var(uint32_t var)
{
    activity_[var] += var_inc_;
    if (activity_[var] > 1e100) {
        for (auto& a : activity_)
            a *= 1e-100;
        var_inc_ *= 1e-100;
    }
    if (heap_pos_[var] != heap_npos)
        heap_percolate_up(heap_pos_[var]);
}

void legacy_solver::bump_clause(clause& c)
{
    c.activity += clause_inc_;
    if (c.activity > 1e100) {
        for (const auto idx : learnt_indices_)
            clauses_[idx].activity *= 1e-100;
        clause_inc_ *= 1e-100;
    }
}

void legacy_solver::heap_insert(uint32_t var)
{
    heap_pos_[var] = static_cast<uint32_t>(heap_.size());
    heap_.push_back(var);
    heap_percolate_up(heap_pos_[var]);
}

void legacy_solver::heap_percolate_up(uint32_t pos)
{
    const auto var = heap_[pos];
    while (pos > 0) {
        const auto parent = (pos - 1) / 2;
        if (activity_[heap_[parent]] >= activity_[var])
            break;
        heap_[pos] = heap_[parent];
        heap_pos_[heap_[pos]] = pos;
        pos = parent;
    }
    heap_[pos] = var;
    heap_pos_[var] = pos;
}

void legacy_solver::heap_percolate_down(uint32_t pos)
{
    const auto var = heap_[pos];
    const auto size = static_cast<uint32_t>(heap_.size());
    for (;;) {
        auto child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size &&
            activity_[heap_[child + 1]] > activity_[heap_[child]])
            ++child;
        if (activity_[heap_[child]] <= activity_[var])
            break;
        heap_[pos] = heap_[child];
        heap_pos_[heap_[pos]] = pos;
        pos = child;
    }
    heap_[pos] = var;
    heap_pos_[var] = pos;
}

uint32_t legacy_solver::heap_pop()
{
    const auto top = heap_[0];
    heap_pos_[top] = heap_npos;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_pos_[heap_[0]] = 0;
        heap_percolate_down(0);
    }
    return top;
}

literal legacy_solver::pick_branch()
{
    while (!heap_.empty()) {
        const auto v = heap_pop();
        if (assign_[v] < 0)
            return literal{v, saved_phase_[v] != 1};
    }
    return literal{heap_npos >> 1, false}; // all assigned
}

void legacy_solver::reduce_learnts()
{
    std::sort(learnt_indices_.begin(), learnt_indices_.end(),
              [&](uint32_t a, uint32_t b) {
                  return clauses_[a].activity < clauses_[b].activity;
              });
    const size_t target = learnt_indices_.size() / 2;
    size_t removed = 0;
    std::vector<uint8_t> dead(clauses_.size(), 0);
    for (size_t i = 0; i < learnt_indices_.size() && removed < target; ++i) {
        const auto idx = learnt_indices_[i];
        auto& c = clauses_[idx];
        if (c.lits.size() <= 2)
            continue;
        // Keep reason clauses of current assignments.
        bool locked = false;
        for (const auto l : c.lits)
            if (assign_[l.var()] >= 0 && reason_[l.var()] == idx) {
                locked = true;
                break;
            }
        if (locked)
            continue;
        dead[idx] = 1;
        ++removed;
    }
    if (removed == 0)
        return;
    stats_.learnt_removed += removed;
    for (auto& ws : watches_)
        std::erase_if(ws, [&](const watcher& w) { return dead[w.clause_index]; });
    std::erase_if(learnt_indices_, [&](uint32_t idx) { return dead[idx]; });
    for (const auto idx : learnt_indices_)
        if (dead[idx] == 0 && clauses_[idx].lits.empty())
            throw std::logic_error{"reduce_learnts: empty learnt clause"};
    // Clause bodies stay in place (indices must remain stable); mark only.
    for (uint32_t i = 0; i < clauses_.size(); ++i)
        if (dead[i])
            clauses_[i].lits.clear();
}

uint64_t legacy_solver::luby(uint64_t i)
{
    // Knuth's formulation of the Luby sequence.
    uint64_t size = 1, seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) / 2;
        --seq;
        i = i % size;
    }
    return uint64_t{1} << seq;
}

solve_result legacy_solver::solve(std::span<const literal> assumptions,
                           uint64_t conflict_budget,
                           const cancellation_token& token)
{
    // Fault injection (fault_site::sat_budget) and the sat.* metrics
    // observer fire in the sat::solver facade, covering both engines.
    failed_assumptions_.clear();
    backtrack(0);
    if (unsat_)
        return solve_result::unsatisfiable;
    if (propagate() != no_reason) {
        unsat_ = true;
        return solve_result::unsatisfiable;
    }
    if (token.stop_possible() && token.stop_requested())
        return solve_result::undecided;

    const uint64_t conflict_limit =
        conflict_budget == 0 ? 0 : stats_.conflicts + conflict_budget;
    uint64_t restart_count = 0;
    uint64_t conflicts_until_restart = 100 * luby(restart_count);
    uint64_t conflicts_in_restart = 0;
    size_t max_learnts = 4000 + clauses_.size() / 2;
    std::vector<literal> learnt;

    for (;;) {
        const auto conflict = propagate();
        if (conflict != no_reason) {
            ++stats_.conflicts;
            ++conflicts_in_restart;
            if (decision_level() == 0) {
                unsat_ = true;
                return solve_result::unsatisfiable;
            }
            uint32_t backtrack_level = 0;
            analyze(conflict, learnt, backtrack_level);
            if (on_learnt)
                on_learnt(learnt);
            backtrack(backtrack_level);
            if (learnt.size() == 1) {
                enqueue(learnt[0], no_reason);
            } else {
                clauses_.push_back({learnt, 0.0, true});
                const auto idx = static_cast<uint32_t>(clauses_.size() - 1);
                bump_clause(clauses_[idx]);
                learnt_indices_.push_back(idx);
                attach_clause(idx);
                enqueue(learnt[0], idx);
            }
            decay_var_activity();
            clause_inc_ /= 0.999;
            if (conflict_limit != 0 && stats_.conflicts >= conflict_limit) {
                backtrack(0);
                return solve_result::undecided;
            }
            if (token.stop_possible() && token.stop_requested()) {
                backtrack(0);
                return solve_result::undecided;
            }
            continue;
        }

        if (conflicts_in_restart >= conflicts_until_restart) {
            ++stats_.restarts;
            ++restart_count;
            conflicts_in_restart = 0;
            conflicts_until_restart = 100 * luby(restart_count);
            backtrack(0);
            continue;
        }
        if (learnt_indices_.size() >= max_learnts) {
            reduce_learnts();
            max_learnts = max_learnts * 3 / 2;
        }

        // Re-establish assumptions as pseudo-decision levels before any
        // real decision.  A restart backtracks to level 0, so this loop
        // also restores them after every restart.
        if (decision_level() < assumptions.size()) {
            const auto p = assumptions[decision_level()];
            const auto val = value_of(p);
            if (val == 0) {
                // Falsified by earlier assumptions / top-level units:
                // UNSAT under these assumptions only — sticky unsat_ is
                // NOT set, and the final-conflict subset is extracted.
                analyze_final(p);
                backtrack(0);
                return solve_result::unsatisfiable;
            }
            // Already-true assumptions still get their own (empty)
            // decision level so analyze_final can tell assumption levels
            // from top-level units.
            trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
            if (val == -1)
                enqueue(p, no_reason);
            continue;
        }

        const auto next = pick_branch();
        if (next.var() == (heap_npos >> 1)) {
            // Snapshot the model, then release the trail: the solver is
            // always left at decision level 0 so callers can add clauses
            // and re-solve (incremental use).
            model_.assign(assign_.begin(), assign_.end());
            backtrack(0);
            return solve_result::satisfiable;
        }
        ++stats_.decisions;
        trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
        enqueue(next, no_reason);
    }
}

} // namespace mcx::sat
