// The modern CDCL core: arena clause storage (src/sat/clause_arena.h),
// binary clauses resolved directly from the watcher lists, glucose-style
// LBD computed at learn time driving three-tier learnt retention
// (core / mid / local), LBD-EMA restarts (Luby available via
// `restart_policy::luby`), and a bounded one-shot preprocessor
// (subsumption + self-subsumption + bounded variable elimination with
// model reconstruction).
//
// Behavioural contract — identical to `legacy_solver` and enforced by the
// differential fuzz in tests/sat_test.cpp:
//   - assumptions as pseudo-decision levels + `failed_assumptions()`
//   - learnt clauses retained across calls (warm incremental sessions)
//   - `export_learnt` migration feed for the equivalence remapper GC
//   - per-conflict budget / cancellation polling; exhaustion is always an
//     honest `undecided`, never a fabricated UNSAT
//   - the solver returns at decision level 0, so `add_clause` is legal
//     immediately after any solve
#pragma once

#include "core/budget.h"
#include "sat/clause_arena.h"
#include "sat/types.h"

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace mcx::sat {

class modern_solver {
public:
    explicit modern_solver(bool preprocess,
                           restart_policy restarts = restart_policy::ema);

    uint32_t num_vars() const { return static_cast<uint32_t>(assign_.size()); }
    uint32_t add_variable();
    bool add_clause(std::span<const literal> lits);
    solve_result solve(std::span<const literal> assumptions,
                       uint64_t conflict_budget = 0,
                       const cancellation_token& token = {});
    bool model_value(uint32_t var) const { return model_[var] == 1; }
    const std::vector<literal>& failed_assumptions() const
    {
        return failed_assumptions_;
    }
    std::vector<std::vector<literal>> export_learnt(size_t max_len) const;
    const solver_stats& stats() const { return stats_; }

    std::function<void(std::span<const literal>)> on_learnt;

private:
    // Watcher / reason encoding: bit 31 tags an inline binary clause, the
    // low 31 bits then hold the code of the *other* literal; otherwise the
    // value is an arena clause_ref (capped below 2^31 by the arena).
    static constexpr uint32_t binary_flag = uint32_t{1} << 31;
    static constexpr uint32_t no_reason = ~uint32_t{0};
    static constexpr uint32_t heap_npos = ~uint32_t{0};

    struct watch {
        uint32_t ref; ///< clause_ref, or binary_flag | other-literal code
        literal blocker;
    };

    int8_t value_of(literal l) const
    {
        const auto v = assign_[l.var()];
        return v < 0 ? int8_t{-1} : int8_t{(v == 1) != l.negative()};
    }

    void enqueue(literal l, uint32_t reason);
    bool propagate(); ///< true on conflict; fills confl_lits_ / confl_cref_
    void attach_long(clause_ref c);
    void attach_binary(literal a, literal b);
    void analyze(std::vector<literal>& learnt, uint32_t& backtrack_level,
                 uint32_t& lbd);
    void analyze_final(literal p);
    void backtrack(uint32_t level);
    uint32_t decision_level() const
    {
        return static_cast<uint32_t>(trail_lim_.size());
    }
    literal pick_branch();
    void bump_var(uint32_t var);
    void bump_clause(clause_ref c);
    uint32_t compute_lbd(std::span<const literal> lits);
    void record_learnt(std::span<const literal> learnt, uint32_t lbd);
    void reduce_learnts();
    void garbage_collect();
    static uint64_t luby(uint64_t i);

    // VSIDS heap (same shape as the legacy engine's).
    void heap_insert(uint32_t var);
    void heap_percolate_up(uint32_t pos);
    void heap_percolate_down(uint32_t pos);
    uint32_t heap_pop();

    // --- bounded one-shot preprocessor (modern_solver_preprocess part) ---
    void preprocess();
    void rebuild_from(std::vector<std::vector<literal>>&& clauses,
                      std::span<const literal> units);
    void reconstruct_model();
    bool lit_true_in_model(literal l) const
    {
        return (model_[l.var()] == 1) != l.negative();
    }

    clause_arena arena_;
    std::vector<clause_ref> clauses_; ///< long problem clauses
    std::vector<clause_ref> learnts_; ///< long learnt clauses
    std::vector<std::pair<literal, literal>> binary_learnts_; ///< export feed
    std::vector<std::vector<watch>> watches_; ///< indexed by literal code

    std::vector<int8_t> assign_;
    std::vector<uint32_t> level_;
    std::vector<uint32_t> reason_;
    std::vector<literal> trail_;
    std::vector<uint32_t> trail_lim_;
    size_t qhead_ = 0;

    std::vector<double> activity_;
    std::vector<uint32_t> heap_;
    std::vector<uint32_t> heap_pos_;
    std::vector<int8_t> saved_phase_;
    double var_inc_ = 1.0;
    float clause_inc_ = 1.0f;

    bool unsat_ = false;
    solver_stats stats_;
    std::vector<uint8_t> seen_;
    std::vector<literal> to_clear_;
    std::vector<int8_t> model_;
    std::vector<literal> failed_assumptions_;

    // Conflict clause materialized by propagate().
    std::vector<literal> confl_lits_;
    clause_ref confl_cref_ = null_ref;

    // LBD scratch: per-level stamps against a running counter.
    std::vector<uint64_t> lbd_stamp_;
    uint64_t lbd_counter_ = 0;

    // Restart state (LBD-EMA with trail-size blocking, or Luby).
    restart_policy restarts_;
    double ema_lbd_fast_ = 0.0; ///< alpha 2^-5
    double ema_lbd_slow_ = 0.0; ///< alpha 2^-14
    double ema_trail_ = 0.0;    ///< alpha 2^-12, blocks restarts on deep trails
    bool ema_init_ = false;

    // Learnt-DB reduction schedule (conflict-count driven, glucose-style).
    uint64_t next_reduce_ = 2000;
    uint64_t reduce_count_ = 0;

    // Preprocessor state.
    bool preprocess_enabled_ = false;
    bool preprocessed_ = false;
    std::vector<uint8_t> eliminated_; ///< vars removed by BVE / pure literals
    struct elim_record {
        literal l; ///< stored-polarity literal of the eliminated variable
        std::vector<std::vector<literal>> saved; ///< its clauses, l removed
    };
    std::vector<elim_record> elim_stack_;
};

} // namespace mcx::sat
