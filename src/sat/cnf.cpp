#include "sat/cnf.h"

#include <optional>
#include <stdexcept>
#include <unordered_map>

namespace mcx::sat {

namespace {

// Shared Tseitin walk; `guard`, when present, is appended (negated) to
// every emitted clause so the encoding becomes an activation session.
cnf_encoding encode_impl(solver& s, const xag& network,
                         const std::vector<literal>& shared_pis,
                         std::optional<literal> guard)
{
    if (!shared_pis.empty() && shared_pis.size() != network.num_pis())
        throw std::invalid_argument{"encode: wrong number of shared PIs"};

    const auto emit = [&](std::initializer_list<literal> lits) {
        if (!guard) {
            s.add_clause(lits);
            return;
        }
        std::vector<literal> guarded{lits.begin(), lits.end()};
        guarded.push_back(~*guard);
        s.add_clause(guarded);
    };

    cnf_encoding enc;
    enc.node_literals.assign(network.size(), literal{});

    // Constant-false node: a fixed variable forced to 0.
    const literal const_lit{s.add_variable(), false};
    emit({~const_lit});
    enc.node_literals[0] = const_lit;

    enc.pi_literals.reserve(network.num_pis());
    for (uint32_t i = 0; i < network.num_pis(); ++i) {
        const auto l = shared_pis.empty() ? literal{s.add_variable(), false}
                                          : shared_pis[i];
        enc.pi_literals.push_back(l);
        enc.node_literals[network.pi_at(i)] = l;
    }

    const auto lit_of = [&](signal sig) {
        const auto base = enc.node_literals[sig.node()];
        return sig.complemented() ? ~base : base;
    };

    for (const auto n : network.topological_order()) {
        if (!network.is_gate(n))
            continue;
        const auto a = lit_of(network.fanin0(n));
        const auto b = lit_of(network.fanin1(n));
        const literal y{s.add_variable(), false};
        if (network.is_and(n)) {
            emit({~y, a});
            emit({~y, b});
            emit({y, ~a, ~b});
        } else {
            emit({~y, a, b});
            emit({~y, ~a, ~b});
            emit({y, ~a, b});
            emit({y, a, ~b});
        }
        enc.node_literals[n] = y;
    }

    enc.po_literals.reserve(network.num_pos());
    for (uint32_t i = 0; i < network.num_pos(); ++i)
        enc.po_literals.push_back(lit_of(network.po_at(i)));
    return enc;
}

} // namespace

cnf_encoding encode(solver& s, const xag& network,
                    const std::vector<literal>& shared_pis)
{
    return encode_impl(s, network, shared_pis, std::nullopt);
}

cnf_encoding encode_guarded(solver& s, const xag& network, literal activation,
                            const std::vector<literal>& shared_pis)
{
    return encode_impl(s, network, shared_pis, activation);
}

std::vector<literal> encode_cones(solver& s, const xag& network,
                                  std::span<const uint32_t> leaves,
                                  std::span<const signal> roots,
                                  literal activation)
{
    const auto emit = [&](std::initializer_list<literal> lits) {
        std::vector<literal> guarded{lits.begin(), lits.end()};
        guarded.push_back(~activation);
        s.add_clause(guarded);
    };

    std::unordered_map<uint32_t, literal> lit_of_node;
    lit_of_node.reserve(4 * leaves.size() + 8);
    // Leaves become free variables shared by every root's cone.
    for (const auto l : leaves)
        lit_of_node.emplace(l, literal{s.add_variable(), false});

    // Iterative post-order walk; cones are small (cut-bounded) but the
    // candidate side may chain through freshly created gates.
    std::vector<std::pair<uint32_t, bool>> stack;
    const auto visit = [&](uint32_t root) {
        if (lit_of_node.count(root))
            return;
        stack.emplace_back(root, false);
        while (!stack.empty()) {
            auto [n, expanded] = stack.back();
            stack.pop_back();
            if (lit_of_node.count(n))
                continue;
            if (!network.is_gate(n)) {
                // Constant or a PI below the cone: the constant gets a
                // guarded forced-zero variable, a PI a free variable.
                const literal v{s.add_variable(), false};
                if (n == 0)
                    emit({~v});
                lit_of_node.emplace(n, v);
                continue;
            }
            const auto f0 = network.fanin0(n);
            const auto f1 = network.fanin1(n);
            if (!expanded) {
                stack.emplace_back(n, true);
                if (!lit_of_node.count(f1.node()))
                    stack.emplace_back(f1.node(), false);
                if (!lit_of_node.count(f0.node()))
                    stack.emplace_back(f0.node(), false);
                continue;
            }
            const auto base_a = lit_of_node.at(f0.node());
            const auto base_b = lit_of_node.at(f1.node());
            const auto a = f0.complemented() ? ~base_a : base_a;
            const auto b = f1.complemented() ? ~base_b : base_b;
            const literal y{s.add_variable(), false};
            if (network.is_and(n)) {
                emit({~y, a});
                emit({~y, b});
                emit({y, ~a, ~b});
            } else {
                emit({~y, a, b});
                emit({~y, ~a, ~b});
                emit({y, ~a, b});
                emit({y, a, ~b});
            }
            lit_of_node.emplace(n, y);
        }
    };

    std::vector<literal> root_lits;
    root_lits.reserve(roots.size());
    for (const auto r : roots) {
        visit(r.node());
        const auto base = lit_of_node.at(r.node());
        root_lits.push_back(r.complemented() ? ~base : base);
    }
    return root_lits;
}

} // namespace mcx::sat
