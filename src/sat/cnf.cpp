#include "sat/cnf.h"

#include <stdexcept>

namespace mcx::sat {

cnf_encoding encode(solver& s, const xag& network,
                    const std::vector<literal>& shared_pis)
{
    if (!shared_pis.empty() && shared_pis.size() != network.num_pis())
        throw std::invalid_argument{"encode: wrong number of shared PIs"};

    cnf_encoding enc;
    enc.node_literals.assign(network.size(), literal{});

    // Constant-false node: a fixed variable forced to 0.
    const literal const_lit{s.add_variable(), false};
    s.add_clause({~const_lit});
    enc.node_literals[0] = const_lit;

    enc.pi_literals.reserve(network.num_pis());
    for (uint32_t i = 0; i < network.num_pis(); ++i) {
        const auto l = shared_pis.empty() ? literal{s.add_variable(), false}
                                          : shared_pis[i];
        enc.pi_literals.push_back(l);
        enc.node_literals[network.pi_at(i)] = l;
    }

    const auto lit_of = [&](signal sig) {
        const auto base = enc.node_literals[sig.node()];
        return sig.complemented() ? ~base : base;
    };

    for (const auto n : network.topological_order()) {
        if (!network.is_gate(n))
            continue;
        const auto a = lit_of(network.fanin0(n));
        const auto b = lit_of(network.fanin1(n));
        const literal y{s.add_variable(), false};
        if (network.is_and(n)) {
            s.add_clause({~y, a});
            s.add_clause({~y, b});
            s.add_clause({y, ~a, ~b});
        } else {
            s.add_clause({~y, a, b});
            s.add_clause({~y, ~a, ~b});
            s.add_clause({y, ~a, b});
            s.add_clause({y, a, ~b});
        }
        enc.node_literals[n] = y;
    }

    enc.po_literals.reserve(network.num_pos());
    for (uint32_t i = 0; i < network.num_pos(); ++i)
        enc.po_literals.push_back(lit_of(network.po_at(i)));
    return enc;
}

} // namespace mcx::sat
