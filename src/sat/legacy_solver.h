// The original self-contained CDCL SAT solver, retained verbatim as the
// differential oracle behind `sat_params::engine == sat_engine::legacy`
// (`mcx --sat-engine legacy`): two-literal watching, VSIDS decision
// heuristic with phase saving, first-UIP conflict learning, Luby restarts,
// and activity-based learnt-clause reduction over `std::vector<clause>`
// storage.
//
// The modern arena-based core (src/sat/modern_solver.h) must stay
// verdict-identical to this engine on every instance; the randomized
// differential fuzz in tests/sat_test.cpp enforces that.  Do not "improve"
// this file — its value is being the unchanged reference.
#pragma once

#include "core/budget.h"
#include "sat/types.h"

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace mcx::sat {

class legacy_solver {
public:
    legacy_solver();

    uint32_t num_vars() const { return static_cast<uint32_t>(assign_.size()); }

    /// A fresh variable; returns its index.
    uint32_t add_variable();

    /// Add a clause (disjunction of literals).  An empty clause makes the
    /// instance trivially unsatisfiable.  Returns false if the clause is
    /// already conflicting under top-level assignments.
    bool add_clause(std::span<const literal> lits);

    /// Solve under `assumptions`: each literal is forced true for this call
    /// only, via pseudo-decision levels below every real decision.  Learnt
    /// clauses are retained across calls, so a sequence of related queries
    /// on one solver gets warmer with each solve.  `unsatisfiable` here
    /// means "UNSAT under these assumptions" — the solver stays usable and
    /// `failed_assumptions()` holds the subset of assumptions the final
    /// conflict depends on.  Only a conflict at decision level 0 (no
    /// assumptions involved) makes the instance permanently UNSAT.
    /// The solver always returns at decision level 0, so `add_clause` is
    /// legal immediately after any solve.
    solve_result solve(std::span<const literal> assumptions,
                       uint64_t conflict_budget = 0,
                       const cancellation_token& token = {});

    /// Model value of a variable after a satisfiable solve.  Reads the
    /// snapshot taken at SAT time; valid until the next solve call.
    bool model_value(uint32_t var) const { return model_[var] == 1; }

    /// After `solve(assumptions)` returns `unsatisfiable` with a non-empty
    /// assumption set: the subset of assumptions sufficient for the
    /// conflict (MiniSat's analyzeFinal).  Empty when the instance is
    /// UNSAT independent of the assumptions.
    const std::vector<literal>& failed_assumptions() const
    {
        return failed_assumptions_;
    }

    /// Live learnt clauses of at most `max_len` literals — migration feed
    /// for a rebuilt solver (variable GC in src/sat/equivalence.cpp).
    std::vector<std::vector<literal>> export_learnt(size_t max_len) const;

    const solver_stats& stats() const { return stats_; }

    /// Instrumentation: invoked with every learnt clause (testing/debugging).
    std::function<void(std::span<const literal>)> on_learnt;

private:
    struct clause {
        std::vector<literal> lits;
        double activity = 0.0;
        bool learnt = false;
    };

    struct watcher {
        uint32_t clause_index;
        literal blocker;
    };

    static constexpr uint32_t no_reason = ~uint32_t{0};

    int8_t value_of(literal l) const
    {
        const auto v = assign_[l.var()];
        return v < 0 ? int8_t{-1} : int8_t{(v == 1) != l.negative()};
    }

    void enqueue(literal l, uint32_t reason);
    uint32_t propagate(); ///< returns conflicting clause index or no_reason
    void analyze(uint32_t conflict, std::vector<literal>& learnt,
                 uint32_t& backtrack_level);
    void analyze_final(literal p); ///< fills failed_assumptions_
    void backtrack(uint32_t level);
    void attach_clause(uint32_t index);
    uint32_t decision_level() const
    {
        return static_cast<uint32_t>(trail_lim_.size());
    }
    literal pick_branch();
    void bump_var(uint32_t var);
    void decay_var_activity() { var_inc_ /= 0.95; }
    void bump_clause(clause& c);
    void reduce_learnts();
    static uint64_t luby(uint64_t i);

    // heap of variables ordered by activity
    void heap_insert(uint32_t var);
    void heap_percolate_up(uint32_t pos);
    void heap_percolate_down(uint32_t pos);
    uint32_t heap_pop();

    std::vector<clause> clauses_;
    std::vector<uint32_t> learnt_indices_;
    std::vector<std::vector<watcher>> watches_; ///< indexed by literal code
    std::vector<int8_t> assign_;                ///< -1 / 0 / 1 per variable
    std::vector<uint32_t> level_;
    std::vector<uint32_t> reason_;
    std::vector<literal> trail_;
    std::vector<uint32_t> trail_lim_;
    size_t qhead_ = 0;

    std::vector<double> activity_;
    std::vector<uint32_t> heap_;     ///< binary max-heap of variables
    std::vector<uint32_t> heap_pos_; ///< position in heap_, or npos
    std::vector<int8_t> saved_phase_;
    double var_inc_ = 1.0;
    double clause_inc_ = 1.0;

    bool unsat_ = false;
    solver_stats stats_;
    std::vector<uint8_t> seen_;      ///< scratch for analyze()
    std::vector<literal> to_clear_;  ///< marks to reset after analyze()
    std::vector<int8_t> model_;      ///< snapshot of assign_ at SAT time
    std::vector<literal> failed_assumptions_;
};

} // namespace mcx::sat
