#include "sat/solver.h"

#include "core/fault_inject.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sat/legacy_solver.h"
#include "sat/modern_solver.h"

#include <atomic>

namespace mcx::sat {

namespace {

std::atomic<sat_engine> g_default_engine{sat_engine::modern};

/// Covers every exit of solve(): a "sat.solve" span (arg = conflicts this
/// call) and registry deltas of the per-solver stats.  Instance stats stay
/// the per-solver source of truth; the registry aggregates across solvers
/// and engines.
class solve_observer {
public:
    explicit solve_observer(const solver_stats& stats)
        : stats_{stats}, at_entry_{stats}, span_{"sat.solve"}
    {
    }

    ~solve_observer()
    {
        static const auto solves = obs::register_metric("sat.solves");
        static const auto conflicts = obs::register_metric("sat.conflicts");
        static const auto decisions = obs::register_metric("sat.decisions");
        static const auto propagations =
            obs::register_metric("sat.propagations");
        static const auto restarts = obs::register_metric("sat.restarts");
        solves.add();
        conflicts.add(stats_.conflicts - at_entry_.conflicts);
        decisions.add(stats_.decisions - at_entry_.decisions);
        propagations.add(stats_.propagations - at_entry_.propagations);
        restarts.add(stats_.restarts - at_entry_.restarts);
        span_.set_arg(stats_.conflicts - at_entry_.conflicts);
    }

private:
    const solver_stats& stats_;
    solver_stats at_entry_;
    obs::trace::trace_span span_;
};

} // namespace

sat_engine default_engine()
{
    return g_default_engine.load(std::memory_order_relaxed);
}

void set_default_engine(sat_engine engine)
{
    g_default_engine.store(engine == sat_engine::automatic
                               ? sat_engine::modern
                               : engine,
                           std::memory_order_relaxed);
}

const char* engine_name(sat_engine engine)
{
    switch (engine) {
    case sat_engine::legacy:
        return "legacy";
    case sat_engine::modern:
        return "modern";
    case sat_engine::automatic:
        break;
    }
    return engine_name(default_engine());
}

solver::solver(sat_params params)
    : engine_{params.engine == sat_engine::automatic ? default_engine()
                                                     : params.engine}
{
    if (engine_ == sat_engine::legacy)
        legacy_ = std::make_unique<legacy_solver>();
    else
        modern_ =
            std::make_unique<modern_solver>(params.preprocess, params.restarts);
}

solver::~solver() = default;
solver::solver(solver&&) noexcept = default;
solver& solver::operator=(solver&&) noexcept = default;

uint32_t solver::num_vars() const
{
    return legacy_ ? legacy_->num_vars() : modern_->num_vars();
}

uint32_t solver::add_variable()
{
    return legacy_ ? legacy_->add_variable() : modern_->add_variable();
}

bool solver::add_clause(std::span<const literal> lits)
{
    return legacy_ ? legacy_->add_clause(lits) : modern_->add_clause(lits);
}

solve_result solver::solve(std::span<const literal> assumptions,
                           uint64_t conflict_budget,
                           const cancellation_token& token)
{
    // Injected budget exhaustion: converted to `undecided` right here, the
    // same value a genuinely exhausted budget produces, so callers'
    // unknown-vs-UNSAT handling is exercised on the real return path —
    // for either engine.
    try {
        fault_injection::fire(fault_site::sat_budget);
    } catch (const fault_injected_error&) {
        return solve_result::undecided;
    }

    const solve_observer observe{stats()};
    if (legacy_) {
        legacy_->on_learnt = on_learnt;
        return legacy_->solve(assumptions, conflict_budget, token);
    }
    modern_->on_learnt = on_learnt;
    return modern_->solve(assumptions, conflict_budget, token);
}

bool solver::model_value(uint32_t var) const
{
    return legacy_ ? legacy_->model_value(var) : modern_->model_value(var);
}

const std::vector<literal>& solver::failed_assumptions() const
{
    return legacy_ ? legacy_->failed_assumptions()
                   : modern_->failed_assumptions();
}

std::vector<std::vector<literal>> solver::export_learnt(size_t max_len) const
{
    return legacy_ ? legacy_->export_learnt(max_len)
                   : modern_->export_learnt(max_len);
}

const solver_stats& solver::stats() const
{
    return legacy_ ? legacy_->stats() : modern_->stats();
}

} // namespace mcx::sat
