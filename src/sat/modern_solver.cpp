#include "sat/modern_solver.h"

#include <algorithm>
#include <stdexcept>

namespace mcx::sat {

namespace {

/// Retention tier for a learnt clause of the given LBD: core clauses
/// (lbd <= 2) are kept forever, mid clauses (lbd <= 6) survive while they
/// keep participating in conflicts, local clauses compete on activity.
uint32_t tier_for(uint32_t lbd)
{
    return lbd <= 2 ? 0u : lbd <= 6 ? 1u : 2u;
}

} // namespace

modern_solver::modern_solver(bool preprocess, restart_policy restarts)
    : restarts_{restarts}, preprocess_enabled_{preprocess}
{
}

uint32_t modern_solver::add_variable()
{
    const auto v = static_cast<uint32_t>(assign_.size());
    assign_.push_back(-1);
    level_.push_back(0);
    reason_.push_back(no_reason);
    activity_.push_back(0.0);
    saved_phase_.push_back(0);
    seen_.push_back(0);
    heap_pos_.push_back(heap_npos);
    eliminated_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_insert(v);
    return v;
}

bool modern_solver::add_clause(std::span<const literal> lits)
{
    if (unsat_)
        return false;
    if (decision_level() != 0)
        throw std::logic_error{"add_clause: only at decision level 0"};
    if (!elim_stack_.empty())
        for (const auto l : lits)
            if (eliminated_[l.var()])
                throw std::logic_error{
                    "add_clause: variable eliminated by preprocessing"};

    // Sort, deduplicate, drop false literals, detect tautology.
    std::vector<literal> cl(lits.begin(), lits.end());
    std::sort(cl.begin(), cl.end(),
              [](literal a, literal b) { return a.code() < b.code(); });
    cl.erase(std::unique(cl.begin(), cl.end()), cl.end());
    std::vector<literal> filtered;
    for (size_t i = 0; i < cl.size(); ++i) {
        if (i + 1 < cl.size() && cl[i] == ~cl[i + 1])
            return true; // tautology
        const auto val = value_of(cl[i]);
        if (val == 1)
            return true; // already satisfied at top level
        if (val == -1)
            filtered.push_back(cl[i]);
    }
    if (filtered.empty()) {
        unsat_ = true;
        return false;
    }
    if (filtered.size() == 1) {
        enqueue(filtered[0], no_reason);
        if (propagate()) {
            unsat_ = true;
            return false;
        }
        return true;
    }
    if (filtered.size() == 2) {
        attach_binary(filtered[0], filtered[1]);
        return true;
    }
    const auto c = arena_.alloc(filtered, false);
    clauses_.push_back(c);
    attach_long(c);
    return true;
}

void modern_solver::attach_long(clause_ref c)
{
    const auto* lits = arena_.lits(c);
    watches_[(~lits[0]).code()].push_back({c, lits[1]});
    watches_[(~lits[1]).code()].push_back({c, lits[0]});
}

void modern_solver::attach_binary(literal a, literal b)
{
    watches_[(~a).code()].push_back({binary_flag | b.code(), b});
    watches_[(~b).code()].push_back({binary_flag | a.code(), a});
}

void modern_solver::enqueue(literal l, uint32_t reason)
{
    assign_[l.var()] = l.negative() ? 0 : 1;
    level_[l.var()] = decision_level();
    reason_[l.var()] = reason;
    trail_.push_back(l);
}

bool modern_solver::propagate()
{
    while (qhead_ < trail_.size()) {
        const auto p = trail_[qhead_++];
        ++stats_.propagations;
        auto& ws = watches_[p.code()]; // clauses where ~p is watched
        size_t keep = 0;
        bool conflict = false;
        for (size_t i = 0; i < ws.size(); ++i) {
            const auto w = ws[i];
            if (conflict) {
                ws[keep++] = w;
                continue;
            }
            if (w.ref & binary_flag) {
                // Binary clause {~p, other}: resolved without touching the
                // arena — the other literal is inline in the watcher.
                ws[keep++] = w;
                const auto other = literal::from_code(w.ref & ~binary_flag);
                const auto val = value_of(other);
                if (val == 1)
                    continue;
                if (val == 0) {
                    confl_cref_ = null_ref;
                    confl_lits_.assign({other, ~p});
                    conflict = true;
                    continue;
                }
                enqueue(other, binary_flag | (~p).code());
                continue;
            }
            if (value_of(w.blocker) == 1) {
                ws[keep++] = w;
                continue;
            }
            auto* lits = arena_.lits(w.ref);
            const auto size = arena_.size(w.ref);
            // Normalize: false literal (~p) at position 1.
            const literal false_lit = ~p;
            if (lits[0] == false_lit)
                std::swap(lits[0], lits[1]);
            if (value_of(lits[0]) == 1) {
                ws[keep++] = {w.ref, lits[0]};
                continue;
            }
            // Find a new literal to watch.
            bool moved = false;
            for (uint32_t k = 2; k < size; ++k) {
                if (value_of(lits[k]) != 0) {
                    std::swap(lits[1], lits[k]);
                    watches_[(~lits[1]).code()].push_back({w.ref, lits[0]});
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            // Unit or conflicting.
            ws[keep++] = w;
            if (value_of(lits[0]) == 0) {
                confl_cref_ = w.ref;
                confl_lits_.assign(lits, lits + size);
                conflict = true;
            } else {
                enqueue(lits[0], w.ref);
            }
        }
        ws.resize(keep);
        if (conflict)
            return true;
    }
    return false;
}

uint32_t modern_solver::compute_lbd(std::span<const literal> lits)
{
    ++lbd_counter_;
    uint32_t count = 0;
    for (const auto l : lits) {
        const auto lev = level_[l.var()];
        if (lev == 0)
            continue;
        if (lev >= lbd_stamp_.size())
            lbd_stamp_.resize(lev + 1, 0);
        if (lbd_stamp_[lev] != lbd_counter_) {
            lbd_stamp_[lev] = lbd_counter_;
            ++count;
        }
    }
    return count;
}

void modern_solver::analyze(std::vector<literal>& learnt,
                            uint32_t& backtrack_level, uint32_t& lbd)
{
    learnt.clear();
    learnt.push_back(literal{}); // placeholder for the asserting literal
    uint32_t counter = 0;
    literal p{};
    size_t index = trail_.size();

    // Glucose-style touch of a learnt clause met during resolution: bump
    // its activity, mark it used (protects the mid tier), and tighten its
    // stored LBD if the current levels improve it (possible promotion).
    const auto touch_learnt = [&](clause_ref c) {
        bump_clause(c);
        arena_.set_used(c, true);
        const auto fresh =
            compute_lbd({arena_.lits(c), arena_.size(c)});
        if (fresh < arena_.lbd(c))
            arena_.set_lbd_tier(c, fresh,
                                std::min(arena_.tier(c), tier_for(fresh)));
    };

    if (confl_cref_ != null_ref && arena_.learnt(confl_cref_))
        touch_learnt(confl_cref_);

    literal binary_buf;
    std::span<const literal> cur{confl_lits_};
    for (;;) {
        for (const auto q : cur) {
            if (!seen_[q.var()] && level_[q.var()] > 0) {
                seen_[q.var()] = 1;
                bump_var(q.var());
                if (level_[q.var()] == decision_level())
                    ++counter;
                else
                    learnt.push_back(q);
            }
        }
        // Next literal on the trail that is marked.
        do {
            p = trail_[--index];
        } while (!seen_[p.var()]);
        seen_[p.var()] = 0;
        if (--counter == 0)
            break;
        const auto r = reason_[p.var()];
        if (r & binary_flag) {
            binary_buf = literal::from_code(r & ~binary_flag);
            cur = {&binary_buf, 1};
        } else {
            if (arena_.learnt(r))
                touch_learnt(r);
            cur = {arena_.lits(r) + 1, arena_.size(r) - 1};
        }
    }
    learnt[0] = ~p;

    // Cheap self-subsumption minimization: drop literals whose reason
    // clause is entirely marked.
    const auto redundant = [&](literal q) {
        const auto r = reason_[q.var()];
        if (r == no_reason)
            return false;
        if (r & binary_flag) {
            const auto x = literal::from_code(r & ~binary_flag);
            return seen_[x.var()] != 0 || level_[x.var()] == 0;
        }
        const auto* lits = arena_.lits(r);
        const auto size = arena_.size(r);
        for (uint32_t k = 1; k < size; ++k) {
            const auto x = lits[k];
            if (!seen_[x.var()] && level_[x.var()] > 0)
                return false;
        }
        return true;
    };
    // learnt[1..] are still marked in seen_ from the resolution loop; use
    // the marks for the redundancy test, then clear them all — including
    // literals dropped by the minimization.
    to_clear_.assign(learnt.begin() + 1, learnt.end());
    size_t keep = 1;
    for (size_t i = 1; i < learnt.size(); ++i)
        if (!redundant(learnt[i]))
            learnt[keep++] = learnt[i];
    learnt.resize(keep);
    for (const auto q : to_clear_)
        seen_[q.var()] = 0;

    lbd = compute_lbd(learnt);

    if (learnt.size() == 1) {
        backtrack_level = 0;
        return;
    }
    // Second-highest decision level; move its literal to position 1.
    size_t max_i = 1;
    for (size_t i = 2; i < learnt.size(); ++i)
        if (level_[learnt[i].var()] > level_[learnt[max_i].var()])
            max_i = i;
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[learnt[1].var()];
}

void modern_solver::analyze_final(literal p)
{
    // Which assumptions does the falsification of `p` depend on?  Walk the
    // trail top-down from the first assumption level, expanding reason
    // clauses; literals with no reason above level 0 are assumption
    // decisions.  Invoked from the assumption-establishment step, so no
    // real decisions are on the trail yet.
    failed_assumptions_.clear();
    failed_assumptions_.push_back(p);
    if (decision_level() == 0)
        return;
    seen_[p.var()] = 1;
    for (size_t i = trail_.size(); i-- > trail_lim_[0];) {
        const auto v = trail_[i].var();
        if (!seen_[v])
            continue;
        const auto r = reason_[v];
        if (r == no_reason) {
            failed_assumptions_.push_back(trail_[i]);
        } else if (r & binary_flag) {
            const auto x = literal::from_code(r & ~binary_flag);
            if (level_[x.var()] > 0)
                seen_[x.var()] = 1;
        } else {
            const auto* lits = arena_.lits(r);
            const auto size = arena_.size(r);
            for (uint32_t k = 1; k < size; ++k)
                if (level_[lits[k].var()] > 0)
                    seen_[lits[k].var()] = 1;
        }
        seen_[v] = 0;
    }
    seen_[p.var()] = 0;
}

std::vector<std::vector<literal>>
modern_solver::export_learnt(size_t max_len) const
{
    std::vector<std::vector<literal>> out;
    if (max_len >= 2)
        for (const auto& [a, b] : binary_learnts_)
            out.push_back({a, b});
    for (const auto c : learnts_) {
        const auto size = arena_.size(c);
        if (size > max_len)
            continue;
        out.emplace_back(arena_.lits(c), arena_.lits(c) + size);
    }
    return out;
}

void modern_solver::backtrack(uint32_t target)
{
    if (decision_level() <= target)
        return;
    const auto bound = trail_lim_[target];
    for (size_t i = trail_.size(); i-- > bound;) {
        const auto v = trail_[i].var();
        saved_phase_[v] = assign_[v];
        assign_[v] = -1;
        reason_[v] = no_reason;
        if (heap_pos_[v] == heap_npos)
            heap_insert(v);
    }
    trail_.resize(bound);
    trail_lim_.resize(target);
    qhead_ = trail_.size();
}

void modern_solver::bump_var(uint32_t var)
{
    activity_[var] += var_inc_;
    if (activity_[var] > 1e100) {
        for (auto& a : activity_)
            a *= 1e-100;
        var_inc_ *= 1e-100;
    }
    if (heap_pos_[var] != heap_npos)
        heap_percolate_up(heap_pos_[var]);
}

void modern_solver::bump_clause(clause_ref c)
{
    const float a = arena_.activity(c) + clause_inc_;
    arena_.set_activity(c, a);
    if (a > 1e20f) {
        for (const auto l : learnts_)
            arena_.set_activity(l, arena_.activity(l) * 1e-20f);
        clause_inc_ *= 1e-20f;
    }
}

void modern_solver::heap_insert(uint32_t var)
{
    heap_pos_[var] = static_cast<uint32_t>(heap_.size());
    heap_.push_back(var);
    heap_percolate_up(heap_pos_[var]);
}

void modern_solver::heap_percolate_up(uint32_t pos)
{
    const auto var = heap_[pos];
    while (pos > 0) {
        const auto parent = (pos - 1) / 2;
        if (activity_[heap_[parent]] >= activity_[var])
            break;
        heap_[pos] = heap_[parent];
        heap_pos_[heap_[pos]] = pos;
        pos = parent;
    }
    heap_[pos] = var;
    heap_pos_[var] = pos;
}

void modern_solver::heap_percolate_down(uint32_t pos)
{
    const auto var = heap_[pos];
    const auto size = static_cast<uint32_t>(heap_.size());
    for (;;) {
        auto child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size &&
            activity_[heap_[child + 1]] > activity_[heap_[child]])
            ++child;
        if (activity_[heap_[child]] <= activity_[var])
            break;
        heap_[pos] = heap_[child];
        heap_pos_[heap_[pos]] = pos;
        pos = child;
    }
    heap_[pos] = var;
    heap_pos_[var] = pos;
}

uint32_t modern_solver::heap_pop()
{
    const auto top = heap_[0];
    heap_pos_[top] = heap_npos;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_pos_[heap_[0]] = 0;
        heap_percolate_down(0);
    }
    return top;
}

literal modern_solver::pick_branch()
{
    while (!heap_.empty()) {
        const auto v = heap_pop();
        if (assign_[v] < 0 && !eliminated_[v])
            return literal{v, saved_phase_[v] != 1};
    }
    return literal{heap_npos >> 1, false}; // all assigned
}

void modern_solver::record_learnt(std::span<const literal> learnt,
                                  uint32_t lbd)
{
    if (learnt.size() == 2) {
        binary_learnts_.emplace_back(learnt[0], learnt[1]);
        attach_binary(learnt[0], learnt[1]);
        enqueue(learnt[0], binary_flag | learnt[1].code());
        return;
    }
    const auto c = arena_.alloc(learnt, true);
    arena_.set_lbd_tier(c, lbd, tier_for(lbd));
    learnts_.push_back(c);
    attach_long(c);
    bump_clause(c);
    enqueue(learnt[0], c);
}

void modern_solver::reduce_learnts()
{
    // Tier maintenance first: mid clauses untouched since the last
    // reduction demote to local; touched ones survive with the used flag
    // cleared for the next cycle.  Core clauses are never demoted.
    std::vector<clause_ref> local;
    for (const auto c : learnts_) {
        if (arena_.tier(c) == 1) {
            if (arena_.used(c))
                arena_.set_used(c, false);
            else
                arena_.set_lbd_tier(c, arena_.lbd(c), 2);
        }
        if (arena_.tier(c) == 2)
            local.push_back(c);
    }
    std::sort(local.begin(), local.end(), [&](clause_ref a, clause_ref b) {
        return arena_.activity(a) < arena_.activity(b);
    });
    const size_t target = local.size() / 2;
    size_t removed = 0;
    for (size_t i = 0; i < local.size() && removed < target; ++i) {
        const auto c = local[i];
        // Keep reason clauses of current assignments (lits[0] is always
        // the literal a clause propagated).
        const auto first = arena_.lits(c)[0];
        if (assign_[first.var()] >= 0 && reason_[first.var()] == c)
            continue;
        arena_.free_clause(c);
        ++removed;
    }
    if (removed != 0) {
        stats_.learnt_removed += removed;
        for (auto& ws : watches_)
            std::erase_if(ws, [&](const watch& w) {
                return !(w.ref & binary_flag) && arena_.freed(w.ref);
            });
        std::erase_if(learnts_,
                      [&](clause_ref c) { return arena_.freed(c); });
    }
    // On-the-fly compaction once a quarter of the arena is garbage.
    if (arena_.wasted_words() * 4 > arena_.words())
        garbage_collect();
}

void modern_solver::garbage_collect()
{
    clause_arena to;
    to.reserve_words(arena_.words() - arena_.wasted_words());
    for (auto& c : clauses_)
        c = arena_.relocate(c, to);
    for (auto& c : learnts_)
        c = arena_.relocate(c, to);
    for (uint32_t v = 0; v < num_vars(); ++v)
        if (assign_[v] >= 0 && reason_[v] != no_reason &&
            !(reason_[v] & binary_flag))
            reason_[v] = arena_.relocate(reason_[v], to);
    for (auto& ws : watches_)
        for (auto& w : ws)
            if (!(w.ref & binary_flag))
                w.ref = arena_.forward(w.ref);
    arena_ = std::move(to);
}

uint64_t modern_solver::luby(uint64_t i)
{
    // Knuth's formulation of the Luby sequence.
    uint64_t size = 1, seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) / 2;
        --seq;
        i = i % size;
    }
    return uint64_t{1} << seq;
}

solve_result modern_solver::solve(std::span<const literal> assumptions,
                                  uint64_t conflict_budget,
                                  const cancellation_token& token)
{
    failed_assumptions_.clear();
    backtrack(0);
    if (unsat_)
        return solve_result::unsatisfiable;
    if (propagate()) {
        unsat_ = true;
        return solve_result::unsatisfiable;
    }
    if (token.stop_possible() && token.stop_requested())
        return solve_result::undecided;

    if (preprocess_enabled_ && !preprocessed_) {
        if (assumptions.empty()) {
            preprocessed_ = true;
            preprocess();
            if (unsat_)
                return solve_result::unsatisfiable;
        } else {
            // First solve already carries assumptions: this solver is used
            // incrementally, where one-shot elimination would be unsound.
            preprocess_enabled_ = false;
        }
    }
    for (const auto a : assumptions)
        if (eliminated_[a.var()])
            throw std::logic_error{"solve: assumption on eliminated variable"};

    const uint64_t conflict_limit =
        conflict_budget == 0 ? 0 : stats_.conflicts + conflict_budget;
    uint64_t restart_count = 0;
    uint64_t conflicts_until_restart =
        restarts_ == restart_policy::luby ? 100 * luby(0) : 0;
    uint64_t conflicts_in_restart = 0;
    std::vector<literal> learnt;

    for (;;) {
        if (propagate()) {
            ++stats_.conflicts;
            ++conflicts_in_restart;
            if (decision_level() == 0) {
                unsat_ = true;
                return solve_result::unsatisfiable;
            }
            uint32_t backtrack_level = 0;
            uint32_t lbd = 0;
            analyze(learnt, backtrack_level, lbd);
            // LBD / trail EMAs feeding the restart policy, measured before
            // the backtrack.
            if (!ema_init_) {
                ema_init_ = true;
                ema_lbd_fast_ = ema_lbd_slow_ = lbd;
                ema_trail_ = static_cast<double>(trail_.size());
            } else {
                ema_lbd_fast_ += (lbd - ema_lbd_fast_) / 32.0;
                ema_lbd_slow_ += (lbd - ema_lbd_slow_) / 16384.0;
                ema_trail_ += (trail_.size() - ema_trail_) / 4096.0;
            }
            if (on_learnt)
                on_learnt(learnt);
            backtrack(backtrack_level);
            if (learnt.size() == 1)
                enqueue(learnt[0], no_reason);
            else
                record_learnt(learnt, lbd);
            var_inc_ /= 0.95;
            clause_inc_ /= 0.999f;
            if (conflict_limit != 0 && stats_.conflicts >= conflict_limit) {
                backtrack(0);
                return solve_result::undecided;
            }
            if (token.stop_possible() && token.stop_requested()) {
                backtrack(0);
                return solve_result::undecided;
            }
            continue;
        }

        const bool restart_due =
            restarts_ == restart_policy::luby
                ? conflicts_in_restart >= conflicts_until_restart
                : (ema_init_ && conflicts_in_restart >= 50 &&
                   ema_lbd_fast_ > 1.25 * ema_lbd_slow_);
        if (restart_due) {
            if (restarts_ == restart_policy::ema &&
                trail_.size() > 1.4 * ema_trail_) {
                // Blocked: the search is deep in a promising assignment
                // (glucose's SAT-friendly restart postponement).
                conflicts_in_restart = 0;
            } else {
                ++stats_.restarts;
                ++restart_count;
                conflicts_in_restart = 0;
                if (restarts_ == restart_policy::luby)
                    conflicts_until_restart = 100 * luby(restart_count);
                backtrack(0);
                continue;
            }
        }
        if (stats_.conflicts >= next_reduce_ && !learnts_.empty()) {
            reduce_learnts();
            ++reduce_count_;
            next_reduce_ = stats_.conflicts + 2000 + 300 * reduce_count_;
        }

        // Re-establish assumptions as pseudo-decision levels before any
        // real decision.  A restart backtracks to level 0, so this loop
        // also restores them after every restart.
        if (decision_level() < assumptions.size()) {
            const auto p = assumptions[decision_level()];
            const auto val = value_of(p);
            if (val == 0) {
                // Falsified by earlier assumptions / top-level units:
                // UNSAT under these assumptions only — sticky unsat_ is
                // NOT set, and the final-conflict subset is extracted.
                analyze_final(p);
                backtrack(0);
                return solve_result::unsatisfiable;
            }
            // Already-true assumptions still get their own (empty)
            // decision level so analyze_final can tell assumption levels
            // from top-level units.
            trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
            if (val == -1)
                enqueue(p, no_reason);
            continue;
        }

        const auto next = pick_branch();
        if (next.var() == (heap_npos >> 1)) {
            // Snapshot the model (reconstructing eliminated variables),
            // then release the trail: the solver is always left at
            // decision level 0 so callers can add clauses and re-solve.
            model_.assign(assign_.begin(), assign_.end());
            reconstruct_model();
            backtrack(0);
            return solve_result::satisfiable;
        }
        ++stats_.decisions;
        trail_lim_.push_back(static_cast<uint32_t>(trail_.size()));
        enqueue(next, no_reason);
    }
}

} // namespace mcx::sat
