// Bounded one-shot preprocessing for the modern CDCL core (the
// `sat_params::preprocess` contract, see src/sat/types.h): subsumption,
// self-subsumption (clause strengthening), and bounded variable
// elimination with model reconstruction.
//
// Runs once, at the first assumption-free solve: the current clause
// database (level-0 units + binaries from the watcher lists + long
// clauses from the arena) is lifted into a scratch representation,
// simplified under explicit work budgets, and the solver is rebuilt from
// the result.  Eliminated variables are recorded on `elim_stack_`; after
// a satisfiable solve `reconstruct_model()` extends the model over them
// (MiniSat's extend-model rule), so `model_value` stays valid for every
// variable the caller ever created.
#include "sat/modern_solver.h"

#include <algorithm>

namespace mcx::sat {

namespace {

struct pclause {
    std::vector<literal> lits;
    uint64_t sig = 0; ///< OR of bit (var mod 64) — quick non-subset filter
    bool dead = false;
};

uint64_t signature(const std::vector<literal>& lits)
{
    uint64_t s = 0;
    for (const auto l : lits)
        s |= uint64_t{1} << (l.var() & 63);
    return s;
}

bool contains(const std::vector<literal>& lits, literal l)
{
    return std::find(lits.begin(), lits.end(), l) != lits.end();
}

// Work budgets: preprocessing must stay a small fraction of search time
// even on large miters, so every quadratic loop is capped.
constexpr int64_t total_budget = 20'000'000; ///< literal-comparison steps
constexpr size_t max_subsume_len = 16;  ///< clauses longer than this are
                                        ///< never subsumption candidates
constexpr size_t max_occ_scan = 400;    ///< occurrence-list scan cap
constexpr size_t max_elim_product = 16; ///< |pos| * |neg| cap for BVE
constexpr size_t max_elim_occs = 10;    ///< |pos| + |neg| cap for BVE
constexpr size_t max_resolvent_len = 16;

} // namespace

void modern_solver::preprocess()
{
    // ---- lift the clause database into scratch form -------------------
    std::vector<literal> units(trail_.begin(), trail_.end());
    std::vector<pclause> cls;
    for (uint32_t code = 0; code < watches_.size(); ++code) {
        // watches_[p] holds clauses in which ~p is watched, so the literal
        // actually in the clause is the negation of this list's index.
        const auto in_clause = ~literal::from_code(code);
        for (const auto& w : watches_[code]) {
            if (!(w.ref & binary_flag))
                continue;
            const auto other = literal::from_code(w.ref & ~binary_flag);
            if (in_clause.code() < other.code())
                cls.push_back({{in_clause, other}});
        }
    }
    for (const auto c : clauses_)
        cls.push_back(
            {{arena_.lits(c), arena_.lits(c) + arena_.size(c)}});

    const auto n = num_vars();
    std::vector<std::vector<uint32_t>> occ(2 * size_t{n});
    for (uint32_t i = 0; i < cls.size(); ++i) {
        cls[i].sig = signature(cls[i].lits);
        for (const auto l : cls[i].lits)
            occ[l.code()].push_back(i);
    }

    std::vector<int8_t> pval(n, -1);
    const auto lit_val = [&](literal l) -> int {
        const auto v = pval[l.var()];
        return v < 0 ? -1 : int{(v == 1) != l.negative()};
    };

    bool contradiction = false;
    std::vector<literal> unit_queue = units;

    const auto push_clause = [&](std::vector<literal>&& lits) {
        const auto idx = static_cast<uint32_t>(cls.size());
        cls.push_back({std::move(lits)});
        cls[idx].sig = signature(cls[idx].lits);
        for (const auto l : cls[idx].lits)
            occ[l.code()].push_back(idx);
        return idx;
    };

    const auto assign_unit = [&](literal l) {
        const auto v = lit_val(l);
        if (v == 1)
            return;
        if (v == 0) {
            contradiction = true;
            return;
        }
        pval[l.var()] = l.negative() ? 0 : 1;
        for (const auto ci : occ[l.code()])
            cls[ci].dead = true; // satisfied
        for (const auto ci : occ[(~l).code()]) {
            auto& c = cls[ci];
            if (c.dead)
                continue;
            std::erase(c.lits, ~l);
            c.sig = signature(c.lits);
            if (c.lits.empty()) {
                contradiction = true;
                return;
            }
            if (c.lits.size() == 1) {
                unit_queue.push_back(c.lits[0]);
                c.dead = true;
            }
        }
    };
    const auto flush_units = [&] {
        while (!unit_queue.empty() && !contradiction) {
            const auto l = unit_queue.back();
            unit_queue.pop_back();
            assign_unit(l);
        }
    };
    flush_units();

    int64_t budget = total_budget;

    // ---- subsumption + self-subsumption (strengthening) ---------------
    // For a candidate clause C: every clause D ⊇ C is subsumed (dropped);
    // every D ⊇ (C with exactly one literal flipped) is strengthened by
    // removing that flipped literal.  Returns 0 (unrelated), 1 (subsumed)
    // or 2 via `flipped`.
    const auto subsume_check = [&](const pclause& a, const pclause& b,
                                   literal& flipped) -> int {
        budget -=
            static_cast<int64_t>(a.lits.size()) * b.lits.size();
        bool has_flip = false;
        for (const auto l : a.lits) {
            if (contains(b.lits, l))
                continue;
            if (!has_flip && contains(b.lits, ~l)) {
                has_flip = true;
                flipped = l;
                continue;
            }
            return 0;
        }
        return has_flip ? 2 : 1;
    };

    const auto subsumption_pass = [&] {
        std::vector<uint32_t> queue(cls.size());
        for (uint32_t i = 0; i < queue.size(); ++i)
            queue[i] = i;
        std::vector<uint32_t> scratch;
        while (!queue.empty() && budget > 0 && !contradiction) {
            const auto ci = queue.back();
            queue.pop_back();
            auto& c = cls[ci];
            if (c.dead || c.lits.empty() ||
                c.lits.size() > max_subsume_len)
                continue;
            // Candidate set: occurrences of C's rarest literal (catches
            // D ⊇ C) plus occurrences of each literal's negation (catches
            // the one-flip strengthening case).
            scratch.clear();
            size_t min_occ = ~size_t{0};
            literal min_lit = c.lits[0];
            for (const auto l : c.lits)
                if (occ[l.code()].size() < min_occ) {
                    min_occ = occ[l.code()].size();
                    min_lit = l;
                }
            for (const auto di : occ[min_lit.code()])
                if (scratch.size() < max_occ_scan)
                    scratch.push_back(di);
            for (const auto l : c.lits)
                for (const auto di : occ[(~l).code()]) {
                    if (scratch.size() >= 2 * max_occ_scan)
                        break;
                    scratch.push_back(di);
                }
            for (const auto di : scratch) {
                if (di == ci)
                    continue;
                auto& d = cls[di];
                if (d.dead || d.lits.size() < c.lits.size())
                    continue;
                if ((c.sig & ~d.sig) != 0)
                    continue;
                literal flipped{};
                const auto r = subsume_check(c, d, flipped);
                if (r == 1) {
                    d.dead = true;
                } else if (r == 2) {
                    std::erase(d.lits, ~flipped);
                    d.sig = signature(d.lits);
                    if (d.lits.size() == 1) {
                        unit_queue.push_back(d.lits[0]);
                        d.dead = true;
                    } else {
                        queue.push_back(di);
                    }
                }
                if (budget <= 0)
                    break;
            }
            flush_units();
        }
        flush_units();
    };

    // ---- bounded variable elimination ---------------------------------
    const auto gather = [&](literal l, std::vector<uint32_t>& out) {
        out.clear();
        for (const auto ci : occ[l.code()]) {
            const auto& c = cls[ci];
            if (c.dead || !contains(c.lits, l))
                continue; // stale occurrence (strengthened away)
            out.push_back(ci);
            if (out.size() > max_elim_occs)
                return; // over the cap; caller skips this variable
        }
    };

    const auto elimination_pass = [&] {
        std::vector<uint32_t> pos, neg;
        for (uint32_t v = 0; v < n && budget > 0 && !contradiction; ++v) {
            if (pval[v] >= 0 || eliminated_[v])
                continue;
            const literal lp{v, false}, ln{v, true};
            gather(lp, pos);
            gather(ln, neg);
            if (pos.empty() && neg.empty())
                continue; // variable untouched by any clause
            budget -= static_cast<int64_t>(pos.size() + neg.size());
            if (pos.empty() || neg.empty()) {
                // Pure literal: drop its clauses, reconstruct later.
                const auto l = pos.empty() ? ln : lp;
                auto& side = pos.empty() ? neg : pos;
                elim_record rec{l, {}};
                for (const auto ci : side) {
                    auto saved = cls[ci].lits;
                    std::erase(saved, l);
                    rec.saved.push_back(std::move(saved));
                    cls[ci].dead = true;
                }
                eliminated_[v] = 1;
                elim_stack_.push_back(std::move(rec));
                continue;
            }
            if (pos.size() + neg.size() > max_elim_occs ||
                pos.size() * neg.size() > max_elim_product)
                continue;
            // All non-tautological resolvents; give up on growth.
            std::vector<std::vector<literal>> resolvents;
            bool abort = false;
            for (const auto pi : pos) {
                for (const auto ni : neg) {
                    std::vector<literal> res;
                    bool taut = false;
                    for (const auto l : cls[pi].lits)
                        if (!(l == lp))
                            res.push_back(l);
                    for (const auto l : cls[ni].lits) {
                        if (l == ln)
                            continue;
                        if (contains(res, ~l)) {
                            taut = true;
                            break;
                        }
                        if (!contains(res, l))
                            res.push_back(l);
                    }
                    budget -= static_cast<int64_t>(
                        cls[pi].lits.size() * cls[ni].lits.size());
                    if (taut)
                        continue;
                    if (res.size() > max_resolvent_len) {
                        abort = true;
                        break;
                    }
                    resolvents.push_back(std::move(res));
                }
                if (abort)
                    break;
            }
            if (abort || resolvents.size() > pos.size() + neg.size())
                continue;
            // Eliminate: save the smaller side for model reconstruction,
            // replace both sides by the resolvents.
            const bool save_pos = pos.size() <= neg.size();
            const auto l = save_pos ? lp : ln;
            elim_record rec{l, {}};
            for (const auto ci : save_pos ? pos : neg) {
                auto saved = cls[ci].lits;
                std::erase(saved, l);
                rec.saved.push_back(std::move(saved));
            }
            for (const auto ci : pos)
                cls[ci].dead = true;
            for (const auto ci : neg)
                cls[ci].dead = true;
            eliminated_[v] = 1;
            elim_stack_.push_back(std::move(rec));
            for (auto& res : resolvents) {
                if (res.size() == 1) {
                    unit_queue.push_back(res[0]);
                    continue;
                }
                push_clause(std::move(res));
            }
            flush_units();
        }
        flush_units();
    };

    subsumption_pass();
    elimination_pass();
    subsumption_pass();

    if (contradiction) {
        unsat_ = true;
        return;
    }

    // ---- rebuild the solver from the simplified database --------------
    std::vector<literal> final_units;
    for (uint32_t v = 0; v < n; ++v)
        if (pval[v] >= 0)
            final_units.push_back(literal{v, pval[v] == 0});
    std::vector<std::vector<literal>> out;
    for (auto& c : cls)
        if (!c.dead)
            out.push_back(std::move(c.lits));
    rebuild_from(std::move(out), final_units);
}

void modern_solver::rebuild_from(std::vector<std::vector<literal>>&& clauses,
                                 std::span<const literal> units)
{
    arena_.clear();
    clauses_.clear();
    learnts_.clear();
    binary_learnts_.clear();
    for (auto& ws : watches_)
        ws.clear();
    std::fill(assign_.begin(), assign_.end(), int8_t{-1});
    std::fill(level_.begin(), level_.end(), 0u);
    std::fill(reason_.begin(), reason_.end(), no_reason);
    trail_.clear();
    trail_lim_.clear();
    qhead_ = 0;
    heap_.clear();
    std::fill(heap_pos_.begin(), heap_pos_.end(), heap_npos);
    for (uint32_t v = 0; v < num_vars(); ++v)
        heap_insert(v);

    for (auto& c : clauses) {
        if (c.size() == 1) {
            if (value_of(c[0]) == 0) {
                unsat_ = true;
                return;
            }
            if (value_of(c[0]) < 0)
                enqueue(c[0], no_reason);
        } else if (c.size() == 2) {
            attach_binary(c[0], c[1]);
        } else {
            const auto r = arena_.alloc(c, false);
            clauses_.push_back(r);
            attach_long(r);
        }
    }
    for (const auto u : units) {
        if (value_of(u) == 0) {
            unsat_ = true;
            return;
        }
        if (value_of(u) < 0)
            enqueue(u, no_reason);
    }
    if (propagate())
        unsat_ = true;
}

void modern_solver::reconstruct_model()
{
    // Reverse elimination order: a variable eliminated later may appear in
    // the saved clauses of one eliminated earlier, so by the time a record
    // is processed every variable in its saved clauses already has a model
    // value.  `l` defaults to false; it must be true exactly when one of
    // its saved clauses is otherwise unsatisfied.
    for (auto it = elim_stack_.rbegin(); it != elim_stack_.rend(); ++it) {
        bool must = false;
        for (const auto& saved : it->saved) {
            bool satisfied = false;
            for (const auto x : saved)
                if (lit_true_in_model(x)) {
                    satisfied = true;
                    break;
                }
            if (!satisfied) {
                must = true;
                break;
            }
        }
        const auto v = it->l.var();
        model_[v] = (must != it->l.negative()) ? 1 : 0;
    }
}

} // namespace mcx::sat
