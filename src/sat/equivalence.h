// Formal combinational equivalence checking via SAT miters.
//
// Three entry points, coldest to warmest:
//   - check_equivalence(): fresh solver, whole-network pairwise-XOR miter,
//     single solve.  The oracle everything else is measured against.
//   - incremental_cec: one persistent solver holds the golden network's
//     CNF; each check() encodes the candidate as a retirable activation
//     session and decides the outputs one by one under assumptions, so
//     learnt clauses accumulate across outputs AND across checks.  A
//     variable remapper rebuilds the solver when retired-session garbage
//     dominates, migrating learnt clauses over golden variables.
//   - cone_verifier: commit-time replacement checking — only the replaced
//     cone is mitered against its pre-image over shared leaf variables,
//     on a persistent solver warmed by previous commits.
#pragma once

#include "core/budget.h"
#include "sat/cnf.h"
#include "sat/solver.h"
#include "xag/xag.h"

#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace mcx::sat {

enum class equivalence_result : uint8_t {
    equivalent,
    not_equivalent,
    undecided ///< conflict budget exhausted
};

struct equivalence_report {
    equivalence_result result = equivalence_result::undecided;
    /// PI assignment demonstrating a difference (when not equivalent).
    std::optional<std::vector<bool>> counterexample;
    solver_stats stats;
};

/// One solve in an incremental verification sequence (schema mirrored in
/// the mcx --report `verification.checks` array, docs/artifacts.md).
struct verification_record {
    uint32_t index = 0;          ///< output index / commit sequence number
    uint64_t sat_conflicts = 0;  ///< conflicts spent on this solve alone
    bool warm_start = false;     ///< solver carried state from earlier solves
};

/// Build the pairwise-XOR miter of two networks over shared inputs and
/// decide it.  `conflict_budget` = 0 runs to completion.
equivalence_report check_equivalence(const xag& a, const xag& b,
                                     uint64_t conflict_budget = 0);

/// Warm whole-network CEC against a fixed golden reference.  The golden
/// network is encoded once; every `check()` call verifies one candidate
/// network output-by-output under assumptions on the same solver.  The
/// caller keeps `golden` alive for the verifier's lifetime.
class incremental_cec {
public:
    /// `rebuild_growth`: rebuild (GC) once the solver's variable count
    /// exceeds this multiple of the golden encoding.  Each retired check
    /// leaves roughly one candidate encoding of garbage behind, so the
    /// factor is the number of distinct candidates between golden
    /// re-encodes (measured best at the default on the adder64 iterated
    /// flow: lean watch lists beat fewer rebuilds).
    explicit incremental_cec(const xag& golden, uint32_t rebuild_growth = 4);

    /// Verify `optimized` against the golden reference.  The conflict
    /// budget is a total across all per-output solves (0 = unbounded).
    equivalence_report check(const xag& optimized,
                             uint64_t conflict_budget = 0,
                             const cancellation_token& token = {});

    /// Per-output solve records for every check() so far.
    const std::vector<verification_record>& records() const
    {
        return records_;
    }
    uint64_t rebuilds() const { return rebuilds_; }
    /// Checks that re-solved on a live session instead of re-encoding
    /// (candidate structurally identical to the previous one — the
    /// steady state of an iterated flow).
    uint64_t session_reuses() const { return session_reuses_; }
    uint32_t num_vars() const { return solver_->num_vars(); }

private:
    void rebuild();
    void retire(literal activation);

    /// The most recent candidate's encoding stays live (not retired)
    /// so a structurally identical next candidate — every re-check in a
    /// converged iterated flow — re-runs its per-output solves on the
    /// same variables, where that session's learnt clauses still apply.
    struct live_session {
        bool valid = false;
        literal act{};
        std::vector<literal> outputs; ///< candidate PO literals
        std::vector<literal> diffs;   ///< per-output miter literals
        std::vector<uint64_t> shape;  ///< exact structural signature
    };

    const xag* golden_;
    uint32_t rebuild_growth_;
    std::unique_ptr<solver> solver_;
    std::vector<literal> pis_;
    cnf_encoding golden_enc_;
    uint32_t base_vars_ = 0; ///< variables belonging to the golden encoding
    bool warm_ = false;
    uint64_t rebuilds_ = 0;
    uint64_t session_reuses_ = 0;
    live_session session_;
    std::vector<verification_record> records_;
};

/// Commit-time cone verification: is `replacement` equivalent to the cone
/// rooted at `old_root` over the shared `leaves`?  Both cones live in the
/// same network (the candidate is built before the substitution commits).
/// One persistent solver serves all commits; each check is a retirable
/// activation session and the solver is rebuilt once dead session
/// variables dominate.
class cone_verifier {
public:
    /// `rebuild_after_vars`: variable count that triggers a fresh solver.
    explicit cone_verifier(uint32_t rebuild_after_vars = 1u << 16)
        : rebuild_after_vars_{rebuild_after_vars}
    {
    }

    equivalence_result verify(const xag& network, uint32_t old_root,
                              signal replacement,
                              std::span<const uint32_t> leaves,
                              uint64_t conflict_budget = 0,
                              const cancellation_token& token = {});

    const std::vector<verification_record>& records() const
    {
        return records_;
    }
    uint64_t rebuilds() const { return rebuilds_; }
    uint32_t num_vars() const { return solver_ ? solver_->num_vars() : 0; }

    /// Aggregate counters (cheap to poll per round).
    uint64_t checks() const { return checks_; }
    uint64_t conflicts() const { return conflicts_; }
    uint64_t warm_starts() const { return warm_starts_; }

private:
    uint32_t rebuild_after_vars_;
    std::unique_ptr<solver> solver_;
    bool warm_ = false;
    uint64_t checks_ = 0;
    uint64_t conflicts_ = 0;
    uint64_t warm_starts_ = 0;
    uint64_t rebuilds_ = 0;
    std::vector<verification_record> records_;
};

} // namespace mcx::sat
