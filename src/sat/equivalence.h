// Formal combinational equivalence checking via a SAT miter.
#pragma once

#include "sat/solver.h"
#include "xag/xag.h"

#include <optional>
#include <vector>

namespace mcx::sat {

enum class equivalence_result : uint8_t {
    equivalent,
    not_equivalent,
    undecided ///< conflict budget exhausted
};

struct equivalence_report {
    equivalence_result result = equivalence_result::undecided;
    /// PI assignment demonstrating a difference (when not equivalent).
    std::optional<std::vector<bool>> counterexample;
    solver_stats stats;
};

/// Build the pairwise-XOR miter of two networks over shared inputs and
/// decide it.  `conflict_budget` = 0 runs to completion.
equivalence_report check_equivalence(const xag& a, const xag& b,
                                     uint64_t conflict_budget = 0);

} // namespace mcx::sat
