// Tseitin encoding of XAGs into CNF.
#pragma once

#include "sat/solver.h"
#include "xag/xag.h"

#include <span>
#include <vector>

namespace mcx::sat {

/// Result of encoding a network: SAT literals for PIs, POs and every node.
struct cnf_encoding {
    std::vector<literal> pi_literals;
    std::vector<literal> po_literals;
    std::vector<literal> node_literals; ///< indexed by node id (live cone)
};

/// Encode `network` into `s`.  If `shared_pis` is non-empty it supplies the
/// PI literals (for miters over a common input space); otherwise fresh
/// variables are created.
cnf_encoding encode(solver& s, const xag& network,
                    const std::vector<literal>& shared_pis = {});

/// Encode `network` as a retirable session: every emitted clause carries
/// `~activation`, so the encoding only constrains solves that assume
/// `activation` and a later top-level unit `~activation` retires the whole
/// session at once (the incremental-CEC idiom, src/sat/equivalence.h).
cnf_encoding encode_guarded(solver& s, const xag& network, literal activation,
                            const std::vector<literal>& shared_pis = {});

/// Encode the cones of `roots` down to `leaves` in one network: each leaf
/// (and any PI reached below the roots) becomes a free variable shared by
/// all roots, interior gates get guarded Tseitin clauses.  Returns one
/// literal per root.  Used for commit-time replacement verification, where
/// the old root cone and the candidate cone live in the same network over
/// the same leaf set.
std::vector<literal> encode_cones(solver& s, const xag& network,
                                  std::span<const uint32_t> leaves,
                                  std::span<const signal> roots,
                                  literal activation);

} // namespace mcx::sat
