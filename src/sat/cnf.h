// Tseitin encoding of XAGs into CNF.
#pragma once

#include "sat/solver.h"
#include "xag/xag.h"

#include <vector>

namespace mcx::sat {

/// Result of encoding a network: SAT literals for PIs, POs and every node.
struct cnf_encoding {
    std::vector<literal> pi_literals;
    std::vector<literal> po_literals;
    std::vector<literal> node_literals; ///< indexed by node id (live cone)
};

/// Encode `network` into `s`.  If `shared_pis` is non-empty it supplies the
/// PI literals (for miters over a common input space); otherwise fresh
/// variables are created.
cnf_encoding encode(solver& s, const xag& network,
                    const std::vector<literal>& shared_pis = {});

} // namespace mcx::sat
