// Shared SAT-layer vocabulary: literals, solve results, per-solver stats,
// and the engine-selection contract (`sat_engine` / `sat_params`).
//
// Two CDCL engines live behind the `sat::solver` facade (src/sat/solver.h):
// the modern arena-based core (src/sat/modern_solver.h) and the original
// vector-of-clauses solver retained verbatim as the differential oracle
// (src/sat/legacy_solver.h).  Consumers pick an engine per solver through
// `sat_params::engine`; `automatic` defers to the process-wide default set
// by `mcx --sat-engine`.
#pragma once

#include <cstdint>

namespace mcx::sat {

/// A literal: variable index with sign bit in the LSB.
class literal {
public:
    constexpr literal() = default;
    constexpr literal(uint32_t var, bool negative)
        : code_{(var << 1) | static_cast<uint32_t>(negative)} {}

    static constexpr literal from_code(uint32_t code)
    {
        literal l;
        l.code_ = code;
        return l;
    }

    constexpr uint32_t var() const { return code_ >> 1; }
    constexpr bool negative() const { return (code_ & 1) != 0; }
    constexpr uint32_t code() const { return code_; }
    constexpr literal operator~() const
    {
        literal l;
        l.code_ = code_ ^ 1;
        return l;
    }
    constexpr bool operator==(const literal&) const = default;

private:
    uint32_t code_ = 0;
};

enum class solve_result : uint8_t { satisfiable, unsatisfiable, undecided };

struct solver_stats {
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    uint64_t learnt_removed = 0;
};

/// Which CDCL core backs a `sat::solver`.  `automatic` resolves to the
/// process-wide default (modern unless `mcx --sat-engine legacy`).
enum class sat_engine : uint8_t { automatic, modern, legacy };

/// Process-wide default engine used by `sat_engine::automatic`.  Set once
/// at CLI startup; reads are relaxed-atomic so pool workers constructing
/// solvers concurrently are race-free.
sat_engine default_engine();
void set_default_engine(sat_engine engine); ///< `automatic` resets to modern

/// Stable name for reports / flags ("modern" / "legacy").
const char* engine_name(sat_engine engine);

/// Restart schedule of the modern core (legacy always uses Luby).
enum class restart_policy : uint8_t { ema, luby };

/// Per-solver configuration, fixed at construction.
///
/// `preprocess` enables the modern core's bounded one-shot preprocessor
/// (subsumption + self-subsumption + bounded variable elimination with
/// model reconstruction).  It is only sound for the build-once/solve
/// pattern — exact-synthesis encodings and cold CEC miters — and must stay
/// off for warm incremental sessions that keep adding clauses and solving
/// under assumptions (`incremental_cec`, `cone_verifier`).  The legacy
/// engine has no preprocessor and ignores the flag.
struct sat_params {
    sat_engine engine = sat_engine::automatic;
    bool preprocess = false;
    restart_policy restarts = restart_policy::ema;
};

} // namespace mcx::sat
