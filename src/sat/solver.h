// The SAT solver facade: one `sat::solver` API over two interchangeable
// CDCL engines.
//
//   - modern (default): arena clause storage, inline binary-clause
//     watchers, LBD-tiered learnt retention, LBD-EMA restarts, optional
//     bounded preprocessing (src/sat/modern_solver.h)
//   - legacy: the original solver, kept verbatim as the differential
//     oracle (src/sat/legacy_solver.h), selectable per solver via
//     `sat_params::engine` or process-wide via `mcx --sat-engine legacy`
//
// The facade also owns the cross-engine plumbing: the
// `fault_site::sat_budget` injection point and the `sat.solve` span +
// `sat.*` metrics mirrors, so both engines are observed identically.
//
// Substrate for exact multiplicative-complexity synthesis (src/exact) and
// formal equivalence checking of optimized networks (src/sat/equivalence.h).
#pragma once

#include "core/budget.h"
#include "sat/types.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace mcx::sat {

class legacy_solver;
class modern_solver;

class solver {
public:
    solver(sat_params params = {});
    ~solver();
    solver(solver&&) noexcept;
    solver& operator=(solver&&) noexcept;

    /// The engine actually backing this solver (never `automatic`).
    sat_engine engine() const { return engine_; }

    uint32_t num_vars() const;

    /// A fresh variable; returns its index.
    uint32_t add_variable();

    /// Add a clause (disjunction of literals).  An empty clause makes the
    /// instance trivially unsatisfiable.  Returns false if the clause is
    /// already conflicting under top-level assignments.
    bool add_clause(std::span<const literal> lits);
    bool add_clause(std::initializer_list<literal> lits)
    {
        return add_clause(std::span<const literal>{lits.begin(), lits.size()});
    }

    /// Solve; `conflict_budget` = 0 means no budget (run to completion).
    /// A stopped `token` (deadline or cancellation) ends the search at the
    /// next conflict with `undecided` — the same honest "don't know" that
    /// budget exhaustion yields, never a fabricated UNSAT.
    solve_result solve(uint64_t conflict_budget = 0,
                       const cancellation_token& token = {})
    {
        return solve({}, conflict_budget, token);
    }

    /// Solve under `assumptions`: each literal is forced true for this call
    /// only, via pseudo-decision levels below every real decision.  Learnt
    /// clauses are retained across calls, so a sequence of related queries
    /// on one solver gets warmer with each solve.  `unsatisfiable` here
    /// means "UNSAT under these assumptions" — the solver stays usable and
    /// `failed_assumptions()` holds the subset of assumptions the final
    /// conflict depends on.  Only a conflict at decision level 0 (no
    /// assumptions involved) makes the instance permanently UNSAT.
    /// The solver always returns at decision level 0, so `add_clause` is
    /// legal immediately after any solve.
    solve_result solve(std::span<const literal> assumptions,
                       uint64_t conflict_budget = 0,
                       const cancellation_token& token = {});

    /// Model value of a variable after a satisfiable solve.  Reads the
    /// snapshot taken at SAT time; valid until the next solve call.
    bool model_value(uint32_t var) const;

    /// After `solve(assumptions)` returns `unsatisfiable` with a non-empty
    /// assumption set: the subset of assumptions sufficient for the
    /// conflict (MiniSat's analyzeFinal).  Empty when the instance is
    /// UNSAT independent of the assumptions.
    const std::vector<literal>& failed_assumptions() const;

    /// Live learnt clauses of at most `max_len` literals — migration feed
    /// for a rebuilt solver (variable GC in src/sat/equivalence.cpp).
    std::vector<std::vector<literal>> export_learnt(size_t max_len) const;

    const solver_stats& stats() const;

    /// Instrumentation: invoked with every learnt clause (testing/debugging).
    std::function<void(std::span<const literal>)> on_learnt;

private:
    sat_engine engine_;
    std::unique_ptr<modern_solver> modern_;
    std::unique_ptr<legacy_solver> legacy_;
};

} // namespace mcx::sat
