// Arena clause storage for the modern CDCL core (src/sat/modern_solver.h).
//
// All long clauses (3+ literals; binaries live directly in the watcher
// lists) are stored in one contiguous uint32 buffer.  A clause is a 32-bit
// word offset (`clause_ref`) to a 3-word header followed by the literals
// inline:
//
//   word 0   size << 4 | learnt(bit 0) | used(bit 1) | moved(bit 2) |
//            freed(bit 3)
//   word 1   live:   lbd << 2 | tier (core = 0 / mid = 1 / local = 2)
//            moved:  forwarding clause_ref in the destination arena
//   word 2   float activity bits (learnt clauses)
//   word 3+  literals
//
// Freeing a clause only accounts its words as wasted; compaction
// (`relocate` + `forward` during the solver's garbage collection) copies
// live clauses into a fresh arena and leaves a forwarding ref in the old
// header so watcher lists and reason refs can be patched in place.
//
// Refs fit comfortably in 31 bits (the solver reserves the top watcher /
// reason bit for the inline-binary encoding); `alloc` enforces the cap.
#pragma once

#include "sat/types.h"

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace mcx::sat {

using clause_ref = uint32_t;
inline constexpr clause_ref null_ref = ~clause_ref{0};

class clause_arena {
public:
    static constexpr uint32_t header_words = 3;

    clause_ref alloc(std::span<const literal> lits, bool learnt)
    {
        const auto ref = static_cast<clause_ref>(mem_.size());
        if (mem_.size() + header_words + lits.size() > max_words)
            throw std::length_error{"clause_arena: arena exceeds 2^31 words"};
        mem_.push_back(static_cast<uint32_t>(lits.size()) << 4 |
                       (learnt ? flag_learnt : 0u));
        mem_.push_back(0); // lbd/tier
        mem_.push_back(std::bit_cast<uint32_t>(0.0f));
        for (const auto l : lits)
            mem_.push_back(l.code());
        return ref;
    }

    uint32_t size(clause_ref c) const { return mem_[c] >> 4; }
    bool learnt(clause_ref c) const { return (mem_[c] & flag_learnt) != 0; }

    literal* lits(clause_ref c)
    {
        return reinterpret_cast<literal*>(mem_.data() + c + header_words);
    }
    const literal* lits(clause_ref c) const
    {
        return reinterpret_cast<const literal*>(mem_.data() + c +
                                                header_words);
    }

    uint32_t lbd(clause_ref c) const { return mem_[c + 1] >> 2; }
    uint32_t tier(clause_ref c) const { return mem_[c + 1] & 3u; }
    void set_lbd_tier(clause_ref c, uint32_t lbd, uint32_t tier)
    {
        mem_[c + 1] = lbd << 2 | tier;
    }

    bool used(clause_ref c) const { return (mem_[c] & flag_used) != 0; }
    void set_used(clause_ref c, bool on)
    {
        if (on)
            mem_[c] |= flag_used;
        else
            mem_[c] &= ~flag_used;
    }

    float activity(clause_ref c) const
    {
        return std::bit_cast<float>(mem_[c + 2]);
    }
    void set_activity(clause_ref c, float a)
    {
        mem_[c + 2] = std::bit_cast<uint32_t>(a);
    }

    /// Drop a clause: its words become garbage reclaimed by the next
    /// compaction.  The header stays readable until then so watcher lists
    /// can be swept with `freed`.
    void free_clause(clause_ref c)
    {
        mem_[c] |= flag_freed;
        wasted_ += header_words + size(c);
    }
    bool freed(clause_ref c) const { return (mem_[c] & flag_freed) != 0; }

    size_t words() const { return mem_.size(); }
    size_t wasted_words() const { return wasted_; }
    void reserve_words(size_t words) { mem_.reserve(words); }

    /// Compaction: copy a live clause into `to` and leave a forwarding ref
    /// behind.  Idempotent — a second call forwards to the same copy.
    clause_ref relocate(clause_ref c, clause_arena& to)
    {
        if (mem_[c] & flag_moved)
            return mem_[c + 1];
        const auto moved = to.alloc({lits(c), size(c)}, learnt(c));
        to.mem_[moved + 1] = mem_[c + 1];
        to.mem_[moved + 2] = mem_[c + 2];
        to.mem_[moved] |= mem_[c] & flag_used;
        mem_[c] |= flag_moved;
        mem_[c + 1] = moved;
        return moved;
    }

    /// Forwarding ref of a clause already moved by `relocate`.
    clause_ref forward(clause_ref c) const
    {
        return (mem_[c] & flag_moved) ? mem_[c + 1] : c;
    }

    void clear()
    {
        mem_.clear();
        wasted_ = 0;
    }

private:
    static constexpr uint32_t flag_learnt = 1u;
    static constexpr uint32_t flag_used = 2u;
    static constexpr uint32_t flag_moved = 4u;
    static constexpr uint32_t flag_freed = 8u;
    static constexpr size_t max_words = size_t{1} << 31;

    std::vector<uint32_t> mem_;
    size_t wasted_ = 0;
};

} // namespace mcx::sat
