#include "exact/exact_mc.h"

#include "exact/encoding_util.h"
#include "tt/operations.h"
#include "xag/simulate.h"

#include <stdexcept>
#include <vector>

namespace mcx {

namespace {

using sat::force;
using sat::literal;
using sat::solve_result;
using sat::solver;

/// Selector variables of one affine operand: one per basis element
/// (inputs then previous gates) plus a constant bit.
struct operand_selectors {
    std::vector<uint32_t> basis; ///< selector var per basis element
    uint32_t constant = 0;       ///< selector var of the constant 1
};

struct encoding {
    std::vector<operand_selectors> lhs, rhs; ///< per AND gate
    operand_selectors output;
    /// T[g][m]: value of gate g at minterm m.
    std::vector<std::vector<literal>> gate_value;
};

operand_selectors make_selectors(solver& s, uint32_t basis_size)
{
    operand_selectors sel;
    sel.basis.reserve(basis_size);
    for (uint32_t i = 0; i < basis_size; ++i)
        sel.basis.push_back(s.add_variable());
    sel.constant = s.add_variable();
    return sel;
}

/// CNF literal for "affine combination selected by `sel` evaluated at
/// minterm m", given the values of previous gates at m.
literal operand_value(solver& s, const operand_selectors& sel, uint32_t n,
                      uint32_t num_prev, uint64_t m,
                      const std::vector<std::vector<literal>>& gate_value)
{
    std::vector<literal> terms;
    terms.push_back(literal{sel.constant, false});
    for (uint32_t i = 0; i < n; ++i)
        if ((m >> i) & 1)
            terms.push_back(literal{sel.basis[i], false});
    for (uint32_t g = 0; g < num_prev; ++g)
        terms.push_back(sat::add_and_gate(s, literal{sel.basis[n + g], false},
                                          gate_value[g][m]));
    return sat::add_xor_ladder(s, terms);
}

encoding build_encoding(solver& s, const truth_table& f, uint32_t k)
{
    const auto n = f.num_vars();
    encoding enc;
    for (uint32_t g = 0; g < k; ++g) {
        enc.lhs.push_back(make_selectors(s, n + g));
        enc.rhs.push_back(make_selectors(s, n + g));
    }
    enc.output = make_selectors(s, n + k);

    enc.gate_value.assign(k, {});
    for (uint32_t g = 0; g < k; ++g)
        enc.gate_value[g].assign(f.num_bits(), literal{});

    for (uint64_t m = 0; m < f.num_bits(); ++m) {
        for (uint32_t g = 0; g < k; ++g) {
            const auto p =
                operand_value(s, enc.lhs[g], n, g, m, enc.gate_value);
            const auto q =
                operand_value(s, enc.rhs[g], n, g, m, enc.gate_value);
            enc.gate_value[g][m] = sat::add_and_gate(s, p, q);
        }
        const auto out =
            operand_value(s, enc.output, n, k, m, enc.gate_value);
        force(s, out, f.get_bit(m));
    }
    return enc;
}

/// Decode one affine operand from the model into a signal of `net`.
signal decode_operand(const solver& s, const operand_selectors& sel,
                      uint32_t n, xag& net,
                      const std::vector<signal>& inputs,
                      const std::vector<signal>& gates)
{
    auto acc = net.get_constant(s.model_value(sel.constant));
    for (uint32_t i = 0; i < sel.basis.size(); ++i)
        if (s.model_value(sel.basis[i]))
            acc = net.create_xor(acc, i < n ? inputs[i] : gates[i - n]);
    return acc;
}

xag decode_circuit(const solver& s, const encoding& enc,
                   const truth_table& f, uint32_t k)
{
    const auto n = f.num_vars();
    xag net;
    std::vector<signal> inputs;
    for (uint32_t i = 0; i < n; ++i)
        inputs.push_back(net.create_pi());
    std::vector<signal> gates;
    for (uint32_t g = 0; g < k; ++g) {
        const auto p = decode_operand(s, enc.lhs[g], n, net, inputs, gates);
        const auto q = decode_operand(s, enc.rhs[g], n, net, inputs, gates);
        gates.push_back(net.create_and(p, q));
    }
    net.create_po(decode_operand(s, enc.output, n, net, inputs, gates));
    return net;
}

/// Build the affine function (degree <= 1) directly as an XOR tree.
xag affine_circuit(const truth_table& f)
{
    const auto anf = to_anf(f);
    xag net;
    std::vector<signal> inputs;
    for (uint32_t i = 0; i < f.num_vars(); ++i)
        inputs.push_back(net.create_pi());
    auto acc = net.get_constant(anf.get_bit(0));
    for (uint32_t i = 0; i < f.num_vars(); ++i)
        if (anf.get_bit(uint64_t{1} << i))
            acc = net.create_xor(acc, inputs[i]);
    net.create_po(acc);
    return net;
}

} // namespace

uint32_t mc_lower_bound(const truth_table& f)
{
    const auto d = degree(f);
    return d <= 1 ? 0 : d - 1;
}

exact_mc_result exact_mc_synthesis(const truth_table& f,
                                   const exact_mc_params& params)
{
    if (f.num_vars() > 6)
        throw std::invalid_argument{"exact_mc_synthesis: at most 6 variables"};

    exact_mc_result result;
    if (is_affine_function(f)) {
        result.success = true;
        result.optimal = true;
        result.num_ands = 0;
        result.circuit = affine_circuit(f);
        return result;
    }

    const auto lb = mc_lower_bound(f);
    bool all_refuted = true;
    bool budget_hit = false;
    for (uint32_t k = std::max(lb, 1u); k <= params.max_ands; ++k) {
        if (params.token.stop_requested()) {
            result.status = params.token.stop_reason();
            return result;
        }
        // One encoding, one solve: the bounded preprocessor is sound here
        // and shrinks the parity-chain CNF before search.
        solver s{sat::sat_params{.engine = params.engine, .preprocess = true}};
        const auto enc = build_encoding(s, f, k);
        switch (s.solve(params.conflict_budget, params.token)) {
        case solve_result::satisfiable: {
            result.success = true;
            result.optimal = all_refuted;
            result.num_ands = k;
            result.circuit = decode_circuit(s, enc, f, k);
            if (simulate(result.circuit)[0] != f)
                throw std::logic_error{
                    "exact_mc_synthesis: decoded circuit mismatch"};
            if (result.circuit.num_ands() > k)
                throw std::logic_error{
                    "exact_mc_synthesis: AND budget exceeded"};
            return result;
        }
        case solve_result::unsatisfiable:
            break; // try one more AND gate
        case solve_result::undecided:
            all_refuted = false; // optimality can no longer be certified
            budget_hit = true;
            break;
        }
    }
    if (params.token.stop_requested())
        result.status = params.token.stop_reason();
    else if (budget_hit)
        result.status = outcome::resource_exhausted;
    return result;
}

} // namespace mcx
