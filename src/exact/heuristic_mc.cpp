#include "exact/heuristic_mc.h"

#include "tt/operations.h"
#include "xag/simulate.h"

#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace mcx {

namespace {

struct plan {
    uint32_t cost = 0;
    bool affine = false;
    uint32_t pivot = 0; ///< decomposition variable when !affine
};

class davio_planner {
public:
    const plan& analyze(const truth_table& f)
    {
        if (const auto it = memo_.find(f); it != memo_.end())
            return it->second;

        plan p;
        if (is_affine_function(f)) {
            p.affine = true;
            p.cost = 0;
            return memo_.emplace(f, p).first->second;
        }

        p.cost = std::numeric_limits<uint32_t>::max();
        for (const auto v : f.support()) {
            const auto f0 = f.cofactor(v, false);
            const auto derivative = f0 ^ f.cofactor(v, true);
            // f = f0 ^ (x_v & derivative): one AND plus the sub-costs —
            // unless the derivative is constant one, where the AND folds.
            const auto and_cost =
                derivative.is_constant(true) ? 0u : 1u;
            const auto cost = analyze(f0).cost +
                              analyze(derivative).cost + and_cost;
            if (cost < p.cost) {
                p.cost = cost;
                p.pivot = v;
            }
        }
        return memo_.emplace(f, p).first->second;
    }

    signal build(const truth_table& f, xag& net,
                 const std::vector<signal>& inputs)
    {
        const auto& p = analyze(f);
        if (p.affine) {
            const auto anf = to_anf(f);
            auto acc = net.get_constant(anf.get_bit(0));
            for (uint32_t i = 0; i < f.num_vars(); ++i)
                if (anf.get_bit(uint64_t{1} << i))
                    acc = net.create_xor(acc, inputs[i]);
            return acc;
        }
        const auto f0 = f.cofactor(p.pivot, false);
        const auto derivative = f0 ^ f.cofactor(p.pivot, true);
        const auto base = build(f0, net, inputs);
        const auto delta = build(derivative, net, inputs);
        return net.create_xor(base,
                              net.create_and(inputs[p.pivot], delta));
    }

private:
    std::unordered_map<truth_table, plan, truth_table_hash> memo_;
};

} // namespace

uint32_t heuristic_mc_bound(const truth_table& f)
{
    if (f.num_vars() > 6)
        throw std::invalid_argument{"heuristic_mc_bound: at most 6 variables"};
    davio_planner planner;
    return planner.analyze(f).cost;
}

xag heuristic_mc_circuit(const truth_table& f)
{
    if (f.num_vars() > 6)
        throw std::invalid_argument{
            "heuristic_mc_circuit: at most 6 variables"};
    davio_planner planner;
    xag net;
    std::vector<signal> inputs;
    for (uint32_t i = 0; i < f.num_vars(); ++i)
        inputs.push_back(net.create_pi());
    net.create_po(planner.build(f, net, inputs));
    if (simulate(net)[0] != f)
        throw std::logic_error{"heuristic_mc_circuit: function mismatch"};
    return net;
}

} // namespace mcx
