// Small CNF gadget builders shared by the exact-synthesis encoders.
#pragma once

#include "sat/solver.h"

#include <span>

namespace mcx::sat {

/// y = a AND b (3 clauses).
inline literal add_and_gate(solver& s, literal a, literal b)
{
    const literal y{s.add_variable(), false};
    s.add_clause({~y, a});
    s.add_clause({~y, b});
    s.add_clause({y, ~a, ~b});
    return y;
}

/// y = a XOR b (4 clauses).
inline literal add_xor_gate(solver& s, literal a, literal b)
{
    const literal y{s.add_variable(), false};
    s.add_clause({~y, a, b});
    s.add_clause({~y, ~a, ~b});
    s.add_clause({y, ~a, b});
    s.add_clause({y, a, ~b});
    return y;
}

/// y = parity of `terms` (false for an empty list), via a sequential ladder.
inline literal add_xor_ladder(solver& s, std::span<const literal> terms)
{
    if (terms.empty()) {
        const literal zero{s.add_variable(), false};
        s.add_clause({~zero});
        return zero;
    }
    literal acc = terms[0];
    for (size_t i = 1; i < terms.size(); ++i)
        acc = add_xor_gate(s, acc, terms[i]);
    return acc;
}

/// Pin a literal to a constant.
inline void force(solver& s, literal l, bool value)
{
    s.add_clause({value ? l : ~l});
}

} // namespace mcx::sat
