// Heuristic multiplicative-complexity-aware synthesis: an upper bound and a
// fallback for exact synthesis timeouts (the paper's omitted-classes case).
//
// Strategy: positive-Davio-style recursion f = f0 ^ x*(f0 ^ f1) whose AND
// gate multiplies a variable with the derivative; affine functions cost no
// AND gates at all.  The pivot at every step is chosen by exhaustive
// recursion with memoization (cheap for <= 6 variables).
#pragma once

#include "tt/truth_table.h"
#include "xag/xag.h"

#include <cstdint>

namespace mcx {

/// Upper bound on MC(f) achieved by the heuristic (no circuit built).
uint32_t heuristic_mc_bound(const truth_table& f);

/// Build an XAG for `f` (one PO, f.num_vars() PIs) with heuristic_mc_bound(f)
/// AND gates.
xag heuristic_mc_circuit(const truth_table& f);

} // namespace mcx
