#include "exact/exact_size.h"

#include "exact/encoding_util.h"
#include "tt/operations.h"
#include "xag/simulate.h"

#include <stdexcept>
#include <vector>

namespace mcx {

namespace {

using sat::force;
using sat::literal;
using sat::solve_result;
using sat::solver;

struct gate_vars {
    uint32_t type = 0;                      ///< true = AND, false = XOR
    std::array<std::vector<uint32_t>, 2> sel; ///< one-hot fanin selection
    std::array<uint32_t, 2> pol{};            ///< fanin polarities
};

struct encoding {
    std::vector<gate_vars> gates;
    uint32_t out_pol = 0;
    std::vector<std::vector<literal>> value; ///< value[i][m] of gate i
};

/// A ↔ (base ⊕ pol) under condition sel, where base is a constant.
void fanin_const_clauses(solver& s, literal sel, literal a, literal pol,
                         bool base)
{
    const auto x = base ? ~pol : pol; // value of base ⊕ pol
    s.add_clause({~sel, ~a, x});
    s.add_clause({~sel, a, ~x});
}

/// A ↔ (g ⊕ pol) under condition sel, where g is a variable.
void fanin_var_clauses(solver& s, literal sel, literal a, literal pol,
                       literal g)
{
    s.add_clause({~sel, ~a, g, pol});
    s.add_clause({~sel, ~a, ~g, ~pol});
    s.add_clause({~sel, a, ~g, pol});
    s.add_clause({~sel, a, g, ~pol});
}

encoding build_encoding(solver& s, const truth_table& f, uint32_t r)
{
    const auto n = f.num_vars();
    encoding enc;
    enc.gates.resize(r);
    enc.value.assign(r, {});

    for (uint32_t i = 0; i < r; ++i) {
        auto& g = enc.gates[i];
        g.type = s.add_variable();
        for (int side = 0; side < 2; ++side) {
            g.pol[side] = s.add_variable();
            for (uint32_t j = 0; j < n + i; ++j)
                g.sel[side].push_back(s.add_variable());
            // Exactly-one selection.
            std::vector<literal> at_least;
            for (const auto v : g.sel[side])
                at_least.push_back(literal{v, false});
            s.add_clause(at_least);
            for (size_t a = 0; a < g.sel[side].size(); ++a)
                for (size_t b = a + 1; b < g.sel[side].size(); ++b)
                    s.add_clause({literal{g.sel[side][a], true},
                                  literal{g.sel[side][b], true}});
        }
        // The two fanins must differ (a gate on one signal is never needed
        // in a minimal chain).
        for (uint32_t j = 0; j < n + i; ++j)
            s.add_clause({literal{g.sel[0][j], true},
                          literal{g.sel[1][j], true}});
    }
    enc.out_pol = s.add_variable();

    for (uint64_t m = 0; m < f.num_bits(); ++m) {
        for (uint32_t i = 0; i < r; ++i) {
            auto& g = enc.gates[i];
            std::array<literal, 2> operand;
            for (int side = 0; side < 2; ++side) {
                const literal a{s.add_variable(), false};
                const literal pol{g.pol[side], false};
                for (uint32_t j = 0; j < n + i; ++j) {
                    const literal sel{g.sel[side][j], false};
                    if (j < n)
                        fanin_const_clauses(s, sel, a, pol,
                                            ((m >> j) & 1) != 0);
                    else
                        fanin_var_clauses(s, sel, a, pol,
                                          enc.value[j - n][m]);
                }
                operand[side] = a;
            }
            const literal t{g.type, false};
            const literal y{s.add_variable(), false};
            const auto [a, b] = operand;
            // t -> (y = a AND b)
            s.add_clause({~t, ~y, a});
            s.add_clause({~t, ~y, b});
            s.add_clause({~t, y, ~a, ~b});
            // !t -> (y = a XOR b)
            s.add_clause({t, ~y, a, b});
            s.add_clause({t, ~y, ~a, ~b});
            s.add_clause({t, y, ~a, b});
            s.add_clause({t, y, a, ~b});
            enc.value[i].push_back(y);
        }
        const literal out = enc.value[r - 1][m];
        const literal pol{enc.out_pol, false};
        // f(m) = out ⊕ pol.
        if (f.get_bit(m)) {
            s.add_clause({out, pol});
            s.add_clause({~out, ~pol});
        } else {
            s.add_clause({~out, pol});
            s.add_clause({out, ~pol});
        }
    }
    return enc;
}

xag decode_circuit(const solver& s, const encoding& enc,
                   const truth_table& f, uint32_t r)
{
    const auto n = f.num_vars();
    xag net;
    std::vector<signal> nodes;
    for (uint32_t i = 0; i < n; ++i)
        nodes.push_back(net.create_pi());
    for (uint32_t i = 0; i < r; ++i) {
        const auto& g = enc.gates[i];
        std::array<signal, 2> operand;
        for (int side = 0; side < 2; ++side) {
            uint32_t chosen = 0;
            for (uint32_t j = 0; j < g.sel[side].size(); ++j)
                if (s.model_value(g.sel[side][j]))
                    chosen = j;
            operand[side] = nodes[chosen] ^ s.model_value(g.pol[side]);
        }
        nodes.push_back(s.model_value(g.type)
                            ? net.create_and(operand[0], operand[1])
                            : net.create_xor(operand[0], operand[1]));
    }
    net.create_po(nodes.back() ^ s.model_value(enc.out_pol));
    return net;
}

/// Constant or single-literal functions need no gates.
bool trivial_circuit(const truth_table& f, exact_size_result& result)
{
    xag net;
    std::vector<signal> inputs;
    for (uint32_t i = 0; i < f.num_vars(); ++i)
        inputs.push_back(net.create_pi());
    if (f.is_constant()) {
        net.create_po(net.get_constant(f.get_bit(0)));
    } else {
        const auto support = f.support();
        if (support.size() != 1)
            return false;
        const auto x = truth_table::projection(f.num_vars(), support[0]);
        if (f == x)
            net.create_po(inputs[support[0]]);
        else if (f == ~x)
            net.create_po(!inputs[support[0]]);
        else
            return false;
    }
    result.success = true;
    result.optimal = true;
    result.num_gates = 0;
    result.circuit = std::move(net);
    return true;
}

} // namespace

exact_size_result exact_size_synthesis(const truth_table& f,
                                       const exact_size_params& params)
{
    if (f.num_vars() > 6)
        throw std::invalid_argument{
            "exact_size_synthesis: at most 6 variables"};

    exact_size_result result;
    if (trivial_circuit(f, result))
        return result;

    bool all_refuted = true;
    bool budget_hit = false;
    for (uint32_t r = 1; r <= params.max_gates; ++r) {
        if (params.token.stop_requested()) {
            result.status = params.token.stop_reason();
            return result;
        }
        // One encoding, one solve: the bounded preprocessor is sound here
        // (see exact_mc.cpp).
        solver s{sat::sat_params{.engine = params.engine, .preprocess = true}};
        const auto enc = build_encoding(s, f, r);
        switch (s.solve(params.conflict_budget, params.token)) {
        case solve_result::satisfiable: {
            result.success = true;
            result.optimal = all_refuted;
            result.num_gates = r;
            result.circuit = decode_circuit(s, enc, f, r);
            if (simulate(result.circuit)[0] != f)
                throw std::logic_error{
                    "exact_size_synthesis: decoded circuit mismatch"};
            return result;
        }
        case solve_result::unsatisfiable:
            break;
        case solve_result::undecided:
            all_refuted = false;
            budget_hit = true;
            break;
        }
    }
    if (params.token.stop_requested())
        result.status = params.token.stop_reason();
    else if (budget_hit)
        result.status = outcome::resource_exhausted;
    return result;
}

} // namespace mcx
