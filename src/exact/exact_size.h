// SAT-based exact synthesis of gate-count-minimal XAGs (AND and XOR both
// cost 1).  This powers the *generic size optimization* baseline (paper §5.1
// uses an ABC script with a unit cost model "that accounts the same cost for
// both AND and XOR gates"; see DESIGN.md substitution X2).
#pragma once

#include "core/budget.h"
#include "sat/types.h"
#include "tt/truth_table.h"
#include "xag/xag.h"

#include <cstdint>

namespace mcx {

struct exact_size_params {
    uint32_t max_gates = 12;            ///< give up beyond this many gates
    uint64_t conflict_budget = 200'000; ///< per step; 0 = unlimited
    cancellation_token token;           ///< cooperative stop
    /// CDCL engine for the per-step solvers (`automatic` = process default).
    sat::sat_engine engine = sat::sat_engine::automatic;
};

struct exact_size_result {
    bool success = false;
    bool optimal = false;
    uint32_t num_gates = 0;
    /// Why the search ended (see exact_mc_result::status).
    outcome status = outcome::ok;
    xag circuit; ///< f.num_vars() PIs, one PO (valid when success)
};

/// Synthesize a total-gate-minimal XAG for `f` (at most 4 variables keeps
/// the search practical; up to 6 accepted).
exact_size_result exact_size_synthesis(const truth_table& f,
                                       const exact_size_params& params = {});

} // namespace mcx
