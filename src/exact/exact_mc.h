// SAT-based exact synthesis of multiplicative-complexity-minimal XAGs.
//
// Circuit model (Boyar-Peralta / SLP form, the model behind the paper's
// database of MC-optimum circuits): a sequence of k AND gates where each
// operand is an arbitrary affine combination of the primary inputs and the
// previous AND outputs, and the output is an affine combination of
// everything.  Affine parts are free — only k is minimized, matching the
// definition of multiplicative complexity (paper §2.1).
//
// The decision problem "exists an XAG with k ANDs computing f" is encoded
// into CNF with selector variables for the affine combinations and
// per-minterm parity chains, and solved by the in-tree CDCL solver; k is
// searched upward from the degree lower bound MC(f) >= deg(f) - 1.
#pragma once

#include "core/budget.h"
#include "sat/types.h"
#include "tt/truth_table.h"
#include "xag/xag.h"

#include <cstdint>

namespace mcx {

struct exact_mc_params {
    uint32_t max_ands = 7;           ///< give up beyond this many AND gates
    uint64_t conflict_budget = 200'000; ///< per k-step; 0 = unlimited
    cancellation_token token;        ///< cooperative stop (checked per conflict)
    /// CDCL engine for the per-k solvers (`automatic` = process default).
    sat::sat_engine engine = sat::sat_engine::automatic;
};

struct exact_mc_result {
    bool success = false; ///< a circuit was found
    bool optimal = false; ///< every smaller k was refuted (or bound met)
    uint32_t num_ands = 0;
    /// Why the search ended: ok (completed, succeeded or exhausted k range),
    /// resource_exhausted (a conflict budget left some k undecided and no
    /// circuit was found), or the token's stop reason.  A budget-undecided
    /// step always clears `optimal` — "unknown" is never promoted to UNSAT.
    outcome status = outcome::ok;
    xag circuit; ///< f.num_vars() PIs, one PO (valid when success)
};

/// Synthesize an AND-minimal XAG for `f` (at most 6 variables).
exact_mc_result exact_mc_synthesis(const truth_table& f,
                                   const exact_mc_params& params = {});

/// Degree lower bound: MC(f) >= deg(f) - 1 (0 for affine functions).
uint32_t mc_lower_bound(const truth_table& f);

} // namespace mcx
