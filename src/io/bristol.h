// Bristol-fashion circuit I/O — the exchange format of the MPC community
// and of the paper's Table 2 source circuits
// (https://homes.esat.kuleuven.be/~nsmart/MPC/).  With the reader in place,
// the original benchmark files can be dropped in whenever they are
// available; the writer lets downstream MPC frameworks consume our
// optimized circuits.
//
// Supported gates: AND, XOR, INV, EQ (constant), EQW (wire copy).
#pragma once

#include "xag/xag.h"

#include <iosfwd>
#include <string>

namespace mcx {

/// Serialize to Bristol fashion: one input value of width num_pis, one
/// output value of width num_pos; complemented edges become INV gates.
void write_bristol(const xag& network, std::ostream& os);
void write_bristol_file(const xag& network, const std::string& path);

/// Parse a Bristol-fashion circuit into an XAG.
xag read_bristol(std::istream& is);
xag read_bristol_file(const std::string& path);

} // namespace mcx
