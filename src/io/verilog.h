// Structural Verilog and Graphviz DOT writers (export only).
#pragma once

#include "xag/xag.h"

#include <iosfwd>
#include <string>

namespace mcx {

/// Gate-level Verilog module using assign statements over &, ^ and ~.
void write_verilog(const xag& network, std::ostream& os,
                   const std::string& module_name = "mcx_circuit");
void write_verilog_file(const xag& network, const std::string& path,
                        const std::string& module_name = "mcx_circuit");

/// Graphviz dot (AND nodes boxed, XOR nodes oval, complemented edges dashed).
void write_dot(const xag& network, std::ostream& os);
void write_dot_file(const xag& network, const std::string& path);

} // namespace mcx
