#include "io/verilog.h"

#include <fstream>
#include <stdexcept>

namespace mcx {

void write_verilog(const xag& network, std::ostream& os,
                   const std::string& module_name)
{
    os << "module " << module_name << "(x, y);\n";
    os << "  input [" << (network.num_pis() ? network.num_pis() - 1 : 0)
       << ":0] x;\n";
    os << "  output [" << (network.num_pos() ? network.num_pos() - 1 : 0)
       << ":0] y;\n";

    const auto ref = [&](signal s) -> std::string {
        if (s.node() == 0)
            return s.complemented() ? "1'b1" : "1'b0";
        std::string base;
        if (network.is_pi(s.node()))
            base = "x[" + std::to_string(network.pi_index(s.node())) + "]";
        else
            base = "n" + std::to_string(s.node());
        return s.complemented() ? "~" + base : base;
    };

    for (const auto n : network.topological_order()) {
        if (!network.is_gate(n))
            continue;
        os << "  wire n" << n << ";\n";
        os << "  assign n" << n << " = " << ref(network.fanin0(n))
           << (network.is_and(n) ? " & " : " ^ ") << ref(network.fanin1(n))
           << ";\n";
    }
    for (uint32_t i = 0; i < network.num_pos(); ++i)
        os << "  assign y[" << i << "] = " << ref(network.po_at(i)) << ";\n";
    os << "endmodule\n";
}

void write_verilog_file(const xag& network, const std::string& path,
                        const std::string& module_name)
{
    std::ofstream os{path};
    if (!os)
        throw std::runtime_error{"write_verilog_file: cannot open " + path};
    write_verilog(network, os, module_name);
}

void write_dot(const xag& network, std::ostream& os)
{
    os << "digraph xag {\n  rankdir=BT;\n";
    for (uint32_t i = 0; i < network.num_pis(); ++i)
        os << "  n" << network.pi_at(i)
           << " [shape=triangle,label=\"x" << i << "\"];\n";
    for (const auto n : network.topological_order()) {
        if (!network.is_gate(n))
            continue;
        os << "  n" << n << " [shape="
           << (network.is_and(n) ? "box,label=\"AND\"" : "ellipse,label=\"XOR\"")
           << "];\n";
        for (const auto fi : {network.fanin0(n), network.fanin1(n)})
            os << "  n" << fi.node() << " -> n" << n
               << (fi.complemented() ? " [style=dashed]" : "") << ";\n";
    }
    for (uint32_t i = 0; i < network.num_pos(); ++i) {
        os << "  po" << i << " [shape=invtriangle,label=\"y" << i << "\"];\n";
        const auto po = network.po_at(i);
        os << "  n" << po.node() << " -> po" << i
           << (po.complemented() ? " [style=dashed]" : "") << ";\n";
    }
    os << "}\n";
}

void write_dot_file(const xag& network, const std::string& path)
{
    std::ofstream os{path};
    if (!os)
        throw std::runtime_error{"write_dot_file: cannot open " + path};
    write_dot(network, os);
}

} // namespace mcx
