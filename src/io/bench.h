// BENCH netlist I/O (the classic ISCAS/logic-synthesis interchange format;
// the EPFL benchmark suite ships in it).
#pragma once

#include "xag/xag.h"

#include <iosfwd>
#include <string>

namespace mcx {

/// Write as BENCH with AND / XOR / NOT gates.
void write_bench(const xag& network, std::ostream& os);
void write_bench_file(const xag& network, const std::string& path);

/// Read a BENCH file; supported gates: AND, OR, NAND, NOR, XOR, XNOR, NOT,
/// BUF(F), and the constants vdd/gnd.  Wider-than-2-input gates are split
/// into balanced trees.
xag read_bench(std::istream& is);
xag read_bench_file(const std::string& path);

} // namespace mcx
