#include "io/bristol.h"

#include "core/fault_inject.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mcx {

void write_bristol(const xag& network, std::ostream& os)
{
    if (network.num_pis() == 0)
        throw std::invalid_argument{"write_bristol: at least one input"};

    // Pass 1: assign wire numbers.  Inputs first; INV wires materialize
    // complemented fanins; outputs must occupy the trailing wire numbers, so
    // every PO gets a dedicated copy/INV gate at the end.
    struct gate {
        std::string kind;
        uint32_t in0 = 0, in1 = 0, out = 0;
        bool binary = true;
    };
    std::vector<gate> gates;
    uint32_t next_wire = network.num_pis();

    std::vector<uint32_t> node_wire(network.size(), 0);
    std::map<uint32_t, uint32_t> inverted_wire; // node wire -> INV wire
    for (uint32_t i = 0; i < network.num_pis(); ++i)
        node_wire[network.pi_at(i)] = i;

    bool have_const_false = false;
    uint32_t const_false_wire = 0;
    const auto constant_wire = [&](bool value) {
        if (!have_const_false) {
            const_false_wire = next_wire++;
            gates.push_back(
                {"XOR", 0, 0, const_false_wire, true}); // w0 ^ w0 = 0
            have_const_false = true;
        }
        if (!value)
            return const_false_wire;
        const auto it = inverted_wire.find(const_false_wire);
        if (it != inverted_wire.end())
            return it->second;
        const auto wire = next_wire++;
        gates.push_back({"INV", const_false_wire, 0, wire, false});
        inverted_wire.emplace(const_false_wire, wire);
        return wire;
    };

    const auto wire_of = [&](signal s) -> uint32_t {
        if (s.node() == 0)
            return constant_wire(s.complemented());
        const auto base = node_wire[s.node()];
        if (!s.complemented())
            return base;
        const auto it = inverted_wire.find(base);
        if (it != inverted_wire.end())
            return it->second;
        const auto wire = next_wire++;
        gates.push_back({"INV", base, 0, wire, false});
        inverted_wire.emplace(base, wire);
        return wire;
    };

    for (const auto n : network.topological_order()) {
        if (!network.is_gate(n))
            continue;
        const auto a = wire_of(network.fanin0(n));
        const auto b = wire_of(network.fanin1(n));
        node_wire[n] = next_wire++;
        gates.push_back({network.is_and(n) ? "AND" : "XOR", a, b,
                         node_wire[n], true});
    }

    // Trailing output copies.
    std::vector<uint32_t> po_source;
    for (uint32_t i = 0; i < network.num_pos(); ++i)
        po_source.push_back(wire_of(network.po_at(i)));
    for (uint32_t i = 0; i < network.num_pos(); ++i)
        gates.push_back({"EQW", po_source[i], 0, next_wire++, false});

    os << gates.size() << ' ' << next_wire << '\n';
    os << "1 " << network.num_pis() << '\n';
    os << "1 " << network.num_pos() << '\n';
    os << '\n';
    for (const auto& g : gates) {
        if (g.binary)
            os << "2 1 " << g.in0 << ' ' << g.in1 << ' ' << g.out << ' '
               << g.kind << '\n';
        else
            os << "1 1 " << g.in0 << ' ' << g.out << ' ' << g.kind << '\n';
    }
}

void write_bristol_file(const xag& network, const std::string& path)
{
    std::ofstream os{path};
    if (!os)
        throw std::runtime_error{"write_bristol_file: cannot open " + path};
    write_bristol(network, os);
}

xag read_bristol(std::istream& is)
{
    fault_injection::fire(fault_site::parse);
    uint64_t num_gates = 0, num_wires = 0;
    if (!(is >> num_gates >> num_wires))
        throw std::invalid_argument{"read_bristol: malformed header"};
    // The wire table is allocated up front, so reject implausible headers
    // before they become multi-gigabyte allocations.
    constexpr uint64_t max_wires = 1ull << 28;
    if (num_wires == 0 || num_wires > max_wires)
        throw std::invalid_argument{"read_bristol: implausible wire count"};
    uint32_t num_input_values = 0;
    if (!(is >> num_input_values) || num_input_values > num_wires)
        throw std::invalid_argument{"read_bristol: malformed input list"};
    uint64_t total_inputs = 0;
    std::vector<uint64_t> input_widths(num_input_values);
    for (auto& w : input_widths) {
        if (!(is >> w))
            throw std::invalid_argument{"read_bristol: malformed input list"};
        total_inputs += w;
    }
    if (total_inputs > num_wires)
        throw std::invalid_argument{"read_bristol: more inputs than wires"};
    uint32_t num_output_values = 0;
    if (!(is >> num_output_values) || num_output_values > num_wires)
        throw std::invalid_argument{"read_bristol: malformed output list"};
    uint64_t total_outputs = 0;
    for (uint32_t i = 0; i < num_output_values; ++i) {
        uint64_t w = 0;
        if (!(is >> w))
            throw std::invalid_argument{"read_bristol: malformed output list"};
        total_outputs += w;
    }
    if (total_outputs > num_wires)
        throw std::invalid_argument{"read_bristol: more outputs than wires"};

    xag net;
    std::vector<signal> wires(num_wires, net.get_constant(false));
    std::vector<bool> defined(num_wires, false);
    for (uint64_t i = 0; i < total_inputs; ++i) {
        wires[i] = net.create_pi();
        defined[i] = true;
    }

    const auto in_wire = [&](uint64_t w) {
        if (w >= num_wires || !defined[w])
            throw std::invalid_argument{"read_bristol: undefined wire"};
        return wires[w];
    };

    for (uint64_t g = 0; g < num_gates; ++g) {
        uint32_t fan_in = 0, fan_out = 0;
        if (!(is >> fan_in >> fan_out))
            throw std::invalid_argument{"read_bristol: malformed gate"};
        // Every gate this format knows has 1-2 inputs and one output; a
        // wild arity is a corrupt file (and would be an allocation bomb).
        if (fan_in < 1 || fan_in > 2 || fan_out != 1)
            throw std::invalid_argument{"read_bristol: bad gate arity"};
        std::vector<uint64_t> ins(fan_in), outs(fan_out);
        for (auto& w : ins)
            if (!(is >> w))
                throw std::invalid_argument{"read_bristol: truncated gate"};
        for (auto& w : outs)
            if (!(is >> w))
                throw std::invalid_argument{"read_bristol: truncated gate"};
        std::string kind;
        if (!(is >> kind))
            throw std::invalid_argument{"read_bristol: malformed gate"};
        signal result;
        if (kind == "AND" && fan_in == 2)
            result = net.create_and(in_wire(ins[0]), in_wire(ins[1]));
        else if (kind == "XOR" && fan_in == 2)
            result = net.create_xor(in_wire(ins[0]), in_wire(ins[1]));
        else if (kind == "INV" && fan_in == 1)
            result = !in_wire(ins[0]);
        else if (kind == "EQW" && fan_in == 1)
            result = in_wire(ins[0]);
        else if (kind == "EQ" && fan_in == 1)
            result = net.get_constant(ins[0] != 0); // EQ takes a constant bit
        else
            throw std::invalid_argument{"read_bristol: unsupported gate " +
                                        kind};
        for (const auto w : outs) {
            if (w >= num_wires)
                throw std::invalid_argument{"read_bristol: wire out of range"};
            wires[w] = result;
            defined[w] = true;
        }
    }
    for (uint64_t i = num_wires - total_outputs; i < num_wires; ++i)
        net.create_po(in_wire(i));
    return net;
}

xag read_bristol_file(const std::string& path)
{
    std::ifstream is{path};
    if (!is)
        throw std::runtime_error{"read_bristol_file: cannot open " + path};
    return read_bristol(is);
}

} // namespace mcx
