#include "io/bench.h"

#include "core/fault_inject.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace mcx {

void write_bench(const xag& network, std::ostream& os)
{
    // Names are assigned densely in emission order — PIs first, then gates
    // in topological order — not from raw node ids.  Structurally identical
    // networks therefore serialize byte-identically even when their internal
    // id spaces diverged (ids are append-only and candidate splicing
    // consumes them, so e.g. the incremental-evaluate path and the
    // full-evaluate oracle reach the same structure through different ids).
    std::vector<uint32_t> dense(network.size(), 0);
    uint32_t next = 0;
    for (uint32_t i = 0; i < network.num_pis(); ++i)
        dense[network.pi_at(i)] = ++next;
    for (const auto n : network.topological_order())
        if (network.is_gate(n))
            dense[n] = ++next;
    const auto name_of = [&](uint32_t n) {
        return "n" + std::to_string(dense[n]);
    };
    const auto ref = [&](signal s) {
        if (s.node() == 0)
            return std::string{s.complemented() ? "vdd" : "gnd"};
        return (s.complemented() ? "i" : "") + name_of(s.node());
    };

    os << "# mcx XAG: " << network.num_pis() << " inputs, "
       << network.num_pos() << " outputs, " << network.num_ands() << " AND, "
       << network.num_xors() << " XOR\n";
    for (uint32_t i = 0; i < network.num_pis(); ++i)
        os << "INPUT(" << name_of(network.pi_at(i)) << ")\n";
    for (uint32_t i = 0; i < network.num_pos(); ++i)
        os << "OUTPUT(po" << i << ")\n";
    os << "gnd = CONST0\n";
    os << "vdd = NOT(gnd)\n";

    std::vector<bool> inverter_emitted(network.size(), false);
    const auto require = [&](signal s) {
        if (s.complemented() && s.node() != 0 &&
            !inverter_emitted[s.node()]) {
            os << 'i' << name_of(s.node()) << " = NOT(" << name_of(s.node())
               << ")\n";
            inverter_emitted[s.node()] = true;
        }
    };

    for (const auto n : network.topological_order()) {
        if (!network.is_gate(n))
            continue;
        const auto a = network.fanin0(n);
        const auto b = network.fanin1(n);
        require(a);
        require(b);
        os << name_of(n) << " = " << (network.is_and(n) ? "AND" : "XOR")
           << '(' << ref(a) << ", " << ref(b) << ")\n";
    }
    for (uint32_t i = 0; i < network.num_pos(); ++i) {
        const auto po = network.po_at(i);
        require(po);
        os << "po" << i << " = BUFF(" << ref(po) << ")\n";
    }
}

void write_bench_file(const xag& network, const std::string& path)
{
    std::ofstream os{path};
    if (!os)
        throw std::runtime_error{"write_bench_file: cannot open " + path};
    write_bench(network, os);
}

xag read_bench(std::istream& is)
{
    fault_injection::fire(fault_site::parse);
    xag net;
    std::unordered_map<std::string, signal> signals;
    std::vector<std::pair<std::string, std::string>> pending_gates;
    std::vector<std::string> outputs;

    signals.emplace("gnd", net.get_constant(false));
    signals.emplace("vdd", net.get_constant(true));

    std::string line;
    std::vector<std::tuple<std::string, std::string, std::vector<std::string>>>
        gates;
    while (std::getline(is, line)) {
        // Strip comments and whitespace.
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.resize(hash);
        std::string compact;
        for (const char c : line)
            if (!std::isspace(static_cast<unsigned char>(c)))
                compact.push_back(c);
        if (compact.empty())
            continue;

        const auto open = compact.find('(');
        const auto close = compact.rfind(')');
        if (compact.rfind("INPUT(", 0) == 0) {
            if (close == std::string::npos)
                throw std::invalid_argument{"read_bench: malformed line: " +
                                            line};
            const auto name = compact.substr(6, close - 6);
            signals.emplace(name, net.create_pi());
            continue;
        }
        if (compact.rfind("OUTPUT(", 0) == 0) {
            if (close == std::string::npos)
                throw std::invalid_argument{"read_bench: malformed line: " +
                                            line};
            outputs.push_back(compact.substr(7, close - 7));
            continue;
        }
        const auto eq = compact.find('=');
        if (eq != std::string::npos && open == std::string::npos) {
            // Parenthesis-free constant assignments.
            const auto target = compact.substr(0, eq);
            const auto value = compact.substr(eq + 1);
            if (value == "CONST0" || value == "const0")
                signals.insert_or_assign(target, net.get_constant(false));
            else if (value == "CONST1" || value == "const1")
                signals.insert_or_assign(target, net.get_constant(true));
            else
                throw std::invalid_argument{"read_bench: malformed line: " +
                                            line};
            continue;
        }
        if (eq == std::string::npos || open == std::string::npos ||
            close == std::string::npos || open < eq || close < open)
            throw std::invalid_argument{"read_bench: malformed line: " + line};
        const auto target = compact.substr(0, eq);
        auto kind = compact.substr(eq + 1, open - eq - 1);
        std::transform(kind.begin(), kind.end(), kind.begin(), ::toupper);
        std::vector<std::string> args;
        std::string arg;
        for (size_t i = open + 1; i < close; ++i) {
            if (compact[i] == ',') {
                args.push_back(arg);
                arg.clear();
            } else {
                arg.push_back(compact[i]);
            }
        }
        if (!arg.empty())
            args.push_back(arg);
        if (kind == "CONST0") {
            signals.insert_or_assign(target, net.get_constant(false));
            continue;
        }
        if (kind == "CONST1") {
            signals.insert_or_assign(target, net.get_constant(true));
            continue;
        }
        gates.emplace_back(target, kind, args);
    }

    // Resolve gates iteratively (BENCH files may be unordered).
    bool progress = true;
    while (!gates.empty() && progress) {
        progress = false;
        for (size_t i = 0; i < gates.size();) {
            const auto& [target, kind, args] = gates[i];
            bool ready = true;
            for (const auto& a : args)
                if (!signals.count(a)) {
                    ready = false;
                    break;
                }
            if (!ready) {
                ++i;
                continue;
            }
            std::vector<signal> ins;
            for (const auto& a : args)
                ins.push_back(signals.at(a));
            if (ins.empty())
                throw std::invalid_argument{"read_bench: gate '" + target +
                                            "' has no operands"};
            signal out;
            const auto tree = [&](auto&& combine) {
                auto acc = ins[0];
                for (size_t k = 1; k < ins.size(); ++k)
                    acc = combine(acc, ins[k]);
                return acc;
            };
            if (kind == "AND")
                out = tree([&](signal x, signal y) {
                    return net.create_and(x, y);
                });
            else if (kind == "OR")
                out = tree([&](signal x, signal y) {
                    return net.create_or(x, y);
                });
            else if (kind == "NAND")
                out = !tree([&](signal x, signal y) {
                    return net.create_and(x, y);
                });
            else if (kind == "NOR")
                out = !tree([&](signal x, signal y) {
                    return net.create_or(x, y);
                });
            else if (kind == "XOR")
                out = tree([&](signal x, signal y) {
                    return net.create_xor(x, y);
                });
            else if (kind == "XNOR")
                out = !tree([&](signal x, signal y) {
                    return net.create_xor(x, y);
                });
            else if (kind == "NOT" || kind == "INV")
                out = !ins.at(0);
            else if (kind == "BUF" || kind == "BUFF")
                out = ins.at(0);
            else
                throw std::invalid_argument{"read_bench: unsupported gate " +
                                            kind};
            signals.insert_or_assign(target, out);
            gates.erase(gates.begin() + static_cast<long>(i));
            progress = true;
        }
    }
    if (!gates.empty())
        throw std::invalid_argument{
            "read_bench: unresolved gates (cycle or missing signal)"};
    for (const auto& name : outputs) {
        const auto it = signals.find(name);
        if (it == signals.end())
            throw std::invalid_argument{"read_bench: undefined output " +
                                        name};
        net.create_po(it->second);
    }
    return net;
}

xag read_bench_file(const std::string& path)
{
    std::ifstream is{path};
    if (!is)
        throw std::runtime_error{"read_bench_file: cannot open " + path};
    return read_bench(is);
}

} // namespace mcx
