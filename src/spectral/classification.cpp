#include "spectral/classification.h"

#include "tt/operations.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace mcx {

std::vector<int32_t> walsh_spectrum(const truth_table& f)
{
    const auto n = f.num_vars();
    const size_t size = size_t{1} << n;
    std::vector<int32_t> s(size);
    for (size_t x = 0; x < size; ++x)
        s[x] = f.get_bit(x) ? -1 : 1;
    for (size_t len = 1; len < size; len <<= 1)
        for (size_t base = 0; base < size; base += 2 * len)
            for (size_t i = base; i < base + len; ++i) {
                const auto a = s[i];
                const auto b = s[i + len];
                s[i] = a + b;
                s[i + len] = a - b;
            }
    return s;
}

truth_table function_from_spectrum(std::span<const int32_t> spectrum,
                                   uint32_t num_vars)
{
    const size_t size = size_t{1} << num_vars;
    if (spectrum.size() != size)
        throw std::invalid_argument{"function_from_spectrum: wrong size"};
    std::vector<int64_t> t(spectrum.begin(), spectrum.end());
    for (size_t len = 1; len < size; len <<= 1)
        for (size_t base = 0; base < size; base += 2 * len)
            for (size_t i = base; i < base + len; ++i) {
                const auto a = t[i];
                const auto b = t[i + len];
                t[i] = a + b;
                t[i + len] = a - b;
            }
    truth_table f{num_vars};
    for (size_t x = 0; x < size; ++x) {
        const auto value = t[x] / static_cast<int64_t>(size);
        if (value != 1 && value != -1)
            throw std::invalid_argument{
                "function_from_spectrum: not a Boolean spectrum"};
        if (value == -1)
            f.set_bit(x, true);
    }
    return f;
}

truth_table affine_transform::apply(const truth_table& representative) const
{
    std::vector<uint32_t> a_columns(num_vars);
    for (uint32_t k = 0; k < num_vars; ++k)
        a_columns[k] = mt_column(k);
    return apply_affine(representative, a_columns, c, v, output_complement);
}

namespace {

/// DFS state for the lexicographic-maximum spectrum search.
class canonizer {
public:
    canonizer(const truth_table& f, const classification_params& params)
        : n_{f.num_vars()}, size_{size_t{1} << n_},
          spectrum_{walsh_spectrum(f)}, limit_{params.iteration_limit}
    {
        m_table_.assign(size_, 0);
        sign_table_.assign(size_, 1);
        best_spectrum_.assign(size_, 0);
        used_.assign(size_, 0);
        columns_.fill(0);
    }

    classification_result run(const truth_table& f)
    {
        classification_result result;
        result.representative = truth_table{n_};

        // Level 0: choose v among maximal-magnitude coefficients, sigma to
        // make s'[0] positive.
        int32_t max_abs = 0;
        for (const auto value : spectrum_)
            max_abs = std::max(max_abs, std::abs(value));
        for (size_t w = 0; w < size_ && !aborted_; ++w) {
            if (std::abs(spectrum_[w]) != max_abs)
                continue;
            ++iterations_;
            if (iterations_ > limit_) {
                aborted_ = true;
                break;
            }
            v_ = static_cast<uint32_t>(w);
            sigma_ = spectrum_[w] < 0 ? -1 : 1;
            sign_table_[0] = sigma_;
            best_spectrum_[0] = max_abs;
            used_[w] = 1;
            dfs(1);
            used_[w] = 0;
        }

        result.iterations = iterations_;
        result.success = !aborted_ && best_complete_;
        if (result.success) {
            result.representative =
                function_from_spectrum(best_spectrum_, n_);
            result.transform = best_transform_;
            // Soundness check of the closed-form reconstruction.
            if (result.transform.apply(result.representative) != f)
                throw std::logic_error{
                    "classify_affine: reconstruction mismatch"};
        }
        return result;
    }

private:
    struct candidate {
        uint32_t m = 0;
        bool c_bit = false;
        std::vector<int32_t> block;
    };

    void dfs(uint32_t level)
    {
        if (aborted_)
            return;
        if (level > n_) {
            if (!best_complete_) {
                best_transform_.num_vars = n_;
                best_transform_.m_columns = columns_;
                best_transform_.c = c_;
                best_transform_.v = v_;
                best_transform_.output_complement = sigma_ < 0;
                best_complete_ = true;
            }
            return;
        }

        const size_t half = size_t{1} << (level - 1);

        // Dominance prune: the canonical suffix is a signed permutation of
        // the spectrum coefficients not consumed by the prefix, so sorting
        // their magnitudes in descending order upper-bounds every reachable
        // suffix.  If that bound cannot strictly beat the incumbent, ties
        // are all this subtree could produce — skip it.
        if (best_complete_) {
            bound_.clear();
            for (size_t w = 0; w < size_; ++w)
                if (!used_[w])
                    bound_.push_back(std::abs(spectrum_[w]));
            std::sort(bound_.begin(), bound_.end(), std::greater<>{});
            if (std::lexicographical_compare_three_way(
                    bound_.begin(), bound_.end(),
                    best_spectrum_.begin() + half, best_spectrum_.end()) <= 0)
                return;
        }

        std::vector<candidate> candidates;
        for (uint32_t m = 1; m < size_; ++m) {
            if ((span_ >> m) & 1)
                continue; // not linearly independent of chosen columns
            for (const bool c_bit : {false, true}) {
                ++iterations_;
                if (iterations_ > limit_) {
                    aborted_ = true;
                    return;
                }
                candidate cand;
                cand.m = m;
                cand.c_bit = c_bit;
                cand.block.resize(half);
                const int32_t flip = c_bit ? -1 : 1;
                for (size_t r = 0; r < half; ++r)
                    cand.block[r] = sign_table_[r] * flip *
                                    spectrum_[m_table_[r] ^ m ^ v_];
                candidates.push_back(std::move(cand));
            }
        }
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const candidate& a, const candidate& b) {
                             return a.block > b.block; // lexicographic desc
                         });

        for (const auto& cand : candidates) {
            if (aborted_)
                return;
            if (best_complete_) {
                const auto cmp = std::lexicographical_compare_three_way(
                    cand.block.begin(), cand.block.end(),
                    best_spectrum_.begin() + half,
                    best_spectrum_.begin() + 2 * half);
                if (cmp < 0)
                    break; // sorted: everything after is worse
                if (cmp > 0)
                    best_complete_ = false; // new leader from here down
                // equal: tight challenger, recurse and compare deeper
            }
            if (!best_complete_)
                std::copy(cand.block.begin(), cand.block.end(),
                          best_spectrum_.begin() + half);

            // Apply candidate.
            const auto saved_span = span_;
            columns_[level - 1] = cand.m;
            if (cand.c_bit)
                c_ |= 1u << (level - 1);
            else
                c_ &= ~(1u << (level - 1));
            uint64_t extended = span_;
            for (uint32_t x = 0; x < size_; ++x)
                if ((span_ >> x) & 1)
                    extended |= uint64_t{1} << (x ^ cand.m);
            span_ = extended;
            const int32_t flip = cand.c_bit ? -1 : 1;
            for (size_t r = 0; r < half; ++r) {
                m_table_[half + r] = m_table_[r] ^ cand.m;
                sign_table_[half + r] = sign_table_[r] * flip;
                used_[m_table_[half + r] ^ v_] = 1;
            }

            dfs(level + 1);
            span_ = saved_span;
            for (size_t r = 0; r < half; ++r)
                used_[m_table_[half + r] ^ v_] = 0;
        }
    }

    uint32_t n_;
    size_t size_;
    std::vector<int32_t> spectrum_;
    uint64_t limit_;
    uint64_t iterations_ = 0;
    bool aborted_ = false;

    // Current path.
    uint32_t v_ = 0;
    int32_t sigma_ = 1;
    uint32_t c_ = 0;
    std::array<uint32_t, 6> columns_{};
    uint64_t span_ = 1; ///< bitset of span{chosen columns}, always contains 0
    std::vector<uint32_t> m_table_;   ///< M*w for w below the frontier
    std::vector<int32_t> sign_table_; ///< sigma * (-1)^(c.w)
    std::vector<uint8_t> used_;       ///< spectrum indices consumed by prefix
    std::vector<int32_t> bound_;      ///< scratch for the dominance prune

    // Best complete assignment so far.
    std::vector<int32_t> best_spectrum_;
    affine_transform best_transform_;
    bool best_complete_ = false;
};

} // namespace

classification_result classify_affine(const truth_table& f,
                                      const classification_params& params)
{
    if (f.num_vars() > 6)
        throw std::invalid_argument{"classify_affine: at most 6 variables"};
    if (f.num_vars() == 0) {
        classification_result result;
        result.representative = truth_table::constant(0, false);
        result.transform.num_vars = 0;
        result.transform.output_complement = f.get_bit(0);
        result.success = true;
        return result;
    }
    canonizer search{f, params};
    return search.run(f);
}

const classification_result& classification_cache::classify(
    const truth_table& f)
{
    if (const auto* cached = cache_.find(f))
        return *cached;
    return cache_.insert(f, classify_affine(f, params_));
}

} // namespace mcx
