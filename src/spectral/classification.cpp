#include "spectral/classification.h"

#include "tt/operations.h"
#include "tt/spectrum_words.h"
#include "tt/words.h"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

namespace mcx {

std::vector<int32_t> walsh_spectrum(const truth_table& f)
{
    const auto n = f.num_vars();
    const size_t size = size_t{1} << n;
    std::vector<int32_t> s(size);
    if (n <= 6) {
        // Blocked butterfly over packed int8 lanes: seed ±1 lanes straight
        // from the truth-table word, then O(n) masked-shift/SWAR stages.
        std::array<uint64_t, 8> packed{};
        spectrum_from_truth_word(f.word(), static_cast<uint32_t>(size),
                                 packed.data());
        for (uint32_t w = 0; w < size; ++w)
            s[w] = spectrum_lane(packed.data(), w);
        return s;
    }
    for (size_t x = 0; x < size; ++x)
        s[x] = f.get_bit(x) ? -1 : 1;
    for (size_t len = 1; len < size; len <<= 1)
        for (size_t base = 0; base < size; base += 2 * len)
            for (size_t i = base; i < base + len; ++i) {
                const auto a = s[i];
                const auto b = s[i + len];
                s[i] = a + b;
                s[i + len] = a - b;
            }
    return s;
}

truth_table function_from_spectrum(std::span<const int32_t> spectrum,
                                   uint32_t num_vars)
{
    const size_t size = size_t{1} << num_vars;
    if (spectrum.size() != size)
        throw std::invalid_argument{"function_from_spectrum: wrong size"};
    if (num_vars <= 6) {
        // Same blocked butterfly, int16 lanes: a Boolean spectrum has
        // |s[w]| <= 2^n (reject anything wider up front), so every partial
        // butterfly sum fits a 16-bit lane.
        const auto bound = static_cast<int32_t>(size);
        std::array<uint64_t, 16> packed{};
        for (uint32_t w = 0; w < size; ++w) {
            if (spectrum[w] < -bound || spectrum[w] > bound)
                throw std::invalid_argument{
                    "function_from_spectrum: not a Boolean spectrum"};
            spectrum16_set_lane(packed.data(), w, spectrum[w]);
        }
        spectrum16_butterfly(packed.data(), static_cast<uint32_t>(size));
        truth_table f{num_vars};
        for (uint32_t x = 0; x < size; ++x) {
            const auto t = spectrum16_lane(packed.data(), x);
            if (t != bound && t != -bound)
                throw std::invalid_argument{
                    "function_from_spectrum: not a Boolean spectrum"};
            if (t == -bound)
                f.set_bit(x, true);
        }
        return f;
    }
    std::vector<int64_t> t(spectrum.begin(), spectrum.end());
    for (size_t len = 1; len < size; len <<= 1)
        for (size_t base = 0; base < size; base += 2 * len)
            for (size_t i = base; i < base + len; ++i) {
                const auto a = t[i];
                const auto b = t[i + len];
                t[i] = a + b;
                t[i + len] = a - b;
            }
    truth_table f{num_vars};
    for (size_t x = 0; x < size; ++x) {
        const auto value = t[x] / static_cast<int64_t>(size);
        if (value != 1 && value != -1)
            throw std::invalid_argument{
                "function_from_spectrum: not a Boolean spectrum"};
        if (value == -1)
            f.set_bit(x, true);
    }
    return f;
}

truth_table affine_transform::apply(const truth_table& representative) const
{
    std::vector<uint32_t> a_columns(num_vars);
    for (uint32_t k = 0; k < num_vars; ++k)
        a_columns[k] = mt_column(k);
    return apply_affine(representative, a_columns, c, v, output_complement);
}

namespace {

/// DFS state for the scalar lexicographic-maximum spectrum search — the
/// retained reference implementation behind classify_affine_baseline.
class canonizer {
public:
    canonizer(const truth_table& f, const classification_params& params)
        : n_{f.num_vars()}, size_{size_t{1} << n_},
          spectrum_{walsh_spectrum(f)}, limit_{params.iteration_limit}
    {
        m_table_.assign(size_, 0);
        sign_table_.assign(size_, 1);
        best_spectrum_.assign(size_, 0);
        used_.assign(size_, 0);
        columns_.fill(0);
    }

    classification_result run(const truth_table& f)
    {
        classification_result result;
        result.representative = truth_table{n_};

        // Level 0: choose v among maximal-magnitude coefficients, sigma to
        // make s'[0] positive.
        int32_t max_abs = 0;
        for (const auto value : spectrum_)
            max_abs = std::max(max_abs, std::abs(value));
        for (size_t w = 0; w < size_ && !aborted_; ++w) {
            if (std::abs(spectrum_[w]) != max_abs)
                continue;
            ++iterations_;
            if (iterations_ > limit_) {
                aborted_ = true;
                break;
            }
            v_ = static_cast<uint32_t>(w);
            sigma_ = spectrum_[w] < 0 ? -1 : 1;
            sign_table_[0] = sigma_;
            best_spectrum_[0] = max_abs;
            used_[w] = 1;
            dfs(1);
            used_[w] = 0;
        }

        result.iterations = iterations_;
        result.success = !aborted_ && best_complete_;
        if (result.success) {
            result.representative =
                function_from_spectrum(best_spectrum_, n_);
            result.transform = best_transform_;
            // Soundness check of the closed-form reconstruction.
            if (result.transform.apply(result.representative) != f)
                throw std::logic_error{
                    "classify_affine: reconstruction mismatch"};
        }
        return result;
    }

private:
    struct candidate {
        uint32_t m = 0;
        bool c_bit = false;
        std::vector<int32_t> block;
    };

    void dfs(uint32_t level)
    {
        if (aborted_)
            return;
        if (level > n_) {
            if (!best_complete_) {
                best_transform_.num_vars = n_;
                best_transform_.m_columns = columns_;
                best_transform_.c = c_;
                best_transform_.v = v_;
                best_transform_.output_complement = sigma_ < 0;
                best_complete_ = true;
            }
            return;
        }

        const size_t half = size_t{1} << (level - 1);

        // Dominance prune: the canonical suffix is a signed permutation of
        // the spectrum coefficients not consumed by the prefix, so sorting
        // their magnitudes in descending order upper-bounds every reachable
        // suffix.  If that bound cannot strictly beat the incumbent, ties
        // are all this subtree could produce — skip it.
        if (best_complete_) {
            bound_.clear();
            for (size_t w = 0; w < size_; ++w)
                if (!used_[w])
                    bound_.push_back(std::abs(spectrum_[w]));
            std::sort(bound_.begin(), bound_.end(), std::greater<>{});
            if (std::lexicographical_compare_three_way(
                    bound_.begin(), bound_.end(),
                    best_spectrum_.begin() + half, best_spectrum_.end()) <= 0)
                return;
        }

        std::vector<candidate> candidates;
        for (uint32_t m = 1; m < size_; ++m) {
            if ((span_ >> m) & 1)
                continue; // not linearly independent of chosen columns
            for (const bool c_bit : {false, true}) {
                ++iterations_;
                if (iterations_ > limit_) {
                    aborted_ = true;
                    return;
                }
                candidate cand;
                cand.m = m;
                cand.c_bit = c_bit;
                cand.block.resize(half);
                const int32_t flip = c_bit ? -1 : 1;
                for (size_t r = 0; r < half; ++r)
                    cand.block[r] = sign_table_[r] * flip *
                                    spectrum_[m_table_[r] ^ m ^ v_];
                candidates.push_back(std::move(cand));
            }
        }
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const candidate& a, const candidate& b) {
                             return a.block > b.block; // lexicographic desc
                         });

        for (const auto& cand : candidates) {
            if (aborted_)
                return;
            if (best_complete_) {
                const auto cmp = std::lexicographical_compare_three_way(
                    cand.block.begin(), cand.block.end(),
                    best_spectrum_.begin() + half,
                    best_spectrum_.begin() + 2 * half);
                if (cmp < 0)
                    break; // sorted: everything after is worse
                if (cmp > 0)
                    best_complete_ = false; // new leader from here down
                // equal: tight challenger, recurse and compare deeper
            }
            if (!best_complete_)
                std::copy(cand.block.begin(), cand.block.end(),
                          best_spectrum_.begin() + half);

            // Apply candidate.
            const auto saved_span = span_;
            columns_[level - 1] = cand.m;
            if (cand.c_bit)
                c_ |= 1u << (level - 1);
            else
                c_ &= ~(1u << (level - 1));
            uint64_t extended = span_;
            for (uint32_t x = 0; x < size_; ++x)
                if ((span_ >> x) & 1)
                    extended |= uint64_t{1} << (x ^ cand.m);
            span_ = extended;
            const int32_t flip = cand.c_bit ? -1 : 1;
            for (size_t r = 0; r < half; ++r) {
                m_table_[half + r] = m_table_[r] ^ cand.m;
                sign_table_[half + r] = sign_table_[r] * flip;
                used_[m_table_[half + r] ^ v_] = 1;
            }

            dfs(level + 1);
            span_ = saved_span;
            for (size_t r = 0; r < half; ++r)
                used_[m_table_[half + r] ^ v_] = 0;
        }
    }

    uint32_t n_;
    size_t size_;
    std::vector<int32_t> spectrum_;
    uint64_t limit_;
    uint64_t iterations_ = 0;
    bool aborted_ = false;

    // Current path.
    uint32_t v_ = 0;
    int32_t sigma_ = 1;
    uint32_t c_ = 0;
    std::array<uint32_t, 6> columns_{};
    uint64_t span_ = 1; ///< bitset of span{chosen columns}, always contains 0
    std::vector<uint32_t> m_table_;   ///< M*w for w below the frontier
    std::vector<int32_t> sign_table_; ///< sigma * (-1)^(c.w)
    std::vector<uint8_t> used_;       ///< spectrum indices consumed by prefix
    std::vector<int32_t> bound_;      ///< scratch for the dominance prune

    // Best complete assignment so far.
    std::vector<int32_t> best_spectrum_;
    affine_transform best_transform_;
    bool best_complete_ = false;
};

/// DFS state for the word-parallel lexicographic-maximum spectrum search.
///
/// Same search tree as `canonizer` — same candidate enumeration order, the
/// same dominance prune decisions, the same iteration accounting,
/// bit-identical results — with the per-candidate arithmetic moved onto
/// packed int8 spectrum lanes (src/tt/spectrum_words.h):
///
///  * a candidate block is at most four 64-bit words, carried around as its
///    lexicographic sort keys (spectrum_sort_key per word) — comparisons
///    are plain unsigned word compares, and the whole search performs no
///    heap allocation;
///  * candidates in the same coset of span{chosen columns} share one
///    gather: if m' = m ^ M d then block_{m'}[r] = block_m[r ^ d], so only
///    the first member of each coset is gathered lane by lane and every
///    mate is a lane XOR-translate (masked shifts + word swaps);
///  * the sign pattern sigma * (-1)^(c.r) is a byte mask applied with one
///    SWAR conditional negation per word instead of a multiply per entry;
///  * the dominance prune walks magnitude bucket counts against the
///    incumbent suffix instead of materializing and sorting the unused
///    coefficients — same comparison outcome, no sort;
///  * extending span{columns} by a candidate is popcount(m) masked word
///    shifts (tt_flip_word on the span bitset) instead of a 2^n loop.
class word_canonizer {
public:
    word_canonizer(const truth_table& f, const classification_params& params)
        : n_{f.num_vars()}, size_{1u << n_}, limit_{params.iteration_limit}
    {
        spec_packed_.fill(0);
        spectrum_from_truth_word(f.word(), size_, spec_packed_.data());
        unused_mag_.fill(0);
        for (uint32_t w = 0; w < size_; ++w) {
            spectrum_[w] = spectrum_lane(spec_packed_.data(), w);
            ++unused_mag_[std::abs(spectrum_[w])];
        }
    }

    classification_result run(const truth_table& f)
    {
        classification_result result;
        result.representative = truth_table{n_};

        int32_t max_abs = 0;
        for (uint32_t w = 0; w < size_; ++w)
            max_abs = std::max(max_abs, std::abs(spectrum_[w]));
        for (uint32_t w = 0; w < size_ && !aborted_; ++w) {
            if (std::abs(spectrum_[w]) != max_abs)
                continue;
            ++iterations_;
            if (iterations_ > limit_) {
                aborted_ = true;
                break;
            }
            v_ = w;
            sigma_ = spectrum_[w] < 0 ? -1 : 1;
            // g[u] = spectrum[u ^ v], the gather source for every block on
            // this branch.
            g_ = spec_packed_;
            spectrum_translate(g_.data(), size_, v_);
            neg_[1].fill(0);
            if (sigma_ < 0)
                neg_[1][0] = 0xff; // row 0 carries the output sign
            best_spectrum_[0] = max_abs;
            used_[w] = 1;
            --unused_mag_[max_abs];
            dfs(1);
            used_[w] = 0;
            ++unused_mag_[max_abs];
        }

        result.iterations = iterations_;
        result.success = !aborted_ && best_complete_;
        if (result.success) {
            result.representative = function_from_spectrum(
                std::span{best_spectrum_.data(), size_}, n_);
            result.transform = best_transform_;
            if (result.transform.apply(result.representative) != f)
                throw std::logic_error{
                    "classify_affine: reconstruction mismatch"};
        }
        return result;
    }

private:
    /// A candidate block of up to 32 int8 lanes (half <= 2^5 rows), stored
    /// as its per-word sort keys: key[i] = spectrum_sort_key(lanes 8i..).
    using block_keys = std::array<uint64_t, 4>;
    struct candidate {
        block_keys key;
        uint8_t m = 0;
        bool c_bit = false;
    };

    static int compare_keys(const block_keys& a, const block_keys& b,
                            uint32_t words)
    {
        for (uint32_t i = 0; i < words; ++i)
            if (a[i] != b[i])
                return a[i] < b[i] ? -1 : 1;
        return 0;
    }

    /// Single-word candidate as one sortable integer: key in the high 64
    /// bits, complemented insertion index (m, c) below — descending order
    /// on the packed value is descending by key with ties broken by
    /// insertion order, the baseline's stable order.
    static unsigned __int128 pack_item(uint64_t key, uint32_t m, bool c_bit)
    {
        return (static_cast<unsigned __int128>(key) << 8) |
               (255u - ((m << 1) | static_cast<uint32_t>(c_bit)));
    }

    /// The baseline's dominance prune, O(suffix) and sort-free: the sorted
    /// descending bound sequence is replayed from `unused_mag_` bucket
    /// counts and compared element by element against the incumbent suffix.
    /// Returns true when the bound cannot strictly beat the incumbent
    /// (lexicographic three-way <= 0 in the baseline's terms).
    bool suffix_dominated(uint32_t half) const
    {
        int32_t mag = 64;
        uint32_t avail = unused_mag_[mag];
        for (uint32_t w = half; w < size_; ++w) {
            while (avail == 0)
                avail = unused_mag_[--mag];
            --avail;
            if (mag != best_spectrum_[w])
                return mag < best_spectrum_[w];
        }
        return true; // ties are all this subtree could produce
    }

    void dfs(uint32_t level)
    {
        if (aborted_)
            return;
        if (level > n_) {
            if (!best_complete_) {
                best_transform_.num_vars = n_;
                best_transform_.m_columns = columns_;
                best_transform_.c = c_;
                best_transform_.v = v_;
                best_transform_.output_complement = sigma_ < 0;
                best_complete_ = true;
            }
            return;
        }

        const uint32_t half = 1u << (level - 1);
        const uint32_t words = half <= 8 ? 1 : half >> 3;
        const uint64_t tail_mask =
            half >= 8 ? ~uint64_t{0} : (uint64_t{1} << (8 * half)) - 1;

        if (best_complete_ && suffix_dominated(half))
            return;

        // Candidates lexicographically below the incumbent's block at node
        // entry can never be processed: the sorted loop below breaks at the
        // first one, and the incumbent block only grows while the loop
        // runs.  Dropping them here (one key compare each, usually decided
        // by word 0) keeps the sort to the handful of survivors.  At the
        // last level ties are dropped too — a terminal tie's recursion is
        // a no-op (see the ranked loop), so only strict improvements
        // matter, and most last-level nodes then sort and process nothing.
        const bool entry_best = best_complete_;
        const bool drop_ties = entry_best && level == n_;
        const block_keys entry_key = best_key_[level];

        auto& cands = cand_pool_[level];
        auto& items = item_pool_[level];
        uint32_t count = 0;
        auto& base = coset_base_[level];
        auto& xlat = coset_xlat_[level];
        auto& gathered = coset_block_[level];
        const auto& neg = neg_[level];

        // Sub-word fast path for one- and two-row blocks: the packed g_
        // lanes already hold one lane per candidate, so a SWAR negate +
        // bias builds the key bytes of eight candidates per word, and for
        // two-row blocks a byte interleave assembles four candidates'
        // 16-bit keys per word (spectrum_zip8_*).  Key values are bit-for-
        // bit the ones the general gather below produces, so ordering,
        // pruning, and results are untouched — only the per-candidate
        // work disappears.  This is where small functions (4 inputs) used
        // to trail the >= 4x gate: their search lives almost entirely on
        // these levels.
        const bool subword = half <= 4;
        if (subword) {
            const uint32_t g_words = size_ <= 8 ? 1 : size_ >> 3;
            const uint64_t sign0 =
                (neg[0] & 0xff) != 0 ? ~uint64_t{0} : 0;
            if (half == 1) {
                // key = ((±g[m]) ^ 0x80) << 56 | 0x80 in the lower bytes.
                for (uint32_t i = 0; i < g_words; ++i) {
                    sub_c0_[i] = spectrum_negate_if(g_[i], sign0) ^
                                 spectrum_lane_high;
                    sub_c1_[i] = spectrum_negate_if(g_[i], ~sign0) ^
                                 spectrum_lane_high;
                }
            } else if (half == 2) {
                const uint64_t sign1 =
                    (neg[0] & 0xff00) != 0 ? ~uint64_t{0} : 0;
                // Row 1 of candidate m is g[m ^ m1]: one XOR-translate
                // aligns it under row 0 for every candidate at once.
                auto g2 = g_;
                spectrum_translate(g2.data(), size_, m_table_[1]);
                for (uint32_t i = 0; i < g_words; ++i) {
                    const auto a0 = spectrum_negate_if(g_[i], sign0) ^
                                    spectrum_lane_high;
                    const auto a1 = spectrum_negate_if(g2[i], sign1) ^
                                    spectrum_lane_high;
                    const auto b0 = spectrum_negate_if(g_[i], ~sign0) ^
                                    spectrum_lane_high;
                    const auto b1 = spectrum_negate_if(g2[i], ~sign1) ^
                                    spectrum_lane_high;
                    sub_c0_[2 * i] = spectrum_zip8_lo(a1, a0);
                    sub_c0_[2 * i + 1] = spectrum_zip8_hi(a1, a0);
                    sub_c1_[2 * i] = spectrum_zip8_lo(b1, b0);
                    sub_c1_[2 * i + 1] = spectrum_zip8_hi(b1, b0);
                }
            } else {
                // Four rows (0, m1, m2, m1^m2): three XOR-translates line
                // the rows of every candidate up vertically, two byte
                // zips + one 16-bit zip assemble two 32-bit candidate
                // keys per word.
                std::array<std::array<uint64_t, 8>, 4> rows_lanes;
                rows_lanes[0] = g_;
                for (uint32_t r = 1; r < 4; ++r) {
                    rows_lanes[r] = g_;
                    spectrum_translate(rows_lanes[r].data(), size_,
                                       m_table_[r]);
                }
                std::array<uint64_t, 4> sign;
                for (uint32_t r = 0; r < 4; ++r)
                    sign[r] = (neg[0] & (uint64_t{0xff} << (8 * r))) != 0
                                  ? ~uint64_t{0}
                                  : 0;
                for (uint32_t i = 0; i < g_words; ++i) {
                    std::array<uint64_t, 4> a, b;
                    for (uint32_t r = 0; r < 4; ++r) {
                        a[r] = spectrum_negate_if(rows_lanes[r][i],
                                                  sign[r]) ^
                               spectrum_lane_high;
                        b[r] = spectrum_negate_if(rows_lanes[r][i],
                                                  ~sign[r]) ^
                               spectrum_lane_high;
                    }
                    // 16-bit units (row0<<8|row1) and (row2<<8|row3),
                    // then 32-bit units (rows0-1 << 16 | rows2-3).
                    const auto a01_lo = spectrum_zip8_lo(a[1], a[0]);
                    const auto a01_hi = spectrum_zip8_hi(a[1], a[0]);
                    const auto a23_lo = spectrum_zip8_lo(a[3], a[2]);
                    const auto a23_hi = spectrum_zip8_hi(a[3], a[2]);
                    sub_c0_[4 * i] = spectrum_zip16_lo(a23_lo, a01_lo);
                    sub_c0_[4 * i + 1] = spectrum_zip16_hi(a23_lo, a01_lo);
                    sub_c0_[4 * i + 2] = spectrum_zip16_lo(a23_hi, a01_hi);
                    sub_c0_[4 * i + 3] = spectrum_zip16_hi(a23_hi, a01_hi);
                    const auto b01_lo = spectrum_zip8_lo(b[1], b[0]);
                    const auto b01_hi = spectrum_zip8_hi(b[1], b[0]);
                    const auto b23_lo = spectrum_zip8_lo(b[3], b[2]);
                    const auto b23_hi = spectrum_zip8_hi(b[3], b[2]);
                    sub_c1_[4 * i] = spectrum_zip16_lo(b23_lo, b01_lo);
                    sub_c1_[4 * i + 1] = spectrum_zip16_hi(b23_lo, b01_lo);
                    sub_c1_[4 * i + 2] = spectrum_zip16_lo(b23_hi, b01_hi);
                    sub_c1_[4 * i + 3] = spectrum_zip16_hi(b23_hi, b01_hi);
                }
            }
        } else {
            base.fill(0xff);
        }

        for (uint32_t m = 1; m < size_; ++m) {
            if ((span_ >> m) & 1)
                continue; // not linearly independent of chosen columns
            // Two candidate evaluations (c = 0, 1) share the block below;
            // the pair-fused limit check aborts at the same point with the
            // same final count as the baseline's per-evaluation check
            // (which stops after the first of the two increments when that
            // one already crossed the limit).
            if (iterations_ + 2 > limit_) {
                iterations_ += iterations_ >= limit_ ? 1 : 2;
                aborted_ = true;
                return;
            }
            iterations_ += 2;
            if (subword) {
                uint64_t k0, k1;
                if (half == 1) {
                    const uint32_t sh = 8 * (m & 7);
                    k0 = ((sub_c0_[m >> 3] >> sh) & 0xff) << 56 |
                         0x0080808080808080ull;
                    k1 = ((sub_c1_[m >> 3] >> sh) & 0xff) << 56 |
                         0x0080808080808080ull;
                } else if (half == 2) {
                    const uint32_t sh = 16 * (m & 3);
                    k0 = ((sub_c0_[m >> 2] >> sh) & 0xffff) << 48 |
                         0x0000808080808080ull;
                    k1 = ((sub_c1_[m >> 2] >> sh) & 0xffff) << 48 |
                         0x0000808080808080ull;
                } else {
                    const uint32_t sh = 32 * (m & 1);
                    k0 = ((sub_c0_[m >> 1] >> sh) & 0xffffffff) << 32 |
                         0x0000000080808080ull;
                    k1 = ((sub_c1_[m >> 1] >> sh) & 0xffffffff) << 32 |
                         0x0000000080808080ull;
                }
                if (!entry_best ||
                    (drop_ties ? k0 > entry_key[0] : k0 >= entry_key[0]))
                    items[count++] = pack_item(k0, m, false);
                if (!entry_best ||
                    (drop_ties ? k1 > entry_key[0] : k1 >= entry_key[0]))
                    items[count++] = pack_item(k1, m, true);
                continue;
            }
            std::array<uint64_t, 4> blk{};
            if (base[m] == 0xff) {
                // First member of its coset: gather, and index the mates.
                for (uint32_t r = 0; r < half; ++r)
                    spectrum_set_lane(blk.data(), r,
                                      spectrum_lane(g_.data(),
                                                    m_table_[r] ^ m));
                gathered[m] = blk;
                base[m] = static_cast<uint8_t>(m);
                xlat[m] = 0;
                for (uint32_t d = 1; d < half; ++d) {
                    const uint32_t mate = m ^ m_table_[d];
                    if (base[mate] == 0xff) {
                        base[mate] = static_cast<uint8_t>(m);
                        xlat[mate] = static_cast<uint8_t>(d);
                    }
                }
            } else {
                blk = gathered[base[m]];
                spectrum_translate(blk.data(), half, xlat[m]);
            }
            if (words == 1) {
                const uint64_t k0 = spectrum_sort_key(
                    spectrum_negate_if(blk[0], neg[0]));
                const uint64_t k1 = spectrum_sort_key(
                    spectrum_negate_if(blk[0], ~neg[0] & tail_mask));
                if (!entry_best ||
                    (drop_ties ? k0 > entry_key[0] : k0 >= entry_key[0]))
                    items[count++] = pack_item(k0, m, false);
                if (!entry_best ||
                    (drop_ties ? k1 > entry_key[0] : k1 >= entry_key[0]))
                    items[count++] = pack_item(k1, m, true);
                continue;
            }
            candidate c0, c1;
            for (uint32_t i = 0; i < words; ++i) {
                const uint64_t valid =
                    i + 1 == words ? tail_mask : ~uint64_t{0};
                c0.key[i] =
                    spectrum_sort_key(spectrum_negate_if(blk[i], neg[i]));
                c1.key[i] = spectrum_sort_key(
                    spectrum_negate_if(blk[i], ~neg[i] & valid));
            }
            c0.m = static_cast<uint8_t>(m);
            c0.c_bit = false;
            c1.m = static_cast<uint8_t>(m);
            c1.c_bit = true;
            const int f0 =
                entry_best ? compare_keys(c0.key, entry_key, words) : 1;
            const int f1 =
                entry_best ? compare_keys(c1.key, entry_key, words) : 1;
            if (drop_ties ? f0 > 0 : f0 >= 0)
                cands[count++] = c0;
            if (drop_ties ? f1 > 0 : f1 >= 0)
                cands[count++] = c1;
        }

        // Sort descending with the insertion index breaking ties — exactly
        // the baseline's stable_sort order on the retained candidates.
        // Single-word keys (every level of a 4-input search, and all but
        // the deepest levels at 5-6 inputs) ride in one flat packed array:
        // (key, complemented insertion index) sorts as a plain integer,
        // with no comparator indirection and no candidate structs at all.
        if (words == 1) {
            std::sort(items.begin(), items.begin() + count,
                      std::greater<>{});
        } else {
            auto& order = order_pool_[level];
            for (uint32_t i = 0; i < count; ++i)
                order[i] = static_cast<uint8_t>(i);
            std::sort(order.begin(), order.begin() + count,
                      [&cands, words](uint8_t x, uint8_t y) {
                          const int cmp = compare_keys(cands[x].key,
                                                       cands[y].key, words);
                          return cmp != 0 ? cmp > 0 : x < y;
                      });
        }

        for (uint32_t rank = 0; rank < count; ++rank) {
            candidate unpacked;
            if (words == 1) {
                const auto item = items[rank];
                const auto low =
                    255u - static_cast<uint32_t>(item & 0xff);
                unpacked.key = {static_cast<uint64_t>(item >> 8), 0, 0, 0};
                unpacked.m = static_cast<uint8_t>(low >> 1);
                unpacked.c_bit = (low & 1) != 0;
            } else {
                unpacked = cand_pool_[level][order_pool_[level][rank]];
            }
            const candidate& cand = unpacked;
            if (aborted_)
                return;
            if (best_complete_) {
                const int cmp =
                    compare_keys(cand.key, best_key_[level], words);
                if (cmp < 0)
                    break; // sorted: everything after is worse
                if (cmp > 0)
                    best_complete_ = false; // new leader from here down
                // equal: tight challenger, recurse and compare deeper —
                // except at the last level, where there is nothing deeper:
                // the recursion would return immediately and the apply/
                // restore around it cancels out.  Skipping it is free
                // (terminal dfs calls never touch the iteration count) and
                // is where 4-input searches spent most of their time:
                // almost every last-level candidate ties the incumbent.
                else if (level == n_)
                    continue;
            }
            if (!best_complete_) {
                best_key_[level] = cand.key;
                for (uint32_t i = 0; i < words; ++i) {
                    const uint64_t lanes =
                        spectrum_sort_key_inverse(cand.key[i]);
                    for (uint32_t r = 8 * i; r < std::min(half, 8 * i + 8);
                         ++r)
                        best_spectrum_[half + r] =
                            spectrum_lane(&lanes, r & 7);
                }
            }

            // Apply candidate.
            const auto saved_span = span_;
            columns_[level - 1] = cand.m;
            if (cand.c_bit)
                c_ |= 1u << (level - 1);
            else
                c_ &= ~(1u << (level - 1));
            uint64_t permuted = span_;
            for (uint32_t k = 0; k < n_; ++k)
                if ((cand.m >> k) & 1)
                    permuted = tt_flip_word(permuted, k);
            span_ |= permuted; // span | {x ^ m : x in span}
            for (uint32_t r = 0; r < half; ++r) {
                const uint32_t row = m_table_[r] ^ cand.m;
                m_table_[half + r] = row;
                used_[row ^ v_] = 1;
                --unused_mag_[std::abs(spectrum_[row ^ v_])];
            }
            if (level < n_) {
                // Sign mask of the doubled row range: the new rows repeat
                // the old pattern, complemented when c_bit is set.
                auto& next = neg_[level + 1];
                const auto& cur = neg_[level];
                const uint64_t flip = cand.c_bit ? ~uint64_t{0} : 0;
                if (half >= 8) {
                    for (uint32_t i = 0; i < words; ++i) {
                        next[i] = cur[i];
                        next[words + i] = cur[i] ^ flip;
                    }
                } else {
                    const uint64_t low = cur[0] & tail_mask;
                    next = {low | ((low ^ (flip & tail_mask)) << (8 * half)),
                            0, 0, 0};
                }
            }

            dfs(level + 1);
            span_ = saved_span;
            for (uint32_t r = 0; r < half; ++r) {
                used_[m_table_[half + r] ^ v_] = 0;
                ++unused_mag_[std::abs(spectrum_[m_table_[half + r] ^ v_])];
            }
        }
    }

    uint32_t n_;
    uint32_t size_;
    uint64_t limit_;
    uint64_t iterations_ = 0;
    bool aborted_ = false;

    // Current path.
    uint32_t v_ = 0;
    int32_t sigma_ = 1;
    uint32_t c_ = 0;
    std::array<uint32_t, 6> columns_{};
    uint64_t span_ = 1; ///< bitset of span{chosen columns}, always contains 0
    std::array<uint64_t, 8> spec_packed_{}; ///< spectrum, packed int8 lanes
    std::array<uint64_t, 8> g_{};           ///< spectrum[* ^ v], packed
    std::array<int32_t, 64> spectrum_{};    ///< scalar copy (prune buckets)
    std::array<uint32_t, 64> m_table_{};    ///< M*w for w below the frontier
    std::array<uint8_t, 64> used_{};  ///< spectrum indices consumed by prefix
    std::array<uint32_t, 65> unused_mag_{}; ///< prune: count per |coeff|
    std::array<std::array<uint64_t, 4>, 7> neg_{}; ///< packed row-sign masks

    // Sub-word candidate batches (half <= 4): key bytes / 16-bit / 32-bit
    // key units of all candidates — eight, four, or two per word.
    // Consumed into cand_pool_ before the recursion, so one pair of
    // buffers serves every level.
    std::array<uint64_t, 32> sub_c0_{};
    std::array<uint64_t, 32> sub_c1_{};

    // Per-level scratch (depth <= 6) — no allocation inside the search.
    std::array<std::array<candidate, 128>, 7> cand_pool_{};
    std::array<std::array<unsigned __int128, 128>, 7> item_pool_{};
    std::array<std::array<uint8_t, 128>, 7> order_pool_{};
    std::array<std::array<uint8_t, 64>, 7> coset_base_{};
    std::array<std::array<uint8_t, 64>, 7> coset_xlat_{};
    std::array<std::array<std::array<uint64_t, 4>, 64>, 7> coset_block_{};

    // Best complete assignment so far: packed per-level keys for the
    // candidate comparisons, plus the flat spectrum the prune and the final
    // reconstruction consume.
    std::array<block_keys, 7> best_key_{};
    std::array<int32_t, 64> best_spectrum_{};
    affine_transform best_transform_;
    bool best_complete_ = false;
};

classification_result classify_trivial(const truth_table& f)
{
    classification_result result;
    result.representative = truth_table::constant(0, false);
    result.transform.num_vars = 0;
    result.transform.output_complement = f.get_bit(0);
    result.success = true;
    return result;
}

} // namespace

classification_result classify_affine(const truth_table& f,
                                      const classification_params& params)
{
    if (f.num_vars() > 6)
        throw std::invalid_argument{"classify_affine: at most 6 variables"};
    if (f.num_vars() == 0)
        return classify_trivial(f);
    if (!params.word_parallel) {
        canonizer search{f, params};
        return search.run(f);
    }
    word_canonizer search{f, params};
    return search.run(f);
}

classification_result
classify_affine_baseline(const truth_table& f,
                         const classification_params& params)
{
    auto scalar = params;
    scalar.word_parallel = false;
    return classify_affine(f, scalar);
}

const classification_result& classification_cache::classify(
    const truth_table& f)
{
    if (const auto* cached = cache_.find(f))
        return *cached;
    return cache_.insert(f, classify_affine(f, params_));
}

} // namespace mcx
