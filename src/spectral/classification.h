// Affine classification of Boolean functions via Rademacher-Walsh spectra
// (paper §2.2 and §4.1, following Miller-Soeken style spectral
// canonization).
//
// The five affine operations of Definition 2.1 generate the group acting on
// spectra as  s'[w] = sigma * (-1)^(c.w) * s[Mw ^ v]  with M in GL(n,2) and
// v, c in F2^n.  The canonical representative is the function whose spectrum
// is the lexicographically largest vector in the orbit; we search for it
// with a DFS over (v, sigma) and the columns of M interleaved with the bits
// of c, pruning on the lexicographic prefix.  The search is exact when it
// completes; an iteration limit (paper: 100 000) bounds the effort, and
// functions whose classification exceeds it are reported unsuccessful and
// skipped by the optimizer — mirroring the paper, which omits 2 359 of the
// 150 357 6-input classes for the same reason.
//
// Reconstruction: if r is the representative found for f, then
//     f(y) = r(M^T y ^ c) ^ (v . y) ^ [sigma < 0],
// which costs only XOR gates and inverters around r's circuit — the whole
// point of the method: the AND count of f equals the AND count of r.
#pragma once

#include "core/lru_cache.h"
#include "tt/truth_table.h"

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace mcx {

/// Rademacher-Walsh spectrum: s[w] = sum_x (-1)^(f(x) ^ (w.x)).
std::vector<int32_t> walsh_spectrum(const truth_table& f);

/// Inverse of walsh_spectrum (the transform is an involution up to 2^n).
truth_table function_from_spectrum(std::span<const int32_t> spectrum,
                                   uint32_t num_vars);

/// The affine relation between a function and its class representative.
struct affine_transform {
    uint32_t num_vars = 0;
    std::array<uint32_t, 6> m_columns{}; ///< column k of M (an n-bit mask)
    uint32_t c = 0;                      ///< input translation vector
    uint32_t v = 0;                      ///< output linear mask
    bool output_complement = false;      ///< [sigma < 0]

    /// Column k of M^T (row k of M), as an n-bit mask over the y inputs.
    uint32_t mt_column(uint32_t k) const
    {
        uint32_t mask = 0;
        for (uint32_t i = 0; i < num_vars; ++i)
            mask |= ((m_columns[i] >> k) & 1u) << i;
        return mask;
    }

    /// Rebuild f from the representative: f(y) = r(M^T y ^ c) ^ v.y ^ s.
    truth_table apply(const truth_table& representative) const;
};

struct classification_params {
    uint64_t iteration_limit = 100'000; ///< candidate evaluations (paper §5)
    /// Run the packed-spectrum engine (src/tt/spectrum_words.h): identical
    /// search tree, candidate order, and iteration accounting as the scalar
    /// baseline, but candidate blocks are built, signed, and compared a
    /// word at a time.  false selects classify_affine_baseline — the A/B
    /// switch used by bench_micro_core and by the exhaustive agreement
    /// tests.
    bool word_parallel = true;
};

struct classification_result {
    truth_table representative;
    affine_transform transform;
    bool success = false;    ///< false when the iteration limit was hit
    uint64_t iterations = 0; ///< candidate evaluations spent
};

/// Canonize `f` (up to 6 variables).  On success the result satisfies
/// `transform.apply(representative) == f` — callers re-verify this cheap
/// identity before rewriting, making the optimizer sound by construction.
classification_result classify_affine(const truth_table& f,
                                      const classification_params& params = {});

/// The original scalar lexicographic-maximum DFS, retained verbatim as the
/// reference oracle (the npn_canonize_baseline pattern): tests require
/// exhaustive agreement with the word-parallel engine up to 4 inputs and
/// randomized agreement at 5-6 inputs, and bench_micro_core gates the
/// engine at >= 4x this implementation on the cold-cache workload.
classification_result
classify_affine_baseline(const truth_table& f,
                         const classification_params& params = {});

/// Memoizing wrapper — the paper's classification cache (§4.1): "no Boolean
/// function needs to be classified twice".  Backed by a bounded LRU so the
/// footprint stays flat on adversarial workloads; the default capacity is
/// far above what any real netlist produces, so in practice nothing is ever
/// evicted and the paper's guarantee holds verbatim.
class classification_cache {
public:
    explicit classification_cache(
        classification_params params = {},
        size_t capacity = lru_cache<int, int>::default_capacity)
        : params_{params}, cache_{capacity}
    {
        // Every instance (including per-worker shards) aggregates into the
        // same process-wide counters.
        cache_.set_metrics(obs::register_metric("cache.cls.hit"),
                           obs::register_metric("cache.cls.miss"));
    }

    /// Reference valid until the entry is evicted (callers consume it
    /// before the next `classify` call).
    const classification_result& classify(const truth_table& f);

    uint64_t hits() const { return cache_.hits(); }
    uint64_t misses() const { return cache_.misses(); }
    size_t size() const { return cache_.size(); }

private:
    classification_params params_;
    lru_cache<truth_table, classification_result, truth_table_hash> cache_;
};

} // namespace mcx
