// Exact NPN canonization for functions of up to 4 variables.
//
// NPN equivalence (negate inputs, permute inputs, negate output) is the
// classification used by classic DAG-aware rewriting (paper ref [1]) and by
// our generic-size baseline: in an XAG all three operations are free
// (complemented edges), so a minimal circuit of the NPN representative is a
// minimal circuit of every class member.
//
// Two implementations are provided.  `npn_canonize` walks the same
// 2 * 2^n * n! candidate space as the brute force, but steps between
// candidates with single word operations (Gray-code input flips, masked
// variable swaps) on the packed 64-bit truth table, so each candidate costs
// O(1) instead of O(2^n * n).  `npn_canonize_baseline` is the original
// bit-at-a-time search, retained as the reference oracle for tests and for
// the speedup measurement in bench/micro_core.  Both return the same
// representative (the minimum truth table of the class); the transforms may
// differ between implementations when several transforms reach it, and
// either satisfies f = transform.apply(representative).
#pragma once

#include "core/lru_cache.h"
#include "tt/truth_table.h"

#include <array>
#include <cstdint>

namespace mcx {

/// f = transform.apply(representative):
///   f(x) = output_negation ^ r(y) with y[i] = x[perm[i]] ^ neg bit i.
struct npn_transform {
    uint32_t num_vars = 0;
    std::array<uint8_t, 4> perm{};  ///< representative input i reads x[perm[i]]
    uint32_t input_negation = 0;    ///< bit i: complement representative input i
    bool output_negation = false;

    truth_table apply(const truth_table& representative) const;
};

struct npn_result {
    truth_table representative;
    npn_transform transform;
};

/// Smallest truth table in the NPN class of `f` plus the transform back.
/// Word-parallel exact search (see header comment).
npn_result npn_canonize(const truth_table& f);

/// Reference oracle: the original exhaustive bit-at-a-time search.  Same
/// representative as `npn_canonize`, ~two orders of magnitude slower.
npn_result npn_canonize_baseline(const truth_table& f);

/// Bounded-LRU memoization in front of `npn_canonize` — on real netlists
/// the same cut functions recur constantly, so canonization becomes a hash
/// lookup after warm-up.
class npn_cache {
public:
    explicit npn_cache(size_t capacity = lru_cache<int, int>::default_capacity)
        : cache_{capacity}
    {
        // Every instance (including per-worker shards) aggregates into the
        // same process-wide counters.
        cache_.set_metrics(obs::register_metric("cache.npn.hit"),
                           obs::register_metric("cache.npn.miss"));
    }

    /// Reference valid until this entry is evicted (callers consume it
    /// before the next `canonize` call).
    const npn_result& canonize(const truth_table& f)
    {
        if (const auto* cached = cache_.find(f))
            return *cached;
        return cache_.insert(f, npn_canonize(f));
    }

    uint64_t hits() const { return cache_.hits(); }
    uint64_t misses() const { return cache_.misses(); }
    size_t size() const { return cache_.size(); }

private:
    lru_cache<truth_table, npn_result, truth_table_hash> cache_;
};

} // namespace mcx
