// Exhaustive NPN canonization for functions of up to 4 variables.
//
// NPN equivalence (negate inputs, permute inputs, negate output) is the
// classification used by classic DAG-aware rewriting (paper ref [1]) and by
// our generic-size baseline: in an XAG all three operations are free
// (complemented edges), so a minimal circuit of the NPN representative is a
// minimal circuit of every class member.
#pragma once

#include "tt/truth_table.h"

#include <array>
#include <cstdint>

namespace mcx {

/// f = transform.apply(representative):
///   f(x) = output_negation ^ r(y) with y[i] = x[perm[i]] ^ neg bit i.
struct npn_transform {
    uint32_t num_vars = 0;
    std::array<uint8_t, 4> perm{};  ///< representative input i reads x[perm[i]]
    uint32_t input_negation = 0;    ///< bit i: complement representative input i
    bool output_negation = false;

    truth_table apply(const truth_table& representative) const;
};

struct npn_result {
    truth_table representative;
    npn_transform transform;
};

/// Smallest truth table in the NPN class of `f` plus the transform back.
npn_result npn_canonize(const truth_table& f);

} // namespace mcx
