#include "npn/npn.h"

#include "tt/words.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace mcx {

truth_table npn_transform::apply(const truth_table& representative) const
{
    truth_table f{num_vars};
    for (uint64_t x = 0; x < f.num_bits(); ++x) {
        uint64_t y = 0;
        for (uint32_t i = 0; i < num_vars; ++i) {
            const bool bit =
                (((x >> perm[i]) & 1) != 0) ^ (((input_negation >> i) & 1) != 0);
            y |= uint64_t{bit} << i;
        }
        if (representative.get_bit(y) ^ output_negation)
            f.set_bit(x, true);
    }
    return f;
}

npn_result npn_canonize(const truth_table& f)
{
    const auto n = f.num_vars();
    if (n > 4)
        throw std::invalid_argument{"npn_canonize: at most 4 variables"};

    const uint64_t mask = tt_mask(n);
    const uint64_t w = f.word();

    uint64_t best_word = 0;
    std::array<uint8_t, 4> best_perm{0, 1, 2, 3};
    uint32_t best_neg = 0;
    bool best_out = false;
    bool first = true;

    std::array<uint8_t, 4> p{0, 1, 2, 3};
    do {
        // g(y) = f(x) with x[p[i]] = y[i]: move f-variable p[i] to slot i by
        // a selection sort of word swaps (at most n - 1 of them).
        uint64_t g = w;
        std::array<uint8_t, 4> slot{0, 1, 2, 3}; // slot[i]: f-var at position i
        for (uint32_t i = 0; i < n; ++i) {
            uint32_t t = i;
            while (slot[t] != p[i])
                ++t;
            if (t != i) {
                g = tt_swap_word(g, i, t);
                std::swap(slot[i], slot[t]);
            }
        }

        // Input negations in Gray-code order: one variable flip per step.
        // h(y) = g(y ^ gray); the candidate representative for
        // (p, gray, out) is out ^ h, compared as a raw word (operator< on
        // equal-arity truth tables is exactly word comparison).
        uint64_t h = g;
        uint32_t gray = 0;
        for (uint32_t code = 0;; ++code) {
            if (first || h < best_word) {
                first = false;
                best_word = h;
                best_perm = p;
                best_neg = gray;
                best_out = false;
            }
            if (const uint64_t hc = ~h & mask; hc < best_word) {
                best_word = hc;
                best_perm = p;
                best_neg = gray;
                best_out = true;
            }
            if (code + 1 == (1u << n))
                break;
            const auto bit = static_cast<uint32_t>(std::countr_zero(code + 1));
            h = tt_flip_word(h, bit);
            gray ^= 1u << bit;
        }
    } while (std::next_permutation(p.begin(), p.begin() + n));

    npn_result best;
    best.representative = truth_table{n, best_word};
    best.transform.num_vars = n;
    best.transform.perm = best_perm;
    best.transform.input_negation = best_neg;
    best.transform.output_negation = best_out;
    return best;
}

npn_result npn_canonize_baseline(const truth_table& f)
{
    const auto n = f.num_vars();
    if (n > 4)
        throw std::invalid_argument{"npn_canonize: at most 4 variables"};

    std::array<uint8_t, 4> perm{0, 1, 2, 3};
    npn_result best;
    best.representative = f;
    best.transform.num_vars = n;
    best.transform.perm = perm;
    bool first = true;

    std::array<uint8_t, 4> p = perm;
    std::sort(p.begin(), p.begin() + n);
    do {
        for (uint32_t neg = 0; neg < (1u << n); ++neg) {
            for (const bool out : {false, true}) {
                npn_transform t;
                t.num_vars = n;
                t.perm = p;
                t.input_negation = neg;
                t.output_negation = out;
                // Candidate representative r with f = t.apply(r):
                // r(y) = out ^ f(x) where x[perm[i]] = y[i] ^ neg_i.
                truth_table r{n};
                for (uint64_t y = 0; y < f.num_bits(); ++y) {
                    uint64_t x = 0;
                    for (uint32_t i = 0; i < n; ++i) {
                        const bool bit = (((y >> i) & 1) != 0) ^
                                         (((neg >> i) & 1) != 0);
                        x |= uint64_t{bit} << p[i];
                    }
                    if (f.get_bit(x) ^ out)
                        r.set_bit(y, true);
                }
                if (first || r < best.representative) {
                    first = false;
                    best.representative = r;
                    best.transform = t;
                }
            }
        }
    } while (std::next_permutation(p.begin(), p.begin() + n));
    return best;
}

} // namespace mcx
