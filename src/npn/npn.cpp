#include "npn/npn.h"

#include <algorithm>
#include <stdexcept>

namespace mcx {

truth_table npn_transform::apply(const truth_table& representative) const
{
    truth_table f{num_vars};
    for (uint64_t x = 0; x < f.num_bits(); ++x) {
        uint64_t y = 0;
        for (uint32_t i = 0; i < num_vars; ++i) {
            const bool bit =
                (((x >> perm[i]) & 1) != 0) ^ (((input_negation >> i) & 1) != 0);
            y |= uint64_t{bit} << i;
        }
        if (representative.get_bit(y) ^ output_negation)
            f.set_bit(x, true);
    }
    return f;
}

npn_result npn_canonize(const truth_table& f)
{
    const auto n = f.num_vars();
    if (n > 4)
        throw std::invalid_argument{"npn_canonize: at most 4 variables"};

    std::array<uint8_t, 4> perm{0, 1, 2, 3};
    npn_result best;
    best.representative = f;
    best.transform.num_vars = n;
    best.transform.perm = perm;
    bool first = true;

    std::array<uint8_t, 4> p = perm;
    std::sort(p.begin(), p.begin() + n);
    do {
        for (uint32_t neg = 0; neg < (1u << n); ++neg) {
            for (const bool out : {false, true}) {
                npn_transform t;
                t.num_vars = n;
                t.perm = p;
                t.input_negation = neg;
                t.output_negation = out;
                // Candidate representative r with f = t.apply(r):
                // r(y) = out ^ f(x) where x[perm[i]] = y[i] ^ neg_i.
                truth_table r{n};
                for (uint64_t y = 0; y < f.num_bits(); ++y) {
                    uint64_t x = 0;
                    for (uint32_t i = 0; i < n; ++i) {
                        const bool bit = (((y >> i) & 1) != 0) ^
                                         (((neg >> i) & 1) != 0);
                        x |= uint64_t{bit} << p[i];
                    }
                    if (f.get_bit(x) ^ out)
                        r.set_bit(y, true);
                }
                if (first || r < best.representative) {
                    first = false;
                    best.representative = r;
                    best.transform = t;
                }
            }
        }
    } while (std::next_permutation(p.begin(), p.begin() + n));
    return best;
}

} // namespace mcx
