#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>

namespace mcx::obs::trace {

namespace {

/// One thread's ring buffer.  Writes are single-producer (the owning
/// thread); `head` is published with a release store so a quiescent
/// collector sees every record below it.  Overflow overwrites the oldest
/// slot — `head - capacity` records have then been dropped.
struct ring {
    explicit ring(uint32_t capacity)
        : slots(capacity), capacity_mask{capacity - 1}
    {
    }

    std::vector<trace_event> slots;
    uint32_t capacity_mask; ///< capacity is a power of two
    std::atomic<uint64_t> head{0};

    void push(const trace_event& ev)
    {
        const uint64_t h = head.load(std::memory_order_relaxed);
        slots[h & capacity_mask] = ev;
        head.store(h + 1, std::memory_order_release);
    }
};

/// Ring registry — deliberately leaked so rings written by pool workers
/// stay valid through thread teardown at process exit.
struct ring_registry {
    std::mutex mutex;
    std::vector<std::shared_ptr<ring>> rings;
    std::atomic<uint32_t> capacity{1u << 16};
};

ring_registry& registry()
{
    static ring_registry* r = new ring_registry;
    return *r;
}

uint32_t round_up_pow2(uint32_t v)
{
    uint32_t p = 1;
    while (p < v && p < (1u << 24))
        p <<= 1;
    return p;
}

thread_local ring* t_ring = nullptr;
thread_local uint32_t t_lane = 0;

ring* this_thread_ring()
{
    if (t_ring == nullptr) {
        auto& reg = registry();
        auto owned = std::make_shared<ring>(
            reg.capacity.load(std::memory_order_relaxed));
        std::lock_guard lock{reg.mutex};
        reg.rings.push_back(owned);
        t_ring = owned.get();
    }
    return t_ring;
}

} // namespace

namespace detail {

std::atomic<bool>& tracing_enabled_flag()
{
    static std::atomic<bool> enabled{false};
    return enabled;
}

uint64_t now_ns()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

void record(const char* name, uint64_t start_ns, uint64_t end_ns,
            event_kind kind, uint64_t arg, bool has_arg)
{
    trace_event ev;
    ev.name = name;
    ev.start_ns = start_ns;
    ev.end_ns = end_ns;
    ev.arg = arg;
    ev.lane = t_lane;
    ev.kind = kind;
    ev.has_arg = has_arg;
    this_thread_ring()->push(ev);
}

} // namespace detail

void enable(uint32_t ring_capacity)
{
    registry().capacity.store(round_up_pow2(ring_capacity),
                              std::memory_order_relaxed);
    detail::now_ns(); // pin the clock epoch before the first span
    detail::tracing_enabled_flag().store(true, std::memory_order_relaxed);
}

void disable()
{
    detail::tracing_enabled_flag().store(false, std::memory_order_relaxed);
}

void clear()
{
    auto& reg = registry();
    std::lock_guard lock{reg.mutex};
    for (auto& r : reg.rings)
        r->head.store(0, std::memory_order_release);
}

void set_lane(uint32_t lane)
{
    t_lane = lane;
}

std::vector<trace_event> collect()
{
    auto& reg = registry();
    std::lock_guard lock{reg.mutex};
    std::vector<trace_event> out;
    for (const auto& r : reg.rings) {
        const uint64_t head = r->head.load(std::memory_order_acquire);
        const uint64_t cap = r->capacity_mask + uint64_t{1};
        const uint64_t first = head > cap ? head - cap : 0;
        for (uint64_t i = first; i < head; ++i)
            out.push_back(r->slots[i & r->capacity_mask]);
    }
    return out;
}

uint64_t dropped()
{
    auto& reg = registry();
    std::lock_guard lock{reg.mutex};
    uint64_t total = 0;
    for (const auto& r : reg.rings) {
        const uint64_t head = r->head.load(std::memory_order_acquire);
        const uint64_t cap = r->capacity_mask + uint64_t{1};
        total += head > cap ? head - cap : 0;
    }
    return total;
}

namespace {

void write_escaped(std::ostream& os, const char* s)
{
    for (; *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) >= 0x20)
            os << c;
    }
}

void write_ts(std::ostream& os, uint64_t ns, uint64_t base_ns)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(ns - base_ns) / 1000.0);
    os << buf;
}

void write_event_tail(std::ostream& os, const trace_event& ev)
{
    os << ",\"pid\":1,\"tid\":" << ev.lane;
    if (ev.has_arg)
        os << ",\"args\":{\"value\":" << ev.arg << "}";
    os << "}";
}

} // namespace

void write_chrome_trace(std::ostream& os, std::vector<trace_event> events)
{
    // Earliest timestamp anchors the trace at ts = 0.
    uint64_t base_ns = ~uint64_t{0};
    std::set<uint32_t> lanes;
    for (const auto& ev : events) {
        base_ns = std::min(base_ns, ev.start_ns);
        lanes.insert(ev.lane);
    }
    if (events.empty())
        base_ns = 0;

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    const auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"args\":{\"name\":\"mcx\"}}";
    first = false;
    for (const uint32_t lane : lanes) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << lane << ",\"args\":{\"name\":\""
           << (lane == 0 ? "main/worker-0" : "worker-");
        if (lane != 0)
            os << lane;
        os << "\"}}";
    }

    // Instants first (order within the JSON is irrelevant to viewers).
    for (const auto& ev : events) {
        if (ev.kind != event_kind::instant)
            continue;
        sep();
        os << "{\"name\":\"";
        write_escaped(os, ev.name);
        os << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
        write_ts(os, ev.start_ns, base_ns);
        write_event_tail(os, ev);
    }

    // Spans: per lane, sorted (start asc, end desc) so an enclosing span
    // precedes its children, then emitted as balanced B/E pairs with a
    // stack.  RAII guarantees proper nesting per thread, so a span on the
    // stack whose end precedes the next span's start can be closed.
    std::vector<trace_event> spans;
    for (const auto& ev : events)
        if (ev.kind == event_kind::span)
            spans.push_back(ev);
    std::stable_sort(spans.begin(), spans.end(),
                     [](const trace_event& a, const trace_event& b) {
                         if (a.lane != b.lane)
                             return a.lane < b.lane;
                         if (a.start_ns != b.start_ns)
                             return a.start_ns < b.start_ns;
                         return a.end_ns > b.end_ns;
                     });

    std::vector<const trace_event*> stack;
    const auto close_top = [&] {
        sep();
        os << "{\"name\":\"";
        write_escaped(os, stack.back()->name);
        os << "\",\"ph\":\"E\",\"ts\":";
        write_ts(os, stack.back()->end_ns, base_ns);
        write_event_tail(os, *stack.back());
        stack.pop_back();
    };
    for (const auto& ev : spans) {
        while (!stack.empty() && (stack.back()->lane != ev.lane ||
                                  stack.back()->end_ns <= ev.start_ns))
            close_top();
        sep();
        os << "{\"name\":\"";
        write_escaped(os, ev.name);
        os << "\",\"ph\":\"B\",\"ts\":";
        write_ts(os, ev.start_ns, base_ns);
        write_event_tail(os, ev);
        stack.push_back(&ev);
    }
    while (!stack.empty())
        close_top();

    os << "]}\n";
}

} // namespace mcx::obs::trace
