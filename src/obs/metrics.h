// The metrics registry: process-wide named counters every subsystem
// reports through (docs/observability.md).
//
// A counter is registered once under a stable dotted name ("db.mc.miss",
// "sat.conflicts", "pool.steals", ...) and returns a `metric` handle — a
// pointer to an array of cache-line-padded relaxed-atomic cells.  `add`
// picks the calling thread's stripe (a thread-local index assigned on
// first use), so concurrent writers from different workers land on
// different cache lines and never contend; `snapshot` merges the stripes
// at flush time.  Counting is monotone and commutative, which is what
// makes the striped relaxed scheme exact: the merged total equals the
// number of add() calls regardless of interleaving.
//
// Counters observe, they never steer: no optimizer decision reads one, so
// output is byte-identical whether the registry is enabled or not (the
// determinism contract, asserted in tests/obs_test.cpp).  The registry is
// a deliberately leaked singleton so counters stay valid during thread
// teardown at process exit.
//
// `set_enabled(false)` turns every add() into its branch alone — the A/B
// switch behind the bench_micro_core `obs_overhead` stage, which gates
// the cost of counting on a warmed rewrite round.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcx::obs {

inline constexpr uint32_t metric_stripes = 16;

struct alignas(64) metric_cell {
    std::atomic<uint64_t> value{0};
};

namespace detail {

std::atomic<bool>& metrics_enabled_flag();

/// The calling thread's stripe index, assigned round-robin on first use.
uint32_t thread_stripe();

} // namespace detail

/// Whether add() records at all (default: true).  Purely an overhead
/// measurement hook — totals freeze while disabled.
inline bool metrics_enabled()
{
    return detail::metrics_enabled_flag().load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled);

/// Cheap copyable handle to one registered counter.  A default-constructed
/// handle is inert (add() is a no-op) so callers can defer registration.
class metric {
public:
    metric() = default;

    void add(uint64_t delta = 1) const
    {
        if (cells_ == nullptr || !metrics_enabled())
            return;
        cells_[detail::thread_stripe() % metric_stripes].value.fetch_add(
            delta, std::memory_order_relaxed);
    }

    /// Merged total across all stripes (racy-exact: the sum of every add
    /// that happened-before the call, plus possibly some concurrent ones).
    uint64_t value() const
    {
        if (cells_ == nullptr)
            return 0;
        uint64_t total = 0;
        for (uint32_t i = 0; i < metric_stripes; ++i)
            total += cells_[i].value.load(std::memory_order_relaxed);
        return total;
    }

    bool valid() const { return cells_ != nullptr; }

private:
    friend metric register_metric(std::string_view name);
    explicit metric(metric_cell* cells) : cells_{cells} {}
    metric_cell* cells_ = nullptr;
};

/// The counter named `name`, creating it on first registration.
/// Idempotent: every call with the same name returns a handle to the same
/// cells.  Thread-safe; names should follow the dotted convention in
/// docs/observability.md.
metric register_metric(std::string_view name);

struct metric_value {
    std::string name;
    uint64_t value;
};

/// Merged totals of every registered counter, sorted by name.
std::vector<metric_value> metrics_snapshot();

// ---------------------------------------------------------- process stats

/// Coarse whole-process resource usage for reports (peak RSS, CPU and wall
/// seconds).  Wall time is measured from the first call to any obs
/// function (process start, in practice).
struct process_stats {
    uint64_t peak_rss_bytes = 0;
    double cpu_seconds = 0.0;
    double wall_seconds = 0.0;
};

process_stats read_process_stats();

// -------------------------------------------------------- progress state

/// Best-effort "where is the optimizer right now" shared state, published
/// by the flow/round engines and sampled by the mcx --progress reporter.
/// The pass name must point at storage with static lifetime (pass names
/// are string literals).
void set_progress_pass(const char* name);
void set_progress_round(uint32_t round);
std::pair<const char*, uint32_t> progress_state();

} // namespace mcx::obs
