#include "obs/metrics.h"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace mcx::obs {

namespace {

/// Registry storage.  Deliberately leaked (never destroyed) so metric
/// handles and striped cells outlive every thread, including those still
/// unwinding during process exit.
struct registry {
    std::mutex mutex;
    // std::map keeps handles stable (node-based) and snapshot() sorted.
    std::map<std::string, std::unique_ptr<metric_cell[]>, std::less<>>
        counters;
};

registry& instance()
{
    static registry* r = new registry;
    return *r;
}

std::chrono::steady_clock::time_point process_epoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

// Touch the epoch as early as possible so wall_seconds approximates
// process lifetime rather than time-since-first-report.
const auto g_epoch_init = process_epoch();

std::atomic<const char*> g_progress_pass{nullptr};
std::atomic<uint32_t> g_progress_round{0};

} // namespace

namespace detail {

std::atomic<bool>& metrics_enabled_flag()
{
    static std::atomic<bool> enabled{true};
    return enabled;
}

uint32_t thread_stripe()
{
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t stripe =
        next.fetch_add(1, std::memory_order_relaxed);
    return stripe;
}

} // namespace detail

void set_metrics_enabled(bool enabled)
{
    detail::metrics_enabled_flag().store(enabled, std::memory_order_relaxed);
}

metric register_metric(std::string_view name)
{
    auto& reg = instance();
    std::lock_guard lock{reg.mutex};
    auto it = reg.counters.find(name);
    if (it == reg.counters.end())
        it = reg.counters
                 .emplace(std::string{name},
                          std::make_unique<metric_cell[]>(metric_stripes))
                 .first;
    return metric{it->second.get()};
}

std::vector<metric_value> metrics_snapshot()
{
    auto& reg = instance();
    std::lock_guard lock{reg.mutex};
    std::vector<metric_value> out;
    out.reserve(reg.counters.size());
    for (const auto& [name, cells] : reg.counters) {
        uint64_t total = 0;
        for (uint32_t i = 0; i < metric_stripes; ++i)
            total += cells[i].value.load(std::memory_order_relaxed);
        out.push_back({name, total});
    }
    return out;
}

process_stats read_process_stats()
{
    process_stats ps;
    ps.wall_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - process_epoch())
                          .count();
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
        // ru_maxrss is KiB on Linux, bytes on macOS.
#if defined(__APPLE__)
        ps.peak_rss_bytes = static_cast<uint64_t>(ru.ru_maxrss);
#else
        ps.peak_rss_bytes = static_cast<uint64_t>(ru.ru_maxrss) * 1024;
#endif
        const auto tv_seconds = [](const timeval& tv) {
            return static_cast<double>(tv.tv_sec) +
                   static_cast<double>(tv.tv_usec) * 1e-6;
        };
        ps.cpu_seconds = tv_seconds(ru.ru_utime) + tv_seconds(ru.ru_stime);
    }
#endif
    return ps;
}

void set_progress_pass(const char* name)
{
    g_progress_pass.store(name, std::memory_order_relaxed);
}

void set_progress_round(uint32_t round)
{
    g_progress_round.store(round, std::memory_order_relaxed);
}

std::pair<const char*, uint32_t> progress_state()
{
    return {g_progress_pass.load(std::memory_order_relaxed),
            g_progress_round.load(std::memory_order_relaxed)};
}

} // namespace mcx::obs
