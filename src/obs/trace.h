// Scoped tracing: RAII spans recorded into per-thread lock-free ring
// buffers, exported as Chrome trace-event JSON (Perfetto-loadable) via
// `mcx --trace out.json`.
//
// Disabled by default; the only cost on the hot path is then one relaxed
// atomic load per span constructor.  When enabled, each thread appends
// fixed-size records to its own ring buffer (drop-oldest on overflow, with
// a drop counter), so recording never blocks and never synchronizes
// between workers.  Spans carry the recording thread's *lane* — the worker
// index set by the thread pool, lane 0 for the main thread — so the
// exported trace shows one track per worker.
//
// Tracing observes, it never steers: no optimizer decision depends on
// whether tracing is on, so output is byte-identical either way (the
// determinism contract, asserted in tests/obs_test.cpp).
//
// Span names must be string literals (the record stores the pointer).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace mcx::obs::trace {

enum class event_kind : uint8_t { span, instant };

/// One completed record drained from a ring buffer.
struct trace_event {
    const char* name = nullptr;
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;  ///< == start_ns for instants
    uint64_t arg = 0;     ///< optional numeric payload
    uint32_t lane = 0;    ///< worker track the event belongs to
    event_kind kind = event_kind::span;
    bool has_arg = false;
};

namespace detail {

std::atomic<bool>& tracing_enabled_flag();

/// Record a completed span / an instant into the calling thread's ring.
void record(const char* name, uint64_t start_ns, uint64_t end_ns,
            event_kind kind, uint64_t arg, bool has_arg);

uint64_t now_ns();

} // namespace detail

inline bool enabled()
{
    return detail::tracing_enabled_flag().load(std::memory_order_relaxed);
}

/// Turn recording on.  `ring_capacity` is per-thread, in events; rings are
/// created lazily on each thread's first record.
void enable(uint32_t ring_capacity = 1u << 16);
void disable();

/// Drop all buffered events and drop-counters (rings stay registered).
void clear();

/// The calling thread's lane for subsequent events.  The thread pool calls
/// this with the worker index at the top of each worker loop; the main
/// thread defaults to lane 0 (which is also worker 0 — in this pool the
/// caller participates as the first worker).
void set_lane(uint32_t lane);

/// Drain every thread's ring into one list (unordered).  Call only at
/// quiescence — after pool work has joined — so rings are not concurrently
/// written.  Does not clear the rings.
std::vector<trace_event> collect();

/// Total events discarded ring-wide since the last clear() (drop-oldest
/// overflow policy).
uint64_t dropped();

/// RAII span: records [construction, destruction) on the current thread.
class trace_span {
public:
    explicit trace_span(const char* name)
    {
        if (enabled()) {
            name_ = name;
            start_ns_ = detail::now_ns();
        }
    }

    trace_span(const trace_span&) = delete;
    trace_span& operator=(const trace_span&) = delete;

    /// Attach a numeric payload, emitted as `args:{"value":N}`.
    void set_arg(uint64_t arg)
    {
        arg_ = arg;
        has_arg_ = true;
    }

    ~trace_span()
    {
        if (name_ != nullptr && enabled())
            detail::record(name_, start_ns_, detail::now_ns(),
                           event_kind::span, arg_, has_arg_);
    }

private:
    const char* name_ = nullptr;
    uint64_t start_ns_ = 0;
    uint64_t arg_ = 0;
    bool has_arg_ = false;
};

/// A zero-duration marker (budget outcomes, fault firings, ...).
inline void instant(const char* name, uint64_t arg = 0, bool has_arg = false)
{
    if (enabled()) {
        const auto t = detail::now_ns();
        detail::record(name, t, t, event_kind::instant, arg, has_arg);
    }
}

/// Write `events` as Chrome trace-event JSON ({"traceEvents":[...]}):
/// balanced B/E pairs per lane, "i" instants, and "M" metadata naming the
/// process and one thread per lane.  Timestamps are microseconds relative
/// to the earliest event.  Loadable in Perfetto / chrome://tracing.
void write_chrome_trace(std::ostream& os, std::vector<trace_event> events);

} // namespace mcx::obs::trace
