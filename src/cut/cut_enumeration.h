// k-feasible cut enumeration with per-node cut limits (paper §2.1, §4.1).
//
// A cut of node n is a set of leaves such that every path from n to a PI
// crosses a leaf; the cut's function is the local Boolean function of n in
// terms of the leaves.  The paper restricts enumeration to 6-cuts (so cut
// functions fit a 64-bit truth table) and keeps at most 12 cuts per node,
// "a good trade-off between runtime and quality".
//
// The merge loop is the hottest code in the rewriting pipeline, so it is
// word-parallel throughout: leaf positions are computed once per pair while
// the sorted leaf sets are merged, child functions are re-expressed over the
// merged leaves with masked-shift don't-care insertions (src/tt/words.h)
// instead of a loop over 2^k minterms, exact duplicates are rejected through
// a hash of (leaves, function) before any domination test runs, and the
// remaining domination tests are prefiltered by the leaf signature.  The
// original scalar path is retained behind `word_parallel = false` as the
// reference for equivalence tests and the bench/micro_core speedup
// measurement.
//
// The per-node merge is factored into `enumerate_node_cuts` — a pure
// function of (node, fanins' finished cut sets, params) — so the same
// kernel serves the classic bottom-up sweep here, and the incremental /
// level-parallel maintainer in src/cut/cut_incremental.h, which
// re-enumerates only dirty nodes between rewriting rounds.
//
// Storage is arena-backed (cut_sets, src/cut/cut_arena.h): one flat pool of
// cuts plus an (offset, count) span per node, instead of a vector of
// vectors.  The in-place overload reuses the arena's pool across calls, so
// a rewriting round allocates no per-node cut storage at all after the
// first round.
#pragma once

#include "cut/cut.h"
#include "cut/cut_arena.h"
#include "xag/xag.h"

#include <cstdint>
#include <vector>

namespace mcx {

struct cut_enumeration_params {
    uint32_t cut_size = max_cut_size; ///< k (2..6)
    uint32_t cut_limit = 12;          ///< non-trivial cuts kept per node
    /// Use the word-parallel merge path (default).  The scalar seed path is
    /// kept for A/B measurement and differential tests; both produce
    /// identical cut sets.
    bool word_parallel = true;
    /// Maintain cut sets incrementally across rewriting rounds (the cut
    /// maintainer re-enumerates only the dirty region; see
    /// src/cut/cut_incremental.h).  `false` forces a full re-enumeration
    /// every round — the differential oracle; both modes produce identical
    /// cut sets and identical optimized networks.  enumerate_cuts itself
    /// always rebuilds fully; this knob is consumed by the maintainer.
    bool incremental = true;
};

struct cut_enumeration_stats {
    uint64_t total_cuts = 0;   ///< cuts stored across all (live gate) nodes
    uint64_t merged_pairs = 0; ///< candidate pairs considered
    /// Exact duplicates rejected before any domination test: by hash on the
    /// word-parallel path, by direct comparison on the scalar path.  Both
    /// paths count the same events, so the counters compare 1:1.
    uint64_t duplicate_cuts = 0;
    uint64_t dominated_cuts = 0; ///< merged cuts dropped by a dominating cut
    uint64_t evicted_cuts = 0;   ///< existing cuts evicted by a new dominator
    /// Maintainer sweeps only: gate nodes whose cut sets were recomputed
    /// this call vs. kept untouched from the previous generation.  The
    /// classic full enumeration recomputes everything (clean_nodes = 0).
    uint64_t reenumerated_nodes = 0;
    uint64_t clean_nodes = 0;
    /// True when the refresh ran as an incremental sweep against a valid
    /// journal (even if the dirty region happened to cover everything);
    /// false for full rebuilds and the classic enumeration.  The direct
    /// observable that incremental maintenance actually engaged.
    bool incremental = false;
};

/// The one-leaf identity cut {n} every node's set ends with (and the whole
/// set of a PI).
cut trivial_cut(uint32_t n);

/// Hash of (leaf count, leaves, function) — the merge loop's O(1)
/// duplicate prefilter (splitmix64-style mixing).
uint64_t cut_key(const cut& c);

/// Exact-duplicate test: identical leaf sets AND identical function.  The
/// merge loop calls this only after a cut_key match, and the function
/// compare is what makes a 64-bit key collision harmless — equality must
/// never be decided by the hash alone.
bool cut_exact_duplicate(const cut& a, const cut& b);

/// Scratch state for the per-node merge kernel: candidate/key buffers
/// (capacity reused across nodes) plus this worker's share of the stats.
/// One instance per worker in the parallel maintainer sweep; the counters
/// of a node are schedule-independent, so summing the per-worker stats
/// reproduces the sequential counters exactly.
struct cut_enumeration_workspace {
    std::vector<cut> candidates;
    std::vector<uint64_t> keys;
    cut_enumeration_stats stats;
};

/// Compute gate node n's cut set from its fanins' *finished* sets in
/// `sets`.  The result (sorted small-cuts-first, capped at cut_limit, plus
/// the trailing trivial cut) is left in `ws.candidates`; counters accumulate
/// into `ws.stats`.  Pure in (network structure, fanin sets, params) — the
/// foundation of both the determinism contract and incremental reuse.
void enumerate_node_cuts(const xag& network, const cut_sets& sets, uint32_t n,
                         const cut_enumeration_params& params,
                         cut_enumeration_workspace& ws);

/// Cuts for every live node, indexed by node id; gate nodes end with their
/// trivial cut {n}.  Nodes that are dead or unreachable have empty sets.
/// `*stats` (when given) is reset at entry — counters never carry over
/// between calls.
cut_sets enumerate_cuts(const xag& network,
                        const cut_enumeration_params& params = {},
                        cut_enumeration_stats* stats = nullptr);

/// In-place variant: fills `out`, reusing its pool capacity (the
/// pass_context hot path).
void enumerate_cuts(const xag& network, cut_sets& out,
                    const cut_enumeration_params& params = {},
                    cut_enumeration_stats* stats = nullptr);

} // namespace mcx
