// k-feasible cut enumeration with per-node cut limits (paper §2.1, §4.1).
//
// A cut of node n is a set of leaves such that every path from n to a PI
// crosses a leaf; the cut's function is the local Boolean function of n in
// terms of the leaves.  The paper restricts enumeration to 6-cuts (so cut
// functions fit a 64-bit truth table) and keeps at most 12 cuts per node,
// "a good trade-off between runtime and quality".
//
// The merge loop is the hottest code in the rewriting pipeline, so it is
// word-parallel throughout: leaf positions are computed once per pair while
// the sorted leaf sets are merged, child functions are re-expressed over the
// merged leaves with masked-shift don't-care insertions (src/tt/words.h)
// instead of a loop over 2^k minterms, exact duplicates are rejected through
// a hash of (leaves, function) before any domination test runs, and the
// remaining domination tests are prefiltered by the leaf signature.  The
// original scalar path is retained behind `word_parallel = false` as the
// reference for equivalence tests and the bench/micro_core speedup
// measurement.
#pragma once

#include "tt/truth_table.h"
#include "xag/xag.h"

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace mcx {

/// Maximum supported cut size: cut functions are single 64-bit words.
inline constexpr uint32_t max_cut_size = 6;

/// One cut: sorted leaves plus the cut function of the (uncomplemented) root.
struct cut {
    std::array<uint32_t, max_cut_size> leaves{};
    uint8_t num_leaves = 0;
    uint64_t function = 0;  ///< truth table over num_leaves variables
    uint64_t signature = 0; ///< Bloom filter of leaves for fast subset tests

    std::span<const uint32_t> leaf_span() const
    {
        return {leaves.data(), num_leaves};
    }

    truth_table function_tt() const
    {
        return truth_table{num_leaves, function};
    }

    /// True if every leaf of `other` is also a leaf of this cut.  The
    /// signature comparison is a Bloom-style prefilter (node ids alias at
    /// `id & 63`, so it can pass spuriously but never fail spuriously); the
    /// exact answer comes from a two-pointer walk of the sorted leaf arrays.
    bool dominates(const cut& other) const;
};

struct cut_enumeration_params {
    uint32_t cut_size = max_cut_size; ///< k (2..6)
    uint32_t cut_limit = 12;          ///< non-trivial cuts kept per node
    /// Use the word-parallel merge path (default).  The scalar seed path is
    /// kept for A/B measurement and differential tests; both produce
    /// identical cut sets.
    bool word_parallel = true;
};

struct cut_enumeration_stats {
    uint64_t total_cuts = 0;   ///< cuts stored across all nodes
    uint64_t merged_pairs = 0; ///< candidate pairs considered
    /// Exact duplicates rejected by hash.  Word-parallel path only: the
    /// scalar seed path has no duplicate filter and counts duplicates under
    /// `dominated_cuts` (a duplicate dominates its twin), so the two paths
    /// produce identical cut sets but not identical counter splits.
    uint64_t duplicate_cuts = 0;
    uint64_t dominated_cuts = 0; ///< merged cuts dropped by a dominating cut
    uint64_t evicted_cuts = 0;   ///< existing cuts evicted by a new dominator
                                 ///< (word-parallel path only)
};

/// Cuts for every live node, indexed by node id; gate nodes end with their
/// trivial cut {n}.  Nodes that are dead or unreachable have empty sets.
std::vector<std::vector<cut>> enumerate_cuts(
    const xag& network, const cut_enumeration_params& params = {},
    cut_enumeration_stats* stats = nullptr);

} // namespace mcx
