// k-feasible cut enumeration with per-node cut limits (paper §2.1, §4.1).
//
// A cut of node n is a set of leaves such that every path from n to a PI
// crosses a leaf; the cut's function is the local Boolean function of n in
// terms of the leaves.  The paper restricts enumeration to 6-cuts (so cut
// functions fit a 64-bit truth table) and keeps at most 12 cuts per node,
// "a good trade-off between runtime and quality".
//
// The merge loop is the hottest code in the rewriting pipeline, so it is
// word-parallel throughout: leaf positions are computed once per pair while
// the sorted leaf sets are merged, child functions are re-expressed over the
// merged leaves with masked-shift don't-care insertions (src/tt/words.h)
// instead of a loop over 2^k minterms, exact duplicates are rejected through
// a hash of (leaves, function) before any domination test runs, and the
// remaining domination tests are prefiltered by the leaf signature.  The
// original scalar path is retained behind `word_parallel = false` as the
// reference for equivalence tests and the bench/micro_core speedup
// measurement.
//
// Storage is arena-backed (cut_sets, src/cut/cut_arena.h): one flat pool of
// cuts plus an (offset, count) span per node, instead of a vector of
// vectors.  The in-place overload reuses the arena's pool across calls, so
// a rewriting round allocates no per-node cut storage at all after the
// first round.
#pragma once

#include "cut/cut.h"
#include "cut/cut_arena.h"
#include "xag/xag.h"

#include <cstdint>
#include <vector>

namespace mcx {

struct cut_enumeration_params {
    uint32_t cut_size = max_cut_size; ///< k (2..6)
    uint32_t cut_limit = 12;          ///< non-trivial cuts kept per node
    /// Use the word-parallel merge path (default).  The scalar seed path is
    /// kept for A/B measurement and differential tests; both produce
    /// identical cut sets.
    bool word_parallel = true;
};

struct cut_enumeration_stats {
    uint64_t total_cuts = 0;   ///< cuts stored across all nodes
    uint64_t merged_pairs = 0; ///< candidate pairs considered
    /// Exact duplicates rejected by hash.  Word-parallel path only: the
    /// scalar seed path has no duplicate filter and counts duplicates under
    /// `dominated_cuts` (a duplicate dominates its twin), so the two paths
    /// produce identical cut sets but not identical counter splits.
    uint64_t duplicate_cuts = 0;
    uint64_t dominated_cuts = 0; ///< merged cuts dropped by a dominating cut
    uint64_t evicted_cuts = 0;   ///< existing cuts evicted by a new dominator
                                 ///< (word-parallel path only)
};

/// Cuts for every live node, indexed by node id; gate nodes end with their
/// trivial cut {n}.  Nodes that are dead or unreachable have empty sets.
/// `*stats` (when given) is reset at entry — counters never carry over
/// between calls.
cut_sets enumerate_cuts(const xag& network,
                        const cut_enumeration_params& params = {},
                        cut_enumeration_stats* stats = nullptr);

/// In-place variant: fills `out`, reusing its pool capacity (the
/// pass_context hot path).
void enumerate_cuts(const xag& network, cut_sets& out,
                    const cut_enumeration_params& params = {},
                    cut_enumeration_stats* stats = nullptr);

} // namespace mcx
