#include "cut/cut_incremental.h"

#include "par/level_sweep.h"

#include <algorithm>
#include <stdexcept>

namespace mcx {

namespace {

/// Ordered span equality through the one cut-identity predicate
/// (signatures are derived from the leaves, so they need no own compare).
bool same_cut_span(std::span<const cut> a, std::span<const cut> b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (!cut_exact_duplicate(a[i], b[i]))
            return false;
    return true;
}

} // namespace

void cut_maintainer::invalidate()
{
    net_ = nullptr;
    sets_ = nullptr;
    armed_version_ = 0;
    last_incremental_ = false;
    eval_dirty_.clear();
}

bool cut_maintainer::can_update(const xag& net, const cut_sets& sets,
                                const cut_enumeration_params& params) const
{
    // The armed journal is the authority: it must be the one *we* armed
    // (same base version — globally unique, so a different network reusing
    // the address cannot match) and nothing may have disarmed or re-armed
    // it since; then it provably contains every structural change between
    // the refreshes, no matter which pass made it.
    // The arena-generation check catches foreign writers: anyone who
    // reset() or begin_update()'d the arena since our refresh (e.g. a
    // direct enumerate_cuts into ctx.cuts() for a different network)
    // bumped its generation past the one we recorded.
    return net_ == &net && sets_ == &sets && net.changes().armed &&
           !net.changes().overflowed &&
           net.changes().base_version == armed_version_ &&
           sets.generation() == arena_generation_ &&
           params.cut_size == params_.cut_size &&
           params.cut_limit == params_.cut_limit &&
           params.word_parallel == params_.word_parallel &&
           sets.size() <= net.size();
}

bool cut_maintainer::refresh(xag& net, cut_sets& sets,
                             const cut_enumeration_params& params,
                             cut_enumeration_stats* stats, thread_pool* pool,
                             const cancellation_token& token)
{
    if (params.cut_size < 2 || params.cut_size > max_cut_size)
        throw std::invalid_argument{
            "cut_maintainer: cut_size must be 2..6"};
    if (params.cut_limit < 1)
        throw std::invalid_argument{
            "cut_maintainer: cut_limit must be >= 1"};

    if (!params.incremental) {
        // Oracle mode: the untouched sequential full enumeration, no
        // journal overhead on the network.
        net.disarm_change_log();
        invalidate();
        enumerate_cuts(net, sets, params, stats);
        ++refresh_serial_;
        return false;
    }

    const bool incremental = can_update(net, sets, params);
    try {
        sweep(net, sets, params, stats, pool, /*full=*/!incremental, token);
    } catch (...) {
        // The arena is half-updated; make sure neither this maintainer nor
        // a stale journal can certify it as finished.
        invalidate();
        net.disarm_change_log();
        throw;
    }

    net_ = &net;
    sets_ = &sets;
    arena_generation_ = sets.generation();
    params_ = params;
    net.arm_change_log();
    armed_version_ = net.structural_version();
    armed_size_ = static_cast<uint32_t>(net.size());
    last_incremental_ = incremental;
    ++refresh_serial_;
    return incremental;
}

void cut_maintainer::sweep(const xag& net, cut_sets& sets,
                           const cut_enumeration_params& params,
                           cut_enumeration_stats* stats, thread_pool* pool,
                           bool full, const cancellation_token& token)
{
    const auto order = net.topological_order();
    const size_t num_nodes = net.size();

    // Journal membership (incremental sweeps only; a full rebuild dirties
    // everything).  Node ids in the journal always index nodes_ — the node
    // array never shrinks — and duplicates collapse into the bitmap.
    changed_.assign(num_nodes, 0);
    if (!full)
        for (const auto id : net.changes().nodes)
            changed_[id] = 1;

    if (full)
        sets.reset(num_nodes);
    else
        sets.begin_update(num_nodes);

    // ---- pass 1: levels + PI trivial cuts + live gates bucketed by level.
    // A gate's level is one past its deepest gate fanin, so by the time a
    // level runs, every fanin cut set — untouched from the previous
    // generation or recomputed at a lower level — is finished.
    reached_.assign(num_nodes, 0);
    set_changed_.assign(num_nodes, 0);
    level_.assign(num_nodes, 0);
    items_.clear();
    uint32_t num_levels = 0;
    for (const auto n : order) {
        reached_[n] = 1;
        if (net.is_pi(n)) {
            if (sets[n].empty()) {
                const auto t = trivial_cut(n);
                sets.update(n, {&t, 1});
                set_changed_[n] = 1; // fanouts must pick the new cut up
            }
            continue;
        }
        if (!net.is_gate(n))
            continue;
        const auto a = net.fanin0(n).node();
        const auto b = net.fanin1(n).node();
        level_[n] = 1 + std::max(level_[a], level_[b]);
        num_levels = std::max(num_levels, level_[n]);
        items_.push_back(n);
    }

    // Counting sort of the live gates by level (stable: topo order within
    // a level — not required for correctness, kept for reproducible arena
    // layout).
    level_offsets_.assign(num_levels + 1, 0);
    for (const auto n : items_)
        ++level_offsets_[level_[n]]; // level L counted at index L, read at L-1
    uint32_t running = 0;
    for (uint32_t l = 1; l <= num_levels; ++l) {
        const auto count = level_offsets_[l];
        level_offsets_[l - 1] = running;
        running += count;
    }
    level_offsets_[num_levels] = running;
    level_cursor_.assign(level_offsets_.begin(), level_offsets_.end());
    ordered_.resize(items_.size());
    for (const auto n : items_)
        ordered_[level_cursor_[level_[n] - 1]++] = n;
    items_.swap(ordered_); // buffers ping-pong; no steady-state allocation

    // ---- pass 2: level-synchronized change propagation.  Per level the
    // plan step picks the gates to recompute — structure changed, a fanin
    // set changed, or no stored span (the node was unreachable at the last
    // refresh: live cut sets are never empty, so an empty span can only
    // mean "not enumerated") — the parallel step runs the kernels against
    // the frozen arena, and the commit step publishes only results that
    // actually differ, so propagation dies out where cut sets stabilize.
    const uint32_t workers = pool != nullptr ? pool->num_workers() : 1;
    while (workspaces_.size() < workers)
        workspaces_.emplace_back();
    for (auto& ws : workspaces_)
        ws.stats = {};

    uint64_t clean_gates = 0;
    level_synchronized_sweep(
        pool, num_levels,
        [&](size_t level) -> size_t {
            // The plan step runs on the caller thread between levels — the
            // one safe point to abandon the sweep (no kernels in flight).
            throw_if_stopped(token);
            recompute_.clear();
            for (size_t idx = level_offsets_[level];
                 idx < level_offsets_[level + 1]; ++idx) {
                const auto n = items_[idx];
                const auto a = net.fanin0(n).node();
                const auto b = net.fanin1(n).node();
                if (full || changed_[n] != 0 || set_changed_[a] != 0 ||
                    set_changed_[b] != 0 || sets[n].empty())
                    recompute_.push_back(n);
                else
                    ++clean_gates;
            }
            if (results_.size() < recompute_.size())
                results_.resize(recompute_.size());
            return recompute_.size();
        },
        [&](size_t i, uint32_t worker) {
            auto& ws = workspaces_[worker];
            enumerate_node_cuts(net, sets, recompute_[i], params, ws);
            results_[i] = ws.candidates; // capacity reused across rounds
        },
        [&](size_t, size_t count) {
            for (size_t i = 0; i < count; ++i) {
                const auto n = recompute_[i];
                if (full || !same_cut_span(sets[n], results_[i])) {
                    sets.update(n, results_[i]);
                    set_changed_[n] = 1;
                }
                // else: identical result — keep the span *and* its
                // generation tag, and stop propagating through n.
            }
        });

    // ---- evaluate dirty set (header contract): seeds from the consumed
    // journal plus every node whose cut span was refreshed, closed over
    // transitive fanout in level order.  Computed here because the sweep
    // already owns the level ordering and the set_changed_ map; the
    // rewrite engines read it through evaluate_dirty().
    eval_dirty_.assign(num_nodes, full ? uint8_t{1} : uint8_t{0});
    if (!full) {
        for (const auto id : net.changes().nodes) {
            if (!net.is_dead(id)) {
                eval_dirty_[id] = 1;
                if (net.is_gate(id)) {
                    eval_dirty_[net.fanin0(id).node()] = 1;
                    eval_dirty_[net.fanin1(id).node()] = 1;
                }
            } else if (id < armed_size_ && net.is_gate(id)) {
                // A pre-existing gate died: its fanins lost references
                // (fanin fields survive take_out, so they are readable).
                eval_dirty_[net.fanin0(id).node()] = 1;
                eval_dirty_[net.fanin1(id).node()] = 1;
            }
            // else: created and destroyed inside the window (a rejected
            // candidate cone) — net-zero on every neighbour, no seed.
        }
        for (uint32_t n = 0; n < num_nodes; ++n)
            if (set_changed_[n])
                eval_dirty_[n] = 1;
        // items_ is level-ordered, so both fanins are final when n runs.
        for (const auto n : items_)
            if (!eval_dirty_[n] && (eval_dirty_[net.fanin0(n).node()] ||
                                    eval_dirty_[net.fanin1(n).node()]))
                eval_dirty_[n] = 1;
    }

    // ---- pass 3: dead and unreachable nodes present empty sets, exactly
    // as a full rebuild would.
    for (uint32_t n = 0; n < num_nodes; ++n)
        if (!reached_[n])
            sets.clear_node(n);

    // Replaced spans accumulate as pool garbage; compact once it dominates.
    if (!full && sets.should_compact())
        sets.compact();

    if (stats) {
        *stats = {};
        for (const auto& ws : workspaces_) {
            stats->merged_pairs += ws.stats.merged_pairs;
            stats->duplicate_cuts += ws.stats.duplicate_cuts;
            stats->dominated_cuts += ws.stats.dominated_cuts;
            stats->evicted_cuts += ws.stats.evicted_cuts;
            stats->reenumerated_nodes += ws.stats.reenumerated_nodes;
        }
        stats->clean_nodes = clean_gates;
        stats->incremental = !full;
        // Whole-structure count (clean nodes included), so incremental and
        // full refreshes report comparable totals.  PIs hold one trivial
        // cut each and are excluded, as in the classic enumeration.
        stats->total_cuts = sets.total_cuts() - net.num_pis();
    }
}

} // namespace mcx
