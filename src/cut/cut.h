// The cut record shared by enumeration, storage, and the rewrite engine.
//
// A cut of node n is a set of leaves such that every path from n to a PI
// crosses a leaf; the cut's function is the local Boolean function of n in
// terms of the leaves.  Cut size is capped at 6 so every cut function fits
// one 64-bit word.
#pragma once

#include "tt/truth_table.h"

#include <array>
#include <cstdint>
#include <span>

namespace mcx {

/// Maximum supported cut size: cut functions are single 64-bit words.
inline constexpr uint32_t max_cut_size = 6;

/// One cut: sorted leaves plus the cut function of the (uncomplemented) root.
struct cut {
    std::array<uint32_t, max_cut_size> leaves{};
    uint8_t num_leaves = 0;
    uint64_t function = 0;  ///< truth table over num_leaves variables
    uint64_t signature = 0; ///< Bloom filter of leaves for fast subset tests

    std::span<const uint32_t> leaf_span() const
    {
        return {leaves.data(), num_leaves};
    }

    truth_table function_tt() const
    {
        return truth_table{num_leaves, function};
    }

    /// True if every leaf of `other` is also a leaf of this cut.  The
    /// signature comparison is a Bloom-style prefilter (node ids alias at
    /// `id & 63`, so it can pass spuriously but never fail spuriously); the
    /// exact answer comes from a two-pointer walk of the sorted leaf arrays.
    bool dominates(const cut& other) const;
};

} // namespace mcx
