// Incremental cut maintenance across rewriting rounds.
//
// A rewriting round used to re-enumerate every node's priority cuts from
// scratch, even when the previous round replaced a handful of MFFCs.  The
// per-node enumeration kernel (`enumerate_node_cuts`) is a pure function
// of the node's fanins and their finished cut sets, so a cut set only
// changes when the node's own structure changed — a fanin rewired, the
// node newly created — or when a fanin's cut set changed.  The maintainer
// exploits exactly that:
//
//  * after each refresh it arms the network's structural-change journal
//    (xag::arm_change_log), which records every node whose local structure
//    changes — gates created by candidate splicing, parents rewired by
//    substitute, nodes dying with their MFFCs;
//  * the next refresh sweeps the network level by level (level = one past
//    the deepest gate fanin) and recomputes a gate iff its structure
//    changed (journal), a fanin's cut set was just recomputed *to a
//    different value*, or its arena span is empty (it was unreachable at
//    the previous refresh).  A recomputed set that compares equal to the
//    stored span is not committed, so change propagation terminates as
//    soon as cut sets stabilize above the replaced region — a handful of
//    levels, since priority cuts only reach a bounded distance down.
//    Every untouched node keeps its arena span, proven by the span's
//    generation tag (cut_sets::node_generation);
//  * within a level the recomputed gates' fanin sets are all finished, so
//    the per-worker kernels (own candidate buffers, own stat counters)
//    run embarrassingly parallel on the PR 4 thread pool
//    (src/par/level_sweep.h); results are compared and committed to the
//    arena sequentially between levels.
//
// The refresh is byte-for-byte equivalent to a full rebuild — same cut
// sets per node, for any thread count, for either engine — because the
// kernel is pure, the recompute predicate is conservative, and equality
// pruning only skips provably-identical work (see docs/hot-path.md,
// "Incremental cut maintenance", for the induction).
// `cut_enumeration_params::incremental = false` keeps the classic full
// re-enumeration on every refresh: the differential oracle for tests and
// the A/B baseline for the bench.
#pragma once

#include "core/budget.h"
#include "cut/cut_enumeration.h"
#include "par/thread_pool.h"
#include "xag/xag.h"

#include <cstdint>
#include <span>
#include <vector>

namespace mcx {

class cut_maintainer {
public:
    /// Bring `sets` up to date for `net`: an incremental dirty-region
    /// sweep when the journal armed by the previous refresh still covers
    /// everything that happened to this network (and the params match), a
    /// full rebuild otherwise.  With `params.incremental == false` this
    /// delegates to the classic sequential enumerate_cuts (the oracle) and
    /// disarms tracking.  `pool` (optional) parallelizes the sweep
    /// level-by-level; results are identical with or without it.  Returns
    /// true when the refresh was incremental.
    ///
    /// A stopped `token` aborts the sweep between levels with
    /// `cancelled_error`; the maintainer invalidates itself first, so the
    /// half-updated arena can never be mistaken for a finished refresh —
    /// the next refresh is a full rebuild.
    bool refresh(xag& net, cut_sets& sets,
                 const cut_enumeration_params& params,
                 cut_enumeration_stats* stats = nullptr,
                 thread_pool* pool = nullptr,
                 const cancellation_token& token = {});

    /// Forget the tracked network: the next refresh is a full rebuild.
    void invalidate();

    // ---- evaluate dirty set (consumed by the rewrite engines) ----------
    //
    // A cached evaluation of node n stays valid iff (1) n's cut set is
    // byte-identical to the previous refresh and (2) nothing in n's cone
    // changed structure or reference count.  Ref counts change only at
    // journaled nodes and at fanins of journaled nodes, and any such node
    // in n's cone puts n in its transitive fanout — so the refresh derives
    //
    //   dirty(n) = seed(n) | dirty(fanin0) | dirty(fanin1)
    //
    // in one linear pass over the level-ordered live gates, with seeds =
    // cut-refreshed nodes plus the journal closure: every live journaled
    // node and its current fanins, plus the stored fanins of journaled
    // nodes that died (their refs dropped).  Journaled nodes that were
    // BOTH created and destroyed inside the window — candidate cones
    // spliced and rejected by a commit phase — are net-zero on every
    // neighbour and seed nothing; skipping them is what lets a quiescent
    // round converge to an empty dirty set.

    /// Per-node evaluate-dirty bitmap from the most recent refresh.
    /// Meaningful only when `last_refresh_incremental()`; a full rebuild
    /// dirties everything and callers must not consult the map.
    std::span<const uint8_t> evaluate_dirty() const { return eval_dirty_; }

    /// True when the most recent refresh reused the journal (incremental).
    bool last_refresh_incremental() const { return last_incremental_; }

    /// Monotonic count of completed refreshes.  An evaluate cache
    /// populated at serial S is coherent with the refresh at serial S+1
    /// iff that refresh was incremental — the journal then provably
    /// covers everything that happened in between.
    uint64_t refresh_serial() const { return refresh_serial_; }

private:
    bool can_update(const xag& net, const cut_sets& sets,
                    const cut_enumeration_params& params) const;
    void sweep(const xag& net, cut_sets& sets,
               const cut_enumeration_params& params,
               cut_enumeration_stats* stats, thread_pool* pool, bool full,
               const cancellation_token& token);

    // Identity of the tracked (network, arena) pair — compared, never
    // dereferenced, so staleness is harmless (the armed-journal check
    // rejects a recycled address; versions are globally unique).
    const xag* net_ = nullptr;
    const cut_sets* sets_ = nullptr;
    uint64_t armed_version_ = 0;
    uint64_t arena_generation_ = 0; ///< detects foreign writes to the arena
    uint32_t armed_size_ = 0; ///< net.size() when the journal was armed
    cut_enumeration_params params_{};
    bool last_incremental_ = false;
    uint64_t refresh_serial_ = 0;

    // Sweep state, persistent so steady-state rounds allocate nothing.
    std::vector<uint8_t> changed_;     ///< journal membership per node
    std::vector<uint8_t> reached_;     ///< in the current topological order
    std::vector<uint8_t> set_changed_; ///< cut set differs from previous gen
    std::vector<uint32_t> level_;      ///< gate level (PI/constant = 0)
    std::vector<uint32_t> items_;      ///< live gates, grouped by level
    std::vector<uint32_t> ordered_;    ///< counting-sort double buffer
    std::vector<uint32_t> level_offsets_; ///< items_ partition per level
    std::vector<uint32_t> level_cursor_;  ///< counting-sort scratch
    std::vector<uint32_t> recompute_;     ///< current level's work list
    std::vector<uint8_t> eval_dirty_;     ///< evaluate dirty set (see above)
    std::vector<std::vector<cut>> results_; ///< per-item staging buffers
    std::vector<cut_enumeration_workspace> workspaces_; ///< per worker
};

} // namespace mcx
