#include "cut/cut_enumeration.h"

#include <algorithm>
#include <stdexcept>

namespace mcx {

namespace {

uint64_t leaf_signature(std::span<const uint32_t> leaves)
{
    uint64_t sig = 0;
    for (const auto l : leaves)
        sig |= uint64_t{1} << (l & 63);
    return sig;
}

/// Merge two sorted leaf sets; false if the union exceeds `limit`.
bool merge_leaves(const cut& a, const cut& b, uint32_t limit, cut& out)
{
    uint32_t ia = 0, ib = 0, n = 0;
    while (ia < a.num_leaves && ib < b.num_leaves) {
        if (n == limit)
            return false;
        if (a.leaves[ia] == b.leaves[ib]) {
            out.leaves[n++] = a.leaves[ia++];
            ++ib;
        } else if (a.leaves[ia] < b.leaves[ib]) {
            out.leaves[n++] = a.leaves[ia++];
        } else {
            out.leaves[n++] = b.leaves[ib++];
        }
    }
    while (ia < a.num_leaves) {
        if (n == limit)
            return false;
        out.leaves[n++] = a.leaves[ia++];
    }
    while (ib < b.num_leaves) {
        if (n == limit)
            return false;
        out.leaves[n++] = b.leaves[ib++];
    }
    out.num_leaves = static_cast<uint8_t>(n);
    return true;
}

/// Re-express a child's cut function over the merged leaf set.
uint64_t expand_function(uint64_t f, const cut& child, const cut& merged)
{
    // position[i] = index of child leaf i within merged leaves
    std::array<uint8_t, max_cut_size> position{};
    for (uint32_t i = 0; i < child.num_leaves; ++i) {
        const auto it = std::find(merged.leaves.begin(),
                                  merged.leaves.begin() + merged.num_leaves,
                                  child.leaves[i]);
        position[i] =
            static_cast<uint8_t>(it - merged.leaves.begin());
    }
    uint64_t r = 0;
    const uint32_t bits = 1u << merged.num_leaves;
    for (uint32_t x = 0; x < bits; ++x) {
        uint32_t y = 0;
        for (uint32_t i = 0; i < child.num_leaves; ++i)
            y |= ((x >> position[i]) & 1u) << i;
        r |= ((f >> y) & 1u) << x;
    }
    return r;
}

cut trivial_cut(uint32_t n)
{
    cut c;
    c.num_leaves = 1;
    c.leaves[0] = n;
    c.function = 0x2; // identity of one variable
    c.signature = leaf_signature(c.leaf_span());
    return c;
}

} // namespace

bool cut::dominates(const cut& other) const
{
    if (num_leaves > other.num_leaves)
        return false;
    if ((signature & other.signature) != signature)
        return false;
    for (uint32_t i = 0; i < num_leaves; ++i)
        if (std::find(other.leaves.begin(),
                      other.leaves.begin() + other.num_leaves,
                      leaves[i]) == other.leaves.begin() + other.num_leaves)
            return false;
    return true;
}

std::vector<std::vector<cut>> enumerate_cuts(const xag& network,
                                             const cut_enumeration_params& params,
                                             cut_enumeration_stats* stats)
{
    if (params.cut_size < 2 || params.cut_size > max_cut_size)
        throw std::invalid_argument{"enumerate_cuts: cut_size must be 2..6"};
    if (params.cut_limit < 1)
        throw std::invalid_argument{"enumerate_cuts: cut_limit must be >= 1"};

    std::vector<std::vector<cut>> sets(network.size());
    std::vector<cut> candidates;

    for (const auto n : network.topological_order()) {
        if (network.is_pi(n)) {
            sets[n].push_back(trivial_cut(n));
            continue;
        }
        if (!network.is_gate(n))
            continue;

        const auto f0 = network.fanin0(n);
        const auto f1 = network.fanin1(n);
        const auto& set0 = sets[f0.node()];
        const auto& set1 = sets[f1.node()];

        candidates.clear();
        for (const auto& ca : set0) {
            for (const auto& cb : set1) {
                if (stats)
                    ++stats->merged_pairs;
                cut merged;
                if (!merge_leaves(ca, cb, params.cut_size, merged))
                    continue;
                merged.signature = ca.signature | cb.signature;

                uint64_t fa = expand_function(ca.function, ca, merged);
                uint64_t fb = expand_function(cb.function, cb, merged);
                const uint64_t mask = tt_mask(merged.num_leaves);
                if (f0.complemented())
                    fa = ~fa & mask;
                if (f1.complemented())
                    fb = ~fb & mask;
                merged.function = network.is_and(n) ? (fa & fb) : (fa ^ fb);

                // Skip duplicates and dominated candidates.
                bool drop = false;
                for (auto& existing : candidates) {
                    if (existing.dominates(merged)) {
                        drop = true;
                        break;
                    }
                }
                if (drop)
                    continue;
                std::erase_if(candidates, [&](const cut& existing) {
                    return merged.dominates(existing);
                });
                candidates.push_back(merged);
            }
        }

        // Smaller cuts first (the classic priority-cut ordering): small
        // cuts merge into feasible wider cuts at the fanouts, and their
        // rewrites are cheap to evaluate.  Sorting widest-first was
        // measured to explode runtime (every node drags its full 6-input
        // cone through classification) for marginal quality gains.
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const cut& a, const cut& b) {
                             return a.num_leaves < b.num_leaves;
                         });
        if (candidates.size() > params.cut_limit)
            candidates.resize(params.cut_limit);
        candidates.push_back(trivial_cut(n));
        sets[n] = candidates;
        if (stats)
            stats->total_cuts += candidates.size();
    }
    return sets;
}

} // namespace mcx
