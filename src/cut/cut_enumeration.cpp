#include "cut/cut_enumeration.h"

#include "tt/words.h"

#include <algorithm>
#include <stdexcept>

namespace mcx {

namespace {

/// Bloom-style signature of a leaf set: node id l sets bit (l & 63).  Ids
/// alias modulo 64, so `(sa & sb) == sa` is a necessary-but-not-sufficient
/// subset test — a cheap prefilter that never rejects a true subset; exact
/// containment is decided by cut::dominates' two-pointer walk.
uint64_t leaf_signature(std::span<const uint32_t> leaves)
{
    uint64_t sig = 0;
    for (const auto l : leaves)
        sig |= uint64_t{1} << (l & 63);
    return sig;
}

/// Merge two sorted leaf sets; false if the union exceeds `limit`.  On
/// success `pos_a[i]` / `pos_b[i]` give the index of each child leaf within
/// the merged set — computed here, during the merge, so function expansion
/// never searches for leaf positions again.
bool merge_leaves(const cut& a, const cut& b, uint32_t limit, cut& out,
                  std::array<uint8_t, max_cut_size>& pos_a,
                  std::array<uint8_t, max_cut_size>& pos_b)
{
    uint32_t ia = 0, ib = 0, n = 0;
    while (ia < a.num_leaves && ib < b.num_leaves) {
        if (n == limit)
            return false;
        if (a.leaves[ia] == b.leaves[ib]) {
            pos_a[ia] = static_cast<uint8_t>(n);
            pos_b[ib] = static_cast<uint8_t>(n);
            out.leaves[n++] = a.leaves[ia++];
            ++ib;
        } else if (a.leaves[ia] < b.leaves[ib]) {
            pos_a[ia] = static_cast<uint8_t>(n);
            out.leaves[n++] = a.leaves[ia++];
        } else {
            pos_b[ib] = static_cast<uint8_t>(n);
            out.leaves[n++] = b.leaves[ib++];
        }
    }
    while (ia < a.num_leaves) {
        if (n == limit)
            return false;
        pos_a[ia] = static_cast<uint8_t>(n);
        out.leaves[n++] = a.leaves[ia++];
    }
    while (ib < b.num_leaves) {
        if (n == limit)
            return false;
        pos_b[ib] = static_cast<uint8_t>(n);
        out.leaves[n++] = b.leaves[ib++];
    }
    out.num_leaves = static_cast<uint8_t>(n);
    return true;
}

/// Word-parallel expansion: re-express a child function over the merged
/// leaf set by inserting a don't-care variable at every merged position the
/// child does not occupy.  Child positions are strictly increasing (both
/// leaf sets are sorted), so each insertion is a handful of masked shifts.
uint64_t expand_word(uint64_t f, uint32_t child_vars,
                     const std::array<uint8_t, max_cut_size>& pos,
                     uint32_t merged_vars)
{
    uint32_t cur = child_vars;
    uint32_t i = 0;
    for (uint32_t j = 0; j < merged_vars; ++j) {
        if (i < child_vars && pos[i] == j) {
            ++i;
            continue;
        }
        f = tt_insert_var_word(f, cur, j);
        ++cur;
    }
    return f;
}

/// Seed-faithful scalar expansion (position search + per-minterm loop),
/// retained behind `word_parallel = false` for differential tests and the
/// bench/micro_core speedup measurement.
uint64_t expand_function_scalar(uint64_t f, const cut& child, const cut& merged)
{
    std::array<uint8_t, max_cut_size> position{};
    for (uint32_t i = 0; i < child.num_leaves; ++i) {
        const auto it = std::find(merged.leaves.begin(),
                                  merged.leaves.begin() + merged.num_leaves,
                                  child.leaves[i]);
        position[i] =
            static_cast<uint8_t>(it - merged.leaves.begin());
    }
    uint64_t r = 0;
    const uint32_t bits = 1u << merged.num_leaves;
    for (uint32_t x = 0; x < bits; ++x) {
        uint32_t y = 0;
        for (uint32_t i = 0; i < child.num_leaves; ++i)
            y |= ((x >> position[i]) & 1u) << i;
        r |= ((f >> y) & 1u) << x;
    }
    return r;
}

/// Seed-faithful scalar subset test (std::find per leaf), for the legacy
/// path only.
bool scalar_dominates(const cut& a, const cut& b)
{
    if (a.num_leaves > b.num_leaves)
        return false;
    if ((a.signature & b.signature) != a.signature)
        return false;
    for (uint32_t i = 0; i < a.num_leaves; ++i)
        if (std::find(b.leaves.begin(), b.leaves.begin() + b.num_leaves,
                      a.leaves[i]) == b.leaves.begin() + b.num_leaves)
            return false;
    return true;
}

} // namespace

cut trivial_cut(uint32_t n)
{
    cut c;
    c.num_leaves = 1;
    c.leaves[0] = n;
    c.function = 0x2; // identity of one variable
    c.signature = leaf_signature(c.leaf_span());
    return c;
}

uint64_t cut_key(const cut& c)
{
    uint64_t h = 0x9e3779b97f4a7c15ull ^ c.num_leaves;
    const auto mix = [&h](uint64_t value) {
        h ^= value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        uint64_t z = h;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        h = z ^ (z >> 31);
    };
    for (uint32_t i = 0; i < c.num_leaves; ++i)
        mix(c.leaves[i]);
    mix(c.function);
    return h;
}

bool cut_exact_duplicate(const cut& a, const cut& b)
{
    // The function compare is load-bearing: cut_key hashes (leaves,
    // function) into 64 bits, so two same-leaf cuts with different
    // functions CAN collide — deciding "duplicate" on key + leaves alone
    // silently dropped the second cut (the pre-fix behavior).
    return a.num_leaves == b.num_leaves && a.function == b.function &&
           std::equal(a.leaves.begin(), a.leaves.begin() + a.num_leaves,
                      b.leaves.begin());
}

bool cut::dominates(const cut& other) const
{
    if (num_leaves > other.num_leaves)
        return false;
    if ((signature & other.signature) != signature)
        return false; // Bloom prefilter: definitely not a subset
    // Exact two-pointer subset walk over the sorted leaf arrays.
    uint32_t i = 0, j = 0;
    while (i < num_leaves) {
        const uint32_t remaining = num_leaves - i;
        if (other.num_leaves - j < remaining)
            return false;
        if (leaves[i] == other.leaves[j]) {
            ++i;
            ++j;
        } else if (leaves[i] > other.leaves[j]) {
            ++j;
        } else {
            return false; // other passed leaves[i] without matching it
        }
    }
    return true;
}

void enumerate_node_cuts(const xag& network, const cut_sets& sets, uint32_t n,
                         const cut_enumeration_params& params,
                         cut_enumeration_workspace& ws)
{
    auto& candidates = ws.candidates;
    auto& keys = ws.keys;
    auto& stats = ws.stats;

    const auto f0 = network.fanin0(n);
    const auto f1 = network.fanin1(n);
    const auto set0 = sets[f0.node()];
    const auto set1 = sets[f1.node()];

    candidates.clear();
    keys.clear();
    for (const auto& ca : set0) {
        for (const auto& cb : set1) {
            ++stats.merged_pairs;
            cut merged;
            std::array<uint8_t, max_cut_size> pos_a{};
            std::array<uint8_t, max_cut_size> pos_b{};
            if (!merge_leaves(ca, cb, params.cut_size, merged, pos_a, pos_b))
                continue;
            merged.signature = ca.signature | cb.signature;

            uint64_t fa, fb;
            if (params.word_parallel) {
                fa = expand_word(ca.function, ca.num_leaves, pos_a,
                                 merged.num_leaves);
                fb = expand_word(cb.function, cb.num_leaves, pos_b,
                                 merged.num_leaves);
            } else {
                fa = expand_function_scalar(ca.function, ca, merged);
                fb = expand_function_scalar(cb.function, cb, merged);
            }
            const uint64_t mask = tt_mask(merged.num_leaves);
            if (f0.complemented())
                fa = ~fa & mask;
            if (f1.complemented())
                fb = ~fb & mask;
            merged.function = network.is_and(n) ? (fa & fb) : (fa ^ fb);

            if (params.word_parallel) {
                // Duplicate rejection: one 64-bit compare per existing
                // candidate (the exact walk only runs on a key match) —
                // repeated leaf sets are the common case, and a
                // duplicate's domination scan is pure waste.
                const uint64_t key = cut_key(merged);
                bool duplicate = false;
                for (size_t i = 0; i < keys.size(); ++i) {
                    if (keys[i] == key &&
                        cut_exact_duplicate(candidates[i], merged)) {
                        duplicate = true;
                        break;
                    }
                }
                if (duplicate) {
                    ++stats.duplicate_cuts;
                    continue;
                }

                // Signature-prefiltered domination (cut::dominates).
                bool drop = false;
                for (const auto& existing : candidates) {
                    if (existing.dominates(merged)) {
                        drop = true;
                        break;
                    }
                }
                if (drop) {
                    ++stats.dominated_cuts;
                    continue;
                }
                size_t kept = 0;
                for (size_t i = 0; i < candidates.size(); ++i) {
                    if (merged.dominates(candidates[i])) {
                        ++stats.evicted_cuts;
                        continue;
                    }
                    candidates[kept] = candidates[i];
                    keys[kept] = keys[i];
                    ++kept;
                }
                candidates.resize(kept);
                keys.resize(kept);
                candidates.push_back(merged);
                keys.push_back(key);
            } else {
                // Seed-faithful quadratic scan with std::find subsets —
                // except that exact duplicates are now classified first,
                // mirroring the word-parallel path, so the two paths'
                // duplicate/dominated/evicted counters compare 1:1.  (A
                // duplicate was previously dropped by the domination scan
                // below — same cut sets, skewed counters.)
                bool duplicate = false;
                for (const auto& existing : candidates) {
                    if (cut_exact_duplicate(existing, merged)) {
                        duplicate = true;
                        break;
                    }
                }
                if (duplicate) {
                    ++stats.duplicate_cuts;
                    continue;
                }
                bool drop = false;
                for (auto& existing : candidates) {
                    if (scalar_dominates(existing, merged)) {
                        drop = true;
                        break;
                    }
                }
                if (drop) {
                    ++stats.dominated_cuts;
                    continue;
                }
                std::erase_if(candidates, [&](const cut& existing) {
                    if (!scalar_dominates(merged, existing))
                        return false;
                    ++stats.evicted_cuts;
                    return true;
                });
                candidates.push_back(merged);
            }
        }
    }

    // Smaller cuts first (the classic priority-cut ordering): small
    // cuts merge into feasible wider cuts at the fanouts, and their
    // rewrites are cheap to evaluate.  Sorting widest-first was
    // measured to explode runtime (every node drags its full 6-input
    // cone through classification) for marginal quality gains.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const cut& a, const cut& b) {
                         return a.num_leaves < b.num_leaves;
                     });
    if (candidates.size() > params.cut_limit)
        candidates.resize(params.cut_limit);
    candidates.push_back(trivial_cut(n));
    stats.total_cuts += candidates.size();
    ++stats.reenumerated_nodes;
}

void enumerate_cuts(const xag& network, cut_sets& sets,
                    const cut_enumeration_params& params,
                    cut_enumeration_stats* stats)
{
    if (params.cut_size < 2 || params.cut_size > max_cut_size)
        throw std::invalid_argument{"enumerate_cuts: cut_size must be 2..6"};
    if (params.cut_limit < 1)
        throw std::invalid_argument{"enumerate_cuts: cut_limit must be >= 1"};

    sets.reset(network.size());
    cut_enumeration_workspace ws; // counters start zeroed

    for (const auto n : network.topological_order()) {
        if (network.is_pi(n)) {
            const auto t = trivial_cut(n);
            sets.assign(n, {&t, 1});
            continue;
        }
        if (!network.is_gate(n))
            continue;
        enumerate_node_cuts(network, sets, n, params, ws);
        sets.assign(n, ws.candidates);
    }
    if (stats)
        *stats = ws.stats; // counters are per call, never carried over
}

cut_sets enumerate_cuts(const xag& network,
                        const cut_enumeration_params& params,
                        cut_enumeration_stats* stats)
{
    cut_sets sets;
    enumerate_cuts(network, sets, params, stats);
    return sets;
}

} // namespace mcx
