// Arena-backed per-node cut storage.
//
// Cut enumeration visits nodes in topological order and finalizes each
// node's cut set before moving on, so the natural layout is one flat pool
// of cuts plus a (offset, count) span per node — no per-node vector, no
// per-node allocation, and `clear()` keeps the pool's capacity so a
// pass_context can reuse one arena across every round of every pass.
#pragma once

#include "cut/cut.h"

#include <cstdint>
#include <span>
#include <vector>

namespace mcx {

class cut_sets {
public:
    /// Cuts of node `n` (empty span for dead/unreachable nodes).
    std::span<const cut> operator[](uint32_t n) const
    {
        const auto& s = spans_[n];
        return {pool_.data() + s.offset, s.count};
    }

    /// Number of node slots (== network.size() at enumeration time).
    size_t size() const { return spans_.size(); }
    /// Cuts of the highest-indexed node.
    std::span<const cut> back() const
    {
        return (*this)[static_cast<uint32_t>(spans_.size() - 1)];
    }

    /// Total cuts stored across all nodes.
    size_t total_cuts() const { return pool_.size(); }
    /// Pool slots allocated (capacity survives clear()).
    size_t capacity() const { return pool_.capacity(); }

    // ------------------------------------------------- building (enumerator)
    /// Drop all spans and cuts, keep the pool's memory; resize to `num_nodes`
    /// node slots.
    void reset(size_t num_nodes)
    {
        pool_.clear();
        spans_.assign(num_nodes, {});
    }

    /// Append `cuts` as the cut set of node `n` (each node assigned once).
    void assign(uint32_t n, std::span<const cut> cuts)
    {
        spans_[n] = {static_cast<uint32_t>(pool_.size()),
                     static_cast<uint32_t>(cuts.size())};
        pool_.insert(pool_.end(), cuts.begin(), cuts.end());
    }

private:
    struct span_ref {
        uint32_t offset = 0;
        uint32_t count = 0;
    };
    std::vector<cut> pool_;
    std::vector<span_ref> spans_;
};

} // namespace mcx
