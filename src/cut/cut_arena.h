// Arena-backed per-node cut storage.
//
// Cut enumeration visits nodes in topological order and finalizes each
// node's cut set before moving on, so the natural layout is one flat pool
// of cuts plus a (offset, count) span per node — no per-node vector, no
// per-node allocation, and `clear()` keeps the pool's capacity so a
// pass_context can reuse one arena across every round of every pass.
//
// Incremental maintenance (src/cut/cut_incremental.h) re-enumerates only
// the dirty region of the network between rounds, so the arena additionally
// supports in-place span replacement: `begin_update` opens a new
// *generation*, `update(n, cuts)` appends the node's fresh cuts to the pool
// and re-points its span (the old cuts become garbage), and every span
// carries the generation it was last written — the tag that lets tests and
// assertions prove clean nodes kept their spans untouched.  `compact()`
// rewrites the pool without the garbage once it dominates.
#pragma once

#include "cut/cut.h"

#include <cstdint>
#include <span>
#include <vector>

namespace mcx {

class cut_sets {
public:
    /// Cuts of node `n` (empty span for dead/unreachable nodes).
    std::span<const cut> operator[](uint32_t n) const
    {
        const auto& s = spans_[n];
        return {pool_.data() + s.offset, s.count};
    }

    /// Number of node slots (== network.size() at enumeration time).
    size_t size() const { return spans_.size(); }
    /// Cuts of the highest-indexed node.
    std::span<const cut> back() const
    {
        return (*this)[static_cast<uint32_t>(spans_.size() - 1)];
    }

    /// Total cuts stored across all nodes — live spans only, excluding
    /// pool garbage left behind by update().
    size_t total_cuts() const { return live_cuts_; }
    /// Pool slots occupied (live + garbage).
    size_t pool_size() const { return pool_.size(); }
    /// Pool slots allocated (capacity survives clear()).
    size_t capacity() const { return pool_.capacity(); }

    // ------------------------------------------------- building (enumerator)
    /// Drop all spans and cuts, keep the pool's memory; resize to `num_nodes`
    /// node slots.  Opens a new generation like begin_update().
    void reset(size_t num_nodes)
    {
        pool_.clear();
        spans_.assign(num_nodes, {});
        live_cuts_ = 0;
        ++generation_;
    }

    /// Append `cuts` as the cut set of node `n` (each node assigned once
    /// per generation; update() is the re-assignment path).
    void assign(uint32_t n, std::span<const cut> cuts) { update(n, cuts); }

    // --------------------------------------- incremental maintenance (sweep)
    /// Open a new generation and grow to `num_nodes` node slots (spans of
    /// existing nodes are preserved; new slots start empty).
    void begin_update(size_t num_nodes)
    {
        spans_.resize(num_nodes);
        ++generation_;
    }

    /// Replace node n's cut set: the fresh cuts are appended to the pool,
    /// the old span's storage becomes garbage (reclaimed by compact()).
    void update(uint32_t n, std::span<const cut> cuts)
    {
        auto& s = spans_[n];
        live_cuts_ += cuts.size();
        live_cuts_ -= s.count;
        s = {static_cast<uint32_t>(pool_.size()),
             static_cast<uint32_t>(cuts.size()), generation_};
        pool_.insert(pool_.end(), cuts.begin(), cuts.end());
    }

    /// Drop node n's cut set (dead/unreachable nodes present empty spans,
    /// exactly as a full rebuild would).
    void clear_node(uint32_t n)
    {
        auto& s = spans_[n];
        if (s.count == 0)
            return;
        live_cuts_ -= s.count;
        s = {0, 0, generation_};
    }

    /// Current generation: bumped by every reset()/begin_update().
    uint64_t generation() const { return generation_; }
    /// Generation at which node n's span was last written — the proof that
    /// an incremental sweep left clean nodes alone.
    uint64_t node_generation(uint32_t n) const { return spans_[n].generation; }

    /// Fraction of the pool that is garbage would exceed 1/2 — the
    /// maintainer's compaction trigger.
    bool should_compact() const { return pool_.size() > 2 * live_cuts_; }

    /// Rebuild the pool with live spans only (node order).  Offsets change;
    /// spans, counts, and generation tags are preserved.  Invalidates any
    /// outstanding operator[] spans.
    void compact()
    {
        std::vector<cut> fresh;
        fresh.reserve(live_cuts_);
        for (auto& s : spans_) {
            const auto offset = static_cast<uint32_t>(fresh.size());
            fresh.insert(fresh.end(), pool_.begin() + s.offset,
                         pool_.begin() + s.offset + s.count);
            s.offset = offset;
        }
        pool_ = std::move(fresh);
    }

private:
    struct span_ref {
        uint32_t offset = 0;
        uint32_t count = 0;
        uint64_t generation = 0;
    };
    std::vector<cut> pool_;
    std::vector<span_ref> spans_;
    size_t live_cuts_ = 0;
    uint64_t generation_ = 0;
};

} // namespace mcx
