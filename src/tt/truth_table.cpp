#include "tt/truth_table.h"

#include <stdexcept>

namespace mcx {

truth_table truth_table::projection(uint32_t num_vars, uint32_t k)
{
    if (k >= num_vars)
        throw std::invalid_argument{"projection: variable out of range"};
    truth_table t{num_vars};
    if (k < 6) {
        const uint64_t pattern = tt_projection_word(k) & tt_mask(num_vars);
        for (auto& w : t.words_)
            w = pattern;
    } else {
        for (size_t i = 0; i < t.words_.size(); ++i)
            if ((i >> (k - 6)) & 1)
                t.words_[i] = ~uint64_t{0};
    }
    return t;
}

bool truth_table::has_var(uint32_t k) const
{
    return *this != flip_var(k);
}

std::vector<uint32_t> truth_table::support() const
{
    std::vector<uint32_t> vars;
    for (uint32_t k = 0; k < num_vars_; ++k)
        if (has_var(k))
            vars.push_back(k);
    return vars;
}

truth_table truth_table::flip_var(uint32_t k) const
{
    truth_table r{*this};
    if (k < 6) {
        const uint64_t mask = tt_projection_word(k);
        const uint32_t shift = 1u << k;
        for (auto& w : r.words_)
            w = ((w & mask) >> shift) | ((w & ~mask) << shift);
        r.mask_off();
    } else {
        const size_t stride = size_t{1} << (k - 6);
        for (size_t base = 0; base < r.words_.size(); base += 2 * stride)
            for (size_t i = 0; i < stride; ++i)
                std::swap(r.words_[base + i], r.words_[base + stride + i]);
    }
    return r;
}

truth_table truth_table::swap_vars(uint32_t i, uint32_t j) const
{
    if (i == j)
        return *this;
    truth_table r{num_vars_};
    for (uint64_t x = 0; x < num_bits(); ++x) {
        const bool bi = (x >> i) & 1;
        const bool bj = (x >> j) & 1;
        uint64_t y = x;
        y = (y & ~(uint64_t{1} << i)) | (uint64_t{bj} << i);
        y = (y & ~(uint64_t{1} << j)) | (uint64_t{bi} << j);
        if (get_bit(y))
            r.set_bit(x, true);
    }
    return r;
}

truth_table truth_table::cofactor(uint32_t k, bool value) const
{
    // Copy the selected half onto both halves along variable k.
    truth_table r{*this};
    if (k < 6) {
        const uint64_t mask = tt_projection_word(k);
        const uint32_t shift = 1u << k;
        for (auto& w : r.words_) {
            const uint64_t half = value ? (w & mask) : (w & ~mask);
            w = value ? (half | (half >> shift)) : (half | (half << shift));
        }
        r.mask_off();
    } else {
        const size_t stride = size_t{1} << (k - 6);
        for (size_t base = 0; base < r.words_.size(); base += 2 * stride)
            for (size_t i = 0; i < stride; ++i) {
                const uint64_t half =
                    value ? r.words_[base + stride + i] : r.words_[base + i];
                r.words_[base + i] = half;
                r.words_[base + stride + i] = half;
            }
    }
    return r;
}

std::string truth_table::to_hex() const
{
    static const char* digits = "0123456789abcdef";
    const uint32_t num_digits =
        num_vars_ <= 2 ? 1u : 1u << (num_vars_ - 2);
    std::string s;
    s.reserve(num_digits);
    for (uint32_t d = num_digits; d-- > 0;) {
        const uint64_t word = words_[d >> 4];
        s.push_back(digits[(word >> ((d & 15) * 4)) & 0xf]);
    }
    return s;
}

truth_table truth_table::from_hex(uint32_t num_vars, const std::string& hex)
{
    const uint32_t num_digits = num_vars <= 2 ? 1u : 1u << (num_vars - 2);
    if (hex.size() != num_digits)
        throw std::invalid_argument{"from_hex: wrong number of digits"};
    truth_table t{num_vars};
    for (uint32_t d = 0; d < num_digits; ++d) {
        const char c = hex[num_digits - 1 - d];
        uint64_t value = 0;
        if (c >= '0' && c <= '9')
            value = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value = static_cast<uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            value = static_cast<uint64_t>(c - 'A' + 10);
        else
            throw std::invalid_argument{"from_hex: invalid digit"};
        t.words_[d >> 4] |= value << ((d & 15) * 4);
    }
    if (num_vars < 2 && (t.words_[0] & ~tt_mask(num_vars)) != 0)
        throw std::invalid_argument{"from_hex: digit out of range"};
    return t;
}

uint64_t truth_table::hash() const
{
    // splitmix64-style mixing over words and the variable count.
    uint64_t h = 0x9e3779b97f4a7c15ull ^ num_vars_;
    for (auto w : words_) {
        h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        uint64_t z = h;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        h = z ^ (z >> 31);
    }
    return h;
}

} // namespace mcx
