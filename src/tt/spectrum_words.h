// Word-parallel primitives on packed Rademacher-Walsh spectra.
//
// A spectrum of a function on n <= 6 variables has 2^n coefficients, each
// bounded by 2^n = 64 in magnitude — every coefficient fits in one int8_t
// lane, so the whole spectrum packs into at most eight 64-bit words (lane w
// is byte w: word w>>3, byte w&7, little-endian).  The companions of
// tt/words.h for that representation: carry-isolated SWAR add/sub/negate,
// the XOR-translate permutation s'[w] = s[w ^ u] as masked byte rotations
// plus word swaps, the blocked Walsh-Hadamard butterfly (lane stages inside
// a word, word stages across words), and an order-preserving sort key that
// turns a lexicographic comparison of up to eight signed lanes into one
// unsigned word comparison.
//
// The affine classifier (src/spectral/classification.cpp) is built on these:
// its DFS evaluates thousands of signed, permuted spectrum blocks per
// function, and each of them becomes a handful of word operations here.
//
// The inverse transform needs wider intermediates (partial butterfly sums of
// a valid spectrum reach 2^(n+k) <= 4096), so a matching int16_t-lane set
// (four lanes per word) is provided alongside.
#pragma once

#include <cstdint>

namespace mcx {

// ------------------------------------------------------ int8 lanes (packed)

inline constexpr uint64_t spectrum_lane_high = 0x8080808080808080ull;
inline constexpr uint64_t spectrum_lane_ones = 0x0101010101010101ull;

/// Per-lane int8 addition: carries are confined to their lane.
constexpr uint64_t spectrum_add(uint64_t a, uint64_t b)
{
    return ((a & ~spectrum_lane_high) + (b & ~spectrum_lane_high)) ^
           ((a ^ b) & spectrum_lane_high);
}

/// Per-lane int8 subtraction: borrows are confined to their lane.
constexpr uint64_t spectrum_sub(uint64_t a, uint64_t b)
{
    return ((a | spectrum_lane_high) - (b & ~spectrum_lane_high)) ^
           ((a ^ ~b) & spectrum_lane_high);
}

/// Negate the lanes selected by `mask` (each lane of `mask` is 0x00 or
/// 0xff): two's complement per selected lane, -x = ~x + 1.
constexpr uint64_t spectrum_negate_if(uint64_t a, uint64_t mask)
{
    return spectrum_add(a ^ mask, mask & spectrum_lane_ones);
}

/// Byte mask of the lanes whose index has bit b set (b < 3).  The byte-
/// granular analog of tt_projection_word.
constexpr uint64_t spectrum_lane_mask(uint32_t b)
{
    constexpr uint64_t masks[3] = {0xff00ff00ff00ff00ull,
                                   0xffff0000ffff0000ull,
                                   0xffffffff00000000ull};
    return masks[b];
}

/// Order-preserving comparison key: XORing the sign bit biases int8 lanes
/// to unsigned order, the byte swap puts lane 0 (the first element of the
/// sequence) in the most significant position — so comparing keys as plain
/// uint64 compares the lane sequences lexicographically.
constexpr uint64_t spectrum_sort_key(uint64_t w)
{
    return __builtin_bswap64(w ^ spectrum_lane_high);
}

/// Recover the packed lanes from a sort key.
constexpr uint64_t spectrum_sort_key_inverse(uint64_t key)
{
    return __builtin_bswap64(key) ^ spectrum_lane_high;
}

/// In-place XOR-translate of `count` lanes spread over ceil(count/8) words:
/// out[w] = in[w ^ u], u < count.  Bits 0..2 of u permute lanes inside each
/// word (masked shifts), bits 3+ swap whole words; `count` is a power of
/// two, so lanes beyond it are never touched.
inline void spectrum_translate(uint64_t* words, uint32_t count, uint32_t u)
{
    const uint32_t num_words = count <= 8 ? 1 : count >> 3;
    for (uint32_t b = 3; (1u << b) < count; ++b)
        if ((u >> b) & 1) {
            const uint32_t d = 1u << (b - 3);
            for (uint32_t i = 0; i < num_words; ++i)
                if ((i & d) == 0) {
                    const uint64_t t = words[i];
                    words[i] = words[i | d];
                    words[i | d] = t;
                }
        }
    for (uint32_t b = 0; b < 3 && (1u << b) < count; ++b)
        if ((u >> b) & 1) {
            const uint64_t m = spectrum_lane_mask(b);
            const uint32_t s = 8u << b;
            for (uint32_t i = 0; i < num_words; ++i)
                words[i] = ((words[i] & m) >> s) | ((words[i] & ~m) << s);
        }
}

/// Spread the low 8 bits of a truth table into one word of ±1 lanes:
/// lane j = f(j) ? -1 : +1.  The multiply replicates the byte, the diagonal
/// mask isolates bit j in lane j, and the +0x7f carry trick normalizes any
/// non-zero lane to its sign bit.
constexpr uint64_t spectrum_seed_word(uint64_t tt_bits)
{
    const uint64_t spread =
        ((tt_bits & 0xff) * spectrum_lane_ones) & 0x8040201008040201ull;
    const uint64_t set = ((spread + ~spectrum_lane_high) & spectrum_lane_high)
                         >> 7; // 0x01 in every lane whose bit was set
    return spectrum_sub(spectrum_lane_ones, set << 1); // 1 - 2*bit
}

/// Blocked in-place Walsh-Hadamard butterfly over `size` packed int8 lanes
/// (size = 2^n, n <= 6): stages of lane distance 1, 2, 4 are masked
/// shift/SWAR pairs inside each word, wider stages pair whole words.  With
/// ±1 seed lanes the result is the Rademacher-Walsh spectrum
/// s[w] = sum_x (-1)^(f(x) ^ (w.x)); all intermediates are bounded by 2^n
/// and never overflow a lane.
inline void spectrum_butterfly(uint64_t* words, uint32_t size)
{
    const uint32_t num_words = size <= 8 ? 1 : size >> 3;
    for (uint32_t b = 0; b < 3 && (1u << b) < size; ++b) {
        const uint64_t m = spectrum_lane_mask(b);
        const uint32_t s = 8u << b;
        for (uint32_t i = 0; i < num_words; ++i) {
            const uint64_t lo = words[i] & ~m;      // lanes with index bit b=0
            const uint64_t hi = (words[i] & m) >> s; // aligned onto lo's lanes
            words[i] = (spectrum_add(lo, hi) & ~m) |
                       ((spectrum_sub(lo, hi) << s) & m);
        }
    }
    for (uint32_t d = 1; d < num_words; d <<= 1)
        for (uint32_t i = 0; i < num_words; ++i)
            if ((i & d) == 0) {
                const uint64_t a = words[i];
                const uint64_t b = words[i | d];
                words[i] = spectrum_add(a, b);
                words[i | d] = spectrum_sub(a, b);
            }
}

/// Rademacher-Walsh spectrum of a single-word truth table (size = 2^n,
/// n <= 6) into packed int8 lanes: seed ±1 lanes from the function bits,
/// then the blocked butterfly.  The one implementation behind both
/// walsh_spectrum and the classifier's constructor.
inline void spectrum_from_truth_word(uint64_t tt_word, uint32_t size,
                                     uint64_t* words)
{
    const uint32_t num_words = size <= 8 ? 1 : size >> 3;
    for (uint32_t i = 0; i < num_words; ++i)
        words[i] = spectrum_seed_word(tt_word >> (8 * i));
    spectrum_butterfly(words, size);
}

// ----------------------------------------- sub-word candidate-block layout
//
// At DFS levels whose blocks have only one or two rows, a whole 64-bit
// word of per-candidate machinery is wasted on 8 or 16 meaningful bits.
// These helpers build the *candidate* axis word-parallel instead: the
// packed source lanes already hold one lane per candidate (g[m], and for
// two-row blocks the XOR-translate g[m ^ m1] aligned under it), so one
// SWAR negate + bias produces the key bytes of eight candidates at once,
// and a byte interleave assembles four candidates' 16-bit block keys per
// word.  The classifier (src/spectral/classification.cpp) uses this to
// close the small-function gap where per-candidate gathers dominated —
// the "4 candidates per word" layout of the 4-input benchmark gate.

/// Spread the low four bytes to the even byte positions: dcba -> d0c0b0a0
/// read little-endian (byte j of the input lands in byte 2j).
constexpr uint64_t spectrum_spread_bytes(uint64_t v)
{
    v &= 0xffffffffull;
    v = (v | (v << 16)) & 0x0000ffff0000ffffull;
    v = (v | (v << 8)) & 0x00ff00ff00ff00ffull;
    return v;
}

/// Interleave the low four bytes of two words into 16-bit units:
/// unit j = (hi.byte j << 8) | lo.byte j.
constexpr uint64_t spectrum_zip8_lo(uint64_t lo, uint64_t hi)
{
    return spectrum_spread_bytes(lo) | (spectrum_spread_bytes(hi) << 8);
}

/// Same for the high four bytes.
constexpr uint64_t spectrum_zip8_hi(uint64_t lo, uint64_t hi)
{
    return spectrum_spread_bytes(lo >> 32) |
           (spectrum_spread_bytes(hi >> 32) << 8);
}

/// Spread the low two 16-bit units to the even unit positions.
constexpr uint64_t spectrum_spread_u16(uint64_t v)
{
    v &= 0xffffffffull;
    return (v | (v << 16)) & 0x0000ffff0000ffffull;
}

/// Interleave the low two 16-bit units of two words into 32-bit units:
/// unit j = (hi.u16 j << 16) | lo.u16 j.  With zip8 outputs as inputs this
/// assembles four-row candidate blocks, two candidates per word.
constexpr uint64_t spectrum_zip16_lo(uint64_t lo, uint64_t hi)
{
    return spectrum_spread_u16(lo) | (spectrum_spread_u16(hi) << 16);
}

/// Same for the high two 16-bit units.
constexpr uint64_t spectrum_zip16_hi(uint64_t lo, uint64_t hi)
{
    return spectrum_spread_u16(lo >> 32) |
           (spectrum_spread_u16(hi >> 32) << 16);
}

/// Read lane w as a signed value.
constexpr int32_t spectrum_lane(const uint64_t* words, uint32_t w)
{
    return static_cast<int8_t>(
        static_cast<uint8_t>(words[w >> 3] >> ((w & 7) << 3)));
}

/// Write lane w (value must fit int8).
constexpr void spectrum_set_lane(uint64_t* words, uint32_t w, int32_t value)
{
    const uint32_t shift = (w & 7) << 3;
    words[w >> 3] = (words[w >> 3] & ~(uint64_t{0xff} << shift)) |
                    (uint64_t{static_cast<uint8_t>(value)} << shift);
}

// ------------------------------------- int16 lanes (inverse transform only)

inline constexpr uint64_t spectrum16_lane_high = 0x8000800080008000ull;

constexpr uint64_t spectrum16_add(uint64_t a, uint64_t b)
{
    return ((a & ~spectrum16_lane_high) + (b & ~spectrum16_lane_high)) ^
           ((a ^ b) & spectrum16_lane_high);
}

constexpr uint64_t spectrum16_sub(uint64_t a, uint64_t b)
{
    return ((a | spectrum16_lane_high) - (b & ~spectrum16_lane_high)) ^
           ((a ^ ~b) & spectrum16_lane_high);
}

/// Word mask of the 16-bit lanes whose index has bit b set (b < 2).
constexpr uint64_t spectrum16_lane_mask(uint32_t b)
{
    constexpr uint64_t masks[2] = {0xffff0000ffff0000ull,
                                   0xffffffff00000000ull};
    return masks[b];
}

/// The butterfly over `size` packed int16 lanes, four per word.  Used for
/// the inverse transform, whose intermediates (partial sums of up to 2^k
/// coefficients each bounded by 2^n) reach 2^(n+k) <= 4096 and need the
/// wider lane.
inline void spectrum16_butterfly(uint64_t* words, uint32_t size)
{
    const uint32_t num_words = size <= 4 ? 1 : size >> 2;
    for (uint32_t b = 0; b < 2 && (1u << b) < size; ++b) {
        const uint64_t m = spectrum16_lane_mask(b);
        const uint32_t s = 16u << b;
        for (uint32_t i = 0; i < num_words; ++i) {
            const uint64_t lo = words[i] & ~m;
            const uint64_t hi = (words[i] & m) >> s;
            words[i] = (spectrum16_add(lo, hi) & ~m) |
                       ((spectrum16_sub(lo, hi) << s) & m);
        }
    }
    for (uint32_t d = 1; d < num_words; d <<= 1)
        for (uint32_t i = 0; i < num_words; ++i)
            if ((i & d) == 0) {
                const uint64_t a = words[i];
                const uint64_t b = words[i | d];
                words[i] = spectrum16_add(a, b);
                words[i | d] = spectrum16_sub(a, b);
            }
}

constexpr int32_t spectrum16_lane(const uint64_t* words, uint32_t w)
{
    return static_cast<int16_t>(
        static_cast<uint16_t>(words[w >> 2] >> ((w & 3) << 4)));
}

constexpr void spectrum16_set_lane(uint64_t* words, uint32_t w, int32_t value)
{
    const uint32_t shift = (w & 3) << 4;
    words[w >> 2] = (words[w >> 2] & ~(uint64_t{0xffff} << shift)) |
                    (uint64_t{static_cast<uint16_t>(value)} << shift);
}

} // namespace mcx
