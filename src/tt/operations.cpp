#include "tt/operations.h"

#include <bit>
#include <stdexcept>

namespace mcx {

truth_table expand(const truth_table& f, std::span<const uint32_t> position,
                   uint32_t new_num_vars)
{
    if (position.size() != f.num_vars())
        throw std::invalid_argument{"expand: one position per variable"};
    truth_table r{new_num_vars};
    for (uint64_t x = 0; x < r.num_bits(); ++x) {
        uint64_t y = 0;
        for (uint32_t i = 0; i < f.num_vars(); ++i)
            y |= ((x >> position[i]) & 1) << i;
        if (f.get_bit(y))
            r.set_bit(x, true);
    }
    return r;
}

support_view shrink_to_support(const truth_table& f)
{
    support_view view;
    view.support = f.support();
    const auto k = static_cast<uint32_t>(view.support.size());
    view.function = truth_table{k};
    for (uint64_t x = 0; x < view.function.num_bits(); ++x) {
        uint64_t y = 0;
        for (uint32_t i = 0; i < k; ++i)
            y |= ((x >> i) & 1) << view.support[i];
        if (f.get_bit(y))
            view.function.set_bit(x, true);
    }
    return view;
}

truth_table to_anf(const truth_table& f)
{
    // Moebius transform: butterfly with XOR accumulation.
    truth_table a{f};
    for (uint32_t k = 0; k < f.num_vars(); ++k) {
        if (k < 6) {
            const uint64_t mask = ~tt_projection_word(k);
            const uint32_t shift = 1u << k;
            for (auto& w : a.words())
                w ^= (w & mask) << shift;
        } else {
            const size_t stride = size_t{1} << (k - 6);
            auto& words = a.words();
            for (size_t base = 0; base < words.size(); base += 2 * stride)
                for (size_t i = 0; i < stride; ++i)
                    words[base + stride + i] ^= words[base + i];
        }
    }
    return a;
}

uint32_t degree(const truth_table& f)
{
    const auto a = to_anf(f);
    uint32_t deg = 0;
    for (uint64_t m = 0; m < a.num_bits(); ++m)
        if (a.get_bit(m))
            deg = std::max(deg, static_cast<uint32_t>(std::popcount(m)));
    return deg;
}

bool is_affine_function(const truth_table& f)
{
    return degree(f) <= 1;
}

truth_table op_translation(const truth_table& f, uint32_t i, uint32_t j)
{
    if (i == j)
        throw std::invalid_argument{"op_translation: i and j must differ"};
    truth_table r{f.num_vars()};
    for (uint64_t x = 0; x < f.num_bits(); ++x) {
        const uint64_t y = x ^ (((x >> j) & 1) << i);
        if (f.get_bit(y))
            r.set_bit(x, true);
    }
    return r;
}

truth_table apply_affine(const truth_table& f,
                         std::span<const uint32_t> columns, uint32_t c,
                         uint32_t v, bool s)
{
    const uint32_t n = f.num_vars();
    if (columns.size() != n)
        throw std::invalid_argument{"apply_affine: one column per variable"};
    truth_table r{n};
    for (uint64_t y = 0; y < f.num_bits(); ++y) {
        uint32_t my = 0;
        for (uint32_t k = 0; k < n; ++k)
            if ((y >> k) & 1)
                my ^= columns[k];
        const uint64_t x = (my ^ c) & ((1u << n) - 1);
        const bool value = f.get_bit(x) ^
            (std::popcount(v & static_cast<uint32_t>(y)) & 1) ^ s;
        if (value)
            r.set_bit(y, true);
    }
    return r;
}

} // namespace mcx
