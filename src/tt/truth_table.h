// Truth-table representation for Boolean functions.
//
// The paper's rewriting pipeline manipulates functions of at most 6 variables
// (6-feasible cuts), which fit in a single 64-bit word (paper §4.1).  The
// same class scales to more variables (vector of words) so that whole
// networks can be simulated exhaustively in tests.
//
// Conventions: a function f over variables x0..x(n-1) is stored as bits
// f(x) at bit position x, where variable i contributes bit i of the index.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mcx {

/// Number of 64-bit words needed for a truth table on n variables.
constexpr uint32_t tt_word_count(uint32_t num_vars)
{
    return num_vars <= 6 ? 1u : 1u << (num_vars - 6);
}

/// Bit mask of the valid bits in the (single) word of a small truth table.
constexpr uint64_t tt_mask(uint32_t num_vars)
{
    return num_vars >= 6 ? ~uint64_t{0} : (uint64_t{1} << (1u << num_vars)) - 1;
}

/// Truth table of the projection x_k restricted to one 64-bit word;
/// for k >= 6 the value depends on the word index (see truth_table::project).
constexpr uint64_t tt_projection_word(uint32_t k)
{
    constexpr uint64_t masks[6] = {
        0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
        0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull};
    return masks[k];
}

/// A Boolean function on `num_vars()` variables, bit-packed.
class truth_table {
public:
    truth_table() = default;

    explicit truth_table(uint32_t num_vars)
        : num_vars_{num_vars}, words_(tt_word_count(num_vars), 0) {}

    /// Single-word constructor for functions of up to 6 variables.
    truth_table(uint32_t num_vars, uint64_t bits)
        : num_vars_{num_vars}, words_(tt_word_count(num_vars), 0)
    {
        words_[0] = bits & tt_mask(num_vars);
    }

    uint32_t num_vars() const { return num_vars_; }
    uint64_t num_bits() const { return uint64_t{1} << num_vars_; }
    const std::vector<uint64_t>& words() const { return words_; }
    std::vector<uint64_t>& words() { return words_; }

    /// The raw word of a small (<= 6 variable) function.
    uint64_t word() const { return words_[0]; }

    bool get_bit(uint64_t index) const
    {
        return (words_[index >> 6] >> (index & 63)) & 1;
    }

    void set_bit(uint64_t index, bool value)
    {
        if (value)
            words_[index >> 6] |= uint64_t{1} << (index & 63);
        else
            words_[index >> 6] &= ~(uint64_t{1} << (index & 63));
    }

    /// f := x_k (projection onto variable k).
    static truth_table projection(uint32_t num_vars, uint32_t k);

    static truth_table constant(uint32_t num_vars, bool value)
    {
        truth_table t{num_vars};
        if (value) {
            for (auto& w : t.words_)
                w = ~uint64_t{0};
            t.words_[0] &= tt_mask(num_vars);
            t.mask_off();
        }
        return t;
    }

    bool is_constant() const
    {
        if (words_[0] != 0 && words_[0] != tt_mask(num_vars_))
            return false;
        const uint64_t ref = words_[0] == 0 ? 0 : ~uint64_t{0};
        for (size_t i = 1; i < words_.size(); ++i)
            if (words_[i] != ref)
                return false;
        return true;
    }

    bool is_constant(bool value) const
    {
        return is_constant() && get_bit(0) == value;
    }

    uint64_t count_ones() const
    {
        uint64_t total = 0;
        for (auto w : words_)
            total += static_cast<uint64_t>(std::popcount(w));
        return total;
    }

    truth_table operator~() const
    {
        truth_table r{*this};
        for (auto& w : r.words_)
            w = ~w;
        r.mask_off();
        return r;
    }

    truth_table operator&(const truth_table& other) const
    {
        truth_table r{*this};
        for (size_t i = 0; i < words_.size(); ++i)
            r.words_[i] &= other.words_[i];
        return r;
    }

    truth_table operator|(const truth_table& other) const
    {
        truth_table r{*this};
        for (size_t i = 0; i < words_.size(); ++i)
            r.words_[i] |= other.words_[i];
        return r;
    }

    truth_table operator^(const truth_table& other) const
    {
        truth_table r{*this};
        for (size_t i = 0; i < words_.size(); ++i)
            r.words_[i] ^= other.words_[i];
        return r;
    }

    truth_table& operator&=(const truth_table& o) { return *this = *this & o; }
    truth_table& operator|=(const truth_table& o) { return *this = *this | o; }
    truth_table& operator^=(const truth_table& o) { return *this = *this ^ o; }

    bool operator==(const truth_table& other) const
    {
        return num_vars_ == other.num_vars_ && words_ == other.words_;
    }

    bool operator!=(const truth_table& other) const { return !(*this == other); }

    bool operator<(const truth_table& other) const
    {
        if (num_vars_ != other.num_vars_)
            return num_vars_ < other.num_vars_;
        for (size_t i = words_.size(); i-- > 0;)
            if (words_[i] != other.words_[i])
                return words_[i] < other.words_[i];
        return false;
    }

    /// True if f depends on variable k.
    bool has_var(uint32_t k) const;

    /// Indices of all variables f depends on, ascending.
    std::vector<uint32_t> support() const;

    /// f with variable k complemented: g(x) = f(x ^ e_k).
    truth_table flip_var(uint32_t k) const;

    /// f with variables i and j exchanged.
    truth_table swap_vars(uint32_t i, uint32_t j) const;

    /// Cofactor f|x_k = value.  Result still has num_vars() variables.
    truth_table cofactor(uint32_t k, bool value) const;

    /// Lowercase hex, most significant word first (kitty-style).
    std::string to_hex() const;

    /// Parse `to_hex` output; throws std::invalid_argument on bad input.
    static truth_table from_hex(uint32_t num_vars, const std::string& hex);

    /// 64-bit hash suitable for unordered containers.
    uint64_t hash() const;

private:
    void mask_off()
    {
        if (num_vars_ < 6)
            words_[0] &= tt_mask(num_vars_);
    }

    uint32_t num_vars_ = 0;
    std::vector<uint64_t> words_{0};
};

struct truth_table_hash {
    size_t operator()(const truth_table& t) const { return t.hash(); }
};

} // namespace mcx

template <>
struct std::hash<mcx::truth_table> {
    size_t operator()(const mcx::truth_table& t) const { return t.hash(); }
};
