// Function-level operations on truth tables: variable expansion for cut
// merging, support reduction, algebraic normal form, and the five affine
// operations of the paper's Definition 2.1.
#pragma once

#include "tt/truth_table.h"

#include <cstdint>
#include <span>
#include <vector>

namespace mcx {

/// Re-express `f` over `new_num_vars` variables where old variable i becomes
/// variable `position[i]`.  Positions must be distinct and strictly below
/// `new_num_vars`.  Used when merging cut truth tables onto a common leaf set.
truth_table expand(const truth_table& f, std::span<const uint32_t> position,
                   uint32_t new_num_vars);

/// A function rewritten over exactly its support variables.
struct support_view {
    truth_table function;          ///< over support.size() variables
    std::vector<uint32_t> support; ///< support[i] = original index of var i
};

/// Drop don't-care variables (paper Example 2.3 treats x3 as don't care).
support_view shrink_to_support(const truth_table& f);

/// Algebraic normal form: bit m of the result is the coefficient of the
/// monomial prod_{i in m} x_i in the PPRM of f (Moebius transform; involutive).
truth_table to_anf(const truth_table& f);

/// Inverse of to_anf (the Moebius transform is an involution).
inline truth_table from_anf(const truth_table& a) { return to_anf(a); }

/// Algebraic degree; degree of the zero function is 0.
uint32_t degree(const truth_table& f);

/// True if f(x) = c0 ^ (c . x): degree <= 1.
bool is_affine_function(const truth_table& f);

// --- The five affine operations (paper Definition 2.1) ---------------------

/// (1) Swap variables i and j.
inline truth_table op_swap(const truth_table& f, uint32_t i, uint32_t j)
{
    return f.swap_vars(i, j);
}

/// (2) Complement variable i.
inline truth_table op_input_complement(const truth_table& f, uint32_t i)
{
    return f.flip_var(i);
}

/// (3) Complement the function.
inline truth_table op_output_complement(const truth_table& f) { return ~f; }

/// (4) Translational operation: substitute x_i <- x_i ^ x_j (i != j).
truth_table op_translation(const truth_table& f, uint32_t i, uint32_t j);

/// (5) Disjoint translational operation: f <- f ^ x_i.
inline truth_table op_disjoint_translation(const truth_table& f, uint32_t i)
{
    return f ^ truth_table::projection(f.num_vars(), i);
}

/// General affine evaluation g(y) = f(My ^ c) ^ (v . y) ^ s, where column k
/// of M is `columns[k]` (an n-bit mask).  Used to verify classification
/// results: every canonization is checked against this ground truth.
truth_table apply_affine(const truth_table& f,
                         std::span<const uint32_t> columns, uint32_t c,
                         uint32_t v, bool s);

} // namespace mcx
