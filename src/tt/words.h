// Word-parallel primitives on single-word truth tables (<= 6 variables).
//
// Every function here transforms a whole 64-bit truth table with a handful
// of mask/shift operations instead of a loop over its 2^n bits.  They are
// the substrate of the hot cut->canonize->classify->rewrite loop: the NPN
// canonizer walks its candidate space by one flip or swap per step, and cut
// enumeration re-expresses child cut functions over merged leaf sets purely
// with insertions of don't-care variables.
//
// Conventions match truth_table: bit x of the word is f(x), variable i
// contributes bit i of the index x.  Callers keep words masked to
// tt_mask(n); all operations preserve that invariant (a flip or swap only
// permutes bits within the valid range).
#pragma once

#include "tt/truth_table.h"

#include <cstdint>

namespace mcx {

/// g(x) = f(x ^ e_k): complement variable k (k < 6).
constexpr uint64_t tt_flip_word(uint64_t w, uint32_t k)
{
    const uint64_t m = tt_projection_word(k);
    const uint32_t s = 1u << k;
    return ((w & m) >> s) | ((w & ~m) << s);
}

/// g with variables i and j exchanged (i, j < 6).  Delta-swap of the two
/// strips where exactly one of the two index bits is set.
constexpr uint64_t tt_swap_word(uint64_t w, uint32_t i, uint32_t j)
{
    if (i == j)
        return w;
    if (i > j) {
        const uint32_t t = i;
        i = j;
        j = t;
    }
    const uint64_t lo = tt_projection_word(i) & ~tt_projection_word(j);
    const uint64_t hi = ~tt_projection_word(i) & tt_projection_word(j);
    const uint32_t s = (1u << j) - (1u << i);
    return (w & ~(lo | hi)) | ((w & lo) << s) | ((w & hi) >> s);
}

/// Insert a don't-care variable at position j into an m-variable table
/// (m < 6, j <= m): the result has m + 1 variables, old variables >= j are
/// shifted up by one, and the result ignores its variable j.
///
/// Implementation: each source block of 2^j bits (one block per assignment
/// of the old variables >= j) must move to twice its block index and then
/// be duplicated.  The move is a falling sequence of masked shifts — when
/// the block-index bits above t are already spread out, index bit t of a
/// block sits at bit j + t of its current position, so one projection mask
/// selects exactly the bits that still need to travel 2^(j+t) places.
constexpr uint64_t tt_insert_var_word(uint64_t w, uint32_t m, uint32_t j)
{
    for (uint32_t t = m - j; t-- > 0;) {
        const uint64_t sel = tt_projection_word(j + t);
        w = (w & ~sel) | ((w & sel) << (1u << (j + t)));
    }
    return w | (w << (1u << j));
}

} // namespace mcx
