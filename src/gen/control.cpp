#include "gen/control.h"

#include "gen/word_ops.h"

#include <random>
#include <stdexcept>

namespace mcx {

namespace {

/// All minterms of the given inputs (recursive halving so products share).
std::vector<signal> decode_all(xag& net, std::span<const signal> inputs)
{
    if (inputs.size() == 1)
        return {!inputs[0], inputs[0]};
    const auto half = inputs.size() / 2;
    const auto low = decode_all(net, inputs.subspan(0, half));
    const auto high = decode_all(net, inputs.subspan(half));
    std::vector<signal> products;
    products.reserve(low.size() * high.size());
    for (const auto h : high)
        for (const auto l : low)
            products.push_back(net.create_and(h, l));
    return products;
}

} // namespace

xag gen_decoder(uint32_t address_bits)
{
    xag net;
    const auto address = input_word(net, address_bits);
    for (const auto line : decode_all(net, address))
        net.create_po(line);
    return net;
}

xag gen_priority_encoder(uint32_t requests)
{
    xag net;
    const auto req = input_word(net, requests);
    uint32_t log = 0;
    while ((1u << log) < requests)
        ++log;

    auto none_above = net.get_constant(true);
    word index(log, net.get_constant(false));
    auto valid = net.get_constant(false);
    for (uint32_t p = requests; p-- > 0;) {
        const auto wins = net.create_and(none_above, req[p]);
        none_above = net.create_and(none_above, !req[p]);
        valid = net.create_or(valid, req[p]);
        for (uint32_t k = 0; k < log; ++k)
            if ((p >> k) & 1)
                index[k] = net.create_or(index[k], wins);
    }
    for (const auto s : index)
        net.create_po(s);
    net.create_po(valid);
    return net;
}

xag gen_round_robin_arbiter(uint32_t requests)
{
    xag net;
    const auto req = input_word(net, requests);
    const auto pointer = input_word(net, requests); // one-hot priority seat

    // A token starts at the pointer position and travels (cyclically) until
    // it meets a request; unrolling two laps resolves the wrap-around, and
    // the token dies when it returns to the pointer seat.
    std::vector<signal> grant(requests, net.get_constant(false));
    auto token = net.get_constant(false);
    for (uint32_t lap = 0; lap < 2; ++lap)
        for (uint32_t i = 0; i < requests; ++i) {
            if (lap == 0)
                token = net.create_or(token, pointer[i]);
            else
                token = net.create_and(token, !pointer[i]);
            grant[i] = net.create_or(grant[i], net.create_and(token, req[i]));
            token = net.create_and(token, !req[i]);
        }

    auto any = net.get_constant(false);
    for (const auto g : grant) {
        net.create_po(g);
        any = net.create_or(any, g);
    }
    net.create_po(any);
    return net;
}

xag gen_voter(uint32_t inputs)
{
    xag net;
    std::vector<signal> bag;
    for (uint32_t i = 0; i < inputs; ++i)
        bag.push_back(net.create_pi());

    // Carry-save reduction: repeatedly compress triples of equal weight via
    // full adders until every weight has at most one bit -> popcount.
    std::vector<std::vector<signal>> weights{bag};
    for (size_t w = 0; w < weights.size(); ++w) {
        while (weights[w].size() > 1) {
            if (weights.size() == w + 1)
                weights.emplace_back();
            auto& level = weights[w];
            if (level.size() >= 3) {
                const auto a = level[level.size() - 1];
                const auto b = level[level.size() - 2];
                const auto c = level[level.size() - 3];
                level.resize(level.size() - 3);
                const auto axb = net.create_xor(a, b);
                const auto sum = net.create_xor(axb, c);
                const auto carry = net.create_or(net.create_and(a, b),
                                                 net.create_and(axb, c));
                weights[w].push_back(sum);
                weights[w + 1].push_back(carry);
            } else {
                const auto a = level[level.size() - 1];
                const auto b = level[level.size() - 2];
                level.resize(level.size() - 2);
                const auto sum = net.create_xor(a, b);
                const auto carry = net.create_and(a, b);
                weights[w].push_back(sum);
                weights[w + 1].push_back(carry);
            }
        }
    }
    word count;
    for (auto& level : weights)
        count.push_back(level.empty() ? net.get_constant(false) : level[0]);

    // Majority: popcount > inputs / 2.
    const auto threshold =
        constant_word(net, inputs / 2, static_cast<uint32_t>(count.size()));
    net.create_po(less_than_unsigned(net, threshold, count));
    return net;
}

xag gen_alu_control(uint32_t funct_bits, uint32_t controls)
{
    xag net;
    const auto op = input_word(net, 2);
    const auto funct = input_word(net, funct_bits);

    const auto op_lines = decode_all(net, op);          // 4 op classes
    const auto funct_lines = decode_all(net, funct);    // 2^funct_bits

    // R-type (op class 2) selects by funct; other classes force fixed
    // control patterns — a MIPS-style main/ALU decoder, widened to
    // `controls` output lines.
    for (uint32_t c = 0; c < controls; ++c) {
        auto line = net.get_constant(false);
        // Fixed patterns for op classes 0, 1, 3.
        if (c % 3 == 0)
            line = net.create_or(line, op_lines[0]);
        if (c % 4 == 1)
            line = net.create_or(line, op_lines[1]);
        if (c % 5 == 2)
            line = net.create_or(line, op_lines[3]);
        // R-type: spread funct minterms across control lines.
        auto rsel = net.get_constant(false);
        for (uint32_t f = c; f < funct_lines.size(); f += controls / 2 + 1)
            rsel = net.create_or(rsel, funct_lines[f]);
        line = net.create_or(line, net.create_and(op_lines[2], rsel));
        net.create_po(line);
    }
    return net;
}

xag gen_xy_router(uint32_t coord_bits)
{
    xag net;
    const auto cur_x = input_word(net, coord_bits);
    const auto cur_y = input_word(net, coord_bits);
    const auto dst_x = input_word(net, coord_bits);
    const auto dst_y = input_word(net, coord_bits);

    const auto x_less = less_than_unsigned(net, cur_x, dst_x);   // go east
    const auto x_greater = less_than_unsigned(net, dst_x, cur_x); // go west
    const auto x_done = net.create_nor(x_less, x_greater);
    const auto y_less = less_than_unsigned(net, cur_y, dst_y);   // go north
    const auto y_greater = less_than_unsigned(net, dst_y, cur_y); // go south
    const auto y_done = net.create_nor(y_less, y_greater);

    // XY routing: x first, then y; plus per-axis difference bits as the
    // look-ahead part.
    net.create_po(x_less);
    net.create_po(x_greater);
    net.create_po(net.create_and(x_done, y_less));
    net.create_po(net.create_and(x_done, y_greater));
    net.create_po(net.create_and(x_done, y_done)); // arrived
    const auto dx = sub_words(net, dst_x, cur_x).difference;
    const auto dy = sub_words(net, dst_y, cur_y).difference;
    for (uint32_t i = 0; i < coord_bits && net.num_pos() < 5 + 2 * coord_bits;
         ++i) {
        net.create_po(dx[i]);
        net.create_po(dy[i]);
    }
    return net;
}

xag gen_random_control(uint32_t pis, uint32_t gates, uint32_t pos,
                       uint64_t seed)
{
    std::mt19937_64 rng{seed};
    xag net;
    std::vector<signal> pool;
    for (uint32_t i = 0; i < pis; ++i)
        pool.push_back(net.create_pi());

    const auto pick = [&] {
        return pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
    };
    while (net.num_gates() < gates) {
        switch (rng() % 5) {
        case 0: // 2-level AND-OR
            pool.push_back(net.create_or(net.create_and(pick(), pick()),
                                         net.create_and(pick(), pick())));
            break;
        case 1: // mux
            pool.push_back(net.create_ite(pick(), pick(), pick()));
            break;
        case 2:
            pool.push_back(net.create_and(pick(), pick()));
            break;
        case 3: // enable chain, control-style
            pool.push_back(net.create_and(pick(), net.create_or(pick(),
                                                                pick())));
            break;
        default:
            pool.push_back(net.create_xor(pick(), pick()));
        }
    }
    for (uint32_t i = 0; i < pos; ++i)
        net.create_po(pool[pool.size() - 1 - (i % (pool.size() - pis))]);
    return net;
}

} // namespace mcx
