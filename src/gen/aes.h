// AES-128 circuit generators (paper Table 2, substitution X4).
//
// The S-box is built as composite-field GF(((2^2)^2)^2) inversion plus the
// AES affine map: all field towers and the basis-change matrices are
// *derived at generator-construction time* (the isomorphism is found by
// search, not transcribed), so the circuit is correct by construction and
// costs ~36 AND gates per S-box — close to the Boyar-Peralta 32 used by the
// paper's source circuits, i.e. AES starts near-MC-optimal, which is why
// the paper reports 0 % improvement on it.
#pragma once

#include "xag/xag.h"

#include <array>
#include <cstdint>

namespace mcx {

/// Software reference S-box (brute-force GF(2^8) inversion + affine map).
uint8_t aes_sbox_reference(uint8_t x);

/// Append one S-box to `net`; input/output bytes are LSB-first signal
/// arrays.
std::array<signal, 8> aes_sbox_circuit(xag& net,
                                       const std::array<signal, 8>& in);

/// AES-128 encryption, key schedule computed inside the circuit:
/// 256 PIs (128 plaintext + 128 key) -> 128 POs (paper row
/// "AES (No Key Expansion)": 256 inputs).
xag gen_aes128(bool expanded_key = false);

/// AES-128 with pre-expanded round keys as inputs: 128 + 11*128 = 1536 PIs
/// (paper row "AES (Key Expansion)").
inline xag gen_aes128_expanded() { return gen_aes128(true); }

/// Software reference encryption for tests.
std::array<uint8_t, 16> aes128_encrypt_reference(
    const std::array<uint8_t, 16>& plaintext,
    const std::array<uint8_t, 16>& key);

} // namespace mcx
