#include "gen/hashes.h"

#include "gen/word_ops.h"

#include <cmath>
#include <stdexcept>

namespace mcx {

namespace {

/// 32-bit word from block bytes, little endian (MD5).
word le_word(std::span<const signal> block_bits, uint32_t word_index)
{
    word w(32);
    for (uint32_t i = 0; i < 32; ++i)
        w[i] = block_bits[8 * (4 * word_index + i / 8) + i % 8];
    return w;
}

/// 32-bit word from block bytes, big endian (SHA family).
word be_word(std::span<const signal> block_bits, uint32_t word_index)
{
    word w(32);
    for (uint32_t i = 0; i < 32; ++i)
        w[i] = block_bits[8 * (4 * word_index + 3 - i / 8) + i % 8];
    return w;
}

/// Rotate a 32-bit word left (pure wiring).
word rotl(const word& w, uint32_t r) { return rotate_left(w, r); }

/// Rotate right.
word rotr(const word& w, uint32_t r) { return rotate_left(w, 32 - (r % 32)); }

/// Bitwise if-then-else (one AND per bit): sel ? a : b.
word ite_word(xag& net, const word& sel, const word& a, const word& b)
{
    word r(32);
    for (uint32_t i = 0; i < 32; ++i)
        r[i] = net.create_ite(sel[i], a[i], b[i]);
    return r;
}

/// Bitwise majority, textbook 3-AND form (the optimizer's favourite food).
word maj_word(xag& net, const word& a, const word& b, const word& c)
{
    word r(32);
    for (uint32_t i = 0; i < 32; ++i)
        r[i] = net.create_maj_naive(a[i], b[i], c[i]);
    return r;
}

void output_word_le(xag& net, const word& w)
{
    for (uint32_t i = 0; i < 32; ++i)
        net.create_po(w[i]); // byte order == bit group order, LSB-first
}

void output_word_be(xag& net, const word& w)
{
    for (uint32_t byte = 4; byte-- > 0;)
        for (uint32_t bit = 0; bit < 8; ++bit)
            net.create_po(w[8 * byte + bit]);
}

} // namespace

xag gen_md5()
{
    xag net;
    std::vector<signal> block;
    for (int i = 0; i < 512; ++i)
        block.push_back(net.create_pi());

    std::array<word, 16> m;
    for (uint32_t i = 0; i < 16; ++i)
        m[i] = le_word(block, i);

    constexpr std::array<uint32_t, 16> shifts{7, 12, 17, 22, 5, 9,  14, 20,
                                              4, 11, 16, 23, 6, 10, 15, 21};

    word a = constant_word(net, 0x67452301u, 32);
    word b = constant_word(net, 0xefcdab89u, 32);
    word c = constant_word(net, 0x98badcfeu, 32);
    word d = constant_word(net, 0x10325476u, 32);
    const word a0 = a, b0 = b, c0 = c, d0 = d;

    for (uint32_t i = 0; i < 64; ++i) {
        word f;
        uint32_t g = 0;
        if (i < 16) {
            f = ite_word(net, b, c, d);
            g = i;
        } else if (i < 32) {
            f = ite_word(net, d, b, c);
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = xor_words(net, xor_words(net, b, c), d);
            g = (3 * i + 5) % 16;
        } else {
            // I(b,c,d) = c ^ (b | ~d)
            f = xor_words(net, c, or_words(net, b, not_word(d)));
            g = (7 * i) % 16;
        }
        const auto k = static_cast<uint32_t>(
            std::floor(std::fabs(std::sin(static_cast<double>(i) + 1.0)) *
                       4294967296.0));
        auto sum = add_mod(net, a, f);
        sum = add_mod(net, sum, constant_word(net, k, 32));
        sum = add_mod(net, sum, m[g]);
        const auto rotated = rotl(sum, shifts[4 * (i / 16) + i % 4]);
        const auto new_b = add_mod(net, b, rotated);
        a = d;
        d = c;
        c = b;
        b = new_b;
    }
    output_word_le(net, add_mod(net, a0, a));
    output_word_le(net, add_mod(net, b0, b));
    output_word_le(net, add_mod(net, c0, c));
    output_word_le(net, add_mod(net, d0, d));
    return net;
}

xag gen_sha1()
{
    xag net;
    std::vector<signal> block;
    for (int i = 0; i < 512; ++i)
        block.push_back(net.create_pi());

    std::array<word, 80> w;
    for (uint32_t i = 0; i < 16; ++i)
        w[i] = be_word(block, i);
    for (uint32_t i = 16; i < 80; ++i)
        w[i] = rotl(xor_words(net,
                              xor_words(net, w[i - 3], w[i - 8]),
                              xor_words(net, w[i - 14], w[i - 16])),
                    1);

    word h0 = constant_word(net, 0x67452301u, 32);
    word h1 = constant_word(net, 0xefcdab89u, 32);
    word h2 = constant_word(net, 0x98badcfeu, 32);
    word h3 = constant_word(net, 0x10325476u, 32);
    word h4 = constant_word(net, 0xc3d2e1f0u, 32);
    word a = h0, b = h1, c = h2, d = h3, e = h4;

    for (uint32_t i = 0; i < 80; ++i) {
        word f;
        uint32_t k = 0;
        if (i < 20) {
            f = ite_word(net, b, c, d);
            k = 0x5a827999;
        } else if (i < 40) {
            f = xor_words(net, xor_words(net, b, c), d);
            k = 0x6ed9eba1;
        } else if (i < 60) {
            f = maj_word(net, b, c, d);
            k = 0x8f1bbcdc;
        } else {
            f = xor_words(net, xor_words(net, b, c), d);
            k = 0xca62c1d6;
        }
        auto temp = add_mod(net, rotl(a, 5), f);
        temp = add_mod(net, temp, e);
        temp = add_mod(net, temp, constant_word(net, k, 32));
        temp = add_mod(net, temp, w[i]);
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = temp;
    }
    output_word_be(net, add_mod(net, h0, a));
    output_word_be(net, add_mod(net, h1, b));
    output_word_be(net, add_mod(net, h2, c));
    output_word_be(net, add_mod(net, h3, d));
    output_word_be(net, add_mod(net, h4, e));
    return net;
}

xag gen_sha256()
{
    xag net;
    std::vector<signal> block;
    for (int i = 0; i < 512; ++i)
        block.push_back(net.create_pi());

    // Round and initialization constants from the fractional parts of the
    // cube/square roots of the first primes (computed, not transcribed).
    std::array<uint32_t, 64> k{};
    std::array<uint32_t, 8> h_init{};
    {
        std::array<uint32_t, 64> primes{};
        uint32_t found = 0;
        for (uint32_t p = 2; found < 64; ++p) {
            bool prime = true;
            for (uint32_t q = 2; q * q <= p; ++q)
                if (p % q == 0) {
                    prime = false;
                    break;
                }
            if (prime)
                primes[found++] = p;
        }
        for (int i = 0; i < 64; ++i) {
            const long double root = cbrtl(static_cast<long double>(primes[i]));
            k[i] = static_cast<uint32_t>(
                std::floor((root - std::floor(root)) * 4294967296.0L));
        }
        for (int i = 0; i < 8; ++i) {
            const long double root = sqrtl(static_cast<long double>(primes[i]));
            h_init[i] = static_cast<uint32_t>(
                std::floor((root - std::floor(root)) * 4294967296.0L));
        }
    }

    std::array<word, 64> w;
    for (uint32_t i = 0; i < 16; ++i)
        w[i] = be_word(block, i);
    for (uint32_t i = 16; i < 64; ++i) {
        const auto s0 = xor_words(
            net, xor_words(net, rotr(w[i - 15], 7), rotr(w[i - 15], 18)),
            shift_right(net, w[i - 15], 3));
        const auto s1 = xor_words(
            net, xor_words(net, rotr(w[i - 2], 17), rotr(w[i - 2], 19)),
            shift_right(net, w[i - 2], 10));
        w[i] = add_mod(net, add_mod(net, w[i - 16], s0),
                       add_mod(net, w[i - 7], s1));
    }

    std::array<word, 8> h;
    for (int i = 0; i < 8; ++i)
        h[i] = constant_word(net, h_init[i], 32);
    word a = h[0], b = h[1], c = h[2], d = h[3];
    word e = h[4], f = h[5], g = h[6], hh = h[7];

    for (uint32_t i = 0; i < 64; ++i) {
        const auto big_s1 =
            xor_words(net, xor_words(net, rotr(e, 6), rotr(e, 11)),
                      rotr(e, 25));
        const auto ch = ite_word(net, e, f, g);
        auto temp1 = add_mod(net, hh, big_s1);
        temp1 = add_mod(net, temp1, ch);
        temp1 = add_mod(net, temp1, constant_word(net, k[i], 32));
        temp1 = add_mod(net, temp1, w[i]);
        const auto big_s0 =
            xor_words(net, xor_words(net, rotr(a, 2), rotr(a, 13)),
                      rotr(a, 22));
        const auto maj = maj_word(net, a, b, c);
        const auto temp2 = add_mod(net, big_s0, maj);
        hh = g;
        g = f;
        f = e;
        e = add_mod(net, d, temp1);
        d = c;
        c = b;
        b = a;
        a = add_mod(net, temp1, temp2);
    }
    const std::array<word, 8> final_state{a, b, c, d, e, f, g, hh};
    for (int i = 0; i < 8; ++i)
        output_word_be(net, add_mod(net, h[i], final_state[i]));
    return net;
}

std::array<uint8_t, 64> pad_single_block(const std::vector<uint8_t>& message,
                                         bool big_endian_length)
{
    if (message.size() > 55)
        throw std::invalid_argument{"pad_single_block: message too long"};
    std::array<uint8_t, 64> block{};
    for (size_t i = 0; i < message.size(); ++i)
        block[i] = message[i];
    block[message.size()] = 0x80;
    const uint64_t bit_length = 8 * message.size();
    for (int i = 0; i < 8; ++i) {
        if (big_endian_length)
            block[56 + i] = static_cast<uint8_t>(bit_length >> (8 * (7 - i)));
        else
            block[56 + i] = static_cast<uint8_t>(bit_length >> (8 * i));
    }
    return block;
}

} // namespace mcx
