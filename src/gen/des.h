// DES circuit generator (paper Table 2 rows "DES (No/With Key Expansion)").
//
// All permutations (IP, FP, E, P, PC-1, PC-2, rotations) are pure wiring;
// the AND gates come from the eight 6->4 S-boxes, generated as shared
// minterm decoders with XOR accumulation (disjoint minterms), which lands
// the initial multiplicative complexity in the same regime as the paper's
// source circuit (~18k ANDs for 16 rounds).
#pragma once

#include "xag/xag.h"

#include <cstdint>

namespace mcx {

/// Full 16-round DES, key schedule (wiring only) inside:
/// 128 PIs (64 plaintext + 64 key incl. parity) -> 64 POs.
xag gen_des(uint32_t rounds = 16);

/// DES with pre-expanded round keys: 64 + 16*48 = 832 PIs -> 64 POs.
xag gen_des_expanded(uint32_t rounds = 16);

/// Software reference for tests.
uint64_t des_encrypt_reference(uint64_t plaintext, uint64_t key);

} // namespace mcx
