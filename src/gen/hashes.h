// Hash-compression circuit generators (paper Table 2 rows MD5, SHA-1,
// SHA-256).  One 512-bit message block, IV fixed to the standard initial
// values, digest as primary outputs.  All word additions are ripple-carry
// (Fig. 1-style full adders) — the generic structure whose AND count the
// paper's method reduces by ~66 %.
//
// PI convention: 64 message bytes in order; each byte LSB-first.
// PO convention: digest bytes in standard order; each byte LSB-first.
#pragma once

#include "xag/xag.h"

#include <array>
#include <cstdint>
#include <vector>

namespace mcx {

/// MD5 of one padded block: 512 PIs -> 128 POs.
xag gen_md5();

/// SHA-1 of one padded block: 512 PIs -> 160 POs.
xag gen_sha1();

/// SHA-256 of one padded block: 512 PIs -> 256 POs.
xag gen_sha256();

/// Single-block padding of a short message (<= 55 bytes) for the MD5 (little
/// endian length) or SHA (big endian length) families.
std::array<uint8_t, 64> pad_single_block(const std::vector<uint8_t>& message,
                                         bool big_endian_length);

} // namespace mcx
