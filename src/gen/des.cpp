#include "gen/des.h"

#include "gen/word_ops.h"

#include <array>
#include <stdexcept>

namespace mcx {

namespace {

// FIPS 46-3 tables (1-based bit indices, bit 1 = MSB as in the standard).

constexpr std::array<uint8_t, 64> ip_table{
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr std::array<uint8_t, 64> fp_table{
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr std::array<uint8_t, 48> e_table{
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11,
    12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
    22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr std::array<uint8_t, 32> p_table{
    16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23, 26, 5,  18, 31, 10,
    2,  8, 24, 14, 32, 27, 3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

constexpr std::array<uint8_t, 56> pc1_table{
    57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
    10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
    14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr std::array<uint8_t, 48> pc2_table{
    14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10, 23, 19, 12, 4,
    26, 8,  16, 7,  27, 20, 13, 2,  41, 52, 31, 37, 47, 55, 30, 40,
    51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr std::array<uint8_t, 16> shift_schedule{1, 1, 2, 2, 2, 2, 2, 2,
                                                 1, 2, 2, 2, 2, 2, 2, 1};

constexpr uint8_t sbox_table[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

/// S-box lookup with the standard row/column convention: bits b1..b6
/// (MSB-first); row = b1 b6, column = b2 b3 b4 b5.
uint8_t sbox_lookup(int box, uint8_t six_bits)
{
    const int row = ((six_bits >> 4) & 2) | (six_bits & 1);
    const int col = (six_bits >> 1) & 0xf;
    return sbox_table[box][16 * row + col];
}

/// Wire permutation; vectors are MSB-first to match the tables.
template <size_t N, size_t M>
std::array<signal, N> permute(const std::array<uint8_t, N>& table,
                              const std::array<signal, M>& in)
{
    std::array<signal, N> out;
    for (size_t i = 0; i < N; ++i)
        out[i] = in[table[i] - 1];
    return out;
}

/// One S-box as a circuit: a shared 6-input minterm decoder feeding XOR
/// accumulators (minterms are disjoint, so XOR == OR and the ors are free).
std::array<signal, 4> sbox_circuit(xag& net, int box,
                                   const std::array<signal, 6>& in)
{
    // in is MSB-first (b1..b6).
    std::array<signal, 4> out{net.get_constant(false),
                              net.get_constant(false),
                              net.get_constant(false),
                              net.get_constant(false)};
    // Half decoders over b1..b3 and b4..b6.
    std::array<signal, 8> hi, lo;
    for (int v = 0; v < 8; ++v) {
        hi[v] = net.create_and(
            net.create_and(in[0] ^ !((v >> 2) & 1), in[1] ^ !((v >> 1) & 1)),
            in[2] ^ !(v & 1));
        lo[v] = net.create_and(
            net.create_and(in[3] ^ !((v >> 2) & 1), in[4] ^ !((v >> 1) & 1)),
            in[5] ^ !(v & 1));
    }
    for (int v = 0; v < 64; ++v) {
        const auto value = sbox_lookup(box, static_cast<uint8_t>(v));
        if (value == 0)
            continue;
        const auto minterm = net.create_and(hi[v >> 3], lo[v & 7]);
        for (int k = 0; k < 4; ++k)
            if ((value >> (3 - k)) & 1) // out is MSB-first
                out[k] = net.create_xor(out[k], minterm);
    }
    return out;
}

/// Feistel round function f(R, K).
std::array<signal, 32> feistel(xag& net, const std::array<signal, 32>& right,
                               const std::array<signal, 48>& round_key)
{
    const auto expanded = permute(e_table, right);
    std::array<signal, 48> mixed;
    for (int i = 0; i < 48; ++i)
        mixed[i] = net.create_xor(expanded[i], round_key[i]);
    std::array<signal, 32> substituted;
    for (int box = 0; box < 8; ++box) {
        std::array<signal, 6> chunk;
        for (int i = 0; i < 6; ++i)
            chunk[i] = mixed[6 * box + i];
        const auto nibble = sbox_circuit(net, box, chunk);
        for (int i = 0; i < 4; ++i)
            substituted[4 * box + i] = nibble[i];
    }
    return permute(p_table, substituted);
}

std::array<std::array<signal, 48>, 16> key_schedule(
    xag& net, const std::array<signal, 64>& key, uint32_t rounds)
{
    (void)net;
    const auto cd0 = permute(pc1_table, key);
    std::array<signal, 28> c, d;
    for (int i = 0; i < 28; ++i) {
        c[i] = cd0[i];
        d[i] = cd0[28 + i];
    }
    std::array<std::array<signal, 48>, 16> keys;
    for (uint32_t r = 0; r < rounds; ++r) {
        const auto s = shift_schedule[r];
        std::array<signal, 28> nc, nd;
        for (int i = 0; i < 28; ++i) {
            nc[i] = c[(i + s) % 28];
            nd[i] = d[(i + s) % 28];
        }
        c = nc;
        d = nd;
        std::array<signal, 56> cd;
        for (int i = 0; i < 28; ++i) {
            cd[i] = c[i];
            cd[28 + i] = d[i];
        }
        keys[r] = permute(pc2_table, cd);
    }
    return keys;
}

xag build_des(bool expanded, uint32_t rounds)
{
    if (rounds == 0 || rounds > 16)
        throw std::invalid_argument{"gen_des: 1..16 rounds"};
    xag net;
    std::array<signal, 64> plaintext;
    for (auto& s : plaintext)
        s = net.create_pi();

    std::array<std::array<signal, 48>, 16> round_keys;
    if (expanded) {
        for (uint32_t r = 0; r < rounds; ++r)
            for (auto& s : round_keys[r])
                s = net.create_pi();
    } else {
        std::array<signal, 64> key;
        for (auto& s : key)
            s = net.create_pi();
        round_keys = key_schedule(net, key, rounds);
    }

    const auto permuted = permute(ip_table, plaintext);
    std::array<signal, 32> left, right;
    for (int i = 0; i < 32; ++i) {
        left[i] = permuted[i];
        right[i] = permuted[32 + i];
    }
    for (uint32_t r = 0; r < rounds; ++r) {
        const auto f = feistel(net, right, round_keys[r]);
        std::array<signal, 32> new_right;
        for (int i = 0; i < 32; ++i)
            new_right[i] = net.create_xor(left[i], f[i]);
        left = right;
        right = new_right;
    }
    // Pre-output: R16 L16 (the halves are swapped before FP).
    std::array<signal, 64> preoutput;
    for (int i = 0; i < 32; ++i) {
        preoutput[i] = right[i];
        preoutput[32 + i] = left[i];
    }
    for (const auto s : permute(fp_table, preoutput))
        net.create_po(s);
    return net;
}

} // namespace

xag gen_des(uint32_t rounds) { return build_des(false, rounds); }

xag gen_des_expanded(uint32_t rounds) { return build_des(true, rounds); }

uint64_t des_encrypt_reference(uint64_t plaintext, uint64_t key)
{
    // Bit 1 of the standard = MSB of the 64-bit value.
    const auto get = [](uint64_t v, int bit_1based, int width) {
        return (v >> (width - bit_1based)) & 1;
    };

    // Key schedule.
    uint64_t cd = 0;
    for (int i = 0; i < 56; ++i)
        cd = (cd << 1) | get(key, pc1_table[i], 64);
    uint32_t c = static_cast<uint32_t>(cd >> 28) & 0xfffffff;
    uint32_t d = static_cast<uint32_t>(cd) & 0xfffffff;
    uint64_t round_keys[16];
    for (int r = 0; r < 16; ++r) {
        const auto s = shift_schedule[r];
        c = ((c << s) | (c >> (28 - s))) & 0xfffffff;
        d = ((d << s) | (d >> (28 - s))) & 0xfffffff;
        const uint64_t merged = (static_cast<uint64_t>(c) << 28) | d;
        uint64_t rk = 0;
        for (int i = 0; i < 48; ++i)
            rk = (rk << 1) | get(merged, pc2_table[i], 56);
        round_keys[r] = rk;
    }

    uint64_t ip = 0;
    for (int i = 0; i < 64; ++i)
        ip = (ip << 1) | get(plaintext, ip_table[i], 64);
    uint32_t left = static_cast<uint32_t>(ip >> 32);
    uint32_t right = static_cast<uint32_t>(ip);

    for (int r = 0; r < 16; ++r) {
        uint64_t expanded = 0;
        for (int i = 0; i < 48; ++i)
            expanded = (expanded << 1) | get(right, e_table[i], 32);
        expanded ^= round_keys[r];
        uint32_t substituted = 0;
        for (int box = 0; box < 8; ++box) {
            const auto chunk =
                static_cast<uint8_t>((expanded >> (42 - 6 * box)) & 0x3f);
            substituted = (substituted << 4) | sbox_lookup(box, chunk);
        }
        uint32_t f = 0;
        for (int i = 0; i < 32; ++i)
            f = (f << 1) | get(substituted, p_table[i], 32);
        const uint32_t new_right = left ^ f;
        left = right;
        right = new_right;
    }
    const uint64_t preoutput =
        (static_cast<uint64_t>(right) << 32) | left;
    uint64_t out = 0;
    for (int i = 0; i < 64; ++i)
        out = (out << 1) | get(preoutput, fp_table[i], 64);
    return out;
}

} // namespace mcx
