#include "gen/aes.h"

#include <stdexcept>
#include <vector>

namespace mcx {

namespace {

// ---------------------------------------------------------------------
// Software tower-field arithmetic.
//   GF(4)   = GF(2)[u] / (u^2 + u + 1),  elements in 2 bits
//   GF(16)  = GF(4)[v] / (v^2 + v + u),  elements in 4 bits (lo | hi<<2)
//   GF(256) = GF(16)[w] / (w^2 + w + L), elements in 8 bits (lo | hi<<4)
// ---------------------------------------------------------------------

uint8_t gf4_mul(uint8_t a, uint8_t b)
{
    const uint8_t a0 = a & 1, a1 = (a >> 1) & 1;
    const uint8_t b0 = b & 1, b1 = (b >> 1) & 1;
    const uint8_t p = a1 & b1;
    const uint8_t c0 = (a0 & b0) ^ p;
    const uint8_t c1 = (a0 & b1) ^ (a1 & b0) ^ p;
    return c0 | (c1 << 1);
}

uint8_t gf16_mul(uint8_t a, uint8_t b)
{
    const uint8_t al = a & 3, ah = (a >> 2) & 3;
    const uint8_t bl = b & 3, bh = (b >> 2) & 3;
    const uint8_t pll = gf4_mul(al, bl);
    const uint8_t phh = gf4_mul(ah, bh);
    const uint8_t pm = gf4_mul(al ^ ah, bl ^ bh);
    const uint8_t lo = pll ^ gf4_mul(phh, 2); // phi = u
    const uint8_t hi = pm ^ pll;
    return lo | (hi << 2);
}

uint8_t gf256_tower_mul(uint8_t a, uint8_t b, uint8_t lambda)
{
    const uint8_t al = a & 0xf, ah = a >> 4;
    const uint8_t bl = b & 0xf, bh = b >> 4;
    const uint8_t pll = gf16_mul(al, bl);
    const uint8_t phh = gf16_mul(ah, bh);
    const uint8_t pm = gf16_mul(al ^ ah, bl ^ bh);
    const uint8_t lo = pll ^ gf16_mul(phh, lambda);
    const uint8_t hi = pm ^ pll;
    return lo | (hi << 4);
}

/// lambda making w^2 + w + lambda irreducible over GF(16): any value not of
/// the form t^2 + t.
uint8_t find_lambda()
{
    bool image[16] = {};
    for (uint8_t t = 0; t < 16; ++t)
        image[gf16_mul(t, t) ^ t] = true;
    for (uint8_t l = 0; l < 16; ++l)
        if (!image[l])
            return l;
    throw std::logic_error{"find_lambda: unreachable"};
}

/// AES polynomial-basis multiplication (mod x^8 + x^4 + x^3 + x + 1).
uint8_t aes_mul(uint8_t a, uint8_t b)
{
    uint8_t r = 0;
    while (b) {
        if (b & 1)
            r ^= a;
        const bool high = a & 0x80;
        a <<= 1;
        if (high)
            a ^= 0x1b;
        b >>= 1;
    }
    return r;
}

struct tower_context {
    uint8_t lambda = 0;
    std::array<uint8_t, 8> to_tower{};   ///< T columns: image of AES bit i
    std::array<uint8_t, 8> from_tower{}; ///< T^-1 columns
    std::array<uint8_t, 8> out_linear{}; ///< (AES affine) o T^-1 columns
};

/// Find the field isomorphism AES -> tower by mapping a generator.
tower_context build_tower_context()
{
    tower_context ctx;
    ctx.lambda = find_lambda();

    // Powers of the AES generator 0x03.
    std::array<uint8_t, 256> aes_pow{};
    std::array<int, 256> aes_log{};
    {
        uint8_t x = 1;
        for (int i = 0; i < 255; ++i) {
            aes_pow[i] = x;
            aes_log[x] = i;
            x = aes_mul(x, 0x03);
        }
    }

    const auto order = [&](uint8_t h) {
        uint8_t x = h;
        int n = 1;
        while (x != 1) {
            x = gf256_tower_mul(x, h, ctx.lambda);
            ++n;
            if (n > 255)
                return 0;
        }
        return n;
    };

    std::array<uint8_t, 256> phi{};
    bool found = false;
    for (uint16_t h = 2; h < 256 && !found; ++h) {
        if (order(static_cast<uint8_t>(h)) != 255)
            continue;
        phi[0] = 0;
        uint8_t x = 1;
        for (int i = 0; i < 255; ++i) {
            phi[aes_pow[i]] = x;
            x = gf256_tower_mul(x, static_cast<uint8_t>(h), ctx.lambda);
        }
        // Additivity check makes phi a field isomorphism.
        found = true;
        for (int a = 0; a < 256 && found; ++a)
            for (int b = a; b < 256; ++b)
                if (phi[a ^ b] != (phi[a] ^ phi[b])) {
                    found = false;
                    break;
                }
    }
    if (!found)
        throw std::logic_error{"build_tower_context: no isomorphism found"};

    for (int i = 0; i < 8; ++i)
        ctx.to_tower[i] = phi[1u << i];

    // Invert the basis-change matrix by Gauss-Jordan over GF(2).
    std::array<uint8_t, 8> m = ctx.to_tower; // column i
    std::array<uint8_t, 8> inv{};
    for (int i = 0; i < 8; ++i)
        inv[i] = static_cast<uint8_t>(1u << i);
    // Work on rows: row r of M is bit r across columns.
    // Simpler: solve M * x = e_r for each r by brute force over 256 values.
    const auto apply = [&](const std::array<uint8_t, 8>& cols, uint8_t x) {
        uint8_t y = 0;
        for (int i = 0; i < 8; ++i)
            if ((x >> i) & 1)
                y ^= cols[i];
        return y;
    };
    for (int i = 0; i < 8; ++i) {
        bool ok = false;
        for (int x = 0; x < 256; ++x)
            if (apply(m, static_cast<uint8_t>(x)) == (1u << i)) {
                ctx.from_tower[i] = static_cast<uint8_t>(x);
                ok = true;
                break;
            }
        if (!ok)
            throw std::logic_error{"build_tower_context: singular matrix"};
    }

    // Compose the AES affine output matrix with T^-1.
    const auto aes_affine_matrix = [&](uint8_t x) {
        uint8_t y = 0;
        for (int i = 0; i < 8; ++i) {
            const uint8_t bit = ((x >> i) ^ (x >> ((i + 4) % 8)) ^
                                 (x >> ((i + 5) % 8)) ^ (x >> ((i + 6) % 8)) ^
                                 (x >> ((i + 7) % 8))) &
                                1;
            y |= bit << i;
        }
        return y;
    };
    for (int i = 0; i < 8; ++i)
        ctx.out_linear[i] = aes_affine_matrix(ctx.from_tower[i]);
    (void)inv;
    return ctx;
}

const tower_context& tower()
{
    static const tower_context ctx = build_tower_context();
    return ctx;
}

// ----------------------------------------------------------- circuit side

using pair2 = std::array<signal, 2>;
using nib = std::array<signal, 4>;
using byte8 = std::array<signal, 8>;

pair2 gf4_mul_circuit(xag& net, const pair2& a, const pair2& b)
{
    const auto p00 = net.create_and(a[0], b[0]);
    const auto p11 = net.create_and(a[1], b[1]);
    const auto m = net.create_and(net.create_xor(a[0], a[1]),
                                  net.create_xor(b[0], b[1]));
    return {net.create_xor(p00, p11), net.create_xor(m, p00)};
}

/// Multiply by u (the GF(4) generator): linear.
pair2 gf4_scale_u(xag& net, const pair2& a)
{
    return {a[1], net.create_xor(a[0], a[1])};
}

/// Squaring == inversion in GF(4): linear.
pair2 gf4_square(xag& net, const pair2& a)
{
    return {net.create_xor(a[0], a[1]), a[1]};
}

nib gf16_mul_circuit(xag& net, const nib& a, const nib& b)
{
    const pair2 al{a[0], a[1]}, ah{a[2], a[3]};
    const pair2 bl{b[0], b[1]}, bh{b[2], b[3]};
    const auto pll = gf4_mul_circuit(net, al, bl);
    const auto phh = gf4_mul_circuit(net, ah, bh);
    const pair2 as{net.create_xor(al[0], ah[0]), net.create_xor(al[1], ah[1])};
    const pair2 bs{net.create_xor(bl[0], bh[0]), net.create_xor(bl[1], bh[1])};
    const auto pm = gf4_mul_circuit(net, as, bs);
    const auto scaled = gf4_scale_u(net, phh);
    return {net.create_xor(pll[0], scaled[0]), net.create_xor(pll[1], scaled[1]),
            net.create_xor(pm[0], pll[0]), net.create_xor(pm[1], pll[1])};
}

/// Multiply a GF(16) signal nibble by a constant: linear, derived from the
/// software tables.
nib gf16_scale_const(xag& net, const nib& a, uint8_t constant)
{
    nib out{net.get_constant(false), net.get_constant(false),
            net.get_constant(false), net.get_constant(false)};
    for (int i = 0; i < 4; ++i) {
        const uint8_t column = gf16_mul(static_cast<uint8_t>(1u << i),
                                        constant);
        for (int k = 0; k < 4; ++k)
            if ((column >> k) & 1)
                out[k] = net.create_xor(out[k], a[i]);
    }
    return out;
}

/// Squaring in GF(16): linear, derived from the software tables.
nib gf16_square_circuit(xag& net, const nib& a)
{
    nib out{net.get_constant(false), net.get_constant(false),
            net.get_constant(false), net.get_constant(false)};
    for (int i = 0; i < 4; ++i) {
        const uint8_t sq = gf16_mul(static_cast<uint8_t>(1u << i),
                                    static_cast<uint8_t>(1u << i));
        for (int k = 0; k < 4; ++k)
            if ((sq >> k) & 1)
                out[k] = net.create_xor(out[k], a[i]);
    }
    return out;
}

nib gf16_inverse_circuit(xag& net, const nib& a)
{
    const pair2 al{a[0], a[1]}, ah{a[2], a[3]};
    // Norm = al^2 + al*ah + u*ah^2 in GF(4).
    const auto al2 = gf4_square(net, al);
    const auto ah2 = gf4_square(net, ah);
    const auto uah2 = gf4_scale_u(net, ah2);
    const auto alah = gf4_mul_circuit(net, al, ah);
    const pair2 norm{
        net.create_xor(net.create_xor(al2[0], uah2[0]), alah[0]),
        net.create_xor(net.create_xor(al2[1], uah2[1]), alah[1])};
    const auto norm_inv = gf4_square(net, norm); // x^-1 = x^2 in GF(4)
    const pair2 als{net.create_xor(al[0], ah[0]), net.create_xor(al[1], ah[1])};
    const auto lo = gf4_mul_circuit(net, als, norm_inv);
    const auto hi = gf4_mul_circuit(net, ah, norm_inv);
    return {lo[0], lo[1], hi[0], hi[1]};
}

byte8 gf256_inverse_circuit(xag& net, const byte8& x)
{
    const auto& ctx = tower();
    const nib xl{x[0], x[1], x[2], x[3]};
    const nib xh{x[4], x[5], x[6], x[7]};
    const auto t = gf16_mul_circuit(net, xl, xh);
    const auto xl2 = gf16_square_circuit(net, xl);
    const auto xh2 = gf16_square_circuit(net, xh);
    const auto lxh2 = gf16_scale_const(net, xh2, ctx.lambda);
    nib norm;
    for (int i = 0; i < 4; ++i)
        norm[i] = net.create_xor(net.create_xor(xl2[i], lxh2[i]), t[i]);
    const auto norm_inv = gf16_inverse_circuit(net, norm);
    nib xls;
    for (int i = 0; i < 4; ++i)
        xls[i] = net.create_xor(xl[i], xh[i]);
    const auto lo = gf16_mul_circuit(net, xls, norm_inv);
    const auto hi = gf16_mul_circuit(net, xh, norm_inv);
    return {lo[0], lo[1], lo[2], lo[3], hi[0], hi[1], hi[2], hi[3]};
}

byte8 apply_linear(xag& net, const std::array<uint8_t, 8>& columns,
                   const byte8& x)
{
    byte8 out;
    for (int k = 0; k < 8; ++k)
        out[k] = net.get_constant(false);
    for (int i = 0; i < 8; ++i)
        for (int k = 0; k < 8; ++k)
            if ((columns[i] >> k) & 1)
                out[k] = net.create_xor(out[k], x[i]);
    return out;
}

} // namespace

uint8_t aes_sbox_reference(uint8_t x)
{
    uint8_t inv = 0;
    if (x != 0)
        for (int c = 1; c < 256; ++c)
            if (aes_mul(x, static_cast<uint8_t>(c)) == 1) {
                inv = static_cast<uint8_t>(c);
                break;
            }
    uint8_t y = 0;
    for (int i = 0; i < 8; ++i) {
        const uint8_t bit = ((inv >> i) ^ (inv >> ((i + 4) % 8)) ^
                             (inv >> ((i + 5) % 8)) ^ (inv >> ((i + 6) % 8)) ^
                             (inv >> ((i + 7) % 8))) &
                            1;
        y |= bit << i;
    }
    return y ^ 0x63;
}

std::array<signal, 8> aes_sbox_circuit(xag& net,
                                       const std::array<signal, 8>& in)
{
    const auto& ctx = tower();
    const auto t = apply_linear(net, ctx.to_tower, in);
    const auto inv = gf256_inverse_circuit(net, t);
    auto out = apply_linear(net, ctx.out_linear, inv);
    for (int i = 0; i < 8; ++i)
        if ((0x63 >> i) & 1)
            out[i] = !out[i];
    return out;
}

namespace {

using byte_word = std::array<signal, 8>;
using state_t = std::array<byte_word, 16>; ///< state[4*c + r]

byte_word xor_bytes(xag& net, const byte_word& a, const byte_word& b)
{
    byte_word r;
    for (int i = 0; i < 8; ++i)
        r[i] = net.create_xor(a[i], b[i]);
    return r;
}

/// xtime: multiply by 2 in GF(2^8) — linear on bits.
byte_word xtime(xag& net, const byte_word& a)
{
    byte_word r;
    r[0] = a[7];
    r[1] = net.create_xor(a[0], a[7]);
    r[2] = a[1];
    r[3] = net.create_xor(a[2], a[7]);
    r[4] = net.create_xor(a[3], a[7]);
    r[5] = a[4];
    r[6] = a[5];
    r[7] = a[6];
    return r;
}

state_t add_round_key(xag& net, const state_t& s,
                      const std::array<byte_word, 16>& key)
{
    state_t r;
    for (int i = 0; i < 16; ++i)
        r[i] = xor_bytes(net, s[i], key[i]);
    return r;
}

state_t sub_bytes(xag& net, const state_t& s)
{
    state_t r;
    for (int i = 0; i < 16; ++i)
        r[i] = aes_sbox_circuit(net, s[i]);
    return r;
}

state_t shift_rows(const state_t& s)
{
    state_t r;
    for (int c = 0; c < 4; ++c)
        for (int row = 0; row < 4; ++row)
            r[4 * c + row] = s[4 * ((c + row) % 4) + row];
    return r;
}

state_t mix_columns(xag& net, const state_t& s)
{
    state_t r;
    for (int c = 0; c < 4; ++c) {
        const auto& a0 = s[4 * c + 0];
        const auto& a1 = s[4 * c + 1];
        const auto& a2 = s[4 * c + 2];
        const auto& a3 = s[4 * c + 3];
        const auto x0 = xtime(net, a0);
        const auto x1 = xtime(net, a1);
        const auto x2 = xtime(net, a2);
        const auto x3 = xtime(net, a3);
        // 2*a0 ^ 3*a1 ^ a2 ^ a3, rotating.
        r[4 * c + 0] = xor_bytes(
            net, xor_bytes(net, x0, xor_bytes(net, x1, a1)),
            xor_bytes(net, a2, a3));
        r[4 * c + 1] = xor_bytes(
            net, xor_bytes(net, x1, xor_bytes(net, x2, a2)),
            xor_bytes(net, a3, a0));
        r[4 * c + 2] = xor_bytes(
            net, xor_bytes(net, x2, xor_bytes(net, x3, a3)),
            xor_bytes(net, a0, a1));
        r[4 * c + 3] = xor_bytes(
            net, xor_bytes(net, x3, xor_bytes(net, x0, a0)),
            xor_bytes(net, a1, a2));
    }
    return r;
}

} // namespace

xag gen_aes128(bool expanded_key)
{
    xag net;
    state_t state;
    for (auto& byte : state)
        for (auto& bit : byte)
            bit = net.create_pi();

    std::array<std::array<byte_word, 16>, 11> round_keys;
    if (expanded_key) {
        for (auto& rk : round_keys)
            for (auto& byte : rk)
                for (auto& bit : byte)
                    bit = net.create_pi();
    } else {
        // Key schedule inside the circuit: 4 S-boxes + XORs per round.
        std::array<byte_word, 16> key;
        for (auto& byte : key)
            for (auto& bit : byte)
                bit = net.create_pi();
        round_keys[0] = key;
        uint8_t rcon = 1;
        for (int r = 1; r <= 10; ++r) {
            auto prev = round_keys[r - 1];
            // w3 = last column, rotated and substituted.
            std::array<byte_word, 4> temp;
            for (int row = 0; row < 4; ++row)
                temp[row] =
                    aes_sbox_circuit(net, prev[4 * 3 + (row + 1) % 4]);
            for (int i = 0; i < 8; ++i)
                if ((rcon >> i) & 1)
                    temp[0][i] = !temp[0][i];
            std::array<byte_word, 16> next;
            for (int row = 0; row < 4; ++row)
                next[row] = xor_bytes(net, prev[row], temp[row]);
            for (int c = 1; c < 4; ++c)
                for (int row = 0; row < 4; ++row)
                    next[4 * c + row] = xor_bytes(net, next[4 * (c - 1) + row],
                                                  prev[4 * c + row]);
            round_keys[r] = next;
            rcon = static_cast<uint8_t>((rcon << 1) ^ ((rcon & 0x80) ? 0x1b : 0));
        }
    }

    state = add_round_key(net, state, round_keys[0]);
    for (int round = 1; round <= 10; ++round) {
        state = sub_bytes(net, state);
        state = shift_rows(state);
        if (round != 10)
            state = mix_columns(net, state);
        state = add_round_key(net, state, round_keys[round]);
    }
    for (const auto& byte : state)
        for (const auto bit : byte)
            net.create_po(bit);
    return net;
}

std::array<uint8_t, 16> aes128_encrypt_reference(
    const std::array<uint8_t, 16>& plaintext,
    const std::array<uint8_t, 16>& key)
{
    std::array<std::array<uint8_t, 16>, 11> rk;
    rk[0] = key;
    uint8_t rcon = 1;
    for (int r = 1; r <= 10; ++r) {
        auto& prev = rk[r - 1];
        auto& next = rk[r];
        uint8_t temp[4];
        for (int row = 0; row < 4; ++row)
            temp[row] = aes_sbox_reference(prev[4 * 3 + (row + 1) % 4]);
        temp[0] ^= rcon;
        for (int row = 0; row < 4; ++row)
            next[row] = prev[row] ^ temp[row];
        for (int c = 1; c < 4; ++c)
            for (int row = 0; row < 4; ++row)
                next[4 * c + row] = next[4 * (c - 1) + row] ^ prev[4 * c + row];
        rcon = static_cast<uint8_t>((rcon << 1) ^ ((rcon & 0x80) ? 0x1b : 0));
    }

    auto state = plaintext;
    const auto add_key = [&](int r) {
        for (int i = 0; i < 16; ++i)
            state[i] ^= rk[r][i];
    };
    add_key(0);
    for (int round = 1; round <= 10; ++round) {
        for (auto& b : state)
            b = aes_sbox_reference(b);
        std::array<uint8_t, 16> shifted;
        for (int c = 0; c < 4; ++c)
            for (int row = 0; row < 4; ++row)
                shifted[4 * c + row] = state[4 * ((c + row) % 4) + row];
        state = shifted;
        if (round != 10) {
            for (int c = 0; c < 4; ++c) {
                const uint8_t a0 = state[4 * c], a1 = state[4 * c + 1];
                const uint8_t a2 = state[4 * c + 2], a3 = state[4 * c + 3];
                state[4 * c + 0] = aes_mul(a0, 2) ^ aes_mul(a1, 3) ^ a2 ^ a3;
                state[4 * c + 1] = a0 ^ aes_mul(a1, 2) ^ aes_mul(a2, 3) ^ a3;
                state[4 * c + 2] = a0 ^ a1 ^ aes_mul(a2, 2) ^ aes_mul(a3, 3);
                state[4 * c + 3] = aes_mul(a0, 3) ^ a1 ^ a2 ^ aes_mul(a3, 2);
            }
        }
        add_key(round);
    }
    return state;
}

} // namespace mcx
