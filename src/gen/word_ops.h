// Word-level building blocks over XAG signals (LSB-first signal vectors).
// These are the textbook structures the benchmark generators are made of —
// intentionally *not* MC-optimized, so the optimizer has realistic work to
// do (the paper's initial circuits are equally generic).
#pragma once

#include "xag/xag.h"

#include <cstdint>
#include <span>
#include <vector>

namespace mcx {

using word = std::vector<signal>; ///< LSB-first

/// An all-constant word of the given value.
word constant_word(xag& net, uint64_t value, uint32_t bits);

/// Fresh primary inputs.
word input_word(xag& net, uint32_t bits);

struct sum_carry {
    word sum;
    signal carry;
};

/// Ripple-carry addition a + b + cin; full adders in the paper's Fig. 1(a)
/// shape (3 AND gates per stage).
sum_carry add_words(xag& net, std::span<const signal> a,
                    std::span<const signal> b, signal cin);

/// Addition modulo 2^n.
word add_mod(xag& net, std::span<const signal> a, std::span<const signal> b);

/// a - b (two's complement); `borrow_out` = 1 when a < b (unsigned).
struct diff_borrow {
    word difference;
    signal borrow;
};
diff_borrow sub_words(xag& net, std::span<const signal> a,
                      std::span<const signal> b);

/// Bitwise select: sel ? a : b (one AND per bit).
word mux_word(xag& net, signal sel, std::span<const signal> a,
              std::span<const signal> b);

/// Unsigned comparison a < b.
signal less_than_unsigned(xag& net, std::span<const signal> a,
                          std::span<const signal> b);

/// Unsigned comparison a <= b.
signal less_equal_unsigned(xag& net, std::span<const signal> a,
                           std::span<const signal> b);

/// Signed (two's complement) comparison a < b.
signal less_than_signed(xag& net, std::span<const signal> a,
                        std::span<const signal> b);

/// Signed comparison a <= b.
signal less_equal_signed(xag& net, std::span<const signal> a,
                         std::span<const signal> b);

/// Rotate left by a constant (pure wiring).
word rotate_left(std::span<const signal> a, uint32_t amount);

/// Shift left by a constant, filling with 0 (pure wiring).
word shift_left(xag& net, std::span<const signal> a, uint32_t amount);

/// Logical shift right by a constant, filling with 0 (pure wiring).
word shift_right(xag& net, std::span<const signal> a, uint32_t amount);

/// Bitwise operations.
word xor_words(xag& net, std::span<const signal> a, std::span<const signal> b);
word and_words(xag& net, std::span<const signal> a, std::span<const signal> b);
word or_words(xag& net, std::span<const signal> a, std::span<const signal> b);
word not_word(std::span<const signal> a);

/// Schoolbook array multiplication (partial products + ripple adders).
word multiply_words(xag& net, std::span<const signal> a,
                    std::span<const signal> b);

} // namespace mcx
