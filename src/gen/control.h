// Generator-based equivalents of the EPFL random-control benchmarks
// (DESIGN.md substitution X3).  Circuits with no published functional spec
// (cavlc, i2c, mem_ctrl) are substituted by seeded structured random
// control logic of comparable size.
#pragma once

#include "xag/xag.h"

#include <cstdint>

namespace mcx {

/// k-to-2^k decoder (AND tree of two half-decoders).
xag gen_decoder(uint32_t address_bits);

/// Priority encoder: n request PIs -> ceil(log2 n) index POs + valid PO.
xag gen_priority_encoder(uint32_t requests);

/// Round-robin arbiter: n requests + n one-hot pointer PIs -> n grants +
/// "any grant" PO.  The first request at or (cyclically) after the pointer
/// wins.
xag gen_round_robin_arbiter(uint32_t requests);

/// Majority voter over n inputs (paper's Voter has n = 1001): popcount by a
/// carry-save adder tree, then a threshold comparison.
xag gen_voter(uint32_t inputs);

/// ALU control unit: 2-bit op class + `funct_bits` function code ->
/// `controls` one-hot-ish control lines (MIPS-style decode).
xag gen_alu_control(uint32_t funct_bits = 5, uint32_t controls = 26);

/// Look-ahead XY router: current and destination coordinates
/// (2 x 2 x coord_bits PIs) -> per-axis direction/zero flags and the
/// next-hop decision (comparator-based).
xag gen_xy_router(uint32_t coord_bits = 15);

/// Structured random control logic (mux/and-or trees over a seeded DAG):
/// stand-in for cavlc / i2c / mem_ctrl-style netlists.
xag gen_random_control(uint32_t pis, uint32_t gates, uint32_t pos,
                       uint64_t seed);

} // namespace mcx
