// Generator-based equivalents of the EPFL arithmetic benchmarks and the
// MPC arithmetic benchmarks of Table 2 (DESIGN.md substitutions X3, X4).
// Every generator returns a self-contained XAG built from textbook
// structures; widths are parameters so benches can scale between laptop
// runs and paper-scale runs.
#pragma once

#include "xag/xag.h"

#include <cstdint>

namespace mcx {

/// Ripple-carry adder: 2n PIs (a, b), n+1 POs (sum, carry).  Full adders in
/// the paper's Fig. 1(a) shape.
xag gen_adder(uint32_t bits);

/// Barrel rotator: n data PIs + log2(n) shift PIs -> n POs (left rotation).
/// n must be a power of two.
xag gen_barrel_shifter(uint32_t bits);

/// Restoring array divider: 2n PIs (dividend, divisor) -> 2n POs
/// (quotient, remainder).  Division by zero yields quotient all-ones.
xag gen_divisor(uint32_t bits);

/// Mitchell-style log2 approximation: n PIs -> n POs
/// (ceil(log2 n) integer bits + normalized mantissa fraction).
xag gen_log2(uint32_t bits);

/// Maximum of `words` unsigned values: words*n PIs -> n POs.
xag gen_max(uint32_t bits, uint32_t words = 4);

/// Array multiplier: 2n PIs -> 2n POs.
xag gen_multiplier(uint32_t bits);

/// Squarer: n PIs -> 2n POs.
xag gen_square(uint32_t bits);

/// Fixed-point sine via unrolled CORDIC: n PIs (angle in [0, pi/2) as a
/// 0.n fixed-point fraction of pi/2) -> n POs (sin, 1.(n-1) fixed point).
xag gen_sine(uint32_t bits, uint32_t iterations = 0 /* default: bits - 2 */);

/// Integer square root: n PIs -> n/2 POs (n must be even).
xag gen_sqrt(uint32_t bits);

/// Comparators of Table 2: 2n PIs -> 1 PO.
xag gen_comparator_lt_unsigned(uint32_t bits);
xag gen_comparator_leq_unsigned(uint32_t bits);
xag gen_comparator_lt_signed(uint32_t bits);
xag gen_comparator_leq_signed(uint32_t bits);

/// Integer to floating point: `in_bits` PIs -> (1 + exp_bits + man_bits)
/// POs (sign-less small float; value truncated).
xag gen_int2float(uint32_t in_bits = 11, uint32_t exp_bits = 4,
                  uint32_t man_bits = 3);

} // namespace mcx
