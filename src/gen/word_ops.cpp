#include "gen/word_ops.h"

#include <stdexcept>

namespace mcx {

word constant_word(xag& net, uint64_t value, uint32_t bits)
{
    word w(bits);
    for (uint32_t i = 0; i < bits; ++i)
        w[i] = net.get_constant(((value >> i) & 1) != 0);
    return w;
}

word input_word(xag& net, uint32_t bits)
{
    word w(bits);
    for (auto& s : w)
        s = net.create_pi();
    return w;
}

sum_carry add_words(xag& net, std::span<const signal> a,
                    std::span<const signal> b, signal cin)
{
    if (a.size() != b.size())
        throw std::invalid_argument{"add_words: width mismatch"};
    sum_carry result;
    result.sum.reserve(a.size());
    auto carry = cin;
    for (size_t i = 0; i < a.size(); ++i) {
        const auto axb = net.create_xor(a[i], b[i]);
        result.sum.push_back(net.create_xor(axb, carry));
        carry = net.create_or(net.create_and(a[i], b[i]),
                              net.create_and(axb, carry));
    }
    result.carry = carry;
    return result;
}

word add_mod(xag& net, std::span<const signal> a, std::span<const signal> b)
{
    return add_words(net, a, b, net.get_constant(false)).sum;
}

diff_borrow sub_words(xag& net, std::span<const signal> a,
                      std::span<const signal> b)
{
    // a - b = a + ~b + 1; borrow = !carry_out.
    const auto nb = not_word(b);
    auto [sum, carry] = add_words(net, a, nb, net.get_constant(true));
    return {std::move(sum), !carry};
}

word mux_word(xag& net, signal sel, std::span<const signal> a,
              std::span<const signal> b)
{
    if (a.size() != b.size())
        throw std::invalid_argument{"mux_word: width mismatch"};
    word w;
    w.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        w.push_back(net.create_ite(sel, a[i], b[i]));
    return w;
}

signal less_than_unsigned(xag& net, std::span<const signal> a,
                          std::span<const signal> b)
{
    return sub_words(net, a, b).borrow;
}

signal less_equal_unsigned(xag& net, std::span<const signal> a,
                           std::span<const signal> b)
{
    return !less_than_unsigned(net, b, a);
}

signal less_than_signed(xag& net, std::span<const signal> a,
                        std::span<const signal> b)
{
    if (a.empty() || a.size() != b.size())
        throw std::invalid_argument{"less_than_signed: width mismatch"};
    // Flip the sign bits to map two's complement onto unsigned order.
    word fa(a.begin(), a.end());
    word fb(b.begin(), b.end());
    fa.back() = !fa.back();
    fb.back() = !fb.back();
    return less_than_unsigned(net, fa, fb);
}

signal less_equal_signed(xag& net, std::span<const signal> a,
                         std::span<const signal> b)
{
    return !less_than_signed(net, b, a);
}

word rotate_left(std::span<const signal> a, uint32_t amount)
{
    const auto n = a.size();
    word w(n);
    for (size_t i = 0; i < n; ++i)
        w[(i + amount) % n] = a[i];
    return w;
}

word shift_left(xag& net, std::span<const signal> a, uint32_t amount)
{
    word w(a.size(), net.get_constant(false));
    for (size_t i = 0; i + amount < a.size(); ++i)
        w[i + amount] = a[i];
    return w;
}

word shift_right(xag& net, std::span<const signal> a, uint32_t amount)
{
    word w(a.size(), net.get_constant(false));
    for (size_t i = amount; i < a.size(); ++i)
        w[i - amount] = a[i];
    return w;
}

word xor_words(xag& net, std::span<const signal> a, std::span<const signal> b)
{
    if (a.size() != b.size())
        throw std::invalid_argument{"xor_words: width mismatch"};
    word w;
    w.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        w.push_back(net.create_xor(a[i], b[i]));
    return w;
}

word and_words(xag& net, std::span<const signal> a, std::span<const signal> b)
{
    if (a.size() != b.size())
        throw std::invalid_argument{"and_words: width mismatch"};
    word w;
    w.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        w.push_back(net.create_and(a[i], b[i]));
    return w;
}

word or_words(xag& net, std::span<const signal> a, std::span<const signal> b)
{
    if (a.size() != b.size())
        throw std::invalid_argument{"or_words: width mismatch"};
    word w;
    w.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        w.push_back(net.create_or(a[i], b[i]));
    return w;
}

word not_word(std::span<const signal> a)
{
    word w;
    w.reserve(a.size());
    for (const auto s : a)
        w.push_back(!s);
    return w;
}

word multiply_words(xag& net, std::span<const signal> a,
                    std::span<const signal> b)
{
    const auto n = a.size();
    const auto m = b.size();
    word acc(n + m, net.get_constant(false));
    for (size_t j = 0; j < m; ++j) {
        // Partial product a * b_j, shifted by j, added into the accumulator.
        word partial(n + m, net.get_constant(false));
        for (size_t i = 0; i < n; ++i)
            partial[i + j] = net.create_and(a[i], b[j]);
        acc = add_mod(net, acc, partial);
    }
    return acc;
}

} // namespace mcx
