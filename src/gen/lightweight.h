// Lightweight-cipher circuit generators: Simon (the AND-frugal Feistel
// cipher common in MPC benchmarking) and the Keccak-f permutation (whose
// chi step is the only nonlinear layer of SHA-3).  Both take pre-expanded
// keys / fixed round constants; all constants are derived from the spec
// formulas at generation time (nothing transcribed).
#pragma once

#include "xag/xag.h"

#include <cstdint>
#include <vector>

namespace mcx {

/// Simon with pre-expanded round keys:
/// 2*word_bits plaintext PIs + rounds*word_bits key PIs -> 2*word_bits POs.
/// Round: (x, y) -> (y ^ f(x) ^ k, x), f(x) = (x<<<1 & x<<<8) ^ x<<<2.
xag gen_simon(uint32_t word_bits = 16, uint32_t rounds = 32);

/// Software reference (same interface: expanded keys).
std::pair<uint64_t, uint64_t> simon_encrypt_reference(
    uint32_t word_bits, uint64_t x, uint64_t y,
    const std::vector<uint64_t>& round_keys);

/// Keccak-f[25*lane_bits]: 25*lane_bits PIs -> 25*lane_bits POs.
/// lane_bits = 8 gives Keccak-f[200] (18 rounds), 16 gives f[400], etc.
xag gen_keccak_f(uint32_t lane_bits = 8);

/// Software reference permutation on a 25-lane state.
std::vector<uint64_t> keccak_f_reference(uint32_t lane_bits,
                                         std::vector<uint64_t> state);

} // namespace mcx
