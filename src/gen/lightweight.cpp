#include "gen/lightweight.h"

#include "gen/word_ops.h"

#include <stdexcept>

namespace mcx {

namespace {

uint64_t rotl_value(uint64_t v, uint32_t r, uint32_t bits)
{
    r %= bits;
    const uint64_t mask = bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
    return ((v << r) | (v >> (bits - r))) & mask;
}

/// Keccak round count for width 25 * lane_bits: 12 + 2*log2(lane_bits).
uint32_t keccak_rounds(uint32_t lane_bits)
{
    uint32_t l = 0;
    while ((1u << l) < lane_bits)
        ++l;
    return 12 + 2 * l;
}

/// Keccak round constants from the spec LFSR (x^8+x^6+x^5+x^4+1).
std::vector<uint64_t> keccak_round_constants(uint32_t lane_bits)
{
    const auto rounds = keccak_rounds(lane_bits);
    std::vector<uint64_t> rc(rounds, 0);
    uint8_t lfsr = 1;
    const auto step = [&]() {
        const bool bit = (lfsr & 1) != 0;
        lfsr = static_cast<uint8_t>((lfsr >> 1) ^ (bit ? 0x8e : 0));
        return bit;
    };
    for (uint32_t ir = 0; ir < rounds; ++ir)
        for (uint32_t j = 0; j <= 6; ++j) {
            const uint32_t pos = (1u << j) - 1; // bit positions 0,1,3,7,...
            if (step() && pos < lane_bits)
                rc[ir] |= uint64_t{1} << pos;
        }
    return rc;
}

/// Rho rotation offsets from the spec iteration.
std::array<uint32_t, 25> keccak_rho_offsets(uint32_t lane_bits)
{
    std::array<uint32_t, 25> offsets{};
    uint32_t x = 1, y = 0;
    for (uint32_t t = 0; t < 24; ++t) {
        offsets[x + 5 * y] = ((t + 1) * (t + 2) / 2) % lane_bits;
        const auto nx = y;
        const auto ny = (2 * x + 3 * y) % 5;
        x = nx;
        y = ny;
    }
    return offsets;
}

} // namespace

xag gen_simon(uint32_t word_bits, uint32_t rounds)
{
    if (word_bits < 9 || word_bits > 64)
        throw std::invalid_argument{"gen_simon: word width 9..64"};
    xag net;
    auto x = input_word(net, word_bits);
    auto y = input_word(net, word_bits);
    for (uint32_t r = 0; r < rounds; ++r) {
        const auto k = input_word(net, word_bits);
        const auto s1 = rotate_left(x, 1);
        const auto s8 = rotate_left(x, 8);
        const auto s2 = rotate_left(x, 2);
        const auto f = xor_words(net, and_words(net, s1, s8), s2);
        const auto new_x = xor_words(net, xor_words(net, y, f), k);
        y = x;
        x = new_x;
    }
    for (const auto s : x)
        net.create_po(s);
    for (const auto s : y)
        net.create_po(s);
    return net;
}

std::pair<uint64_t, uint64_t> simon_encrypt_reference(
    uint32_t word_bits, uint64_t x, uint64_t y,
    const std::vector<uint64_t>& round_keys)
{
    const uint64_t mask =
        word_bits == 64 ? ~uint64_t{0} : (uint64_t{1} << word_bits) - 1;
    for (const auto k : round_keys) {
        const auto f = (rotl_value(x, 1, word_bits) &
                        rotl_value(x, 8, word_bits)) ^
                       rotl_value(x, 2, word_bits);
        const auto new_x = (y ^ f ^ k) & mask;
        y = x;
        x = new_x;
    }
    return {x, y};
}

xag gen_keccak_f(uint32_t lane_bits)
{
    if (lane_bits < 8 || lane_bits > 64 ||
        (lane_bits & (lane_bits - 1)) != 0)
        throw std::invalid_argument{"gen_keccak_f: lane width 8/16/32/64"};
    xag net;
    std::array<word, 25> lanes;
    for (auto& lane : lanes)
        lane = input_word(net, lane_bits);

    const auto rc = keccak_round_constants(lane_bits);
    const auto rho = keccak_rho_offsets(lane_bits);

    for (uint32_t round = 0; round < keccak_rounds(lane_bits); ++round) {
        // Theta.
        std::array<word, 5> column_parity;
        for (uint32_t cx = 0; cx < 5; ++cx) {
            column_parity[cx] = lanes[cx];
            for (uint32_t cy = 1; cy < 5; ++cy)
                column_parity[cx] =
                    xor_words(net, column_parity[cx], lanes[cx + 5 * cy]);
        }
        for (uint32_t cx = 0; cx < 5; ++cx) {
            const auto d = xor_words(net, column_parity[(cx + 4) % 5],
                                     rotate_left(column_parity[(cx + 1) % 5], 1));
            for (uint32_t cy = 0; cy < 5; ++cy)
                lanes[cx + 5 * cy] = xor_words(net, lanes[cx + 5 * cy], d);
        }
        // Rho + Pi.
        std::array<word, 25> moved;
        for (uint32_t cx = 0; cx < 5; ++cx)
            for (uint32_t cy = 0; cy < 5; ++cy) {
                const auto src = cx + 5 * cy;
                const auto dst = cy + 5 * ((2 * cx + 3 * cy) % 5);
                moved[dst] = rotate_left(lanes[src], rho[src]);
            }
        // Chi: the nonlinear layer (one AND per bit).
        for (uint32_t cy = 0; cy < 5; ++cy)
            for (uint32_t cx = 0; cx < 5; ++cx) {
                const auto& a = moved[cx + 5 * cy];
                const auto& b = moved[(cx + 1) % 5 + 5 * cy];
                const auto& c = moved[(cx + 2) % 5 + 5 * cy];
                word out(lane_bits);
                for (uint32_t i = 0; i < lane_bits; ++i)
                    out[i] = net.create_xor(a[i],
                                            net.create_and(!b[i], c[i]));
                lanes[cx + 5 * cy] = out;
            }
        // Iota.
        for (uint32_t i = 0; i < lane_bits; ++i)
            if ((rc[round] >> i) & 1)
                lanes[0][i] = !lanes[0][i];
    }
    for (const auto& lane : lanes)
        for (const auto s : lane)
            net.create_po(s);
    return net;
}

std::vector<uint64_t> keccak_f_reference(uint32_t lane_bits,
                                         std::vector<uint64_t> state)
{
    if (state.size() != 25)
        throw std::invalid_argument{"keccak_f_reference: 25 lanes"};
    const uint64_t mask =
        lane_bits == 64 ? ~uint64_t{0} : (uint64_t{1} << lane_bits) - 1;
    const auto rc = keccak_round_constants(lane_bits);
    const auto rho = keccak_rho_offsets(lane_bits);

    for (uint32_t round = 0; round < keccak_rounds(lane_bits); ++round) {
        uint64_t c[5], d[5];
        for (int cx = 0; cx < 5; ++cx)
            c[cx] = state[cx] ^ state[cx + 5] ^ state[cx + 10] ^
                    state[cx + 15] ^ state[cx + 20];
        for (int cx = 0; cx < 5; ++cx)
            d[cx] = c[(cx + 4) % 5] ^ rotl_value(c[(cx + 1) % 5], 1, lane_bits);
        for (int cx = 0; cx < 5; ++cx)
            for (int cy = 0; cy < 5; ++cy)
                state[cx + 5 * cy] = (state[cx + 5 * cy] ^ d[cx]) & mask;
        std::vector<uint64_t> moved(25);
        for (uint32_t cx = 0; cx < 5; ++cx)
            for (uint32_t cy = 0; cy < 5; ++cy) {
                const auto src = cx + 5 * cy;
                const auto dst = cy + 5 * ((2 * cx + 3 * cy) % 5);
                moved[dst] = rotl_value(state[src], rho[src], lane_bits);
            }
        for (uint32_t cy = 0; cy < 5; ++cy)
            for (uint32_t cx = 0; cx < 5; ++cx)
                state[cx + 5 * cy] =
                    (moved[cx + 5 * cy] ^
                     (~moved[(cx + 1) % 5 + 5 * cy] &
                      moved[(cx + 2) % 5 + 5 * cy])) &
                    mask;
        state[0] = (state[0] ^ rc[round]) & mask;
    }
    return state;
}

} // namespace mcx
