#include "gen/arithmetic.h"

#include "gen/word_ops.h"

#include <cmath>
#include <stdexcept>

namespace mcx {

xag gen_adder(uint32_t bits)
{
    xag net;
    const auto a = input_word(net, bits);
    const auto b = input_word(net, bits);
    const auto [sum, carry] = add_words(net, a, b, net.get_constant(false));
    for (const auto s : sum)
        net.create_po(s);
    net.create_po(carry);
    return net;
}

xag gen_barrel_shifter(uint32_t bits)
{
    if (bits == 0 || (bits & (bits - 1)) != 0)
        throw std::invalid_argument{"gen_barrel_shifter: power-of-two width"};
    xag net;
    auto data = input_word(net, bits);
    uint32_t log = 0;
    while ((1u << log) < bits)
        ++log;
    const auto amount = input_word(net, log);
    for (uint32_t stage = 0; stage < log; ++stage) {
        const auto rotated = rotate_left(data, 1u << stage);
        data = mux_word(net, amount[stage], rotated, data);
    }
    for (const auto s : data)
        net.create_po(s);
    return net;
}

xag gen_divisor(uint32_t bits)
{
    xag net;
    const auto dividend = input_word(net, bits);
    const auto divisor = input_word(net, bits);

    // Restoring division, one subtract-and-select row per quotient bit.
    word remainder(bits + 1, net.get_constant(false));
    word divisor_wide(divisor.begin(), divisor.end());
    divisor_wide.push_back(net.get_constant(false));

    word quotient(bits, net.get_constant(false));
    for (uint32_t i = bits; i-- > 0;) {
        // remainder = (remainder << 1) | dividend[i]
        word shifted(bits + 1, net.get_constant(false));
        shifted[0] = dividend[i];
        for (uint32_t k = 0; k + 1 < bits + 1; ++k)
            shifted[k + 1] = remainder[k];
        const auto [difference, borrow] =
            sub_words(net, shifted, divisor_wide);
        quotient[i] = !borrow;
        remainder = mux_word(net, borrow, shifted, difference);
    }
    for (const auto s : quotient)
        net.create_po(s);
    for (uint32_t i = 0; i < bits; ++i)
        net.create_po(remainder[i]);
    return net;
}

xag gen_log2(uint32_t bits)
{
    xag net;
    const auto x = input_word(net, bits);
    uint32_t log = 0;
    while ((1u << log) < bits)
        ++log;

    // Leading-one position (priority from the MSB) and the input normalized
    // so that the leading one sits at the MSB.
    auto none_above = net.get_constant(true);
    word ilog(log, net.get_constant(false));
    word normalized(bits, net.get_constant(false));
    for (uint32_t p = bits; p-- > 0;) {
        const auto lead_here = net.create_and(none_above, x[p]);
        none_above = net.create_and(none_above, !x[p]);
        for (uint32_t k = 0; k < log; ++k)
            if ((p >> k) & 1)
                ilog[k] = net.create_or(ilog[k], lead_here);
        const auto shifted = shift_left(net, x, bits - 1 - p);
        for (uint32_t k = 0; k < bits; ++k)
            normalized[k] = net.create_or(
                normalized[k], net.create_and(lead_here, shifted[k]));
    }
    // Mitchell: log2(x) ~ ilog + mantissa fraction (bits below the leading
    // one of the normalized value).
    for (uint32_t k = 0; k < log; ++k)
        net.create_po(ilog[k]);
    for (uint32_t k = 0; k + log < bits; ++k)
        net.create_po(normalized[bits - 2 - k]);
    return net;
}

xag gen_max(uint32_t bits, uint32_t words)
{
    if (words < 2)
        throw std::invalid_argument{"gen_max: at least two words"};
    xag net;
    std::vector<word> inputs;
    for (uint32_t w = 0; w < words; ++w)
        inputs.push_back(input_word(net, bits));
    auto best = inputs[0];
    for (uint32_t w = 1; w < words; ++w) {
        const auto smaller = less_than_unsigned(net, best, inputs[w]);
        best = mux_word(net, smaller, inputs[w], best);
    }
    for (const auto s : best)
        net.create_po(s);
    return net;
}

xag gen_multiplier(uint32_t bits)
{
    xag net;
    const auto a = input_word(net, bits);
    const auto b = input_word(net, bits);
    for (const auto s : multiply_words(net, a, b))
        net.create_po(s);
    return net;
}

xag gen_square(uint32_t bits)
{
    xag net;
    const auto a = input_word(net, bits);
    for (const auto s : multiply_words(net, a, a))
        net.create_po(s);
    return net;
}

namespace {

/// a + b or a - b selected by `subtract` (b ^ subtract, carry-in subtract).
word add_sub(xag& net, std::span<const signal> a, std::span<const signal> b,
             signal subtract)
{
    word bx;
    bx.reserve(b.size());
    for (const auto s : b)
        bx.push_back(net.create_xor(s, subtract));
    return add_words(net, a, bx, subtract).sum;
}

/// Arithmetic right shift by a constant.
word shift_right_arith(std::span<const signal> a, uint32_t amount)
{
    word w(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        w[i] = a[std::min(i + amount, a.size() - 1)];
    return w;
}

} // namespace

xag gen_sine(uint32_t bits, uint32_t iterations)
{
    if (bits < 4)
        throw std::invalid_argument{"gen_sine: at least 4 bits"};
    if (iterations == 0)
        iterations = bits - 2;

    xag net;
    const auto angle = input_word(net, bits); // fraction of pi/2 in [0,1)

    // Fixed point: 2 integer bits, bits-2 fraction bits, signed.
    const uint32_t w = bits + 2;
    const auto frac = bits - 2;
    const long double scale = static_cast<long double>(1ull << frac);

    // CORDIC gain compensation: x0 = 1/K.
    long double k = 1.0L;
    for (uint32_t i = 0; i < iterations; ++i)
        k *= std::sqrt(1.0L + std::pow(2.0L, -2.0L * static_cast<int>(i)));
    const auto x0_value =
        static_cast<uint64_t>(std::llround((1.0L / k) * scale));

    word x = constant_word(net, x0_value, w);
    word y = constant_word(net, 0, w);
    // z = angle * (pi/2) in the same fixed point: angle has `bits` fraction
    // bits of a [0,1) value; z = angle scaled by pi/2.
    word z(w, net.get_constant(false));
    {
        // Multiply the angle input by the constant pi/2 (shift-add on
        // constant one-bits), keeping `frac` fraction bits.
        const auto pi_half =
            static_cast<uint64_t>(std::llround(1.57079632679489662L * scale));
        word acc(w + bits, net.get_constant(false));
        word wide_angle(w + bits, net.get_constant(false));
        for (uint32_t i = 0; i < bits; ++i)
            wide_angle[i] = angle[i];
        for (uint32_t b = 0; b < w; ++b) {
            if (!((pi_half >> b) & 1))
                continue;
            acc = add_mod(net, acc, shift_left(net, wide_angle, b));
        }
        // angle had `bits` fraction bits; drop them to keep `frac`.
        for (uint32_t i = 0; i < w; ++i)
            z[i] = acc[std::min<size_t>(i + bits, acc.size() - 1)];
    }

    for (uint32_t i = 0; i < iterations; ++i) {
        const auto d_negative = z.back(); // rotate clockwise when z < 0
        const auto xs = shift_right_arith(x, i);
        const auto ys = shift_right_arith(y, i);
        const auto atan_value = static_cast<uint64_t>(
            std::llround(std::atan(std::pow(2.0L, -static_cast<int>(i))) *
                         scale));
        const auto atan_word = constant_word(net, atan_value, w);
        // z >= 0: x -= y>>i, y += x>>i, z -= atan
        // z <  0: x += y>>i, y -= x>>i, z += atan
        const auto new_x = add_sub(net, x, ys, !d_negative);
        const auto new_y = add_sub(net, y, xs, d_negative);
        const auto new_z = add_sub(net, z, atan_word, !d_negative);
        x = new_x;
        y = new_y;
        z = new_z;
    }
    for (uint32_t i = 0; i < bits; ++i)
        net.create_po(y[i]); // 1.(bits-1) fixed point result
    return net;
}

xag gen_sqrt(uint32_t bits)
{
    if (bits % 2 != 0)
        throw std::invalid_argument{"gen_sqrt: even width required"};
    xag net;
    const auto x = input_word(net, bits);
    const uint32_t half = bits / 2;
    const uint32_t w = bits + 2;

    word remainder(w, net.get_constant(false));
    word root(w, net.get_constant(false));
    for (uint32_t i = half; i-- > 0;) {
        // remainder = (remainder << 2) | x[2i+1..2i]
        word shifted(w, net.get_constant(false));
        shifted[0] = x[2 * i];
        shifted[1] = x[2 * i + 1];
        for (uint32_t k = 0; k + 2 < w; ++k)
            shifted[k + 2] = remainder[k];
        // trial = (root << 2) | 1
        word trial(w, net.get_constant(false));
        trial[0] = net.get_constant(true);
        for (uint32_t k = 0; k + 2 < w; ++k)
            trial[k + 2] = root[k];
        const auto [difference, borrow] = sub_words(net, shifted, trial);
        remainder = mux_word(net, borrow, shifted, difference);
        // root = (root << 1) | !borrow
        word new_root(w, net.get_constant(false));
        new_root[0] = !borrow;
        for (uint32_t k = 0; k + 1 < w; ++k)
            new_root[k + 1] = root[k];
        root = new_root;
    }
    for (uint32_t i = 0; i < half; ++i)
        net.create_po(root[i]);
    return net;
}

namespace {

xag comparator(uint32_t bits, bool is_signed, bool or_equal)
{
    xag net;
    const auto a = input_word(net, bits);
    const auto b = input_word(net, bits);
    signal out;
    if (is_signed)
        out = or_equal ? less_equal_signed(net, a, b)
                       : less_than_signed(net, a, b);
    else
        out = or_equal ? less_equal_unsigned(net, a, b)
                       : less_than_unsigned(net, a, b);
    net.create_po(out);
    return net;
}

} // namespace

xag gen_comparator_lt_unsigned(uint32_t bits)
{
    return comparator(bits, false, false);
}
xag gen_comparator_leq_unsigned(uint32_t bits)
{
    return comparator(bits, false, true);
}
xag gen_comparator_lt_signed(uint32_t bits)
{
    return comparator(bits, true, false);
}
xag gen_comparator_leq_signed(uint32_t bits)
{
    return comparator(bits, true, true);
}

xag gen_int2float(uint32_t in_bits, uint32_t exp_bits, uint32_t man_bits)
{
    if ((1u << exp_bits) <= in_bits)
        throw std::invalid_argument{"gen_int2float: exponent too narrow"};
    xag net;
    const auto x = input_word(net, in_bits);

    // Leading-one detection with priority from the MSB.
    auto none_above = net.get_constant(true);
    word exponent(exp_bits, net.get_constant(false));
    word mantissa(man_bits, net.get_constant(false));
    auto nonzero = net.get_constant(false);
    for (uint32_t p = in_bits; p-- > 0;) {
        const auto lead_here = net.create_and(none_above, x[p]);
        none_above = net.create_and(none_above, !x[p]);
        nonzero = net.create_or(nonzero, x[p]);
        // exponent = p (biased by 1 so that zero maps to exponent 0).
        for (uint32_t k = 0; k < exp_bits; ++k)
            if (((p + 1) >> k) & 1)
                exponent[k] = net.create_or(exponent[k], lead_here);
        // mantissa = bits right below the leading one (truncated).
        for (uint32_t k = 0; k < man_bits; ++k) {
            const int src = static_cast<int>(p) - 1 - static_cast<int>(k);
            if (src >= 0)
                mantissa[man_bits - 1 - k] = net.create_or(
                    mantissa[man_bits - 1 - k],
                    net.create_and(lead_here, x[src]));
        }
    }
    net.create_po(nonzero);
    for (const auto s : exponent)
        net.create_po(s);
    for (const auto s : mantissa)
        net.create_po(s);
    return net;
}

} // namespace mcx
