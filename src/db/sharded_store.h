// Thread-safe sharded memo map with once-per-key building — the storage
// layer both databases (mc_database, size_database) sit on since the
// parallel rewrite round made their lookups concurrent.
//
// Keys hash to one of 64 shards, each an unordered_map behind its own
// mutex (striped locking: lookups of different shards never contend).  A
// miss inserts a not-yet-ready slot, releases the shard lock, runs the
// builder — so expensive builds (exact-SAT synthesis) of *different* keys
// proceed concurrently, even in the same shard — and publishes the result
// under the lock.  Concurrent lookups of a key being built wait on the
// shard's condition variable instead of building again: every key is
// built exactly once, so `misses()` equals the number of distinct keys
// ever built and the hit/miss totals of a fixed workload do not depend on
// the thread count.
//
// References returned by lookup_or_build stay valid for the store's
// lifetime: values live in map nodes and nothing is ever erased.
#pragma once

#include "core/budget.h"
#include "obs/metrics.h"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace mcx {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class sharded_store {
public:
    sharded_store() : state_{std::make_unique<state>()} {}

    sharded_store(sharded_store&&) noexcept = default;
    sharded_store& operator=(sharded_store&&) noexcept = default;

    /// The value for `key`, running `build(key)` on the first lookup.
    /// Thread-safe; see the file comment for the once-per-key contract.
    /// The builder must not re-enter the store.  If the builder throws,
    /// the slot is marked failed and the next lookup (a waiter, or a
    /// later caller) takes over the build — nobody hangs on a value that
    /// never arrives.
    ///
    /// A stopped `token` unblocks waiters too: instead of waiting
    /// unconditionally on a builder that may itself be stuck (the builder
    /// runs caller-supplied code outside the shard lock), waiters poll the
    /// token between short condition-variable waits and unwind with
    /// `cancelled_error`.  The slot is left exactly as the builder will
    /// eventually publish it, so nothing is corrupted if the builder does
    /// finish later.
    template <typename Builder>
    const Value& lookup_or_build(const Key& key, Builder&& build,
                                 const cancellation_token& token = {})
    {
        auto& sh = shard_for(key);
        std::unique_lock lock{sh.mutex};
        // References into the map survive rehashing (only iterators are
        // invalidated), so `s` stays valid across the unlocked build.
        slot& s = sh.map.try_emplace(key).first->second;
        if (s.state != slot_state::empty) {
            if (token.stop_possible()) {
                while (!sh.ready.wait_for(
                    lock, std::chrono::milliseconds{50},
                    [&] { return s.state != slot_state::building; })) {
                    if (token.stop_requested())
                        throw cancelled_error{token.stop_reason()};
                }
            } else {
                sh.ready.wait(
                    lock, [&] { return s.state != slot_state::building; });
            }
            if (s.state == slot_state::ready) {
                state_->hits.fetch_add(1, std::memory_order_relaxed);
                state_->hit_metric.add();
                return s.value;
            }
            // The previous builder threw; fall through and take over.
            // Any other waiter re-evaluates its predicate under the lock,
            // sees `building` again, and keeps waiting.
        }
        s.state = slot_state::building;
        state_->misses.fetch_add(1, std::memory_order_relaxed);
        state_->miss_metric.add();
        lock.unlock();
        try {
            Value built = build(key);
            lock.lock();
            s.value = std::move(built);
            s.state = slot_state::ready;
        } catch (...) {
            lock.lock();
            s.state = slot_state::failed;
            lock.unlock();
            sh.ready.notify_all();
            throw;
        }
        lock.unlock();
        sh.ready.notify_all();
        return s.value;
    }

    /// Insert a ready value (deserialization path; not for concurrent use
    /// with lookups of the same key).
    void insert(const Key& key, Value value)
    {
        auto& sh = shard_for(key);
        std::lock_guard lock{sh.mutex};
        auto& s = sh.map[key];
        s.value = std::move(value);
        s.state = slot_state::ready;
    }

    size_t size() const
    {
        size_t total = 0;
        for (auto& sh : state_->shards) {
            std::lock_guard lock{sh.mutex};
            total += sh.map.size();
        }
        return total;
    }

    uint64_t hits() const
    {
        return state_->hits.load(std::memory_order_relaxed);
    }
    uint64_t misses() const
    {
        return state_->misses.load(std::memory_order_relaxed);
    }

    /// Mirror hits/misses into registry counters (obs/metrics.h) in
    /// addition to the per-instance atomics above — instance totals feed
    /// per-round deltas in reports, the registry aggregates across stores.
    void set_metrics(obs::metric hit, obs::metric miss)
    {
        state_->hit_metric = hit;
        state_->miss_metric = miss;
    }

    /// Visit every ready (key, value) pair.  Holds each shard's lock
    /// during its sweep; meant for the single-threaded save/export paths.
    template <typename F>
    void for_each(F&& f) const
    {
        for (auto& sh : state_->shards) {
            std::lock_guard lock{sh.mutex};
            for (const auto& [key, s] : sh.map)
                if (s.state == slot_state::ready)
                    f(key, s.value);
        }
    }

private:
    static constexpr size_t num_shards = 64;

    enum class slot_state : uint8_t { empty, building, ready, failed };

    struct slot {
        Value value{};
        slot_state state = slot_state::empty;
    };

    struct shard {
        mutable std::mutex mutex;
        std::condition_variable ready;
        std::unordered_map<Key, slot, Hash> map;
    };

    struct state {
        std::array<shard, num_shards> shards;
        std::atomic<uint64_t> hits{0};
        std::atomic<uint64_t> misses{0};
        obs::metric hit_metric;
        obs::metric miss_metric;
    };

    shard& shard_for(const Key& key) const
    {
        return state_->shards[Hash{}(key) % num_shards];
    }

    std::unique_ptr<state> state_;
};

} // namespace mcx
