#include "db/mc_database.h"

#include "core/fault_inject.h"
#include "exact/heuristic_mc.h"
#include "obs/trace.h"
#include "xag/cleanup.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mcx {

std::string serialize_single_output(const xag& network)
{
    if (network.num_pos() != 1)
        throw std::invalid_argument{
            "serialize_single_output: exactly one PO expected"};

    // Re-number live nodes densely in topological order.
    std::vector<uint32_t> index(network.size(), 0);
    for (uint32_t i = 0; i < network.num_pis(); ++i)
        index[network.pi_at(i)] = 1 + i; // 0 is the constant
    uint32_t next = 1 + network.num_pis();
    std::ostringstream os;
    std::ostringstream gates;
    uint32_t num_gates = 0;
    for (const auto n : network.topological_order()) {
        if (!network.is_gate(n))
            continue;
        index[n] = next++;
        ++num_gates;
        const auto f0 = network.fanin0(n);
        const auto f1 = network.fanin1(n);
        gates << (network.is_and(n) ? " a " : " x ")
              << (2 * index[f0.node()] + f0.complemented()) << ' '
              << (2 * index[f1.node()] + f1.complemented());
    }
    const auto po = network.po_at(0);
    os << network.num_pis() << ' ' << num_gates << gates.str() << ' '
       << (2 * index[po.node()] + po.complemented());
    return os.str();
}

xag deserialize_single_output(const std::string& text)
{
    std::istringstream is{text};
    uint32_t num_pis = 0, num_gates = 0;
    if (!(is >> num_pis >> num_gates))
        throw std::invalid_argument{"deserialize: malformed header"};

    xag net;
    std::vector<signal> nodes;
    nodes.push_back(net.get_constant(false));
    for (uint32_t i = 0; i < num_pis; ++i)
        nodes.push_back(net.create_pi());

    const auto lit_to_signal = [&](uint32_t lit) {
        const auto idx = lit >> 1;
        if (idx >= nodes.size())
            throw std::invalid_argument{"deserialize: literal out of range"};
        return nodes[idx] ^ ((lit & 1) != 0);
    };

    for (uint32_t g = 0; g < num_gates; ++g) {
        std::string kind;
        uint32_t l0 = 0, l1 = 0;
        if (!(is >> kind >> l0 >> l1) || (kind != "a" && kind != "x"))
            throw std::invalid_argument{"deserialize: malformed gate"};
        const auto a = lit_to_signal(l0);
        const auto b = lit_to_signal(l1);
        nodes.push_back(kind == "a" ? net.create_and(a, b)
                                    : net.create_xor(a, b));
    }
    uint32_t out = 0;
    if (!(is >> out))
        throw std::invalid_argument{"deserialize: missing output"};
    net.create_po(lit_to_signal(out));
    return net;
}

const mc_database::entry& mc_database::lookup_or_build(
    const truth_table& representative, const cancellation_token& token)
{
    return entries_.lookup_or_build(
        representative,
        [&](const truth_table& rep) {
            fault_injection::fire(fault_site::db_build);
            const obs::trace::trace_span span{"db.mc.synthesize"};
            static const auto synthesized =
                obs::register_metric("db.mc.synthesize");
            synthesized.add();
            entry e;
            bool built = false;
            if (params_.use_exact) {
                const auto exact = exact_mc_synthesis(
                    rep, {.max_ands = params_.exact_max_ands,
                          .conflict_budget = params_.exact_conflict_budget,
                          .token = token,
                          .engine = params_.engine});
                if (exact.success) {
                    e.circuit = exact.circuit;
                    e.num_ands = exact.num_ands;
                    e.optimal = exact.optimal;
                    built = true;
                    exact_entries_.fetch_add(1, std::memory_order_relaxed);
                }
            }
            if (!built) {
                // An interrupted search must not be memoized as this
                // class's answer; unwind and leave the slot failed so an
                // uncancelled lookup rebuilds it.  (Budget exhaustion is
                // not interruption: the heuristic below IS the answer
                // under that budget, cached with optimal = false.)
                throw_if_stopped(token);
                e.circuit = heuristic_mc_circuit(rep);
                e.num_ands = e.circuit.num_ands();
                e.optimal = false;
                heuristic_entries_.fetch_add(1, std::memory_order_relaxed);
            }
            return e;
        },
        token);
}

void mc_database::save(std::ostream& os) const
{
    entries_.for_each([&](const truth_table& tt, const entry& e) {
        os << tt.num_vars() << ' ' << tt.to_hex() << ' ' << e.num_ands << ' '
           << (e.optimal ? 1 : 0) << ' ' << serialize_single_output(e.circuit)
           << '\n';
    });
}

void mc_database::save_file(const std::string& path) const
{
    std::ofstream os{path};
    if (!os)
        throw std::runtime_error{"mc_database: cannot write " + path};
    save(os);
}

mc_database mc_database::load(std::istream& is, mc_database_params params)
{
    mc_database db{params};
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls{line};
        uint32_t num_vars = 0;
        std::string hex;
        entry e;
        uint32_t optimal = 0;
        if (!(ls >> num_vars >> hex >> e.num_ands >> optimal))
            throw std::invalid_argument{"mc_database: malformed line"};
        std::string rest;
        std::getline(ls, rest);
        e.circuit = deserialize_single_output(rest);
        e.optimal = optimal != 0;
        (e.optimal ? db.exact_entries_ : db.heuristic_entries_)
            .fetch_add(1, std::memory_order_relaxed);
        db.entries_.insert(truth_table::from_hex(num_vars, hex),
                           std::move(e));
    }
    return db;
}

mc_database mc_database::load_file(const std::string& path,
                                   mc_database_params params)
{
    std::ifstream is{path};
    if (!is)
        throw std::runtime_error{"mc_database: cannot read " + path};
    return load(is, params);
}

mc_database::combined_xag mc_database::export_combined() const
{
    combined_xag result;
    std::vector<signal> inputs;
    for (int i = 0; i < 6; ++i)
        inputs.push_back(result.network.create_pi());
    entries_.for_each([&](const truth_table& tt, const entry& e) {
        // Entry circuits have tt.num_vars() inputs; wire them to the first
        // inputs of the shared 6-input network (structural hashing shares
        // common substructure across entries, like the paper's XAG_DB).
        const std::vector<signal> leaves(inputs.begin(),
                                         inputs.begin() + tt.num_vars());
        const auto outs = insert_network(result.network, e.circuit, leaves);
        result.network.create_po(outs[0]);
        result.representatives.push_back(tt);
    });
    return result;
}

} // namespace mcx
