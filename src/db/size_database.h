// Database of gate-count-minimal XAGs per NPN-4 representative: the
// pre-computed structures behind the generic size-optimization baseline
// (DESIGN.md substitution X2).
#pragma once

#include "tt/truth_table.h"
#include "xag/xag.h"

#include <cstdint>
#include <unordered_map>

namespace mcx {

struct size_database_params {
    uint32_t exact_max_gates = 10;
    uint64_t exact_conflict_budget = 30'000;
};

class size_database {
public:
    struct entry {
        xag circuit; ///< representative circuit: k PIs, 1 PO
        uint32_t num_gates = 0;
        bool optimal = false;
    };

    explicit size_database(size_database_params params = {})
        : params_{params} {}

    /// Circuit for an NPN representative (at most 4 variables).
    const entry& lookup_or_build(const truth_table& representative);

    size_t size() const { return entries_.size(); }
    /// Lookups served from the memoized entries vs. synthesis runs.
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

private:
    size_database_params params_;
    std::unordered_map<truth_table, entry, truth_table_hash> entries_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace mcx
