// Database of gate-count-minimal XAGs per NPN-4 representative: the
// pre-computed structures behind the generic size-optimization baseline
// (DESIGN.md substitution X2).
//
// Like mc_database, storage is a sharded_store: thread-safe striped
// lookups with once-per-class miss synthesis (docs/parallel.md).
#pragma once

#include "db/sharded_store.h"
#include "sat/types.h"
#include "tt/truth_table.h"
#include "xag/xag.h"

#include <cstdint>

namespace mcx {

struct size_database_params {
    uint32_t exact_max_gates = 10;
    uint64_t exact_conflict_budget = 30'000;
    /// CDCL engine for miss synthesis (`automatic` = process default).
    sat::sat_engine engine = sat::sat_engine::automatic;
};

class size_database {
public:
    struct entry {
        xag circuit; ///< representative circuit: k PIs, 1 PO
        uint32_t num_gates = 0;
        bool optimal = false;
    };

    explicit size_database(size_database_params params = {}) : params_{params}
    {
        entries_.set_metrics(obs::register_metric("db.size.hit"),
                             obs::register_metric("db.size.miss"));
    }

    /// Circuit for an NPN representative (at most 4 variables).
    /// Thread-safe; synthesized once per class, reference valid for the
    /// database's lifetime.  A stopped `token` unwinds with
    /// `cancelled_error` instead of caching a half-searched answer (see
    /// mc_database::lookup_or_build).
    const entry& lookup_or_build(const truth_table& representative,
                                 const cancellation_token& token = {});

    size_t size() const { return entries_.size(); }
    /// Lookups served from the memoized entries vs. synthesis runs (a
    /// lookup waiting on an in-flight synthesis counts as a hit).
    uint64_t hits() const { return entries_.hits(); }
    uint64_t misses() const { return entries_.misses(); }

private:
    size_database_params params_;
    sharded_store<truth_table, entry, truth_table_hash> entries_;
};

} // namespace mcx
