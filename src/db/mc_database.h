// Database of AND-minimal XAGs per affine-class representative (paper §4.1).
//
// The paper ships a pre-computed database (NIST's SLP circuits for 147 998
// of all 150 357 6-input affine classes, 12 MB compressed).  We build the
// same mapping lazily instead (DESIGN.md substitution X1): on a miss the
// representative is synthesized — exactly when the SAT search finishes
// within its conflict budget, heuristically otherwise — and memoized.  The
// database can be serialized and reloaded so that, like the paper's file,
// it is "created once and reused for several rewriting calls".
//
// Storage is a sharded_store (src/db/sharded_store.h): lookups are
// thread-safe behind striped locks, and a missed class is synthesized
// exactly once — concurrent misses of different classes run their
// exact-SAT searches in parallel while lookups of a class being built
// wait for it (the parallel rewrite round's requirement, docs/parallel.md).
#pragma once

#include "db/sharded_store.h"
#include "exact/exact_mc.h"
#include "tt/truth_table.h"
#include "xag/xag.h"

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mcx {

struct mc_database_params {
    bool use_exact = true;              ///< try SAT-based exact synthesis
    uint32_t exact_max_ands = 6;
    uint64_t exact_conflict_budget = 30'000; ///< per AND-count step
    /// CDCL engine for miss synthesis (`automatic` = process default).
    sat::sat_engine engine = sat::sat_engine::automatic;
};

class mc_database {
public:
    struct entry {
        xag circuit; ///< representative circuit: k PIs, 1 PO
        uint32_t num_ands = 0;
        bool optimal = false; ///< certified MC-optimal by exact synthesis
    };

    explicit mc_database(mc_database_params params = {}) : params_{params}
    {
        entries_.set_metrics(obs::register_metric("db.mc.hit"),
                             obs::register_metric("db.mc.miss"));
    }

    // Movable (load_file returns by value); the atomic counters need the
    // explicit member-wise move.  Not meant to be moved while other
    // threads are using the source.
    mc_database(mc_database&& other) noexcept
        : params_{other.params_}, entries_{std::move(other.entries_)},
          exact_entries_{other.exact_entries()},
          heuristic_entries_{other.heuristic_entries()}
    {
    }
    mc_database& operator=(mc_database&& other) noexcept
    {
        params_ = other.params_;
        entries_ = std::move(other.entries_);
        exact_entries_.store(other.exact_entries());
        heuristic_entries_.store(other.heuristic_entries());
        return *this;
    }

    /// Circuit for a class representative (at most 6 variables); synthesized
    /// and memoized on first use.  The entry map is itself the memo layer of
    /// the hot loop's final stage: a hit is a hash lookup, a miss runs
    /// exact/heuristic synthesis once per class, ever — also under
    /// concurrent lookups (see the file comment).  The returned reference
    /// stays valid for the database's lifetime.
    ///
    /// A stopped `token` unwinds with `cancelled_error` instead of caching
    /// anything: a build interrupted mid-search must not be memoized as
    /// this class's answer (its slot is marked failed and rebuilt by the
    /// next uncancelled lookup).  Genuine budget exhaustion is different —
    /// the heuristic fallback IS the answer under that budget and is
    /// cached, but never with `optimal` set.
    const entry& lookup_or_build(const truth_table& representative,
                                 const cancellation_token& token = {});

    size_t size() const { return entries_.size(); }
    uint64_t exact_entries() const
    {
        return exact_entries_.load(std::memory_order_relaxed);
    }
    uint64_t heuristic_entries() const
    {
        return heuristic_entries_.load(std::memory_order_relaxed);
    }
    /// Lookups served from the memoized entries vs. synthesis runs.  A
    /// lookup that waits for another thread's in-flight synthesis counts
    /// as a hit, so these totals are thread-count-independent.
    uint64_t hits() const { return entries_.hits(); }
    uint64_t misses() const { return entries_.misses(); }

    /// Text serialization (one entry per line).
    void save(std::ostream& os) const;
    void save_file(const std::string& path) const;
    static mc_database load(std::istream& is, mc_database_params params = {});
    static mc_database load_file(const std::string& path,
                                 mc_database_params params = {});

    /// The paper's XAG_DB representation (§4.1): all entries merged into
    /// one strashed network with 6 inputs and one output per
    /// representative.  Returns the network and the representative served
    /// by each output, in output order.
    struct combined_xag {
        xag network;
        std::vector<truth_table> representatives;
    };
    combined_xag export_combined() const;

private:
    mc_database_params params_;
    sharded_store<truth_table, entry, truth_table_hash> entries_;
    std::atomic<uint64_t> exact_entries_{0};
    std::atomic<uint64_t> heuristic_entries_{0};
};

/// Serialize a single-output XAG as a compact token stream (used by the
/// database file format): "<num_pis> <num_gates> (<kind> <lit> <lit>)* <lit>".
std::string serialize_single_output(const xag& network);
xag deserialize_single_output(const std::string& text);

} // namespace mcx
