#include "db/size_database.h"

#include "exact/exact_size.h"
#include "exact/heuristic_mc.h"

namespace mcx {

const size_database::entry& size_database::lookup_or_build(
    const truth_table& representative)
{
    return entries_.lookup_or_build(
        representative, [&](const truth_table& rep) {
            entry e;
            const auto exact = exact_size_synthesis(
                rep, {.max_gates = params_.exact_max_gates,
                      .conflict_budget = params_.exact_conflict_budget});
            if (exact.success) {
                e.circuit = exact.circuit;
                e.num_gates = exact.num_gates;
                e.optimal = exact.optimal;
            } else {
                // Fallback: the MC heuristic still yields a correct (if
                // larger) structure.
                e.circuit = heuristic_mc_circuit(rep);
                e.num_gates = e.circuit.num_gates();
                e.optimal = false;
            }
            return e;
        });
}

} // namespace mcx
