#include "db/size_database.h"

#include "core/fault_inject.h"
#include "exact/exact_size.h"
#include "exact/heuristic_mc.h"
#include "obs/trace.h"

namespace mcx {

const size_database::entry& size_database::lookup_or_build(
    const truth_table& representative, const cancellation_token& token)
{
    return entries_.lookup_or_build(
        representative,
        [&](const truth_table& rep) {
            fault_injection::fire(fault_site::db_build);
            const obs::trace::trace_span span{"db.size.synthesize"};
            static const auto synthesized =
                obs::register_metric("db.size.synthesize");
            synthesized.add();
            entry e;
            const auto exact = exact_size_synthesis(
                rep, {.max_gates = params_.exact_max_gates,
                      .conflict_budget = params_.exact_conflict_budget,
                      .token = token,
                      .engine = params_.engine});
            if (exact.success) {
                e.circuit = exact.circuit;
                e.num_gates = exact.num_gates;
                e.optimal = exact.optimal;
            } else {
                // A cancelled search must not be memoized (see
                // mc_database); a budget-exhausted one falls back to the
                // MC heuristic, which still yields a correct (if larger)
                // structure, cached with optimal = false.
                throw_if_stopped(token);
                e.circuit = heuristic_mc_circuit(rep);
                e.num_gates = e.circuit.num_gates();
                e.optimal = false;
            }
            return e;
        },
        token);
}

} // namespace mcx
