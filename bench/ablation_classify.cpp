// Ablation for paper §4.1: the classification iteration limit (paper:
// 100 000; functions above the limit are omitted from rewriting, as are
// 2 359 of the 150 357 6-input classes in the paper) and the effect of the
// classification cache ("no Boolean function needs to be classified twice").
#include "common.h"

#include "cut/cut_enumeration.h"
#include "spectral/classification.h"
#include "tt/operations.h"

#include <chrono>
#include "gen/arithmetic.h"
#include "gen/hashes.h"

#include <cstdio>

using namespace mcx;
using namespace mcx::bench;

int main()
{
    std::printf("mcx — ablation: classification iteration limit and cache\n\n");
    std::printf("%-8s %10s | %10s %12s %10s %10s\n", "circuit", "limit",
                "AND_final", "class_fails", "time[s]", "cache_hits");

    for (const uint64_t limit : {100ull, 1'000ull, 10'000ull, 100'000ull,
                                 1'000'000ull}) {
        auto net = gen_md5();
        mc_database db;
        classification_cache cache{{.iteration_limit = limit}};
        rewrite_params params;
        params.classification_iteration_limit = limit;
        const auto stats = mc_rewrite_round(net, db, cache, params);
        std::printf("%-8s %10llu | %10u %12llu %10.2f %10llu\n", "md5",
                    static_cast<unsigned long long>(limit), stats.ands_after,
                    static_cast<unsigned long long>(stats.classify_failures),
                    stats.seconds,
                    static_cast<unsigned long long>(cache.hits()));
    }

    std::printf("\ncache effect (md5, one round, limit 100k):\n");
    {
        auto net = gen_md5();
        mc_database db;
        classification_cache cache;
        const auto stats = mc_rewrite_round(net, db, cache);
        std::printf("  with cache:   %.2fs (%zu entries, %llu hits)\n",
                    stats.seconds, cache.size(),
                    static_cast<unsigned long long>(cache.hits()));
    }
    {
        // A fresh cache per cut simulates "no cache": approximate by
        // clearing between rounds — here we emulate it with a tiny
        // iteration budget spent on classify misses only.
        auto net = gen_md5();
        mc_database db;
        double seconds = 0;
        // Classify a sample of cuts afresh and extrapolate to the ~300k
        // cut evaluations of a full round.
        const auto cuts = enumerate_cuts(net);
        uint64_t classified = 0, total = 0;
        constexpr uint64_t sample = 10'000;
        const auto start = std::chrono::steady_clock::now();
        for (const auto n : net.topological_order()) {
            if (!net.is_gate(n))
                continue;
            for (const auto& c : cuts[n]) {
                if (c.num_leaves < 2)
                    continue;
                const auto view = shrink_to_support(c.function_tt());
                if (view.support.size() < 2)
                    continue;
                ++total;
                if (classified < sample) {
                    (void)classify_affine(view.function);
                    ++classified;
                }
            }
        }
        seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        std::printf("  without cache: %.2fs for %llu fresh classifications "
                    "(~%.0fs extrapolated to all %llu cut evaluations)\n",
                    seconds, static_cast<unsigned long long>(classified),
                    seconds * static_cast<double>(total) /
                        static_cast<double>(sample),
                    static_cast<unsigned long long>(total));
    }
    return 0;
}
