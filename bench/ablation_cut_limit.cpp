// Ablation for paper §4.1: "a cut limit of 12 leads to a good trade-off
// between runtime and quality".  Sweeps the per-node cut limit on
// representative circuits and reports final AND count and runtime.
#include "common.h"

#include "gen/arithmetic.h"
#include "gen/hashes.h"

#include <cstdio>

using namespace mcx;
using namespace mcx::bench;

int main()
{
    std::printf("mcx — ablation: cut limit (paper default 12)\n");
    std::printf("%-14s %6s | %10s %10s %10s\n", "circuit", "limit", "AND_init",
                "AND_final", "time[s]");

    struct spec {
        const char* name;
        xag (*make)();
    };
    const spec specs[] = {
        {"multiplier16", [] { return gen_multiplier(16); }},
        {"divisor16", [] { return gen_divisor(16); }},
        {"md5", [] { return gen_md5(); }},
    };

    for (const auto& s : specs) {
        for (const uint32_t limit : {1u, 2u, 4u, 8u, 12u, 16u, 24u}) {
            auto net = s.make();
            const auto initial = net.num_ands();
            mc_database db;
            classification_cache cache;
            rewrite_params params;
            params.cut_limit = limit;
            const auto conv = mc_rewrite(net, db, cache, params, 6);
            std::printf("%-14s %6u | %10u %10u %10.2f\n", s.name, limit,
                        initial, net.num_ands(), conv.total_seconds());
        }
        std::printf("\n");
    }
    return 0;
}
