// Regenerates paper Table 1: EPFL combinational benchmarks, proposed
// AND-minimization vs. generic size optimization.
//
// Protocol (paper §5.1): the initial point is a generically size-optimized
// network under a unit cost model (our size_rewrite baseline — DESIGN.md
// substitution X2 — applied to generator-built circuits — substitution X3);
// then one round of the proposed method and repetition until convergence
// are reported.  Default widths are laptop-scale; MCX_FULL=1 selects
// paper-scale widths (see EXPERIMENTS.md for the mapping).
#include "common.h"

#include "gen/arithmetic.h"
#include "gen/control.h"

#include <cstdio>

using namespace mcx;
using namespace mcx::bench;

namespace {

xag baseline(xag net, size_database& sdb)
{
    size_rewrite(net, sdb, {}, 6);
    return cleanup(net);
}

} // namespace

int main()
{
    const bool full = full_scale();
    std::printf("mcx — Table 1 (EPFL benchmarks), %s widths\n",
                full ? "paper-scale" : "reduced");
    std::printf("paper column: one-round%% / converged%% AND improvement "
                "reported in DAC'19 Table 1\n");

    mc_database db;
    classification_cache cache;
    size_database sdb;

    struct spec {
        const char* name;
        xag circuit;
        int paper_one;
        int paper_conv;
    };

    std::vector<spec> arith;
    arith.push_back({"Adder", gen_adder(full ? 128 : 64), 42, 77});
    arith.push_back(
        {"Barrel shifter", gen_barrel_shifter(full ? 128 : 32), 67, 69});
    arith.push_back({"Divisor", gen_divisor(full ? 64 : 16), 47, 50});
    arith.push_back({"Log2", gen_log2(full ? 32 : 16), 20, 22});
    arith.push_back({"Max", gen_max(full ? 128 : 32, 4), 45, 65});
    arith.push_back({"Multiplier", gen_multiplier(full ? 64 : 16), 24, 26});
    arith.push_back({"Sine", gen_sine(full ? 24 : 14), 15, 17});
    arith.push_back({"Square-root", gen_sqrt(full ? 64 : 16), 42, 49});
    arith.push_back({"Square", gen_square(full ? 32 : 16), 42, 44});

    std::vector<spec> control;
    control.push_back({"Round-robin arbiter",
                       gen_round_robin_arbiter(full ? 128 : 64), 0, 0});
    control.push_back({"Alu control unit", gen_alu_control(5, 26), 1, 1});
    control.push_back(
        {"Coding-cavlc*", gen_random_control(10, 620, 11, 0xca41c), 5, 8});
    control.push_back({"Decoder", gen_decoder(8), 0, 0});
    control.push_back(
        {"i2c controller*", gen_random_control(147, 900, 142, 0x12c), 20, 24});
    control.push_back({"int to float converter", gen_int2float(11, 4, 3),
                       16, 25});
    control.push_back({"Memory controller*",
                       gen_random_control(1204, full ? 7500 : 2500, 1231,
                                          0x3e3c),
                       27, 31});
    control.push_back({"Priority encoder", gen_priority_encoder(128), 11, 11});
    control.push_back({"Lookahead XY router", gen_xy_router(15), 0, 0});
    control.push_back({"Voter", gen_voter(full ? 1001 : 501), 17, 23});

    const auto run_section = [&](const char* title, std::vector<spec>& specs) {
        print_header(title);
        std::vector<row> rows;
        for (auto& s : specs) {
            auto initial = baseline(std::move(s.circuit), sdb);
            auto r = run_protocol(s.name, std::move(initial), db, cache);
            r.paper_improvement_one = s.paper_one;
            r.paper_improvement_conv = s.paper_conv;
            print_row(r);
            rows.push_back(r);
        }
        std::printf("normalized geometric mean (AND, converged/initial): "
                    "%.2f   [paper: %s]\n",
                    geomean_ratio(rows),
                    title[0] == 'A' ? "0.49" : "0.87");
        return rows;
    };

    auto a = run_section("Arithmetic benchmarks", arith);
    auto c = run_section("Random-control benchmarks", control);

    std::vector<row> all(a);
    all.insert(all.end(), c.begin(), c.end());
    std::printf("\noverall geometric-mean AND ratio: %.2f (paper overall: "
                "~0.66, i.e. 34%% average reduction)\n",
                geomean_ratio(all));
    std::printf("classification cache: %zu entries, %llu hits / %llu misses; "
                "database: %zu entries (%llu exact, %llu heuristic)\n",
                cache.size(),
                static_cast<unsigned long long>(cache.hits()),
                static_cast<unsigned long long>(cache.misses()), db.size(),
                static_cast<unsigned long long>(db.exact_entries()),
                static_cast<unsigned long long>(db.heuristic_entries()));
    return 0;
}
