// Walks through the paper's running example (Fig. 1, Fig. 2, Examples 2.3
// and 3.1): the full adder's carry-out cone is the majority function 0xe8,
// its affine class representative is the AND function 0x88, and rewriting
// brings the full adder from 3 AND gates down to its multiplicative
// complexity of 1.
#include "core/rewrite.h"
#include "db/mc_database.h"
#include "spectral/classification.h"
#include "xag/cleanup.h"
#include "xag/simulate.h"

#include <cstdio>

using namespace mcx;

int main()
{
    std::printf("mcx — paper worked example (Fig. 1 / Fig. 2, Example 3.1)\n\n");

    // Fig. 1(a): textbook full adder.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto cin = net.create_pi();
    const auto axb = net.create_xor(a, b);
    net.create_po(net.create_xor(axb, cin));
    net.create_po(net.create_or(net.create_and(a, b), net.create_and(axb, cin)));
    std::printf("Fig. 1(a) full adder: %u AND, %u XOR\n", net.num_ands(),
                net.num_xors());

    // Fig. 1(b): the cout cut over {a, b, cin} implements 0xe8.
    const auto tts = simulate(net);
    std::printf("  sum  = 0x%s\n  cout = 0x%s   (majority <a b cin>)\n",
                tts[0].to_hex().c_str(), tts[1].to_hex().c_str());

    // Example 2.3: classify the majority function.
    const auto cls = classify_affine(truth_table{3, 0xe8});
    std::printf("\nAffine classification of 0xe8:\n");
    std::printf("  representative: 0x%s\n",
                cls.representative.to_hex().c_str());
    std::printf("  affine-equivalent to the AND class: %s\n",
                classify_affine(truth_table{3, 0x88}).representative ==
                        cls.representative
                    ? "yes (paper: representative of <abc> is 0x88)"
                    : "NO");
    std::printf("  transform back: f(y) = r(M^T y ^ c) ^ v.y ^ s with\n");
    std::printf("    M columns = {%x, %x, %x}, c = %x, v = %x, s = %d\n",
                cls.transform.m_columns[0], cls.transform.m_columns[1],
                cls.transform.m_columns[2], cls.transform.c, cls.transform.v,
                cls.transform.output_complement ? 1 : 0);
    std::printf("  iterations used: %llu\n",
                static_cast<unsigned long long>(cls.iterations));

    // The database circuit of the representative: one AND gate.
    mc_database db;
    const auto& entry = db.lookup_or_build(cls.representative);
    std::printf("  database circuit of the representative: %u AND gate(s), "
                "optimal=%s\n",
                entry.num_ands, entry.optimal ? "yes" : "no");

    // Fig. 2(c): rewrite the full adder.
    const auto golden = simulate(net);
    const auto result = mc_rewrite(net);
    std::printf("\nAfter cut rewriting (Alg. 1): %u AND, %u XOR "
                "(%zu round(s))\n",
                net.num_ands(), net.num_xors(), result.rounds.size());
    std::printf("  multiplicative complexity of the full adder: at most %u "
                "(paper: 1)\n",
                net.num_ands());
    std::printf("  function preserved: %s\n",
                simulate(net) == golden ? "yes" : "NO");

    const auto clean = cleanup(net);
    std::printf("\nFinal XAG (cf. Fig. 2(c)):\n");
    for (const auto n : clean.topological_order()) {
        if (!clean.is_gate(n))
            continue;
        std::printf("  n%u = %s(%s%u, %s%u)\n", n,
                    clean.is_and(n) ? "AND" : "XOR",
                    clean.fanin0(n).complemented() ? "~n" : "n",
                    clean.fanin0(n).node(),
                    clean.fanin1(n).complemented() ? "~n" : "n",
                    clean.fanin1(n).node());
    }
    return 0;
}
