// Regenerates paper Table 2: MPC and FHE benchmarks.
//
// The paper's initial points are the best-known circuits from the MPC
// community (already engineered for low AND count in the AES case, generic
// elsewhere); ours are generator-built equivalents (DESIGN.md substitution
// X4).  Expected shape: AES ~0 % (it starts near-MC-optimal), DES moderate,
// hashes large (>= 50 %), adders reach the known optimum of n AND gates.
#include "common.h"

#include "gen/aes.h"
#include "gen/arithmetic.h"
#include "gen/des.h"
#include "gen/hashes.h"

#include <cstdio>

using namespace mcx;
using namespace mcx::bench;

int main()
{
    const bool full = full_scale();
    std::printf("mcx — Table 2 (MPC and FHE benchmarks), %s\n",
                full ? "full variants" : "reduced variants");

    mc_database db;
    classification_cache cache;

    struct spec {
        const char* name;
        xag circuit;
        int paper_one;
        int paper_conv;
    };

    std::vector<spec> specs;
    specs.push_back({"AES (No Key Expansion)", gen_aes128(false), 0, 0});
    specs.push_back({"AES (Key Expansion)", gen_aes128_expanded(), 0, 0});
    specs.push_back({"DES (No Key Expansion)", gen_des(full ? 16 : 8), 4, 17});
    specs.push_back(
        {"DES (Key Expansion)", gen_des_expanded(full ? 16 : 8), 4, 17});
    specs.push_back({"MD5", gen_md5(), 58, 68});
    specs.push_back({"SHA-1", gen_sha1(), 54, 68});
    specs.push_back({"SHA-256", gen_sha256(), 41, 66});
    specs.push_back({"32-bit Adder", gen_adder(32), 70, 75});
    specs.push_back({"64-bit Adder", gen_adder(64), 62, 76});
    specs.push_back(
        {"32x32-bit Multiplier", gen_multiplier(full ? 32 : 16), 28, 31});
    specs.push_back(
        {"Comp. 32-bit Signed LTEQ", gen_comparator_leq_signed(32), 19, 24});
    specs.push_back(
        {"Comp. 32-bit Signed LT", gen_comparator_lt_signed(32), 14, 28});
    specs.push_back({"Comp. 32-bit Unsigned LTEQ",
                     gen_comparator_leq_unsigned(32), 19, 24});
    specs.push_back(
        {"Comp. 32-bit Unsigned LT", gen_comparator_lt_unsigned(32), 14, 28});

    print_header("MPC / FHE benchmarks");
    std::vector<row> rows;
    const uint32_t max_rounds = full ? 16 : 8;
    for (auto& s : specs) {
        auto r = run_protocol(s.name, std::move(s.circuit), db, cache, {},
                              max_rounds);
        r.paper_improvement_one = s.paper_one;
        r.paper_improvement_conv = s.paper_conv;
        print_row(r);
        rows.push_back(r);
    }
    std::printf("\nnormalized geometric mean (AND, converged/initial): %.2f "
                "[paper: 0.56]\n",
                geomean_ratio(rows));

    // Headline checks from the paper's §5.2.
    for (const auto& r : rows) {
        if (r.name == std::string{"32-bit Adder"})
            std::printf("32-bit adder final AND count: %u (known optimum: 32, "
                        "paper reaches 32)\n",
                        r.final_and);
        if (r.name == std::string{"64-bit Adder"})
            std::printf("64-bit adder final AND count: %u (known optimum: 64, "
                        "paper reaches 64)\n",
                        r.final_and);
    }
    std::printf("classification cache: %zu entries, %llu hits; database: %zu "
                "entries (%llu exact, %llu heuristic)\n",
                cache.size(),
                static_cast<unsigned long long>(cache.hits()), db.size(),
                static_cast<unsigned long long>(db.exact_entries()),
                static_cast<unsigned long long>(db.heuristic_entries()));
    return 0;
}
