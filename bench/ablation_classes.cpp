// Reproduces the paper's §2.2 claim: the affine operations of Definition
// 2.1 partition the n-variable Boolean functions into 1, 2, 3, 8, 48, ...
// equivalence classes for n = 1..5, and canonization respects the classes.
#include "spectral/classification.h"
#include "tt/operations.h"

#include <cstdio>
#include <random>
#include <set>

using namespace mcx;

int main()
{
    std::printf("mcx — affine equivalence classes (paper §2.2)\n");
    std::printf("expected class counts: n=1:1, n=2:2, n=3:3, n=4:8, n=5:48\n\n");

    // Exhaustive canonization for n <= 4.
    for (uint32_t n = 1; n <= 4; ++n) {
        std::set<truth_table> reps;
        uint64_t failures = 0;
        const uint64_t total = uint64_t{1} << (1u << n);
        for (uint64_t bits = 0; bits < total; ++bits) {
            const auto r = classify_affine(truth_table{n, bits},
                                           {.iteration_limit = 10'000'000});
            if (!r.success) {
                ++failures;
                continue;
            }
            reps.insert(r.representative);
        }
        std::printf("n=%u: %zu classes over %llu functions (%llu "
                    "classification failures)\n",
                    n, reps.size(), static_cast<unsigned long long>(total),
                    static_cast<unsigned long long>(failures));
    }

    // Sampling for n = 5 (2^32 functions cannot be enumerated): the number
    // of distinct representatives must stay <= 48 and approach it.
    {
        std::mt19937_64 rng{99};
        std::set<truth_table> reps;
        int successes = 0;
        for (int i = 0; i < 3000; ++i) {
            truth_table f{5};
            f.words()[0] = rng() & tt_mask(5);
            const auto r =
                classify_affine(f, {.iteration_limit = 1'000'000});
            if (!r.success)
                continue;
            ++successes;
            reps.insert(r.representative);
        }
        std::printf("n=5: %zu distinct representatives from %d random "
                    "samples (must be <= 48)\n",
                    reps.size(), successes);
    }
    return 0;
}
