// Micro-benchmarks for the cut->canonize->classify->rewrite hot loop.
//
// Self-contained chrono harness (no external benchmark dependency) that
// measures each stage in ns/op, A/B-compares the word-parallel fast paths
// against the retained seed implementations (npn_canonize_baseline, the
// scalar cut-merge path), reports cache hit rates from a real rewriting
// round, and emits everything machine-readable to BENCH_micro_core.json
// (override the path with MCX_BENCH_JSON).
//
// CI gates on the speedup ratios printed here: the word-parallel NPN
// canonizer must be >= 5x the brute force, word-parallel cut enumeration
// >= 2x the scalar path, and the packed-spectrum affine classifier >= 4x
// classify_affine_baseline on the cold-cache workload (ISSUE 1/3
// acceptance criteria).
#include "core/flow.h"
#include "core/rewrite.h"
#include "cut/cut_enumeration.h"
#include "sat/equivalence.h"
#include "sat/solver.h"
#include "exact/exact_mc.h"
#include "gen/arithmetic.h"
#include "io/bench.h"
#include "npn/npn.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spectral/classification.h"
#include "tt/operations.h"
#include "xag/cleanup.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace mcx;

uint64_t g_sink = 0; ///< defeats dead-code elimination across all benches

struct bench_result {
    std::string name;
    double ns_per_op = 0;
    uint64_t ops = 0;
};

std::vector<bench_result> g_results;

/// Run `body` (which performs `batch` operations per call) and record ns
/// per single operation.  After one warm-up, repetitions are calibrated so
/// a sample lasts >= ~5 ms, then the minimum over five samples is taken —
/// the minimum is robust against scheduler noise and concurrent load,
/// which matters because CI gates on ratios of these numbers.
template <typename Body>
double run_bench(const std::string& name, uint64_t batch, Body&& body)
{
    using clock = std::chrono::steady_clock;
    const auto time_reps = [&](uint64_t reps) {
        const auto start = clock::now();
        for (uint64_t r = 0; r < reps; ++r)
            body();
        return std::chrono::duration<double>(clock::now() - start).count();
    };

    body(); // warm-up
    uint64_t reps = 1;
    while (time_reps(reps) < 0.005 && reps < 1'000'000)
        reps *= 4;

    double best = 1e300;
    uint64_t ops = 0;
    for (int sample = 0; sample < 5; ++sample) {
        const double seconds = time_reps(reps);
        best = std::min(best,
                        seconds / static_cast<double>(reps * batch));
        ops += reps * batch;
    }
    const double ns = best * 1e9;
    g_results.push_back({name, ns, ops});
    std::printf("%-34s %12.1f ns/op   (%llu ops)\n", name.c_str(), ns,
                static_cast<unsigned long long>(ops));
    return ns;
}

std::vector<truth_table> random_functions(uint32_t num_vars, size_t count,
                                          uint64_t seed)
{
    std::mt19937_64 rng{seed};
    std::vector<truth_table> fs;
    fs.reserve(count);
    for (size_t i = 0; i < count; ++i)
        fs.push_back(truth_table{num_vars, rng() & tt_mask(num_vars)});
    return fs;
}

} // namespace

int main()
{
    std::printf("micro_core: hot-loop stage benchmarks\n\n");

    // ------------------------------------------------------------- tt ops
    {
        std::mt19937_64 rng{1};
        const truth_table t{6, rng()};
        run_bench("tt/to_anf", 1, [&] { g_sink += to_anf(t).word(); });
        const truth_table wide{6, 0x8888888888888888ull};
        run_bench("tt/shrink_to_support", 1,
                  [&] { g_sink += shrink_to_support(wide).support.size(); });
        run_bench("spectral/walsh_spectrum", 1,
                  [&] { g_sink += static_cast<uint64_t>(walsh_spectrum(t)[0]); });
    }

    // --------------------------------------------- NPN canonization (A/B)
    const auto npn_pool = random_functions(4, 256, 42);
    const double npn_fast_ns =
        run_bench("npn/canonize_word_parallel", npn_pool.size(), [&] {
            for (const auto& f : npn_pool)
                g_sink += npn_canonize(f).representative.word();
        });
    const double npn_base_ns =
        run_bench("npn/canonize_baseline", npn_pool.size(), [&] {
            for (const auto& f : npn_pool)
                g_sink += npn_canonize_baseline(f).representative.word();
        });
    const double npn_speedup = npn_base_ns / npn_fast_ns;
    std::printf("%-34s %12.1f x\n", "npn/speedup", npn_speedup);

    double npn_cached_ns = 0;
    {
        npn_cache cache;
        for (const auto& f : npn_pool)
            cache.canonize(f); // warm
        npn_cached_ns = run_bench("npn/canonize_cached", npn_pool.size(), [&] {
            for (const auto& f : npn_pool)
                g_sink += cache.canonize(f).representative.word();
        });
    }

    // ------------------------------------------------ cut enumeration (A/B)
    const auto mult = gen_multiplier(16);
    const double cut_fast_ns =
        run_bench("cut/enumerate_word_parallel", 1, [&] {
            cut_enumeration_stats s;
            g_sink += enumerate_cuts(mult, {.word_parallel = true}, &s)
                          .back()
                          .size();
        });
    const double cut_scalar_ns = run_bench("cut/enumerate_scalar", 1, [&] {
        cut_enumeration_stats s;
        g_sink +=
            enumerate_cuts(mult, {.word_parallel = false}, &s).back().size();
    });
    const double cut_speedup = cut_scalar_ns / cut_fast_ns;
    std::printf("%-34s %12.1f x\n", "cut/speedup", cut_speedup);

    // ------------------------------------------ classification (A/B, cold)
    // Cold-cache workload: classify_affine straight (no memo layer) on
    // random 6-input functions — the dominant cost when the caches miss.
    // Both engines walk the identical search tree; the ratio is pure
    // engine speed.
    double classify_speedup = 0;
    {
        const auto fs = random_functions(6, 8, 3);
        const double cls_fast_ns =
            run_bench("spectral/classify_word_parallel", fs.size(), [&] {
                for (const auto& f : fs)
                    g_sink += classify_affine(f, {.iteration_limit = 100'000})
                                  .iterations;
            });
        const double cls_base_ns =
            run_bench("spectral/classify_baseline", fs.size(), [&] {
                for (const auto& f : fs)
                    g_sink += classify_affine_baseline(
                                  f, {.iteration_limit = 100'000})
                                  .iterations;
            });
        classify_speedup = cls_base_ns / cls_fast_ns;
        std::printf("%-34s %12.1f x\n", "classify/speedup", classify_speedup);
    }

    // ---------------------------------- classification, 4-input (A/B, cold)
    // Small functions spend their whole search on one- and two-row DFS
    // levels; the sub-word candidate layout (spectrum_zip8_*, 4 candidate
    // keys per word) is what lifts them over the same >= 4x bar as the
    // 6-input workload.
    double classify4_speedup = 0;
    {
        const auto fs = random_functions(4, 64, 5);
        const double cls4_fast_ns =
            run_bench("spectral/classify4_word_parallel", fs.size(), [&] {
                for (const auto& f : fs)
                    g_sink += classify_affine(f, {.iteration_limit = 100'000})
                                  .iterations;
            });
        const double cls4_base_ns =
            run_bench("spectral/classify4_baseline", fs.size(), [&] {
                for (const auto& f : fs)
                    g_sink += classify_affine_baseline(
                                  f, {.iteration_limit = 100'000})
                                  .iterations;
            });
        classify4_speedup = cls4_base_ns / cls4_fast_ns;
        std::printf("%-34s %12.1f x\n", "classify4/speedup",
                    classify4_speedup);
    }

    // -------------------------------------------------- exact synthesis
    run_bench("exact/mc_maj3", 1, [&] {
        g_sink += exact_mc_synthesis(truth_table{3, 0xe8}).num_ands;
    });

    // ------------------------------------ SAT core, modern vs legacy (A/B)
    // Seeded hard instances solved on both CDCL engines: a pigeonhole
    // formula (9 pigeons, 8 holes — a classic resolution-hard UNSAT) as
    // raw clauses, plus a full exact-MC synthesis of a 5-input function
    // whose optimality ladder emits the solver's real workload (UNSAT
    // proofs at infeasible k).  The modern core (arena storage, LBD-tiered
    // retention, EMA restarts, bounded preprocessing) must clear the
    // batch >= 2x faster than the retained legacy oracle; CI gates on the
    // aggregate so no single instance's variance decides the verdict.
    double satcore_modern_s = 1e300, satcore_legacy_s = 1e300;
    {
        using clock = std::chrono::steady_clock;
        const auto solve_php9 = [](sat::sat_engine engine) {
            constexpr int pigeons = 9, holes = 8;
            sat::solver s{
                sat::sat_params{.engine = engine, .preprocess = true}};
            std::vector<std::vector<sat::literal>> var(pigeons);
            for (int p = 0; p < pigeons; ++p)
                for (int h = 0; h < holes; ++h)
                    var[p].push_back(sat::literal{s.add_variable(), false});
            for (int p = 0; p < pigeons; ++p)
                s.add_clause(var[p]);
            for (int h = 0; h < holes; ++h)
                for (int p1 = 0; p1 < pigeons; ++p1)
                    for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                        s.add_clause({~var[p1][h], ~var[p2][h]});
            return s.solve() == sat::solve_result::unsatisfiable;
        };
        // MC-4 under the exact encoding: k = 0..3 are hard UNSAT rounds.
        const truth_table hard5{5, 0x206967ce};
        for (int sample = 0; sample < 2; ++sample) {
            for (const auto engine :
                 {sat::sat_engine::modern, sat::sat_engine::legacy}) {
                const auto start = clock::now();
                const bool unsat = solve_php9(engine);
                const auto r =
                    exact_mc_synthesis(hard5, {.engine = engine});
                const double s =
                    std::chrono::duration<double>(clock::now() - start)
                        .count();
                if (!unsat || r.num_ands != 4) {
                    std::fprintf(stderr,
                                 "FAIL: %s engine broke a sat_core verdict "
                                 "(php9 unsat %d, mc %u != 4)\n",
                                 sat::engine_name(engine), unsat ? 1 : 0,
                                 r.num_ands);
                    return 1;
                }
                auto& best = engine == sat::sat_engine::modern
                                 ? satcore_modern_s
                                 : satcore_legacy_s;
                best = std::min(best, s);
            }
        }
    }
    const double satcore_speedup = satcore_legacy_s / satcore_modern_s;
    std::printf("\nsat core (php9 + exact-MC 5-input encoding):\n");
    std::printf("  modern engine             %8.4f s\n", satcore_modern_s);
    std::printf("  legacy engine             %8.4f s\n", satcore_legacy_s);
    std::printf("%-34s %12.2f x\n", "sat_core/speedup", satcore_speedup);

    // ------------------------------------- harder exact synthesis (gated)
    // A 5-input database miss — the workload the sharded-store and the
    // ROADMAP's offline 4/5-input precompute pay for.  Timed on both
    // engines; the modern core must be >= 2x faster here too (this
    // function's ladder is short but its UNSAT rounds are dense, a
    // different profile from the sat_core batch).
    double exact5_modern_s = 1e300, exact5_legacy_s = 1e300;
    {
        using clock = std::chrono::steady_clock;
        const truth_table miss5{5, 0xd9ff7cf6};
        for (int sample = 0; sample < 3; ++sample) {
            for (const auto engine :
                 {sat::sat_engine::modern, sat::sat_engine::legacy}) {
                const auto start = clock::now();
                const auto r = exact_mc_synthesis(miss5, {.engine = engine});
                const double s =
                    std::chrono::duration<double>(clock::now() - start)
                        .count();
                if (r.num_ands != 3) {
                    std::fprintf(stderr,
                                 "FAIL: %s engine found mc %u != 3 on the "
                                 "5-input miss\n",
                                 sat::engine_name(engine), r.num_ands);
                    return 1;
                }
                auto& best = engine == sat::sat_engine::modern
                                 ? exact5_modern_s
                                 : exact5_legacy_s;
                best = std::min(best, s);
            }
        }
    }
    const double exact5_speedup = exact5_legacy_s / exact5_modern_s;
    std::printf("\nexact synthesis, 5-input miss (0xd9ff7cf6):\n");
    std::printf("  modern engine             %8.4f s\n", exact5_modern_s);
    std::printf("  legacy engine             %8.4f s\n", exact5_legacy_s);
    std::printf("%-34s %12.2f x\n", "exact_hard5/speedup", exact5_speedup);

    // ------------------------------------- full round with stage breakdown
    auto net = gen_adder(64);
    mc_database db;
    classification_cache cls_cache;
    const auto round = mc_rewrite_round(net, db, cls_cache);

    // ------------------------- flow-level A/B: batched cone simulation
    // Same workload (64-bit adder), same warmed database and caches: the
    // only difference is whether the rewrite loop evaluates all of a
    // node's cut functions in one union-cone traversal (cone_simulator)
    // or re-simulates per cut (the PR 1 path).  Minimum of three runs
    // each; CI gates on the batched path being no slower.
    double batched_s = 1e300, unbatched_s = 1e300;
    for (int sample = 0; sample < 3; ++sample) {
        {
            auto n64 = gen_adder(64);
            rewrite_params p;
            p.batched_simulation = true;
            const auto r = mc_rewrite_round(n64, db, cls_cache, p);
            batched_s = std::min(batched_s, r.seconds);
        }
        {
            auto n64 = gen_adder(64);
            rewrite_params p;
            p.batched_simulation = false;
            const auto r = mc_rewrite_round(n64, db, cls_cache, p);
            unbatched_s = std::min(unbatched_s, r.seconds);
        }
    }
    const double flow_speedup = unbatched_s / batched_s;
    std::printf("\nrewrite round (adder64, warmed db/cache):\n");
    std::printf("  batched cone simulation   %8.4f s\n", batched_s);
    std::printf("  per-cut cone simulation   %8.4f s\n", unbatched_s);
    std::printf("%-34s %12.2f x\n", "flow/batched_round_speedup",
                flow_speedup);
    const double cls_hit_rate = round.canon_cache_hit_rate();
    const double db_total =
        static_cast<double>(round.db_hits + round.db_misses);
    const double db_hit_rate =
        db_total == 0 ? 0.0 : static_cast<double>(round.db_hits) / db_total;
    std::printf("\nmc_rewrite_round(adder64):\n");
    std::printf("  total %.3f s  (cuts %.3f s, rewrite %.3f s)\n",
                round.seconds, round.cut_seconds, round.rewrite_seconds);
    std::printf("  classification cache: %llu hits / %llu misses (%.1f%%)\n",
                static_cast<unsigned long long>(round.canon_cache_hits),
                static_cast<unsigned long long>(round.canon_cache_misses),
                100.0 * cls_hit_rate);
    std::printf("  database: %llu hits / %llu builds (%.1f%%)\n",
                static_cast<unsigned long long>(round.db_hits),
                static_cast<unsigned long long>(round.db_misses),
                100.0 * db_hit_rate);
    std::printf("  cuts: %llu stored, %llu pairs merged, %llu duplicates, "
                "%llu dominated\n",
                static_cast<unsigned long long>(round.cut_stats.total_cuts),
                static_cast<unsigned long long>(round.cut_stats.merged_pairs),
                static_cast<unsigned long long>(
                    round.cut_stats.duplicate_cuts),
                static_cast<unsigned long long>(
                    round.cut_stats.dominated_cuts));

    // ---------------------------------- observability overhead (A/B, gated)
    // Identical warmed adder64 rounds with the metrics registry enabled
    // (the default) vs disabled, tracing off in both arms — the production
    // configuration vs a build with instrumentation silenced.  Interleaved
    // min-of-N keeps the ratio robust against scheduler noise; CI gates
    // the tracing-disabled instrumentation tax at <= 3%
    // (docs/observability.md, the overhead contract).
    double obs_on_s = 1e300, obs_off_s = 1e300;
    {
        obs::trace::disable();
        for (int sample = 0; sample < 7; ++sample) {
            {
                obs::set_metrics_enabled(true);
                auto n64 = gen_adder(64);
                const auto r = mc_rewrite_round(n64, db, cls_cache);
                obs_on_s = std::min(obs_on_s, r.seconds);
            }
            {
                obs::set_metrics_enabled(false);
                auto n64 = gen_adder(64);
                const auto r = mc_rewrite_round(n64, db, cls_cache);
                obs_off_s = std::min(obs_off_s, r.seconds);
            }
        }
        obs::set_metrics_enabled(true);
    }
    const double obs_ratio = obs_on_s / obs_off_s;
    std::printf("\nobservability overhead (adder64, warmed db/cache):\n");
    std::printf("  metrics enabled           %8.4f s\n", obs_on_s);
    std::printf("  metrics disabled          %8.4f s\n", obs_off_s);
    std::printf("%-34s %12.3f x\n", "obs/overhead_ratio", obs_ratio);

    // ------------------------- parallel two-phase round (1 vs 4 workers)
    // Same adder64 workload on the deterministic two-phase engine
    // (src/core/pass.cpp, docs/parallel.md), 1 worker vs 4, each context
    // warmed by one throwaway round so databases and cache shards are hot
    // and the measurement isolates the engine.  The engine's contract —
    // bit-identical networks for any thread count — is asserted on the
    // spot.  On machines with < 4 hardware threads the whole stage is
    // SKIPPED (recorded as such in the JSON): timing 4 workers on 1-2
    // cores produces a meaningless ~1x "speedup" that used to be emitted
    // as if it were a measurement.
    const uint32_t hw_threads = std::max(1u, std::thread::hardware_concurrency());
    const bool par_skipped = hw_threads < 4;
    double par_1t = 1e300, par_4t = 1e300;
    double par_speedup = 0.0;
    {
        std::string par_net_1t, par_net_4t;
        rewrite_params p1;
        p1.num_threads = 1;
        rewrite_params p4;
        p4.num_threads = 4;
        pass_context ctx1, ctx4;
        {
            auto warm = gen_adder(64);
            mc_rewrite_round(warm, ctx1, p1);
        }
        {
            auto warm = gen_adder(64);
            mc_rewrite_round(warm, ctx4, p4);
        }
        const auto serialize = [](const xag& n) {
            std::ostringstream os;
            write_bench(cleanup(n), os);
            return os.str();
        };
        // The determinism assertion always runs — 4 workers oversubscribed
        // onto 1-2 cores is a prime stressor for scheduling-dependent bugs
        // and costs nothing; only the *timing* samples are skipped there.
        const int samples = par_skipped ? 1 : 3;
        for (int sample = 0; sample < samples; ++sample) {
            {
                auto n64 = gen_adder(64);
                const auto r = mc_rewrite_round(n64, ctx1, p1);
                par_1t = std::min(par_1t, r.seconds);
                par_net_1t = serialize(n64);
            }
            {
                auto n64 = gen_adder(64);
                const auto r = mc_rewrite_round(n64, ctx4, p4);
                par_4t = std::min(par_4t, r.seconds);
                par_net_4t = serialize(n64);
            }
        }
        if (par_net_1t != par_net_4t) {
            std::fprintf(stderr, "FAIL: two-phase round is not bit-identical "
                                 "across thread counts\n");
            return 1;
        }
        if (par_skipped) {
            std::printf("\ntwo-phase round (adder64): timing skipped "
                        "(hardware_concurrency %u < 4); determinism "
                        "asserted\n",
                        hw_threads);
        } else {
            par_speedup = par_1t / par_4t;
            std::printf("\ntwo-phase round (adder64, warmed db/cache):\n");
            std::printf("  1 worker                  %8.4f s\n", par_1t);
            std::printf("  4 workers                 %8.4f s\n", par_4t);
            std::printf("%-34s %12.2f x\n", "par/round_speedup", par_speedup);
        }
    }

    // ----------------------- incremental cut maintenance (A/B, warmed)
    // Two identical adder64 optimizations, one with incremental cut
    // maintenance (the default), one forcing a full re-enumeration every
    // round (the oracle).  Networks are asserted byte-identical after
    // every round — the maintainer must be invisible — and the
    // steady-state round (after convergence, when the preceding round
    // committed nothing) must do >= 2x less re-enumeration work, measured
    // in merge pairs (with an empty dirty set it does none at all).  The
    // gate only applies when the warm-up actually replaced something
    // (otherwise there is no dirt to track and the ratio is recorded, not
    // gated).
    uint64_t inc_warmup_repl = 0;
    uint64_t inc_steady_reenum = 0, inc_steady_clean = 0;
    uint64_t inc_steady_merged = 0, full_steady_merged = 0;
    uint32_t inc_rounds = 0;
    bool inc_measured_steady = false;
    {
        rewrite_params p_inc;
        p_inc.incremental_cuts = true;
        rewrite_params p_full;
        p_full.incremental_cuts = false;
        pass_context ctx_inc, ctx_full;
        auto net_inc = gen_adder(64);
        auto net_full = gen_adder(64);
        const auto serialize = [](const xag& n) {
            std::ostringstream os;
            write_bench(cleanup(n), os);
            return os.str();
        };
        bool converged = false;
        for (int r = 0; r < 8; ++r) {
            const auto si = mc_rewrite_round(net_inc, ctx_inc, p_inc);
            const auto sf = mc_rewrite_round(net_full, ctx_full, p_full);
            ++inc_rounds;
            if (serialize(net_inc) != serialize(net_full)) {
                std::fprintf(stderr,
                             "FAIL: incremental cut maintenance diverged "
                             "from full re-enumeration in round %d\n",
                             r);
                return 1;
            }
            inc_steady_reenum = si.cut_stats.reenumerated_nodes;
            inc_steady_clean = si.cut_stats.clean_nodes;
            inc_steady_merged = si.cut_stats.merged_pairs;
            full_steady_merged = sf.cut_stats.merged_pairs;
            if (converged) {
                inc_measured_steady = true;
                break; // this round ran on an empty dirty set: measure it
            }
            if (si.replacements == 0)
                converged = true;
            else
                inc_warmup_repl += si.replacements;
        }
    }
    // Gate only a genuinely steady measurement: the warm-up must both have
    // replaced something (otherwise there was no dirt to track) and have
    // converged within the round budget (otherwise the last measured round
    // still carried real dirt and the ratio is a property of the workload,
    // not of the maintainer).
    const bool inc_gated = inc_warmup_repl > 0 && inc_measured_steady;
    const double inc_work_ratio =
        static_cast<double>(full_steady_merged) /
        static_cast<double>(std::max<uint64_t>(1, inc_steady_merged));
    std::printf("\nincremental cut maintenance (adder64, steady-state "
                "round %u):\n",
                inc_rounds);
    std::printf("  re-enumerated %llu nodes (%llu clean), %llu merge pairs "
                "vs %llu full\n",
                static_cast<unsigned long long>(inc_steady_reenum),
                static_cast<unsigned long long>(inc_steady_clean),
                static_cast<unsigned long long>(inc_steady_merged),
                static_cast<unsigned long long>(full_steady_merged));
    std::printf("%-34s %12.1f x%s\n", "incremental/work_ratio",
                inc_work_ratio,
                inc_gated ? ""
                : inc_measured_steady
                    ? "   (gate skipped: no replacements)"
                    : "   (gate skipped: not converged)");

    // ----------------------- incremental evaluate (A/B, steady state)
    // Same A/B shape as the cut-maintenance stage, one layer up: two
    // identical adder64 optimizations, one re-evaluating only the nodes
    // whose cut/MFFC context changed (the default), one forcing a full
    // evaluate sweep every round (the oracle).  Networks are asserted
    // byte-identical after every round, and the steady-state round — run
    // on an empty dirty set after convergence — must evaluate exactly
    // zero nodes while the oracle re-evaluates the whole network
    // (docs/hot-path.md, "The evaluate dirty-set contract").
    uint64_t eval_warmup_repl = 0;
    uint64_t eval_steady_evaluated = 0, eval_steady_clean = 0;
    uint64_t eval_oracle_evaluated = 0;
    uint32_t eval_rounds = 0;
    bool eval_measured_steady = false;
    {
        rewrite_params p_inc; // incremental cuts + evaluate (the defaults)
        rewrite_params p_full;
        p_full.incremental_evaluate = false;
        pass_context ctx_inc, ctx_full;
        auto net_inc = gen_adder(64);
        auto net_full = gen_adder(64);
        const auto serialize = [](const xag& n) {
            std::ostringstream os;
            write_bench(cleanup(n), os);
            return os.str();
        };
        bool converged = false;
        for (int r = 0; r < 8; ++r) {
            const auto si = mc_rewrite_round(net_inc, ctx_inc, p_inc);
            const auto sf = mc_rewrite_round(net_full, ctx_full, p_full);
            ++eval_rounds;
            if (serialize(net_inc) != serialize(net_full)) {
                std::fprintf(stderr,
                             "FAIL: incremental evaluate diverged from the "
                             "full-evaluate oracle in round %d\n",
                             r);
                return 1;
            }
            eval_steady_evaluated = si.nodes_evaluated;
            eval_steady_clean = si.nodes_clean;
            eval_oracle_evaluated = sf.nodes_evaluated;
            if (converged) {
                eval_measured_steady = true;
                break; // this round ran on an empty dirty set: measure it
            }
            if (si.replacements == 0)
                converged = true;
            else
                eval_warmup_repl += si.replacements;
        }
    }
    const bool eval_gated = eval_warmup_repl > 0 && eval_measured_steady;
    std::printf("\nincremental evaluate (adder64, steady-state round %u):\n",
                eval_rounds);
    std::printf("  evaluated %llu nodes (%llu clean) vs %llu full%s\n",
                static_cast<unsigned long long>(eval_steady_evaluated),
                static_cast<unsigned long long>(eval_steady_clean),
                static_cast<unsigned long long>(eval_oracle_evaluated),
                eval_gated ? ""
                : eval_measured_steady
                    ? "   (gate skipped: no replacements)"
                    : "   (gate skipped: not converged)");

    // --------------------------- warm incremental CEC vs cold miter (A/B)
    // The verification pattern of an iterated flow: one golden reference,
    // several optimized snapshots to certify (here the network after each
    // mc+xor flow iteration over adder64).  Cold path: a fresh
    // whole-network miter per snapshot (check_equivalence, the oracle).
    // Warm path: one incremental_cec whose solver keeps the golden CNF
    // and its learnt clauses across every output of every snapshot.  CI
    // gates on the warm path being >= 2x faster over the sequence.
    double cec_cold_s = 1e300, cec_warm_s = 1e300;
    size_t cec_checks = 0, cec_outputs = 0;
    uint64_t cec_rebuilds = 0, cec_reuses = 0;
    {
        using clock = std::chrono::steady_clock;
        const auto golden = gen_adder(64);
        std::vector<xag> versions;
        {
            auto net = gen_adder(64);
            pass_context ctx;
            const auto f = make_flow("mc+xor", flow_params{});
            for (int i = 0; i < 3; ++i) {
                run_flow(net, f, ctx);
                versions.push_back(cleanup(net));
            }
        }
        cec_checks = versions.size();
        // The verifier is a flow-lifetime object: its golden encoding and
        // learnt clauses are paid once and amortized over every check it
        // will ever run.  One untimed warm-up sequence stands in for that
        // history; the samples then measure the steady-state cost of
        // certifying a snapshot batch, warm vs. cold-from-scratch.
        sat::incremental_cec cec{golden};
        for (const auto& v : versions)
            cec.check(v);
        for (int sample = 0; sample < 3; ++sample) {
            {
                const auto start = clock::now();
                for (const auto& v : versions) {
                    const auto rep = sat::check_equivalence(v, golden);
                    if (rep.result != sat::equivalence_result::equivalent) {
                        std::fprintf(stderr, "FAIL: cold CEC refuted an "
                                             "optimized adder64\n");
                        return 1;
                    }
                }
                cec_cold_s = std::min(
                    cec_cold_s,
                    std::chrono::duration<double>(clock::now() - start)
                        .count());
            }
            {
                const auto start = clock::now();
                for (const auto& v : versions) {
                    const auto rep = cec.check(v);
                    if (rep.result != sat::equivalence_result::equivalent) {
                        std::fprintf(stderr, "FAIL: warm CEC refuted an "
                                             "optimized adder64\n");
                        return 1;
                    }
                }
                cec_warm_s = std::min(
                    cec_warm_s,
                    std::chrono::duration<double>(clock::now() - start)
                        .count());
            }
        }
        cec_outputs = cec.records().size();
        cec_rebuilds = cec.rebuilds();
        cec_reuses = cec.session_reuses();
    }
    const double cec_speedup = cec_cold_s / cec_warm_s;
    std::printf("\nincremental CEC (adder64 mc+xor, %zu snapshots, %zu "
                "output solves, %llu rebuilds):\n",
                cec_checks, cec_outputs,
                static_cast<unsigned long long>(cec_rebuilds));
    std::printf("  cold whole-network miter  %8.4f s\n", cec_cold_s);
    std::printf("  warm incremental solver   %8.4f s\n", cec_warm_s);
    std::printf("%-34s %12.2f x\n", "cec/warm_speedup", cec_speedup);

    // ------------------------------------------------------- JSON output
    const char* json_path_env = std::getenv("MCX_BENCH_JSON");
    const std::string json_path =
        json_path_env != nullptr ? json_path_env : "BENCH_micro_core.json";
    FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
#if defined(__clang__)
    const char* compiler_id = "clang";
    const int compiler_major = __clang_major__;
    const int compiler_minor = __clang_minor__;
#elif defined(__GNUC__)
    const char* compiler_id = "gcc";
    const int compiler_major = __GNUC__;
    const int compiler_minor = __GNUC_MINOR__;
#else
    const char* compiler_id = "unknown";
    const int compiler_major = 0;
    const int compiler_minor = 0;
#endif
#ifndef MCX_BUILD_TYPE
#define MCX_BUILD_TYPE "unknown"
#endif
    std::fprintf(json, "{\n");
    // What produced this file: numbers are only comparable against runs
    // from the same hardware class and build configuration.
    std::fprintf(json,
                 "  \"host\": {\"schema_version\": 2, "
                 "\"hardware_concurrency\": %u, "
                 "\"compiler\": \"%s\", \"compiler_version\": \"%d.%d\", "
                 "\"build_type\": \"%s\"},\n",
                 hw_threads, compiler_id, compiler_major, compiler_minor,
                 MCX_BUILD_TYPE);
    std::fprintf(json, "  \"benchmarks\": [\n");
    for (size_t i = 0; i < g_results.size(); ++i) {
        const auto& r = g_results[i];
        std::fprintf(json,
                     "    {\"name\": \"%s\", \"ns_per_op\": %.2f, "
                     "\"ops\": %llu}%s\n",
                     r.name.c_str(), r.ns_per_op,
                     static_cast<unsigned long long>(r.ops),
                     i + 1 < g_results.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    // speedups.parallel_round is present only when the stage ran — on
    // < 4 hardware threads the ratio would be noise, not a measurement.
    std::fprintf(json,
                 "  \"speedups\": {\"npn_canonize\": %.2f, "
                 "\"cut_enumeration\": %.2f, \"classify\": %.2f, "
                 "\"classify4\": %.2f, \"batched_round\": %.2f",
                 npn_speedup, cut_speedup, classify_speedup,
                 classify4_speedup, flow_speedup);
    if (!par_skipped)
        std::fprintf(json, ", \"parallel_round\": %.2f", par_speedup);
    std::fprintf(json,
                 ", \"incremental_work\": %.2f, \"warm_cec\": %.2f, "
                 "\"sat_core\": %.2f, \"exact_hard5\": %.2f},\n",
                 inc_work_ratio, cec_speedup, satcore_speedup,
                 exact5_speedup);
    std::fprintf(json,
                 "  \"flow_round\": {\"workload\": \"adder64\", "
                 "\"batched_seconds\": %.4f, \"unbatched_seconds\": %.4f},\n",
                 batched_s, unbatched_s);
    std::fprintf(json,
                 "  \"cache\": {\"npn_cached_ns_per_op\": %.2f, "
                 "\"classification_hit_rate\": %.4f, "
                 "\"db_hit_rate\": %.4f},\n",
                 npn_cached_ns, cls_hit_rate, db_hit_rate);
    std::fprintf(json,
                 "  \"round\": {\"seconds\": %.4f, \"cut_seconds\": %.4f, "
                 "\"rewrite_seconds\": %.4f, \"replacements\": %llu},\n",
                 round.seconds, round.cut_seconds, round.rewrite_seconds,
                 static_cast<unsigned long long>(round.replacements));
    std::fprintf(json,
                 "  \"obs_overhead\": {\"workload\": \"adder64\", "
                 "\"enabled_seconds\": %.4f, \"disabled_seconds\": %.4f, "
                 "\"ratio\": %.4f, \"gated\": true},\n",
                 obs_on_s, obs_off_s, obs_ratio);
    if (par_skipped)
        std::fprintf(json,
                     "  \"parallel_round\": {\"workload\": \"adder64\", "
                     "\"threads\": 4, \"skipped\": true, "
                     "\"reason\": \"hardware_concurrency < 4\", "
                     "\"hardware_concurrency\": %u, "
                     "\"deterministic\": true},\n",
                     hw_threads);
    else
        std::fprintf(json,
                     "  \"parallel_round\": {\"workload\": \"adder64\", "
                     "\"threads\": 4, \"seconds_1t\": %.4f, "
                     "\"seconds_4t\": %.4f, \"speedup\": %.2f, "
                     "\"hardware_concurrency\": %u, \"gated\": true, "
                     "\"deterministic\": true},\n",
                     par_1t, par_4t, par_speedup, hw_threads);
    std::fprintf(json,
                 "  \"incremental_round\": {\"workload\": \"adder64\", "
                 "\"rounds\": %u, \"warmup_replacements\": %llu, "
                 "\"steady_reenumerated_nodes\": %llu, "
                 "\"steady_clean_nodes\": %llu, "
                 "\"steady_merged_pairs\": %llu, "
                 "\"steady_merged_pairs_full\": %llu, "
                 "\"work_ratio\": %.2f, \"steady\": %s, \"gated\": %s, "
                 "\"deterministic\": true},\n",
                 inc_rounds,
                 static_cast<unsigned long long>(inc_warmup_repl),
                 static_cast<unsigned long long>(inc_steady_reenum),
                 static_cast<unsigned long long>(inc_steady_clean),
                 static_cast<unsigned long long>(inc_steady_merged),
                 static_cast<unsigned long long>(full_steady_merged),
                 inc_work_ratio, inc_measured_steady ? "true" : "false",
                 inc_gated ? "true" : "false");
    std::fprintf(json,
                 "  \"incremental_evaluate\": {\"workload\": \"adder64\", "
                 "\"rounds\": %u, \"warmup_replacements\": %llu, "
                 "\"steady_nodes_evaluated\": %llu, "
                 "\"steady_nodes_clean\": %llu, "
                 "\"steady_nodes_evaluated_full\": %llu, "
                 "\"steady\": %s, \"gated\": %s, "
                 "\"deterministic\": true},\n",
                 eval_rounds,
                 static_cast<unsigned long long>(eval_warmup_repl),
                 static_cast<unsigned long long>(eval_steady_evaluated),
                 static_cast<unsigned long long>(eval_steady_clean),
                 static_cast<unsigned long long>(eval_oracle_evaluated),
                 eval_measured_steady ? "true" : "false",
                 eval_gated ? "true" : "false");
    std::fprintf(json,
                 "  \"incremental_verify\": {\"workload\": "
                 "\"adder64 mc+xor\", \"snapshots\": %zu, "
                 "\"output_solves\": %zu, \"rebuilds\": %llu, "
                 "\"session_reuses\": %llu, "
                 "\"cold_seconds\": %.4f, \"warm_seconds\": %.4f, "
                 "\"speedup\": %.2f, \"gated\": true},\n",
                 cec_checks, cec_outputs,
                 static_cast<unsigned long long>(cec_rebuilds),
                 static_cast<unsigned long long>(cec_reuses), cec_cold_s,
                 cec_warm_s, cec_speedup);
    std::fprintf(json,
                 "  \"sat_core\": {\"workload\": \"php9 + exact-MC 5-input "
                 "encoding\", \"modern_seconds\": %.4f, "
                 "\"legacy_seconds\": %.4f, \"speedup\": %.2f, "
                 "\"gated\": true},\n",
                 satcore_modern_s, satcore_legacy_s, satcore_speedup);
    std::fprintf(json,
                 "  \"exact_hard5\": {\"workload\": \"5-input miss "
                 "0xd9ff7cf6\", \"modern_seconds\": %.4f, "
                 "\"legacy_seconds\": %.4f, \"speedup\": %.2f, "
                 "\"gated\": true},\n",
                 exact5_modern_s, exact5_legacy_s, exact5_speedup);
    std::fprintf(json, "  \"sink\": %llu\n}\n",
                 static_cast<unsigned long long>(g_sink));
    std::fclose(json);
    std::printf("\nwrote %s\n", json_path.c_str());

    // Acceptance gates (ISSUEs 1-3): fail loudly if the fast paths
    // regress.  Batched cone simulation must not be slower than the PR 1
    // per-cut path on the full-round workload; the word-parallel affine
    // classifier must stay >= 4x its scalar baseline cold-cache.
    if (npn_speedup < 5.0 || cut_speedup < 2.0 || classify_speedup < 4.0 ||
        classify4_speedup < 4.0 || flow_speedup < 1.0) {
        std::fprintf(stderr,
                     "FAIL: speedup gates not met (npn %.2fx >= 5x, cut "
                     "%.2fx >= 2x, classify %.2fx >= 4x, classify4 %.2fx "
                     ">= 4x, batched round %.2fx >= 1x)\n",
                     npn_speedup, cut_speedup, classify_speedup,
                     classify4_speedup, flow_speedup);
        return 1;
    }
    // The parallel-round gate needs real cores: >= 2x at 4 workers is
    // physically impossible on a 1-2 thread machine, so there the stage is
    // skipped (parallel_round.skipped = true) without failing CI.
    if (!par_skipped && par_speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL: parallel round speedup %.2fx < 2x at 4 threads "
                     "(%u hardware threads)\n",
                     par_speedup, hw_threads);
        return 1;
    }
    // Incremental cut maintenance must pay in steady state: the round
    // after convergence re-enumerates >= 2x less than a full rebuild
    // (gated only when the warm-up rounds actually replaced something —
    // with nothing to track, the ratio is recorded but meaningless).
    if (inc_gated && inc_work_ratio < 2.0) {
        std::fprintf(stderr,
                     "FAIL: incremental cut maintenance work ratio %.2fx "
                     "< 2x on the steady-state adder64 round\n",
                     inc_work_ratio);
        return 1;
    }
    // Incremental evaluate must go quiescent: the round after convergence
    // runs on an empty dirty set and re-evaluates NOTHING — not "less",
    // zero — while staying byte-identical to the full-evaluate oracle
    // (asserted above, every round).
    if (eval_gated && eval_steady_evaluated != 0) {
        std::fprintf(stderr,
                     "FAIL: steady-state round evaluated %llu nodes with "
                     "incremental evaluate on (expected 0)\n",
                     static_cast<unsigned long long>(eval_steady_evaluated));
        return 1;
    }
    // Observing must be close to free: with tracing disabled (the
    // default), the metrics registry may tax the warmed round by at most
    // 3% — the overhead contract in docs/observability.md.
    if (obs_ratio > 1.03) {
        std::fprintf(stderr,
                     "FAIL: observability overhead %.3fx > 1.03x on the "
                     "warmed adder64 round (enabled %.4fs, disabled %.4fs)\n",
                     obs_ratio, obs_on_s, obs_off_s);
        return 1;
    }
    // The modern CDCL core must earn its complexity on the solver-bound
    // workloads: >= 2x over the legacy oracle on the hard-instance batch
    // and on the 5-input exact-synthesis miss (docs/sat.md).
    if (satcore_speedup < 2.0 || exact5_speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL: modern SAT core speedup below 2x (sat_core "
                     "%.2fx, exact_hard5 %.2fx vs legacy)\n",
                     satcore_speedup, exact5_speedup);
        return 1;
    }
    // The warm incremental CEC must beat fresh whole-network miters over
    // the iterated-flow verification sequence.
    if (cec_speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL: warm incremental CEC %.2fx < 2x vs cold "
                     "whole-network miters (cold %.4fs, warm %.4fs)\n",
                     cec_speedup, cec_cold_s, cec_warm_s);
        return 1;
    }
    std::printf("speedup gates passed (npn %.1fx >= 5x, cut %.1fx >= 2x, "
                "classify %.1fx >= 4x, classify4 %.1fx >= 4x, batched "
                "round %.2fx >= 1x, parallel round %s, incremental work "
                "%.1fx%s)\n",
                npn_speedup, cut_speedup, classify_speedup,
                classify4_speedup, flow_speedup,
                par_skipped ? "[timing skipped: < 4 hw threads; "
                              "determinism asserted]"
                            : "measured >= 2x",
                inc_work_ratio,
                inc_gated ? " >= 2x" : " [recorded, not gated]");
    std::printf("incremental gates passed (steady evaluate %llu == 0%s, "
                "warm CEC %.1fx >= 2x)\n",
                static_cast<unsigned long long>(eval_steady_evaluated),
                eval_gated ? "" : " [recorded, not gated]", cec_speedup);
    std::printf("observability gate passed (overhead %.3fx <= 1.03x)\n",
                obs_ratio);
    std::printf("sat core gates passed (sat_core %.1fx >= 2x, exact_hard5 "
                "%.1fx >= 2x vs legacy)\n",
                satcore_speedup, exact5_speedup);
    return 0;
}
