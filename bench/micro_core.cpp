// Micro-benchmarks (google-benchmark): substrate throughput numbers that
// back the engineering claims in DESIGN.md — truth-table operations, cut
// enumeration rate, spectral classification latency, exact synthesis, and
// a full rewriting round.
#include "core/rewrite.h"
#include "cut/cut_enumeration.h"
#include "exact/exact_mc.h"
#include "gen/arithmetic.h"
#include "spectral/classification.h"
#include "tt/operations.h"

#include <benchmark/benchmark.h>

#include <random>

namespace {

using namespace mcx;

void bm_tt_anf(benchmark::State& state)
{
    std::mt19937_64 rng{1};
    truth_table t{6, rng()};
    for (auto _ : state) {
        benchmark::DoNotOptimize(to_anf(t));
    }
}
BENCHMARK(bm_tt_anf);

void bm_tt_shrink_to_support(benchmark::State& state)
{
    const auto f = truth_table{6, 0x8888888888888888ull}; // 2-var function
    for (auto _ : state)
        benchmark::DoNotOptimize(shrink_to_support(f));
}
BENCHMARK(bm_tt_shrink_to_support);

void bm_walsh_spectrum(benchmark::State& state)
{
    std::mt19937_64 rng{2};
    const truth_table t{6, rng()};
    for (auto _ : state)
        benchmark::DoNotOptimize(walsh_spectrum(t));
}
BENCHMARK(bm_walsh_spectrum);

void bm_classify_random6(benchmark::State& state)
{
    std::mt19937_64 rng{3};
    for (auto _ : state) {
        const truth_table t{6, rng()};
        benchmark::DoNotOptimize(
            classify_affine(t, {.iteration_limit = 100'000}));
    }
}
BENCHMARK(bm_classify_random6);

void bm_cut_enumeration_multiplier(benchmark::State& state)
{
    const auto net = gen_multiplier(16);
    for (auto _ : state) {
        cut_enumeration_stats stats;
        benchmark::DoNotOptimize(enumerate_cuts(net, {}, &stats));
        state.counters["cuts"] = static_cast<double>(stats.total_cuts);
    }
}
BENCHMARK(bm_cut_enumeration_multiplier);

void bm_exact_mc_maj3(benchmark::State& state)
{
    const truth_table maj{3, 0xe8};
    for (auto _ : state)
        benchmark::DoNotOptimize(exact_mc_synthesis(maj));
}
BENCHMARK(bm_exact_mc_maj3);

void bm_rewrite_round_adder(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        auto net = gen_adder(static_cast<uint32_t>(state.range(0)));
        mc_database db;
        classification_cache cache;
        state.ResumeTiming();
        benchmark::DoNotOptimize(mc_rewrite_round(net, db, cache));
    }
}
BENCHMARK(bm_rewrite_round_adder)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
