// Ablation for paper §4: cut size 6 maximizes the optimization scope (the
// database covers all functions up to 6 inputs).  Sweeps k in 2..6.
#include "common.h"

#include "gen/arithmetic.h"
#include "gen/hashes.h"

#include <cstdio>

using namespace mcx;
using namespace mcx::bench;

int main()
{
    std::printf("mcx — ablation: cut size k (paper uses 6-cuts)\n");
    std::printf("%-14s %4s | %10s %10s %10s\n", "circuit", "k", "AND_init",
                "AND_final", "time[s]");

    struct spec {
        const char* name;
        xag (*make)();
    };
    const spec specs[] = {
        {"adder64", [] { return gen_adder(64); }},
        {"multiplier16", [] { return gen_multiplier(16); }},
        {"sha1", [] { return gen_sha1(); }},
    };

    for (const auto& s : specs) {
        for (const uint32_t k : {2u, 3u, 4u, 5u, 6u}) {
            auto net = s.make();
            const auto initial = net.num_ands();
            mc_database db;
            classification_cache cache;
            rewrite_params params;
            params.cut_size = k;
            const auto conv = mc_rewrite(net, db, cache, params, 6);
            std::printf("%-14s %4u | %10u %10u %10.2f\n", s.name, k, initial,
                        net.num_ands(), conv.total_seconds());
        }
        std::printf("\n");
    }
    return 0;
}
