// Extension experiment: the XOR-interconnect cleanup the paper delegates to
// related work ("we do not consider any XOR optimization", §5.1).  The MC
// rewriting deliberately spends XOR gates to save AND gates; this harness
// measures how much of that spend the Paar-style linear resynthesis
// recovers — at zero cost in AND count.
#include "common.h"

#include <chrono>

#include "core/xor_resynthesis.h"
#include "gen/arithmetic.h"

#include <cstdio>

using namespace mcx;
using namespace mcx::bench;

int main()
{
    std::setvbuf(stdout, nullptr, _IOLBF, 0);
    std::printf("mcx — extension: XOR resynthesis after MC rewriting\n");
    std::printf("(greedy Paar extraction: helps adder-style interconnect, can\n"
                " lose to pre-existing sharing on multiplier trees — reported\n"
                " as measured; AND count is never touched)\n");
    std::printf("%-16s | %8s %8s | %8s -> %8s | %8s %8s\n", "circuit",
                "AND_mc", "XOR_mc", "XOR", "XOR_opt", "pairs", "time[s]");

    struct spec {
        const char* name;
        xag circuit;
    };
    spec specs[] = {
        {"adder64", gen_adder(64)},
        {"adder128", gen_adder(128)},
        {"multiplier16", gen_multiplier(16)},
        {"comparator32", gen_comparator_lt_unsigned(32)},
    };

    mc_database db;
    classification_cache cache;
    for (auto& s : specs) {
        mc_rewrite(s.circuit, db, cache, {}, 6);
        const auto ands = s.circuit.num_ands();
        const auto xors = s.circuit.num_xors();
        const auto start = std::chrono::steady_clock::now();
        const auto stats = xor_resynthesis(s.circuit);
        const auto seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        std::printf("%-16s | %8u %8u | %8u -> %8u | %8u %8.2f\n", s.name,
                    ands, xors, stats.xors_before, stats.xors_after,
                    stats.pairs_extracted, seconds);
        if (s.circuit.num_ands() > ands)
            std::printf("  WARNING: AND count increased — this must never "
                        "happen\n");
    }
    return 0;
}
