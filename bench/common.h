// Shared reporting helpers for the table-regeneration harnesses.
#pragma once

#include "core/rewrite.h"
#include "xag/cleanup.h"
#include "xag/verify.h"
#include "xag/xag.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace mcx::bench {

/// MCX_FULL=1 switches the harnesses to paper-scale circuit widths.
inline bool full_scale()
{
    const char* env = std::getenv("MCX_FULL");
    return env != nullptr && env[0] == '1';
}

struct row {
    std::string name;
    uint32_t inputs = 0;
    uint32_t outputs = 0;
    uint32_t initial_and = 0;
    uint32_t initial_xor = 0;
    uint32_t one_round_and = 0;
    uint32_t one_round_xor = 0;
    double one_round_seconds = 0;
    uint32_t final_and = 0;
    uint32_t final_xor = 0;
    double total_seconds = 0;
    uint32_t rounds = 0;
    bool verified = false;
    int paper_improvement_one = -1;  ///< % from the paper, -1 = n/a
    int paper_improvement_conv = -1;
};

inline int improvement(uint32_t before, uint32_t after)
{
    if (before == 0)
        return 0;
    return static_cast<int>(
        std::lround(100.0 * (before - after) / static_cast<double>(before)));
}

/// Run the paper's protocol on one circuit: one round, then continue to
/// convergence; verify the result functionally against the input.
inline row run_protocol(std::string name, xag network, mc_database& db,
                        classification_cache& cache,
                        const rewrite_params& params = {},
                        uint32_t max_rounds = 20)
{
    row r;
    r.name = std::move(name);
    r.inputs = network.num_pis();
    r.outputs = network.num_pos();
    r.initial_and = network.num_ands();
    r.initial_xor = network.num_xors();

    const auto golden = cleanup(network);

    const auto one = mc_rewrite_round(network, db, cache, params);
    r.one_round_and = one.ands_after;
    r.one_round_xor = one.xors_after;
    r.one_round_seconds = one.seconds;
    r.rounds = 1;

    auto conv = mc_rewrite(network, db, cache, params, max_rounds - 1);
    r.final_and = network.num_ands();
    r.final_xor = network.num_xors();
    r.total_seconds = one.seconds + conv.total_seconds();
    r.rounds += static_cast<uint32_t>(conv.rounds.size());

    r.verified = random_simulation_equal(cleanup(network), golden, 32);
    return r;
}

inline void print_header(const char* title)
{
    std::printf("\n%s\n", title);
    std::printf("%-26s %6s %5s | %8s %8s | %8s %8s %8s %6s | %8s %8s %8s %6s | %3s %8s\n",
                "Name", "In", "Out", "AND_0", "XOR_0", "AND_1", "XOR_1",
                "time[s]", "impr", "AND_c", "XOR_c", "time[s]", "impr",
                "ok", "paper");
}

inline void print_row(const row& r)
{
    char paper[32] = "-";
    if (r.paper_improvement_one >= 0)
        std::snprintf(paper, sizeof paper, "%d%%/%d%%",
                      r.paper_improvement_one, r.paper_improvement_conv);
    std::printf("%-26s %6u %5u | %8u %8u | %8u %8u %8.2f %5d%% | %8u %8u %8.2f %5d%% | %3s %8s\n",
                r.name.c_str(), r.inputs, r.outputs, r.initial_and,
                r.initial_xor, r.one_round_and, r.one_round_xor,
                r.one_round_seconds, improvement(r.initial_and, r.one_round_and),
                r.final_and, r.final_xor, r.total_seconds,
                improvement(r.initial_and, r.final_and),
                r.verified ? "yes" : "NO", paper);
}

inline double geomean_ratio(const std::vector<row>& rows)
{
    double acc = 0;
    int n = 0;
    for (const auto& r : rows) {
        if (r.initial_and == 0 || r.final_and == 0)
            continue;
        acc += std::log(static_cast<double>(r.final_and) / r.initial_and);
        ++n;
    }
    return n ? std::exp(acc / n) : 1.0;
}

} // namespace mcx::bench
