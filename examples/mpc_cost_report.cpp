// MPC cost report: the paper's motivating scenario (§1).  Under Yao's
// garbled circuits with the free-XOR technique, XOR gates cost nothing and
// every AND gate costs two ciphertexts (half-gates garbling).  This example
// builds the comparison and hashing circuits of a private-auction sketch,
// minimizes their multiplicative complexity, and prices the result.
//
//   $ ./examples/mpc_cost_report
#include "core/rewrite.h"
#include "gen/arithmetic.h"
#include "gen/hashes.h"
#include "xag/depth.h"

#include <cstdio>

int main()
{
    using namespace mcx;

    struct workload {
        const char* name;
        xag circuit;
    };
    workload items[] = {
        {"32-bit bid comparator (<)", gen_comparator_lt_unsigned(32)},
        {"32-bit max of 4 bids", gen_max(32, 4)},
        {"64-bit settlement adder", gen_adder(64)},
        {"SHA-1 bid commitment", gen_sha1()},
    };

    constexpr double bytes_per_and = 2 * 16; // half-gates: 2 ciphertexts
    std::printf("%-28s | %9s %9s | %9s %9s | %8s | %9s\n", "circuit",
                "AND before", "after", "KiB before", "after", "saved",
                "AND depth");

    mc_database db;
    classification_cache cache;
    double total_before = 0, total_after = 0;
    for (auto& item : items) {
        const auto before = item.circuit.num_ands();
        mc_rewrite(item.circuit, db, cache, {}, 8);
        const auto after = item.circuit.num_ands();
        const double kib_before = before * bytes_per_and / 1024.0;
        const double kib_after = after * bytes_per_and / 1024.0;
        total_before += kib_before;
        total_after += kib_after;
        std::printf("%-28s | %9u %9u | %9.1f %9.1f | %7.0f%% | %9u\n",
                    item.name, before, after, kib_before, kib_after,
                    100.0 * (before - after) / before,
                    and_depth(item.circuit));
    }
    std::printf("%-28s | %31s | %9.1f %9.1f | %7.0f%%\n", "total garbled data",
                "", total_before, total_after,
                100.0 * (total_before - total_after) / total_before);
    std::printf("\n(free-XOR garbling: XOR gates are free; each AND costs two "
                "128-bit ciphertexts.)\n");
    return 0;
}
