// End-to-end compilation pipeline: generate a circuit, minimize its AND
// count, and export it in Bristol fashion for consumption by MPC frameworks
// (the interchange format of the paper's Table 2 benchmarks).
//
//   $ ./examples/export_bristol [output-directory]
#include "core/rewrite.h"
#include "gen/arithmetic.h"
#include "io/bristol.h"
#include "xag/cleanup.h"

#include <cstdio>
#include <sstream>
#include <string>

int main(int argc, char** argv)
{
    using namespace mcx;
    const std::string dir = argc > 1 ? argv[1] : ".";

    struct job {
        const char* file;
        xag circuit;
    };
    job jobs[] = {
        {"adder32_mc.bristol", gen_adder(32)},
        {"mult16_mc.bristol", gen_multiplier(16)},
        {"lt32_mc.bristol", gen_comparator_lt_unsigned(32)},
    };

    mc_database db;
    classification_cache cache;
    for (auto& j : jobs) {
        const auto before = j.circuit.num_ands();
        mc_rewrite(j.circuit, db, cache);
        auto clean = cleanup(j.circuit);
        const auto path = dir + "/" + j.file;
        write_bristol_file(clean, path);

        // Round-trip check: the exported file parses back to a circuit of
        // identical AND cost.
        const auto back = read_bristol_file(path);
        std::printf("%-18s %4u -> %4u AND gates; wrote %s (reparsed: %u AND)\n",
                    j.file, before, clean.num_ands(), path.c_str(),
                    back.num_ands());
    }
    return 0;
}
