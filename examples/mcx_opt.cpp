// mcx_opt — command-line optimizer: read a circuit (BENCH or Bristol
// fashion), minimize its multiplicative complexity, optionally clean up the
// XOR interconnect, and write the result.
//
//   $ ./examples/mcx_opt input.bench output.bench
//   $ ./examples/mcx_opt --bristol input.txt output.txt
//   $ ./examples/mcx_opt --xor-opt circuit.bench optimized.bench
#include "core/rewrite.h"
#include "core/xor_resynthesis.h"
#include "io/bench.h"
#include "io/bristol.h"
#include "xag/cleanup.h"
#include "xag/depth.h"
#include "xag/verify.h"

#include <cstdio>
#include <cstring>
#include <string>

int main(int argc, char** argv)
{
    using namespace mcx;
    bool bristol = false, xor_opt = false;
    std::string input, output;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--bristol") == 0)
            bristol = true;
        else if (std::strcmp(argv[i], "--xor-opt") == 0)
            xor_opt = true;
        else if (input.empty())
            input = argv[i];
        else
            output = argv[i];
    }
    if (input.empty() || output.empty()) {
        std::fprintf(stderr,
                     "usage: mcx_opt [--bristol] [--xor-opt] <in> <out>\n");
        return 1;
    }

    try {
        auto net = bristol ? read_bristol_file(input) : read_bench_file(input);
        const auto golden = cleanup(net);
        std::printf("read %s: %u PIs, %u POs, %u AND, %u XOR, "
                    "mult. depth %u\n",
                    input.c_str(), net.num_pis(), net.num_pos(),
                    net.num_ands(), net.num_xors(), and_depth(net));

        const auto result = mc_rewrite(net);
        if (xor_opt) {
            const auto stats = xor_resynthesis(net);
            std::printf("xor resynthesis: %u -> %u XOR (%u blocks, %u shared "
                        "pairs)\n",
                        stats.xors_before, stats.xors_after, stats.blocks,
                        stats.pairs_extracted);
        }
        auto clean = cleanup(net);

        if (!random_simulation_equal(clean, golden, 64)) {
            std::fprintf(stderr, "internal error: verification failed\n");
            return 2;
        }
        if (bristol)
            write_bristol_file(clean, output);
        else
            write_bench_file(clean, output);
        std::printf("wrote %s: %u AND, %u XOR, mult. depth %u "
                    "(%zu rounds, %.2fs; verified)\n",
                    output.c_str(), clean.num_ands(), clean.num_xors(),
                    and_depth(clean), result.rounds.size(),
                    result.total_seconds());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
