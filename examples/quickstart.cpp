// Quickstart: build an XAG with the public API, minimize its AND count
// (the multiplicative complexity), and inspect the result.
//
//   $ ./examples/quickstart
#include "core/rewrite.h"
#include "xag/cleanup.h"
#include "xag/depth.h"
#include "xag/simulate.h"
#include "xag/xag.h"

#include <cstdio>

int main()
{
    using namespace mcx;

    // A 4-bit ripple-carry adder from textbook full adders.
    xag net;
    std::vector<signal> a, b;
    for (int i = 0; i < 4; ++i)
        a.push_back(net.create_pi());
    for (int i = 0; i < 4; ++i)
        b.push_back(net.create_pi());
    auto carry = net.get_constant(false);
    for (int i = 0; i < 4; ++i) {
        const auto axb = net.create_xor(a[i], b[i]);
        net.create_po(net.create_xor(axb, carry)); // sum bit
        carry = net.create_or(net.create_and(a[i], b[i]),
                              net.create_and(axb, carry));
    }
    net.create_po(carry);

    std::printf("before: %u AND, %u XOR, multiplicative depth %u\n",
                net.num_ands(), net.num_xors(), and_depth(net));

    // One call minimizes the number of AND gates (paper Algorithm 1,
    // repeated until convergence).
    const auto result = mc_rewrite(net);

    std::printf("after:  %u AND, %u XOR, multiplicative depth %u "
                "(%zu rounds, %.2fs)\n",
                net.num_ands(), net.num_xors(), and_depth(net),
                result.rounds.size(), result.total_seconds());
    std::printf("the 4-bit adder reaches the known optimum of 4 AND gates: "
                "%s\n",
                net.num_ands() == 4 ? "yes" : "no");

    // Verify the optimized network still adds.
    const auto tts = simulate(net);
    for (uint64_t x = 0; x < 16; ++x)
        for (uint64_t y = 0; y < 16; ++y) {
            uint64_t sum = 0;
            for (int bit = 0; bit < 5; ++bit)
                sum |= static_cast<uint64_t>(tts[bit].get_bit(x | (y << 4)))
                       << bit;
            if (sum != x + y) {
                std::printf("MISMATCH at %llu + %llu\n",
                            static_cast<unsigned long long>(x),
                            static_cast<unsigned long long>(y));
                return 1;
            }
        }
    std::printf("functional check: all 256 input pairs add correctly\n");
    return 0;
}
