// Multiplicative-complexity explorer: for a Boolean function given as a hex
// truth table, report the degree lower bound, the heuristic upper bound, the
// affine class representative, and (for small budgets) the exact MC with an
// AND-minimal circuit.
//
//   $ ./examples/mc_bounds 3 e8        # majority of three
//   $ ./examples/mc_bounds 4 cafe
//   $ ./examples/mc_bounds             # demo on built-in functions
#include "exact/exact_mc.h"
#include "exact/heuristic_mc.h"
#include "spectral/classification.h"
#include "tt/operations.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace mcx;

namespace {

void report(const truth_table& f)
{
    std::printf("function 0x%s on %u variables\n", f.to_hex().c_str(),
                f.num_vars());
    std::printf("  algebraic degree:        %u\n", degree(f));
    std::printf("  MC lower bound (deg-1):  %u\n", mc_lower_bound(f));
    std::printf("  MC heuristic upper bound:%u\n", heuristic_mc_bound(f));

    const auto cls = classify_affine(f, {.iteration_limit = 1'000'000});
    if (cls.success)
        std::printf("  affine representative:   0x%s\n",
                    cls.representative.to_hex().c_str());
    else
        std::printf("  affine representative:   (classification limit hit)\n");

    const auto exact = exact_mc_synthesis(
        f, {.max_ands = 6, .conflict_budget = 500'000});
    if (exact.success)
        std::printf("  exact MC:                %u%s (circuit: %u AND, %u "
                    "XOR)\n",
                    exact.num_ands, exact.optimal ? "" : " (upper bound)",
                    exact.circuit.num_ands(), exact.circuit.num_xors());
    else
        std::printf("  exact MC:                undecided within budget\n");
    std::printf("\n");
}

} // namespace

int main(int argc, char** argv)
{
    if (argc == 3) {
        const auto num_vars = static_cast<uint32_t>(std::atoi(argv[1]));
        if (num_vars < 1 || num_vars > 6) {
            std::fprintf(stderr, "usage: mc_bounds <vars 1..6> <hex tt>\n");
            return 1;
        }
        try {
            report(truth_table::from_hex(num_vars, argv[2]));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
        return 0;
    }

    std::printf("mcx multiplicative-complexity explorer — demo functions\n\n");
    report(truth_table{3, 0xe8}); // majority (paper example: MC = 1)
    report(truth_table{3, 0x80}); // AND of three (MC = 2)
    const auto x0 = truth_table::projection(4, 0);
    const auto x1 = truth_table::projection(4, 1);
    const auto x2 = truth_table::projection(4, 2);
    const auto x3 = truth_table::projection(4, 3);
    report((x0 & x1) ^ (x2 & x3)); // 4-variable bent function
    report(x0 ^ x1 ^ x2 ^ x3);     // parity: MC = 0
    return 0;
}
