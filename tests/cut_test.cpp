#include "cut/cut_enumeration.h"
#include "xag/simulate.h"
#include "xag/xag.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace mcx {
namespace {

xag full_adder()
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto cin = net.create_pi();
    const auto axb = net.create_xor(a, b);
    const auto sum = net.create_xor(axb, cin);
    const auto cout =
        net.create_or(net.create_and(a, b), net.create_and(axb, cin));
    net.create_po(sum);
    net.create_po(cout);
    return net;
}

TEST(cut_enumeration, parameter_validation)
{
    xag net;
    EXPECT_THROW(enumerate_cuts(net, {.cut_size = 1}), std::invalid_argument);
    EXPECT_THROW(enumerate_cuts(net, {.cut_size = 9}), std::invalid_argument);
    EXPECT_THROW(enumerate_cuts(net, {.cut_size = 4, .cut_limit = 0}),
                 std::invalid_argument);
}

TEST(cut_enumeration, pi_has_trivial_cut_only)
{
    xag net;
    const auto a = net.create_pi();
    net.create_po(a);
    const auto sets = enumerate_cuts(net);
    ASSERT_EQ(sets[a.node()].size(), 1u);
    EXPECT_EQ(sets[a.node()][0].num_leaves, 1u);
    EXPECT_EQ(sets[a.node()][0].leaves[0], a.node());
    EXPECT_EQ(sets[a.node()][0].function, 0x2u);
}

TEST(cut_enumeration, full_adder_cout_cut)
{
    // Paper Fig. 1(b): the cout cut with leaves {a, b, cin} implements the
    // majority function 0xe8.
    const auto net = full_adder();
    const auto sets = enumerate_cuts(net);
    const auto cout_node = net.po_at(1).node();
    const auto& cuts = sets[cout_node];
    const std::array<uint32_t, 3> pis{net.pi_at(0), net.pi_at(1),
                                      net.pi_at(2)};
    const auto it = std::find_if(cuts.begin(), cuts.end(), [&](const cut& c) {
        return c.num_leaves == 3 &&
               std::equal(pis.begin(), pis.end(), c.leaves.begin());
    });
    ASSERT_NE(it, cuts.end());
    uint64_t func = it->function;
    if (net.po_at(1).complemented())
        func = ~func & tt_mask(3);
    EXPECT_EQ(func, 0xe8u);
}

TEST(cut_enumeration, every_gate_ends_with_trivial_cut)
{
    const auto net = full_adder();
    const auto sets = enumerate_cuts(net);
    for (const auto n : net.topological_order()) {
        if (!net.is_gate(n))
            continue;
        ASSERT_FALSE(sets[n].empty());
        const auto& last = sets[n].back();
        EXPECT_EQ(last.num_leaves, 1u);
        EXPECT_EQ(last.leaves[0], n);
    }
}

TEST(cut_enumeration, respects_cut_limit)
{
    std::mt19937_64 rng{3};
    xag net;
    std::vector<signal> pool;
    for (int i = 0; i < 8; ++i)
        pool.push_back(net.create_pi());
    for (int i = 0; i < 120; ++i) {
        const auto a = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        const auto b = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        pool.push_back((rng() & 1) ? net.create_and(a, b)
                                   : net.create_xor(a, b));
    }
    for (int i = 0; i < 4; ++i)
        net.create_po(pool[pool.size() - 1 - i]);

    for (const uint32_t limit : {1u, 4u, 12u}) {
        const auto sets =
            enumerate_cuts(net, {.cut_size = 6, .cut_limit = limit});
        for (const auto n : net.topological_order()) {
            if (!net.is_gate(n))
                continue;
            EXPECT_LE(sets[n].size(), limit + 1); // + trivial cut
        }
    }
}

TEST(cut_enumeration, leaves_sorted_and_within_size)
{
    std::mt19937_64 rng{5};
    xag net;
    std::vector<signal> pool;
    for (int i = 0; i < 10; ++i)
        pool.push_back(net.create_pi());
    for (int i = 0; i < 200; ++i) {
        const auto a = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        const auto b = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        pool.push_back((rng() & 1) ? net.create_and(a, b)
                                   : net.create_xor(a, b));
    }
    for (int i = 0; i < 6; ++i)
        net.create_po(pool[pool.size() - 1 - i]);

    for (const uint32_t k : {2u, 4u, 6u}) {
        const auto sets = enumerate_cuts(net, {.cut_size = k});
        for (const auto n : net.topological_order()) {
            for (const auto& c : sets[n]) {
                EXPECT_GE(c.num_leaves, 1u);
                EXPECT_LE(c.num_leaves, k == 0 ? 1u : std::max(k, 1u));
                EXPECT_TRUE(std::is_sorted(c.leaves.begin(),
                                           c.leaves.begin() + c.num_leaves));
            }
        }
    }
}

TEST(cut_enumeration, no_dominated_cuts)
{
    std::mt19937_64 rng{6};
    xag net;
    std::vector<signal> pool;
    for (int i = 0; i < 8; ++i)
        pool.push_back(net.create_pi());
    for (int i = 0; i < 100; ++i) {
        const auto a = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        const auto b = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        pool.push_back((rng() & 1) ? net.create_and(a, b)
                                   : net.create_xor(a, b));
    }
    net.create_po(pool.back());

    const auto sets = enumerate_cuts(net, {.cut_size = 4, .cut_limit = 25});
    for (const auto n : net.topological_order()) {
        const auto& cuts = sets[n];
        // The trivial cut is excluded: it legitimately dominates any cut
        // containing n itself (there are none) and nothing else.
        for (size_t i = 0; i + 1 < cuts.size(); ++i)
            for (size_t j = 0; j + 1 < cuts.size(); ++j)
                if (i != j)
                    EXPECT_FALSE(cuts[i].dominates(cuts[j]) &&
                                 cuts[i].num_leaves < cuts[j].num_leaves)
                        << "node " << n << " cut " << j
                        << " strictly dominated by cut " << i;
    }
}

// Property: every enumerated cut function must equal the simulated cone
// function of the root over the cut leaves.
class cut_function_property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(cut_function_property, functions_match_simulation)
{
    std::mt19937_64 rng{GetParam()};
    xag net;
    std::vector<signal> pool;
    for (int i = 0; i < 7; ++i)
        pool.push_back(net.create_pi());
    for (int i = 0; i < 80; ++i) {
        const auto a = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        const auto b = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        pool.push_back((rng() & 1) ? net.create_and(a, b)
                                   : net.create_xor(a, b));
    }
    for (int i = 0; i < 5; ++i)
        net.create_po(pool[pool.size() - 1 - i]);

    const auto sets = enumerate_cuts(net, {.cut_size = 6, .cut_limit = 8});
    for (const auto n : net.topological_order()) {
        if (!net.is_gate(n))
            continue;
        for (const auto& c : sets[n]) {
            const auto expected = cone_function(net, n, c.leaf_span());
            ASSERT_EQ(c.function_tt(), expected)
                << "node " << n << " cut over " << c.num_leaves << " leaves";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, cut_function_property,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(cut_enumeration, stats_populated)
{
    const auto net = full_adder();
    cut_enumeration_stats stats;
    enumerate_cuts(net, {}, &stats);
    EXPECT_GT(stats.total_cuts, 0u);
    EXPECT_GT(stats.merged_pairs, 0u);
}

// --- word-parallel path vs. the retained scalar seed path ------------------

TEST(cut_enumeration, word_parallel_matches_scalar_path)
{
    std::mt19937_64 rng{7};
    uint64_t total_duplicates = 0;
    for (int trial = 0; trial < 6; ++trial) {
        xag net;
        std::vector<signal> pool;
        for (int i = 0; i < 9; ++i)
            pool.push_back(net.create_pi());
        for (int i = 0; i < 150; ++i) {
            const auto a = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
            const auto b = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
            pool.push_back((rng() & 1) ? net.create_and(a, b)
                                       : net.create_xor(a, b));
        }
        for (int i = 0; i < 4; ++i)
            net.create_po(pool[pool.size() - 1 - i]);

        for (const uint32_t k : {2u, 4u, 6u}) {
            const cut_enumeration_params fast{
                .cut_size = k, .cut_limit = 12, .word_parallel = true};
            const cut_enumeration_params scalar{
                .cut_size = k, .cut_limit = 12, .word_parallel = false};
            cut_enumeration_stats fast_stats, scalar_stats;
            const auto sf = enumerate_cuts(net, fast, &fast_stats);
            const auto ss = enumerate_cuts(net, scalar, &scalar_stats);
            // Full stat parity: the scalar path classifies duplicates and
            // evictions exactly like the word-parallel path (it used to
            // fold duplicates into dominated_cuts and never count
            // evictions).
            EXPECT_EQ(fast_stats.merged_pairs, scalar_stats.merged_pairs);
            EXPECT_EQ(fast_stats.duplicate_cuts, scalar_stats.duplicate_cuts)
                << "trial " << trial << " k=" << k;
            EXPECT_EQ(fast_stats.dominated_cuts, scalar_stats.dominated_cuts)
                << "trial " << trial << " k=" << k;
            EXPECT_EQ(fast_stats.evicted_cuts, scalar_stats.evicted_cuts)
                << "trial " << trial << " k=" << k;
            EXPECT_EQ(fast_stats.total_cuts, scalar_stats.total_cuts);
            total_duplicates += fast_stats.duplicate_cuts;
            ASSERT_EQ(sf.size(), ss.size());
            for (size_t n = 0; n < sf.size(); ++n) {
                ASSERT_EQ(sf[n].size(), ss[n].size())
                    << "node " << n << " k=" << k;
                for (size_t c = 0; c < sf[n].size(); ++c) {
                    ASSERT_EQ(sf[n][c].num_leaves, ss[n][c].num_leaves);
                    ASSERT_TRUE(std::equal(
                        sf[n][c].leaves.begin(),
                        sf[n][c].leaves.begin() + sf[n][c].num_leaves,
                        ss[n][c].leaves.begin()))
                        << "node " << n << " cut " << c << " k=" << k;
                    ASSERT_EQ(sf[n][c].function, ss[n][c].function)
                        << "node " << n << " cut " << c << " k=" << k;
                    ASSERT_EQ(sf[n][c].signature, ss[n][c].signature);
                }
            }
        }
    }
    // Exact duplicates are rare enough in organic networks that these
    // random trials may legitimately see none — the crafted kernel test
    // below guarantees the filter itself is exercised.
    (void)total_duplicates;
}

TEST(cut_enumeration, duplicate_filter_fires_and_counts_symmetrically)
{
    // Craft fanin cut sets that force two merge pairs onto the same
    // (leaves, function) cut: f with cuts {a,b} and {a,c} both computing
    // the projection onto a, g with cut {b,c}.  Pair ({a,b},{b,c}) and
    // pair ({a,c},{b,c}) both merge to {a,b,c} with identical functions —
    // the second must be rejected as a duplicate (hash path and scalar
    // path alike), not silently double-stored.
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto f = net.create_and(a, b);
    const auto g = net.create_and(b, c);
    const auto n = net.create_and(f, g);
    net.create_po(n);

    const auto make = [](std::initializer_list<uint32_t> leaves,
                         uint64_t function) {
        cut cc;
        cc.num_leaves = static_cast<uint8_t>(leaves.size());
        std::copy(leaves.begin(), leaves.end(), cc.leaves.begin());
        cc.function = function;
        for (const auto l : leaves)
            cc.signature |= uint64_t{1} << (l & 63);
        return cc;
    };
    cut_sets sets;
    sets.reset(net.size());
    // f's planted cuts: both compute x0 (= leaf a) over their leaf pair.
    const cut f_cuts[2] = {make({a.node(), b.node()}, 0xa),
                           make({a.node(), c.node()}, 0xa)};
    const cut g_cuts[1] = {make({b.node(), c.node()}, 0xa)};
    sets.assign(f.node(), f_cuts);
    sets.assign(g.node(), g_cuts);

    for (const bool word_parallel : {true, false}) {
        cut_enumeration_workspace ws;
        enumerate_node_cuts(net, sets, n.node(),
                            {.cut_size = 6, .cut_limit = 12,
                             .word_parallel = word_parallel},
                            ws);
        EXPECT_EQ(ws.stats.duplicate_cuts, 1u)
            << (word_parallel ? "word-parallel" : "scalar");
        EXPECT_EQ(ws.stats.merged_pairs, 2u);
        // One {a,b,c} cut survives (plus the trivial cut).
        ASSERT_EQ(ws.candidates.size(), 2u);
        EXPECT_EQ(ws.candidates[0].num_leaves, 3u);
    }
}

// --- exact duplicate rejection under cut_key collisions ---------------------

TEST(cut_duplicate, key_depends_on_function_and_leaves)
{
    const auto make = [](std::initializer_list<uint32_t> leaves,
                         uint64_t function) {
        cut c;
        c.num_leaves = static_cast<uint8_t>(leaves.size());
        std::copy(leaves.begin(), leaves.end(), c.leaves.begin());
        c.function = function;
        for (const auto l : leaves)
            c.signature |= uint64_t{1} << (l & 63);
        return c;
    };
    EXPECT_EQ(cut_key(make({1, 2, 3}, 0xe8)), cut_key(make({1, 2, 3}, 0xe8)));
    EXPECT_NE(cut_key(make({1, 2, 3}, 0xe8)), cut_key(make({1, 2, 3}, 0x96)));
    EXPECT_NE(cut_key(make({1, 2, 3}, 0xe8)), cut_key(make({1, 2, 4}, 0xe8)));
}

TEST(cut_duplicate, key_collision_cannot_drop_distinct_function)
{
    // Regression: the merge loop used to declare "duplicate" on cut_key
    // match + identical leaves, never comparing the function — so a 64-bit
    // key collision between same-leaf/different-function cuts silently
    // dropped a valid cut.  A real splitmix collision cannot be forged in
    // a test, so we force the collision by entering the exact check
    // directly (which is precisely what the loop executes after any key
    // match): distinct functions must never be duplicates, no matter what
    // the hash said.
    const auto make = [](std::initializer_list<uint32_t> leaves,
                         uint64_t function) {
        cut c;
        c.num_leaves = static_cast<uint8_t>(leaves.size());
        std::copy(leaves.begin(), leaves.end(), c.leaves.begin());
        c.function = function;
        for (const auto l : leaves)
            c.signature |= uint64_t{1} << (l & 63);
        return c;
    };
    const auto maj = make({4, 7, 9}, 0xe8);
    const auto par = make({4, 7, 9}, 0x96); // same leaves, different function
    EXPECT_FALSE(cut_exact_duplicate(maj, par));
    EXPECT_FALSE(cut_exact_duplicate(par, maj));
    EXPECT_TRUE(cut_exact_duplicate(maj, make({4, 7, 9}, 0xe8)));
    // Different leaves, same function: not a duplicate either.
    EXPECT_FALSE(cut_exact_duplicate(maj, make({4, 7, 10}, 0xe8)));
    // Different widths never compare equal.
    EXPECT_FALSE(cut_exact_duplicate(maj, make({4, 7}, 0x8)));
}

TEST(cut_dominates, exact_subset_semantics)
{
    const auto make = [](std::initializer_list<uint32_t> leaves) {
        cut c;
        c.num_leaves = static_cast<uint8_t>(leaves.size());
        std::copy(leaves.begin(), leaves.end(), c.leaves.begin());
        for (const auto l : leaves)
            c.signature |= uint64_t{1} << (l & 63);
        return c;
    };
    EXPECT_TRUE(make({1, 3}).dominates(make({1, 2, 3})));
    EXPECT_TRUE(make({1, 2, 3}).dominates(make({1, 2, 3})));
    EXPECT_FALSE(make({1, 4}).dominates(make({1, 2, 3})));
    EXPECT_FALSE(make({1, 2, 3}).dominates(make({1, 3})));
    // Bloom aliasing: 2 and 66 share signature bit 2; the exact two-pointer
    // walk must still reject the false positive the prefilter lets through.
    EXPECT_FALSE(make({66}).dominates(make({2, 5})));
    EXPECT_TRUE(make({66}).dominates(make({5, 66})));
}

} // namespace
} // namespace mcx
