#include "npn/npn.h"
#include "tt/truth_table.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace mcx {
namespace {

truth_table random_tt(uint32_t num_vars, std::mt19937_64& rng)
{
    truth_table t{num_vars};
    t.words()[0] = rng() & tt_mask(num_vars);
    return t;
}

TEST(npn_canonize_fn, transform_reconstructs_function)
{
    std::mt19937_64 rng{41};
    for (uint32_t n = 0; n <= 4; ++n) {
        for (int rep = 0; rep < 25; ++rep) {
            const auto f = random_tt(n, rng);
            const auto result = npn_canonize(f);
            EXPECT_EQ(result.transform.apply(result.representative), f)
                << "n=" << n << " f=" << f.to_hex();
        }
    }
}

TEST(npn_canonize_fn, canonical_within_class)
{
    std::mt19937_64 rng{42};
    for (int rep = 0; rep < 40; ++rep) {
        const auto f = random_tt(4, rng);
        // Random NPN transformation of f.
        npn_transform t;
        t.num_vars = 4;
        std::array<uint8_t, 4> p{0, 1, 2, 3};
        for (int i = 3; i > 0; --i)
            std::swap(p[i], p[rng() % (i + 1)]);
        t.perm = p;
        t.input_negation = static_cast<uint32_t>(rng() & 0xf);
        t.output_negation = (rng() & 1) != 0;
        const auto g = t.apply(f);
        EXPECT_EQ(npn_canonize(f).representative,
                  npn_canonize(g).representative);
    }
}

TEST(npn_canonize_fn, known_class_counts)
{
    // 2-variable functions fall into 4 NPN classes
    // (const, x, x&y, x^y).
    std::set<truth_table> reps2;
    for (uint64_t bits = 0; bits < 16; ++bits)
        reps2.insert(npn_canonize(truth_table{2, bits}).representative);
    EXPECT_EQ(reps2.size(), 4u);

    // 3-variable functions: 14 NPN classes (classic result).
    std::set<truth_table> reps3;
    for (uint64_t bits = 0; bits < 256; ++bits)
        reps3.insert(npn_canonize(truth_table{3, bits}).representative);
    EXPECT_EQ(reps3.size(), 14u);
}

TEST(npn_canonize_fn, four_var_class_count)
{
    // 4-variable functions: 222 NPN classes (classic result).
    std::set<truth_table> reps;
    for (uint64_t bits = 0; bits < 65536; ++bits)
        reps.insert(npn_canonize(truth_table{4, bits}).representative);
    EXPECT_EQ(reps.size(), 222u);
}

TEST(npn_canonize_fn, representative_is_minimal_and_idempotent)
{
    std::mt19937_64 rng{43};
    for (int rep = 0; rep < 20; ++rep) {
        const auto f = random_tt(3, rng);
        const auto r = npn_canonize(f);
        EXPECT_FALSE(f < r.representative); // representative <= all members
        EXPECT_EQ(npn_canonize(r.representative).representative,
                  r.representative);
    }
}

TEST(npn_canonize_fn, rejects_oversized)
{
    EXPECT_THROW(npn_canonize(truth_table{5}), std::invalid_argument);
    EXPECT_THROW(npn_canonize_baseline(truth_table{5}),
                 std::invalid_argument);
}

// --- word-parallel canonizer vs. the retained brute-force oracle ----------

TEST(npn_canonize_oracle, exhaustive_up_to_three_vars)
{
    for (uint32_t n = 0; n <= 3; ++n) {
        for (uint64_t bits = 0; bits < (uint64_t{1} << (1u << n)); ++bits) {
            const truth_table f{n, bits};
            const auto fast = npn_canonize(f);
            const auto oracle = npn_canonize_baseline(f);
            ASSERT_EQ(fast.representative, oracle.representative)
                << "n=" << n << " f=" << f.to_hex();
            // The chosen transform may differ on ties, but both must be
            // valid decompositions of f.
            ASSERT_EQ(fast.transform.apply(fast.representative), f)
                << "n=" << n << " f=" << f.to_hex();
            ASSERT_EQ(oracle.transform.apply(oracle.representative), f)
                << "n=" << n << " f=" << f.to_hex();
        }
    }
}

TEST(npn_canonize_oracle, randomized_four_vars)
{
    std::mt19937_64 rng{97};
    for (int rep = 0; rep < 300; ++rep) {
        const auto f = random_tt(4, rng);
        const auto fast = npn_canonize(f);
        const auto oracle = npn_canonize_baseline(f);
        ASSERT_EQ(fast.representative, oracle.representative)
            << "f=" << f.to_hex();
        ASSERT_EQ(fast.transform.apply(fast.representative), f)
            << "f=" << f.to_hex();
    }
}

TEST(npn_cache_suite, hit_returns_identical_result)
{
    std::mt19937_64 rng{98};
    npn_cache cache;
    for (int rep = 0; rep < 50; ++rep) {
        const auto f = random_tt(4, rng);
        const auto miss = cache.canonize(f); // copy before the next call
        const auto& hit = cache.canonize(f);
        EXPECT_EQ(miss.representative, hit.representative);
        EXPECT_EQ(miss.transform.perm, hit.transform.perm);
        EXPECT_EQ(miss.transform.input_negation, hit.transform.input_negation);
        EXPECT_EQ(miss.transform.output_negation,
                  hit.transform.output_negation);
        EXPECT_EQ(hit.representative, npn_canonize(f).representative);
    }
    EXPECT_EQ(cache.hits(), 50u);
    EXPECT_EQ(cache.misses(), 50u);
}

} // namespace
} // namespace mcx
