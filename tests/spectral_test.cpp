#include "spectral/classification.h"
#include "tt/operations.h"
#include "tt/truth_table.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <random>
#include <set>
#include <unordered_set>

namespace mcx {
namespace {

truth_table random_tt(uint32_t num_vars, std::mt19937_64& rng)
{
    truth_table t{num_vars};
    for (auto& w : t.words())
        w = rng();
    if (num_vars < 6)
        t.words()[0] &= tt_mask(num_vars);
    return t;
}

/// Independent ground truth: expand the full affine orbit of `f` by BFS over
/// the five elementary operations of paper Definition 2.1.
std::set<truth_table> affine_orbit(const truth_table& f)
{
    const auto n = f.num_vars();
    std::set<truth_table> orbit{f};
    std::vector<truth_table> frontier{f};
    while (!frontier.empty()) {
        std::vector<truth_table> next;
        for (const auto& g : frontier) {
            std::vector<truth_table> neighbours;
            for (uint32_t i = 0; i < n; ++i) {
                neighbours.push_back(op_input_complement(g, i));
                neighbours.push_back(op_disjoint_translation(g, i));
                for (uint32_t j = 0; j < n; ++j)
                    if (i != j) {
                        neighbours.push_back(op_swap(g, i, j));
                        neighbours.push_back(op_translation(g, i, j));
                    }
            }
            neighbours.push_back(op_output_complement(g));
            for (auto& h : neighbours)
                if (orbit.insert(h).second)
                    next.push_back(h);
        }
        frontier = std::move(next);
    }
    return orbit;
}

/// Number of affine classes of n-variable functions, counted by orbit BFS.
uint32_t count_classes_bfs(uint32_t n)
{
    const uint64_t total = uint64_t{1} << (1u << n);
    std::vector<uint8_t> seen(total, 0);
    uint32_t classes = 0;
    for (uint64_t bits = 0; bits < total; ++bits) {
        if (seen[bits])
            continue;
        ++classes;
        for (const auto& g : affine_orbit(truth_table{n, bits}))
            seen[g.word()] = 1;
    }
    return classes;
}

TEST(walsh_spectrum, known_values)
{
    // Constant 0: s[0] = 2^n, all other coefficients 0.
    const auto s0 = walsh_spectrum(truth_table::constant(3, false));
    EXPECT_EQ(s0[0], 8);
    for (size_t i = 1; i < 8; ++i)
        EXPECT_EQ(s0[i], 0);

    // x0 on 1 variable: s = [0, 2].
    const auto s1 = walsh_spectrum(truth_table::projection(1, 0));
    EXPECT_EQ(s1, (std::vector<int32_t>{0, 2}));

    // AND: s = [2, 2, 2, -2].
    const auto a = truth_table::projection(2, 0);
    const auto b = truth_table::projection(2, 1);
    EXPECT_EQ(walsh_spectrum(a & b), (std::vector<int32_t>{2, 2, 2, -2}));
}

TEST(walsh_spectrum, parseval_identity)
{
    std::mt19937_64 rng{17};
    for (uint32_t n : {2u, 4u, 6u}) {
        for (int rep = 0; rep < 8; ++rep) {
            const auto f = random_tt(n, rng);
            const auto s = walsh_spectrum(f);
            const auto sum = std::accumulate(
                s.begin(), s.end(), int64_t{0},
                [](int64_t acc, int32_t x) { return acc + int64_t{x} * x; });
            EXPECT_EQ(sum, int64_t{1} << (2 * n));
        }
    }
}

TEST(walsh_spectrum, roundtrip)
{
    std::mt19937_64 rng{18};
    for (uint32_t n : {1u, 3u, 5u, 6u}) {
        for (int rep = 0; rep < 10; ++rep) {
            const auto f = random_tt(n, rng);
            EXPECT_EQ(function_from_spectrum(walsh_spectrum(f), n), f);
        }
    }
}

TEST(walsh_spectrum, rejects_invalid_spectrum)
{
    std::vector<int32_t> bogus{1, 0, 0, 0};
    EXPECT_THROW(function_from_spectrum(bogus, 2), std::invalid_argument);
    EXPECT_THROW(function_from_spectrum(bogus, 3), std::invalid_argument);
    // Coefficients beyond ±2^n can never come from a Boolean function.
    std::vector<int32_t> oversized{100, 0, 0, 0};
    EXPECT_THROW(function_from_spectrum(oversized, 2), std::invalid_argument);
}

TEST(walsh_spectrum, matches_scalar_definition)
{
    // Independent ground truth for the packed butterfly: evaluate
    // s[w] = sum_x (-1)^(f(x) ^ (w.x)) literally.
    std::mt19937_64 rng{25};
    for (uint32_t n = 0; n <= 6; ++n) {
        for (int rep = 0; rep < 6; ++rep) {
            const auto f = random_tt(n, rng);
            const auto s = walsh_spectrum(f);
            for (uint64_t w = 0; w < f.num_bits(); ++w) {
                int32_t expected = 0;
                for (uint64_t x = 0; x < f.num_bits(); ++x) {
                    const auto parity =
                        (std::popcount(w & x) & 1) ^ (f.get_bit(x) ? 1 : 0);
                    expected += parity ? -1 : 1;
                }
                ASSERT_EQ(s[w], expected) << "n=" << n << " w=" << w;
            }
        }
    }
}

TEST(walsh_spectrum, roundtrip_exhaustive_small)
{
    // Every function on up to 3 variables survives the packed
    // forward/inverse transform pair bit-exactly.
    for (uint32_t n = 0; n <= 3; ++n)
        for (uint64_t bits = 0; bits < (uint64_t{1} << (1u << n)); ++bits) {
            const truth_table f{n, bits};
            EXPECT_EQ(function_from_spectrum(walsh_spectrum(f), n), f);
        }
}

TEST(classify_affine, paper_example_majority_and)
{
    // Paper Example 2.3 / 3.1: <x1x2x3> (0xe8) is affine-equivalent to the
    // AND x1x2 viewed as a 3-variable function (0x88).
    const auto maj = truth_table{3, 0xe8};
    const auto and3 = truth_table{3, 0x88};
    const auto rm = classify_affine(maj);
    const auto ra = classify_affine(and3);
    ASSERT_TRUE(rm.success);
    ASSERT_TRUE(ra.success);
    EXPECT_EQ(rm.representative, ra.representative);
    // Reconstruction identities.
    EXPECT_EQ(rm.transform.apply(rm.representative), maj);
    EXPECT_EQ(ra.transform.apply(ra.representative), and3);
}

TEST(classify_affine, representative_is_idempotent)
{
    std::mt19937_64 rng{19};
    for (uint32_t n : {2u, 3u, 4u}) {
        for (int rep = 0; rep < 20; ++rep) {
            const auto f = random_tt(n, rng);
            const auto r1 = classify_affine(f);
            ASSERT_TRUE(r1.success);
            const auto r2 = classify_affine(r1.representative);
            ASSERT_TRUE(r2.success);
            EXPECT_EQ(r2.representative, r1.representative);
        }
    }
}

TEST(classify_affine, class_counts_match_paper_small)
{
    // Paper §2.2: n = 1, 2, 3 collapse into 1, 2, 3 classes.
    EXPECT_EQ(count_classes_bfs(1), 1u);
    EXPECT_EQ(count_classes_bfs(2), 2u);
    EXPECT_EQ(count_classes_bfs(3), 3u);
}

TEST(classify_affine, all_3var_functions_canonize_into_3_classes)
{
    std::set<truth_table> reps;
    for (uint64_t bits = 0; bits < 256; ++bits) {
        const auto r = classify_affine(truth_table{3, bits});
        ASSERT_TRUE(r.success) << "function 0x" << std::hex << bits;
        reps.insert(r.representative);
    }
    EXPECT_EQ(reps.size(), 3u);
}

TEST(classify_affine, four_var_classes_match_orbit_bfs)
{
    // Paper §2.2: 8 classes for n = 4.  Compute the orbits exactly by BFS,
    // then check the canonizer maps sampled members of each orbit to one
    // representative per orbit.
    std::mt19937_64 rng{20};
    std::vector<std::set<truth_table>> orbits;
    {
        std::vector<uint8_t> seen(65536, 0);
        for (uint64_t bits = 0; bits < 65536; ++bits) {
            if (seen[bits])
                continue;
            auto orbit = affine_orbit(truth_table{4, bits});
            for (const auto& g : orbit)
                seen[g.word()] = 1;
            orbits.push_back(std::move(orbit));
        }
    }
    ASSERT_EQ(orbits.size(), 8u);

    std::set<truth_table> all_reps;
    for (const auto& orbit : orbits) {
        std::vector<truth_table> members(orbit.begin(), orbit.end());
        std::set<truth_table> reps_of_orbit;
        for (int s = 0; s < 12; ++s) {
            const auto& f = members[rng() % members.size()];
            const auto r = classify_affine(f, {.iteration_limit = 5'000'000});
            ASSERT_TRUE(r.success);
            reps_of_orbit.insert(r.representative);
            ASSERT_TRUE(orbit.count(r.representative))
                << "representative escaped its own orbit";
        }
        EXPECT_EQ(reps_of_orbit.size(), 1u)
            << "members of one orbit got different representatives";
        all_reps.insert(*reps_of_orbit.begin());
    }
    EXPECT_EQ(all_reps.size(), 8u);
}

TEST(classify_affine, five_var_representative_count_is_bounded)
{
    // Paper §2.2: 48 classes for n = 5.  Random sampling must never produce
    // more than 48 distinct representatives.
    std::mt19937_64 rng{21};
    std::set<truth_table> reps;
    int successes = 0;
    for (int i = 0; i < 400; ++i) {
        const auto f = random_tt(5, rng);
        const auto r = classify_affine(f, {.iteration_limit = 2'000'000});
        if (!r.success)
            continue;
        ++successes;
        reps.insert(r.representative);
    }
    EXPECT_GT(successes, 350);
    EXPECT_LE(reps.size(), 48u);
    EXPECT_GE(reps.size(), 10u);
}

TEST(classify_affine, affine_equivalent_functions_share_representative)
{
    std::mt19937_64 rng{22};
    for (uint32_t n : {5u, 6u}) {
        for (int rep = 0; rep < (n == 5 ? 12 : 6); ++rep) {
            const auto f = random_tt(n, rng);
            // Apply a random sequence of elementary affine operations.
            auto g = f;
            for (int k = 0; k < 8; ++k) {
                const auto i = static_cast<uint32_t>(rng() % n);
                auto j = static_cast<uint32_t>(rng() % n);
                switch (rng() % 5) {
                case 0:
                    g = op_input_complement(g, i);
                    break;
                case 1:
                    g = op_output_complement(g);
                    break;
                case 2:
                    g = op_disjoint_translation(g, i);
                    break;
                case 3:
                    if (j == i)
                        j = (i + 1) % n;
                    g = op_translation(g, i, j);
                    break;
                default:
                    if (j == i)
                        j = (i + 1) % n;
                    g = op_swap(g, i, j);
                }
            }
            const auto rf = classify_affine(f, {.iteration_limit = 3'000'000});
            const auto rg = classify_affine(g, {.iteration_limit = 3'000'000});
            if (!rf.success || !rg.success)
                continue; // limit hit: allowed, mirrors the paper
            EXPECT_EQ(rf.representative, rg.representative);
        }
    }
}

TEST(classify_affine, reconstruction_closed_form_random)
{
    // classify_affine throws internally if the reconstruction identity
    // fails; this test additionally checks it end-to-end.
    std::mt19937_64 rng{23};
    for (uint32_t n = 1; n <= 6; ++n) {
        for (int rep = 0; rep < 10; ++rep) {
            const auto f = random_tt(n, rng);
            const auto r = classify_affine(f, {.iteration_limit = 2'000'000});
            if (!r.success)
                continue;
            EXPECT_EQ(r.transform.apply(r.representative), f);
        }
    }
}

TEST(classify_affine, degree_is_invariant_for_nonlinear_functions)
{
    std::mt19937_64 rng{24};
    for (int rep = 0; rep < 30; ++rep) {
        const auto f = random_tt(4, rng);
        if (degree(f) < 2)
            continue;
        const auto r = classify_affine(f, {.iteration_limit = 2'000'000});
        ASSERT_TRUE(r.success);
        EXPECT_EQ(degree(r.representative), degree(f));
    }
}

TEST(classify_affine, bent_function_canonizes)
{
    // x0x1 ^ x2x3, the classic 4-variable bent function: its spectrum is
    // flat, the worst case for tie-heavy search.
    const auto x0 = truth_table::projection(4, 0);
    const auto x1 = truth_table::projection(4, 1);
    const auto x2 = truth_table::projection(4, 2);
    const auto x3 = truth_table::projection(4, 3);
    const auto bent = (x0 & x1) ^ (x2 & x3);
    const auto r = classify_affine(bent, {.iteration_limit = 20'000'000});
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.transform.apply(r.representative), bent);
    const auto r2 = classify_affine(r.representative,
                                    {.iteration_limit = 20'000'000});
    ASSERT_TRUE(r2.success);
    EXPECT_EQ(r2.representative, r.representative);
}

TEST(classify_affine, iteration_limit_reports_failure)
{
    // A 6-variable linear function has a degenerate spectrum whose tie tree
    // exceeds any small limit.
    truth_table f{6};
    for (uint32_t i = 0; i < 6; ++i)
        f = f ^ truth_table::projection(6, i);
    const auto r = classify_affine(f, {.iteration_limit = 500});
    EXPECT_FALSE(r.success);
    EXPECT_GT(r.iterations, 0u);
}

TEST(classify_affine, constant_and_trivial_inputs)
{
    const auto r0 = classify_affine(truth_table::constant(0, false));
    EXPECT_TRUE(r0.success);
    const auto r1 = classify_affine(truth_table::constant(0, true));
    EXPECT_TRUE(r1.success);
    // f(y) = r(...) ^ s must give back the constant one.
    EXPECT_EQ(r1.representative.get_bit(0) ^ r1.transform.output_complement,
              true);
    EXPECT_THROW(classify_affine(truth_table{7}), std::invalid_argument);
}

/// The word-parallel engine replicates the scalar baseline's search tree
/// exactly, so agreement is total: same success flag, same iteration count,
/// same representative, same closed-form transform.
void expect_engines_agree(const truth_table& f, uint64_t iteration_limit)
{
    const auto fast =
        classify_affine(f, {.iteration_limit = iteration_limit});
    const auto slow =
        classify_affine_baseline(f, {.iteration_limit = iteration_limit});
    ASSERT_EQ(fast.success, slow.success) << "f = " << f.to_hex();
    if (!fast.success)
        return;
    ASSERT_EQ(fast.iterations, slow.iterations) << "f = " << f.to_hex();
    ASSERT_EQ(fast.representative, slow.representative)
        << "f = " << f.to_hex();
    EXPECT_EQ(fast.transform.c, slow.transform.c);
    EXPECT_EQ(fast.transform.v, slow.transform.v);
    EXPECT_EQ(fast.transform.m_columns, slow.transform.m_columns);
    EXPECT_EQ(fast.transform.output_complement,
              slow.transform.output_complement);
}

TEST(classify_affine_vs_baseline, exhaustive_up_to_4_inputs)
{
    for (uint32_t n = 1; n <= 4; ++n)
        for (uint64_t bits = 0; bits < (uint64_t{1} << (1u << n)); ++bits)
            expect_engines_agree(truth_table{n, bits}, 500'000);
}

TEST(classify_affine_vs_baseline, randomized_5_and_6_inputs)
{
    std::mt19937_64 rng{26};
    for (int rep = 0; rep < 40; ++rep)
        expect_engines_agree(random_tt(5, rng), 2'000'000);
    for (int rep = 0; rep < 15; ++rep)
        expect_engines_agree(random_tt(6, rng), 2'000'000);
}

TEST(classify_affine_vs_baseline, truncation_agrees_under_tight_limits)
{
    // When iteration_limit aborts the search, both engines must abort at
    // the same point — including the reported iteration count.
    std::mt19937_64 rng{27};
    for (const uint64_t limit : {50u, 500u, 5'000u}) {
        for (int rep = 0; rep < 10; ++rep) {
            const auto f = random_tt(6, rng);
            const auto fast = classify_affine(f, {.iteration_limit = limit});
            const auto slow =
                classify_affine_baseline(f, {.iteration_limit = limit});
            EXPECT_EQ(fast.success, slow.success) << "f = " << f.to_hex();
            EXPECT_EQ(fast.iterations, slow.iterations)
                << "f = " << f.to_hex();
        }
    }
}

TEST(classification_cache_suite, caches_results)
{
    classification_cache cache;
    const truth_table f{3, 0xe8};
    const auto& r1 = cache.classify(f);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    const auto& r2 = cache.classify(f);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(r1.representative, r2.representative);
    EXPECT_EQ(cache.size(), 1u);
}

} // namespace
} // namespace mcx
