#include "exact/exact_mc.h"
#include "exact/exact_size.h"
#include "exact/heuristic_mc.h"
#include "tt/operations.h"
#include "xag/simulate.h"

#include <gtest/gtest.h>

#include <random>

namespace mcx {
namespace {

truth_table random_tt(uint32_t num_vars, std::mt19937_64& rng)
{
    truth_table t{num_vars};
    for (auto& w : t.words())
        w = rng();
    if (num_vars < 6)
        t.words()[0] &= tt_mask(num_vars);
    return t;
}

TEST(mc_lower_bound_fn, degree_based)
{
    const auto a = truth_table::projection(3, 0);
    const auto b = truth_table::projection(3, 1);
    const auto c = truth_table::projection(3, 2);
    EXPECT_EQ(mc_lower_bound(a ^ b ^ c), 0u);
    EXPECT_EQ(mc_lower_bound(a & b), 1u);
    EXPECT_EQ(mc_lower_bound(a & b & c), 2u);
}

TEST(exact_mc, affine_functions_cost_zero)
{
    const auto a = truth_table::projection(4, 0);
    const auto d = truth_table::projection(4, 3);
    const auto r = exact_mc_synthesis(~(a ^ d));
    ASSERT_TRUE(r.success);
    EXPECT_TRUE(r.optimal);
    EXPECT_EQ(r.num_ands, 0u);
    EXPECT_EQ(r.circuit.num_ands(), 0u);
    EXPECT_EQ(simulate(r.circuit)[0], ~(a ^ d));
}

TEST(exact_mc, known_small_values)
{
    const auto a = truth_table::projection(3, 0);
    const auto b = truth_table::projection(3, 1);
    const auto c = truth_table::projection(3, 2);

    // AND of two variables: MC = 1.
    const auto r_and = exact_mc_synthesis(a & b);
    ASSERT_TRUE(r_and.success);
    EXPECT_TRUE(r_and.optimal);
    EXPECT_EQ(r_and.num_ands, 1u);

    // Majority of three (paper Example 3.1): MC = 1.
    const auto maj = (a & b) | (a & c) | (b & c);
    const auto r_maj = exact_mc_synthesis(maj);
    ASSERT_TRUE(r_maj.success);
    EXPECT_TRUE(r_maj.optimal);
    EXPECT_EQ(r_maj.num_ands, 1u);

    // MUX <c ? a : b>: MC = 1.
    const auto mux = (c & a) | (~c & b);
    const auto r_mux = exact_mc_synthesis(mux);
    ASSERT_TRUE(r_mux.success);
    EXPECT_EQ(r_mux.num_ands, 1u);

    // Product of three variables: MC = 2.
    const auto r_and3 = exact_mc_synthesis(a & b & c);
    ASSERT_TRUE(r_and3.success);
    EXPECT_TRUE(r_and3.optimal);
    EXPECT_EQ(r_and3.num_ands, 2u);
}

TEST(exact_mc, product_of_four_needs_three)
{
    truth_table f = truth_table::constant(4, true);
    for (uint32_t i = 0; i < 4; ++i)
        f &= truth_table::projection(4, i);
    const auto r = exact_mc_synthesis(f);
    ASSERT_TRUE(r.success);
    EXPECT_TRUE(r.optimal);
    EXPECT_EQ(r.num_ands, 3u);
}

TEST(exact_mc, all_4var_functions_need_at_most_three)
{
    // Turan-Peralta (paper ref [4]): MC of every 4-variable function <= 3.
    std::mt19937_64 rng{31};
    for (int rep = 0; rep < 10; ++rep) {
        const auto f = random_tt(4, rng);
        const auto r = exact_mc_synthesis(f);
        ASSERT_TRUE(r.success);
        EXPECT_LE(r.num_ands, 3u);
        EXPECT_EQ(simulate(r.circuit)[0], f);
    }
}

TEST(exact_mc, five_var_product_is_four)
{
    // Product of five variables: MC = 4 = degree bound, so the search hits
    // the optimum with a single satisfiable step.
    truth_table f = truth_table::constant(5, true);
    for (uint32_t i = 0; i < 5; ++i)
        f &= truth_table::projection(5, i);
    const auto r = exact_mc_synthesis(f, {.max_ands = 5,
                                          .conflict_budget = 500'000});
    ASSERT_TRUE(r.success);
    EXPECT_TRUE(r.optimal);
    EXPECT_EQ(r.num_ands, 4u);
    EXPECT_EQ(simulate(r.circuit)[0], f);
}

TEST(exact_mc, budget_exhaustion_is_reported)
{
    // A tiny conflict budget cannot decide a nontrivial 5-variable search.
    std::mt19937_64 rng{32};
    const auto f = random_tt(5, rng);
    const auto r =
        exact_mc_synthesis(f, {.max_ands = 2, .conflict_budget = 10});
    EXPECT_FALSE(r.success);
}

TEST(exact_mc, rejects_oversized_input)
{
    EXPECT_THROW(exact_mc_synthesis(truth_table{7}), std::invalid_argument);
}

TEST(heuristic_mc, affine_costs_zero)
{
    truth_table parity{5};
    for (uint32_t i = 0; i < 5; ++i)
        parity ^= truth_table::projection(5, i);
    EXPECT_EQ(heuristic_mc_bound(parity), 0u);
    const auto net = heuristic_mc_circuit(parity);
    EXPECT_EQ(net.num_ands(), 0u);
    EXPECT_EQ(simulate(net)[0], parity);
}

TEST(heuristic_mc, upper_bounds_exact)
{
    std::mt19937_64 rng{33};
    for (uint32_t n : {3u, 4u}) {
        for (int rep = 0; rep < 8; ++rep) {
            const auto f = random_tt(n, rng);
            const auto bound = heuristic_mc_bound(f);
            const auto exact = exact_mc_synthesis(f);
            ASSERT_TRUE(exact.success);
            EXPECT_GE(bound, exact.num_ands);
            const auto net = heuristic_mc_circuit(f);
            EXPECT_LE(net.num_ands(), bound);
            EXPECT_EQ(simulate(net)[0], f);
        }
    }
}

TEST(heuristic_mc, six_var_functions_build)
{
    std::mt19937_64 rng{34};
    for (int rep = 0; rep < 5; ++rep) {
        const auto f = random_tt(6, rng);
        const auto net = heuristic_mc_circuit(f);
        EXPECT_EQ(simulate(net)[0], f);
        EXPECT_LE(net.num_ands(), heuristic_mc_bound(f));
        EXPECT_GE(net.num_ands(), mc_lower_bound(f));
    }
}

TEST(exact_size, trivial_functions)
{
    const auto r_const = exact_size_synthesis(truth_table::constant(3, true));
    ASSERT_TRUE(r_const.success);
    EXPECT_EQ(r_const.num_gates, 0u);

    const auto x1 = truth_table::projection(3, 1);
    const auto r_var = exact_size_synthesis(x1);
    ASSERT_TRUE(r_var.success);
    EXPECT_EQ(r_var.num_gates, 0u);

    const auto r_not = exact_size_synthesis(~x1);
    ASSERT_TRUE(r_not.success);
    EXPECT_EQ(r_not.num_gates, 0u);
    EXPECT_EQ(simulate(r_not.circuit)[0], ~x1);
}

TEST(exact_size, known_gate_counts)
{
    const auto a = truth_table::projection(3, 0);
    const auto b = truth_table::projection(3, 1);
    const auto c = truth_table::projection(3, 2);

    // Parity of three: 2 XOR gates.
    const auto r_par = exact_size_synthesis(a ^ b ^ c);
    ASSERT_TRUE(r_par.success);
    EXPECT_TRUE(r_par.optimal);
    EXPECT_EQ(r_par.num_gates, 2u);
    EXPECT_EQ(r_par.circuit.num_ands(), 0u);

    // AND of three: 2 gates.
    const auto r_and3 = exact_size_synthesis(a & b & c);
    ASSERT_TRUE(r_and3.success);
    EXPECT_EQ(r_and3.num_gates, 2u);

    // MUX: 3 gates in the XAG basis ((t^e)&c)^e.
    const auto mux = (c & a) | (~c & b);
    const auto r_mux = exact_size_synthesis(mux);
    ASSERT_TRUE(r_mux.success);
    EXPECT_EQ(r_mux.num_gates, 3u);

    // OR: a single AND gate with inverters.
    const auto r_or = exact_size_synthesis(truth_table{2, 0xe});
    ASSERT_TRUE(r_or.success);
    EXPECT_EQ(r_or.num_gates, 1u);
}

TEST(exact_size, random_3var_functions)
{
    std::mt19937_64 rng{35};
    for (int rep = 0; rep < 8; ++rep) {
        const auto f = random_tt(3, rng);
        const auto r = exact_size_synthesis(f, {.max_gates = 8,
                                                .conflict_budget = 200'000});
        ASSERT_TRUE(r.success);
        EXPECT_EQ(simulate(r.circuit)[0], f);
        EXPECT_LE(r.num_gates, 8u);
    }
}

TEST(exact_size, structured_4var_functions)
{
    // Structured 4-variable functions with small optima keep the search
    // shallow while still exercising the 4-variable encoding.
    truth_table and4 = truth_table::constant(4, true);
    truth_table parity4{4};
    for (uint32_t i = 0; i < 4; ++i) {
        and4 &= truth_table::projection(4, i);
        parity4 ^= truth_table::projection(4, i);
    }
    const auto r_and = exact_size_synthesis(and4);
    ASSERT_TRUE(r_and.success);
    EXPECT_EQ(r_and.num_gates, 3u);
    const auto r_par = exact_size_synthesis(parity4);
    ASSERT_TRUE(r_par.success);
    EXPECT_EQ(r_par.num_gates, 3u);
    EXPECT_EQ(r_par.circuit.num_ands(), 0u);
}

TEST(exact_size, size_at_least_mc)
{
    // Total gates >= AND gates >= MC.
    std::mt19937_64 rng{36};
    for (int rep = 0; rep < 5; ++rep) {
        const auto f = random_tt(3, rng);
        const auto rs = exact_size_synthesis(f);
        const auto rm = exact_mc_synthesis(f);
        ASSERT_TRUE(rs.success);
        ASSERT_TRUE(rm.success);
        EXPECT_GE(rs.num_gates, rm.num_ands);
        EXPECT_GE(rs.circuit.num_ands(), rm.num_ands);
    }
}

} // namespace
} // namespace mcx
