// Incremental evaluation (src/core/pass.cpp round_env / evaluate_cache):
// re-running evaluate_node only for nodes whose cut or MFFC context
// changed must be an invisible optimization — flow outputs byte-identical
// to the full-evaluate oracle for every engine and thread count, across
// generator families and randomized network surgery — and it must go
// fully quiescent (zero nodes evaluated) on the steady-state round after
// convergence.  The commit-time SAT verifier rides along: with exact
// cut functions it can never refute a candidate, so enabling it must not
// change a single byte of output either.
#include "core/flow.h"
#include "gen/aes.h"
#include "gen/arithmetic.h"
#include "gen/control.h"
#include "gen/lightweight.h"
#include "io/bench.h"
#include "xag/cleanup.h"
#include "xag/verify.h"

#include <gtest/gtest.h>

#include <array>
#include <random>
#include <sstream>
#include <vector>

namespace mcx {
namespace {

std::string serialize(const xag& n)
{
    std::ostringstream os;
    write_bench(cleanup(n), os);
    return os.str();
}

/// Optimize through a flow and return (serialized network, replacements).
std::pair<std::string, uint64_t> optimize(xag net, uint32_t threads,
                                          bool incremental_eval,
                                          flow_params params = {},
                                          const char* spec = "mc")
{
    params.num_threads = threads;
    params.rewrite.incremental_evaluate = incremental_eval;
    params.size_rewrite.incremental_evaluate = incremental_eval;
    pass_context ctx{context_params(params)};
    const auto result = run_flow(net, make_flow(spec, params), ctx);
    uint64_t replacements = 0;
    for (const auto& p : result.passes)
        for (const auto& r : p.rounds)
            replacements += r.replacements;
    return {serialize(net), replacements};
}

/// Incremental evaluation must be invisible: identical networks and
/// replacement counts vs. the full-evaluate oracle, for the sequential
/// in-place engine (threads = 0) and the two-phase engine at 1/2/8
/// workers.
void expect_evaluate_invariant(const xag& source, const char* what,
                               flow_params params = {},
                               const char* spec = "mc")
{
    const auto golden = cleanup(source);
    const auto [full0, repl_full0] =
        optimize(cleanup(source), 0, false, params, spec);
    const auto [inc0, repl_inc0] =
        optimize(cleanup(source), 0, true, params, spec);
    EXPECT_EQ(inc0, full0) << what << ": sequential engine diverged";
    EXPECT_EQ(repl_inc0, repl_full0) << what;

    const auto [full1, repl_full1] =
        optimize(cleanup(source), 1, false, params, spec);
    for (const uint32_t threads : {1u, 2u, 8u}) {
        const auto [inc, repl] =
            optimize(cleanup(source), threads, true, params, spec);
        EXPECT_EQ(inc, full1)
            << what << ": " << threads << " threads diverged";
        EXPECT_EQ(repl, repl_full1) << what << ": " << threads << " threads";
    }

    // And the deterministic result is still the right function.
    std::istringstream is{full1};
    const auto reparsed = read_bench(is);
    if (golden.num_pis() <= 16)
        EXPECT_TRUE(exhaustive_equal(reparsed, golden)) << what;
    else
        EXPECT_TRUE(random_simulation_equal(reparsed, golden, 16)) << what;
}

// ----------------------------------- flow-level differential (families)

TEST(evaluate_differential, arithmetic_family)
{
    expect_evaluate_invariant(gen_adder(16), "adder16");
    expect_evaluate_invariant(gen_multiplier(4), "multiplier4");
}

TEST(evaluate_differential, control_family)
{
    expect_evaluate_invariant(gen_decoder(4), "decoder4");
    expect_evaluate_invariant(gen_voter(7), "voter7");
}

TEST(evaluate_differential, aes_family)
{
    xag net;
    std::array<signal, 8> in;
    for (auto& s : in)
        s = net.create_pi();
    for (const auto s : aes_sbox_circuit(net, in))
        net.create_po(s);
    expect_evaluate_invariant(net, "aes-sbox");
}

TEST(evaluate_differential, lightweight_family)
{
    expect_evaluate_invariant(gen_simon(16, 4), "simon16x4");
    expect_evaluate_invariant(gen_keccak_f(8), "keccak8");
}

TEST(evaluate_differential, size_baseline_engine)
{
    expect_evaluate_invariant(gen_adder(12), "size-adder12", {},
                              "size-baseline");
}

TEST(evaluate_differential, iterated_flow_across_passes)
{
    flow_params params;
    params.iterate_until_convergence = true;
    expect_evaluate_invariant(gen_adder(12), "iterated-adder12", params,
                              "mc+xor");
}

TEST(evaluate_differential, sat_verified_commits_change_nothing)
{
    // Evaluation scores candidates with exact cut truth tables, so the
    // commit-time SAT check can never refute one: turning it on must be
    // byte-invisible (it may only cost time).
    for (const uint32_t threads : {0u, 2u}) {
        flow_params plain;
        flow_params checked;
        checked.rewrite.sat_verify_commits = true;
        checked.size_rewrite.sat_verify_commits = true;
        const auto [off, repl_off] =
            optimize(gen_adder(16), threads, true, plain);
        const auto [on, repl_on] =
            optimize(gen_adder(16), threads, true, checked);
        EXPECT_EQ(on, off) << threads << " threads";
        EXPECT_EQ(repl_on, repl_off) << threads << " threads";
    }
}

// --------------------------------------------- randomized surgery fuzz

xag random_network(uint64_t seed, int pis = 8, int gates = 120, int pos = 4)
{
    std::mt19937_64 rng{seed};
    xag net;
    std::vector<signal> pool;
    for (int i = 0; i < pis; ++i)
        pool.push_back(net.create_pi());
    for (int i = 0; i < gates; ++i) {
        const auto a = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        const auto b = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        pool.push_back((rng() & 1) ? net.create_and(a, b)
                                   : net.create_xor(a, b));
    }
    for (int i = 0; i < pos && i < static_cast<int>(pool.size()); ++i)
        net.create_po(pool[pool.size() - 1 - i]);
    return net;
}

/// One structural surgery op addressed by *topological position*, not
/// node id.  The incremental and oracle runs consume node ids at
/// different rates (skipped evaluations build no transient candidates),
/// so ids diverge while the serialized structures stay identical;
/// positions in topological order are the id-independent coordinate
/// system the BENCH writer itself uses for naming.
struct surgery_op {
    uint32_t gate_pick;
    uint32_t a_pick, b_pick;
    bool a_compl, b_compl, is_and;
};

std::vector<surgery_op> surgery_plan(std::mt19937_64& rng, int operations)
{
    std::vector<surgery_op> plan;
    plan.reserve(operations);
    for (int i = 0; i < operations; ++i)
        plan.push_back({static_cast<uint32_t>(rng()),
                        static_cast<uint32_t>(rng()),
                        static_cast<uint32_t>(rng()), (rng() & 1) != 0,
                        (rng() & 1) != 0, (rng() & 1) != 0});
    return plan;
}

/// Substitute a positionally-chosen gate with a fresh gate over nodes
/// strictly below it (keeps the DAG acyclic; semantics-agnostic — the
/// evaluate cache tracks structure, and rewriting the mutated network is
/// function-preserving whatever that function now is).
void apply_surgery(xag& net, const std::vector<surgery_op>& plan)
{
    for (const auto& op : plan) {
        const auto order = net.topological_order();
        std::vector<uint32_t> gates;
        for (const auto n : order)
            if (net.is_gate(n))
                gates.push_back(n);
        if (gates.empty())
            return;
        const auto g = gates[op.gate_pick % gates.size()];
        std::vector<uint32_t> below;
        for (const auto n : order) {
            if (n == g)
                break;
            below.push_back(n);
        }
        if (below.size() < 2)
            continue;
        const auto a = signal{below[op.a_pick % below.size()], op.a_compl};
        const auto b = signal{below[op.b_pick % below.size()], op.b_compl};
        const auto r = op.is_and ? net.create_and(a, b) : net.create_xor(a, b);
        if (r.node() == g || net.is_dead(g))
            continue;
        net.substitute(g, r);
    }
}

TEST(evaluate_differential, randomized_surgery_fuzz)
{
    std::mt19937_64 rng{2026};
    for (const uint32_t threads : {0u, 1u, 2u, 8u}) {
        for (int trial = 0; trial < 4; ++trial) {
            rewrite_params p_inc;
            p_inc.num_threads = threads;
            rewrite_params p_full;
            p_full.num_threads = threads;
            p_full.incremental_evaluate = false;
            pass_context ctx_inc, ctx_full;
            auto net_inc =
                random_network(5000 + trial, 6 + trial % 5, 90, 5);
            auto net_full = net_inc;
            for (int round = 0; round < 4; ++round) {
                const auto plan =
                    surgery_plan(rng, 1 + static_cast<int>(rng() % 5));
                apply_surgery(net_inc, plan);
                apply_surgery(net_full, plan);
                ASSERT_EQ(serialize(net_inc), serialize(net_full))
                    << "surgery diverged: threads " << threads << " trial "
                    << trial << " round " << round;
                const auto si = mc_rewrite_round(net_inc, ctx_inc, p_inc);
                const auto sf = mc_rewrite_round(net_full, ctx_full, p_full);
                ASSERT_EQ(serialize(net_inc), serialize(net_full))
                    << "threads " << threads << " trial " << trial
                    << " round " << round;
                EXPECT_EQ(si.replacements, sf.replacements)
                    << "threads " << threads << " trial " << trial
                    << " round " << round;
                EXPECT_LE(si.nodes_evaluated, sf.nodes_evaluated)
                    << "threads " << threads << " trial " << trial
                    << " round " << round;
            }
        }
    }
}

// ------------------------------------------------ steady-state quiescence

TEST(evaluate_cache, steady_state_evaluates_nothing)
{
    for (const uint32_t threads : {0u, 2u}) {
        rewrite_params p;
        p.num_threads = threads;
        pass_context ctx;
        auto net = gen_adder(64);
        bool converged = false;
        bool measured = false;
        for (int r = 0; r < 8; ++r) {
            const auto stats = mc_rewrite_round(net, ctx, p);
            if (converged) {
                EXPECT_EQ(stats.nodes_evaluated, 0u)
                    << threads << " threads";
                EXPECT_GT(stats.nodes_clean, 0u) << threads << " threads";
                measured = true;
                break;
            }
            if (stats.replacements == 0)
                converged = true;
        }
        EXPECT_TRUE(measured)
            << threads << " threads: adder64 did not converge in 8 rounds";
    }
}

TEST(evaluate_cache, full_mode_reports_no_clean_nodes)
{
    rewrite_params p;
    p.incremental_evaluate = false;
    pass_context ctx;
    auto net = gen_adder(32);
    for (int r = 0; r < 3; ++r) {
        const auto stats = mc_rewrite_round(net, ctx, p);
        EXPECT_EQ(stats.nodes_clean, 0u) << "round " << r;
        EXPECT_GT(stats.nodes_evaluated, 0u) << "round " << r;
    }
}

} // namespace
} // namespace mcx
