// Incremental cut maintenance (src/cut/cut_incremental.h): the maintainer
// must be an invisible optimization — byte-identical cut sets to a full
// re-enumeration after arbitrary network surgery, clean nodes provably
// untouched (arena generation tags), and flow outputs byte-identical
// between incremental and full-rebuild modes for every engine and thread
// count.  The scalar seed path rides along as a second oracle: its cut
// sets AND its stat counters must match the word-parallel path 1:1.
#include "core/fault_inject.h"
#include "core/flow.h"
#include "cut/cut_incremental.h"
#include "gen/aes.h"
#include "gen/arithmetic.h"
#include "gen/control.h"
#include "gen/des.h"
#include "gen/lightweight.h"
#include "io/bench.h"
#include "xag/cleanup.h"
#include "xag/verify.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

namespace mcx {
namespace {

xag random_network(uint64_t seed, int pis = 8, int gates = 120, int pos = 4)
{
    std::mt19937_64 rng{seed};
    xag net;
    std::vector<signal> pool;
    for (int i = 0; i < pis; ++i)
        pool.push_back(net.create_pi());
    for (int i = 0; i < gates; ++i) {
        const auto a = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        const auto b = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        pool.push_back((rng() & 1) ? net.create_and(a, b)
                                   : net.create_xor(a, b));
    }
    for (int i = 0; i < pos && i < static_cast<int>(pool.size()); ++i)
        net.create_po(pool[pool.size() - 1 - i]);
    return net;
}

void expect_identical_cut_sets(const cut_sets& got, const cut_sets& want,
                               const char* what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (uint32_t n = 0; n < want.size(); ++n) {
        const auto g = got[n];
        const auto w = want[n];
        ASSERT_EQ(g.size(), w.size()) << what << ": node " << n;
        for (size_t c = 0; c < w.size(); ++c) {
            ASSERT_EQ(g[c].num_leaves, w[c].num_leaves)
                << what << ": node " << n << " cut " << c;
            ASSERT_TRUE(std::equal(g[c].leaves.begin(),
                                   g[c].leaves.begin() + g[c].num_leaves,
                                   w[c].leaves.begin()))
                << what << ": node " << n << " cut " << c;
            ASSERT_EQ(g[c].function, w[c].function)
                << what << ": node " << n << " cut " << c;
            ASSERT_EQ(g[c].signature, w[c].signature)
                << what << ": node " << n << " cut " << c;
        }
    }
}

/// Random semantics-agnostic surgery: substitute a random gate with a
/// fresh gate built over nodes strictly below it (cut maintenance cares
/// about structure, not functions — and "below" keeps the DAG acyclic).
void random_surgery(xag& net, std::mt19937_64& rng, int operations)
{
    for (int op = 0; op < operations; ++op) {
        const auto order = net.topological_order();
        std::vector<uint32_t> gates;
        std::vector<uint32_t> below;
        for (const auto n : order) {
            if (net.is_gate(n))
                gates.push_back(n);
        }
        if (gates.empty())
            return;
        const auto g = gates[rng() % gates.size()];
        for (const auto n : order) {
            if (n == g)
                break;
            below.push_back(n);
        }
        if (below.size() < 2)
            continue;
        const auto a =
            signal{below[rng() % below.size()], (rng() & 1) != 0};
        const auto b =
            signal{below[rng() % below.size()], (rng() & 1) != 0};
        const auto r =
            (rng() & 1) ? net.create_and(a, b) : net.create_xor(a, b);
        if (r.node() == g || net.is_dead(g))
            continue;
        net.substitute(g, r);
    }
}

// ------------------------------------------------- arena generation tags

TEST(cut_arena_incremental, update_and_generation_tags)
{
    cut_sets sets;
    sets.reset(3);
    const auto gen0 = sets.generation();
    const auto c1 = trivial_cut(1);
    const auto c2 = trivial_cut(2);
    sets.assign(1, {&c1, 1});
    sets.assign(2, {&c2, 1});
    EXPECT_EQ(sets.total_cuts(), 2u);
    EXPECT_EQ(sets.node_generation(1), gen0);

    sets.begin_update(4);
    EXPECT_GT(sets.generation(), gen0);
    const cut cs[2] = {trivial_cut(1), trivial_cut(3)};
    sets.update(3, {cs, 2});
    EXPECT_EQ(sets.total_cuts(), 4u);
    EXPECT_EQ(sets.node_generation(1), gen0) << "untouched span re-stamped";
    EXPECT_EQ(sets.node_generation(3), sets.generation());

    // Replacing a span strands its old cuts as pool garbage…
    sets.update(2, {cs, 2});
    EXPECT_EQ(sets.total_cuts(), 5u);
    EXPECT_GT(sets.pool_size(), sets.total_cuts());
    // …and compaction reclaims it without touching contents or tags.
    sets.clear_node(3);
    while (!sets.should_compact())
        sets.update(2, {cs, 2});
    const auto gen1 = sets.node_generation(1);
    sets.compact();
    EXPECT_EQ(sets.pool_size(), sets.total_cuts());
    EXPECT_EQ(sets.node_generation(1), gen1);
    ASSERT_EQ(sets[2].size(), 2u);
    EXPECT_EQ(sets[2][1].leaves[0], 3u);
    EXPECT_EQ(sets[3].size(), 0u);
}

// ------------------------------------------------ maintainer unit behavior

TEST(cut_maintainer, quiescent_refresh_reenumerates_nothing)
{
    auto net = random_network(17);
    cut_maintainer maint;
    cut_sets sets;
    cut_enumeration_stats stats;
    EXPECT_FALSE(maint.refresh(net, sets, {}, &stats)); // first: full
    EXPECT_GT(stats.reenumerated_nodes, 0u);
    EXPECT_EQ(stats.clean_nodes, 0u);
    const auto total = stats.total_cuts;

    // Nothing changed: the second refresh is incremental and touches no
    // gate at all.
    EXPECT_TRUE(maint.refresh(net, sets, {}, &stats));
    EXPECT_EQ(stats.reenumerated_nodes, 0u);
    EXPECT_GT(stats.clean_nodes, 0u);
    EXPECT_EQ(stats.merged_pairs, 0u);
    EXPECT_EQ(stats.total_cuts, total);
    expect_identical_cut_sets(sets, enumerate_cuts(net), "quiescent");
}

TEST(cut_maintainer, dirty_region_only_and_clean_spans_kept)
{
    auto net = random_network(23, 8, 150, 6);
    cut_maintainer maint;
    cut_sets sets;
    maint.refresh(net, sets, {});
    const auto build_gen = sets.generation();

    std::mt19937_64 rng{5};
    random_surgery(net, rng, 3);

    cut_enumeration_stats stats;
    EXPECT_TRUE(maint.refresh(net, sets, {}, &stats));
    EXPECT_GT(stats.clean_nodes, 0u) << "surgery dirtied the whole network";
    expect_identical_cut_sets(sets, enumerate_cuts(net), "post-surgery");

    // Clean gates kept their spans: generation tag still from the build.
    // (>=: a re-enumerated gate whose result came out identical also keeps
    // its span — that is the change-propagation cutoff working.)
    uint64_t kept = 0;
    for (const auto n : net.topological_order())
        if (net.is_gate(n) && sets.node_generation(n) == build_gen)
            ++kept;
    EXPECT_GE(kept, stats.clean_nodes);
    EXPECT_GT(kept, 0u);
}

TEST(cut_maintainer, single_substitution_stays_local)
{
    // One substitution in the middle of a 64-bit adder must not ripple a
    // re-enumeration across the network: priority cuts reach only a
    // bounded distance down, so recomputed sets stabilize (compare equal)
    // a few levels above the change and propagation stops.
    auto net = gen_adder(64);
    cut_maintainer maint;
    cut_sets sets;
    maint.refresh(net, sets, {});

    const auto order = net.topological_order();
    uint32_t g = 0;
    int seen = 0;
    for (const auto n : order)
        if (net.is_gate(n) && ++seen == 180) {
            g = n;
            break;
        }
    // Replacement over PIs only: its cone can never contain g.
    const auto r = net.create_and(signal{net.pi_at(3), false},
                                  signal{net.pi_at(60), true});
    ASSERT_NE(r.node(), g);
    net.substitute(g, r);

    cut_enumeration_stats stats;
    ASSERT_TRUE(maint.refresh(net, sets, {}, &stats));
    EXPECT_GT(stats.reenumerated_nodes, 0u);
    EXPECT_LT(stats.reenumerated_nodes, 40u)
        << "a local change re-enumerated "
        << stats.reenumerated_nodes << " nodes";
    EXPECT_GT(stats.clean_nodes, 250u);
    expect_identical_cut_sets(sets, enumerate_cuts(net), "local change");
}

TEST(cut_maintainer, broken_journal_forces_full_rebuild)
{
    auto net = random_network(29);
    cut_maintainer maint;
    cut_sets sets;
    maint.refresh(net, sets, {});

    // An untracked mutation (journal disarmed, as any non-maintainer user
    // of the network would leave it) must not be trusted incrementally.
    net.disarm_change_log();
    std::mt19937_64 rng{7};
    random_surgery(net, rng, 2);
    cut_enumeration_stats stats;
    EXPECT_FALSE(maint.refresh(net, sets, {}, &stats));
    EXPECT_EQ(stats.clean_nodes, 0u);
    expect_identical_cut_sets(sets, enumerate_cuts(net), "after disarm");

    // Changed parameters invalidate, too.
    EXPECT_FALSE(maint.refresh(net, sets, {.cut_size = 4}, &stats));
    expect_identical_cut_sets(sets, enumerate_cuts(net, {.cut_size = 4}),
                              "after param change");

    // Replacing the network object (cleanup) breaks the armed journal.
    net = cleanup(net);
    EXPECT_FALSE(maint.refresh(net, sets, {}, &stats));
    expect_identical_cut_sets(sets, enumerate_cuts(net), "after cleanup");

    // A foreign writer into the arena (a direct enumerate_cuts bypassing
    // the maintainer) bumps the arena generation: not trusted either.
    EXPECT_TRUE(maint.refresh(net, sets, {}, &stats));
    enumerate_cuts(net, sets);
    EXPECT_FALSE(maint.refresh(net, sets, {}, &stats));
    EXPECT_EQ(stats.clean_nodes, 0u);
}

TEST(cut_maintainer, journal_overflow_bounds_memory_and_forces_rebuild)
{
    // The journal caps at a multiple of the node count.  Gate creation
    // grows the cap alongside the journal, so the unbounded case is entry
    // growth *without* node growth (here: PO churn; in the wild, repeated
    // substitutions among existing nodes) — it must flip the log to
    // overflowed: bounded memory, full rebuild, correct sets.
    auto net = random_network(41, 6, 40, 4);
    cut_maintainer maint;
    cut_sets sets;
    maint.refresh(net, sets, {});
    ASSERT_TRUE(net.changes().armed);

    const auto a = signal{net.pi_at(0), false};
    for (uint64_t i = 0; i < (1u << 21) && !net.changes().overflowed; ++i)
        net.create_po(a);
    ASSERT_TRUE(net.changes().overflowed);
    EXPECT_TRUE(net.changes().nodes.empty()) << "overflow must release";

    cut_enumeration_stats stats;
    EXPECT_FALSE(maint.refresh(net, sets, {}, &stats))
        << "overflowed journal must not be trusted";
    EXPECT_EQ(stats.clean_nodes, 0u);
    expect_identical_cut_sets(sets, enumerate_cuts(net), "after overflow");
    EXPECT_FALSE(net.changes().overflowed) << "re-arm clears the flag";
}

TEST(cut_maintainer, injected_journal_overflow_forces_full_rebuild)
{
    // The fault-injection site rides the real degradation path: an armed
    // journal-overflow fault makes the next journaled change flip the log
    // to overflowed (flag set, memory released) exactly like organic entry
    // growth — and the following refresh must fall back to a full rebuild
    // with oracle-identical sets.
    auto net = random_network(43);
    cut_maintainer maint;
    cut_sets sets;
    maint.refresh(net, sets, {});
    ASSERT_TRUE(net.changes().armed);

    fault_injection::arm(fault_site::journal_overflow);
    std::mt19937_64 rng{9};
    random_surgery(net, rng, 3);
    fault_injection::disarm_all();
    ASSERT_TRUE(net.changes().overflowed);
    EXPECT_TRUE(net.changes().nodes.empty()) << "overflow must release";

    cut_enumeration_stats stats;
    EXPECT_FALSE(maint.refresh(net, sets, {}, &stats));
    EXPECT_EQ(stats.clean_nodes, 0u);
    expect_identical_cut_sets(sets, enumerate_cuts(net),
                              "after injected overflow");
    EXPECT_FALSE(net.changes().overflowed) << "re-arm clears the flag";
}

TEST(cut_maintainer, stopped_token_invalidates_half_done_refresh)
{
    auto net = random_network(47);
    cut_maintainer maint;
    cut_sets sets;
    cancellation_source src;
    src.request();
    EXPECT_THROW(
        maint.refresh(net, sets, {}, nullptr, nullptr, src.token()),
        cancelled_error);
    // The maintainer invalidated itself before unwinding: the next
    // ungoverned refresh is a full rebuild with oracle-identical sets.
    cut_enumeration_stats stats;
    EXPECT_FALSE(maint.refresh(net, sets, {}, &stats));
    EXPECT_EQ(stats.clean_nodes, 0u);
    expect_identical_cut_sets(sets, enumerate_cuts(net), "after cancel");
}

TEST(cut_maintainer, oracle_mode_always_full)
{
    auto net = random_network(31);
    cut_maintainer maint;
    cut_sets sets;
    cut_enumeration_stats stats;
    EXPECT_FALSE(maint.refresh(net, sets, {.incremental = false}, &stats));
    EXPECT_FALSE(net.changes().armed);
    EXPECT_FALSE(maint.refresh(net, sets, {.incremental = false}, &stats));
    EXPECT_EQ(stats.clean_nodes, 0u);
}

// -------------------------------- randomized differential fuzz (tentpole)

/// Maintained sets after random surgery must equal BOTH full oracles —
/// word-parallel and scalar — node for node, and the two oracles must
/// agree on every stat counter (the duplicate/eviction symmetry fix).
TEST(incremental_differential, randomized_surgery_fuzz)
{
    std::mt19937_64 rng{2026};
    for (int trial = 0; trial < 12; ++trial) {
        auto net = random_network(1000 + trial, 6 + trial % 5,
                                  80 + 10 * (trial % 7), 5);
        const cut_enumeration_params params{
            .cut_size = trial % 5 == 0 ? 4u : 6u,
            .cut_limit = trial % 3 == 0 ? 6u : 12u};
        cut_maintainer maint;
        cut_sets sets;
        maint.refresh(net, sets, params);
        for (int round = 0; round < 4; ++round) {
            random_surgery(net, rng, 1 + static_cast<int>(rng() % 5));
            cut_enumeration_stats inc_stats;
            maint.refresh(net, sets, params, &inc_stats);

            cut_enumeration_stats full_stats;
            const auto full = enumerate_cuts(net, params, &full_stats);
            expect_identical_cut_sets(sets, full, "vs word-parallel oracle");
            EXPECT_EQ(inc_stats.total_cuts, full_stats.total_cuts)
                << "trial " << trial << " round " << round;

            auto scalar_params = params;
            scalar_params.word_parallel = false;
            cut_enumeration_stats scalar_stats;
            const auto scalar =
                enumerate_cuts(net, scalar_params, &scalar_stats);
            expect_identical_cut_sets(sets, scalar, "vs scalar oracle");

            // Counter parity between the seed path and the fast path.
            EXPECT_EQ(full_stats.merged_pairs, scalar_stats.merged_pairs);
            EXPECT_EQ(full_stats.duplicate_cuts,
                      scalar_stats.duplicate_cuts);
            EXPECT_EQ(full_stats.dominated_cuts,
                      scalar_stats.dominated_cuts);
            EXPECT_EQ(full_stats.evicted_cuts, scalar_stats.evicted_cuts);
            EXPECT_EQ(full_stats.total_cuts, scalar_stats.total_cuts);
        }
    }
}

// --------------------------- flow-level differential (generator families)

/// Optimize through a flow and return (serialized network, replacements).
std::pair<std::string, uint64_t> optimize(xag net, uint32_t threads,
                                          bool incremental,
                                          flow_params params = {},
                                          const char* spec = "mc")
{
    params.num_threads = threads;
    params.rewrite.incremental_cuts = incremental;
    params.size_rewrite.incremental_cuts = incremental;
    pass_context ctx{context_params(params)};
    const auto result = run_flow(net, make_flow(spec, params), ctx);
    uint64_t replacements = 0;
    for (const auto& p : result.passes)
        for (const auto& r : p.rounds)
            replacements += r.replacements;
    std::ostringstream os;
    write_bench(cleanup(net), os);
    return {os.str(), replacements};
}

/// Incremental maintenance must be invisible: identical networks and
/// replacement counts vs. the full-rebuild oracle, for the sequential
/// in-place engine (threads = 0) and the two-phase engine at 1/2/8
/// workers.
void expect_incremental_invariant(const xag& source, const char* what,
                                  flow_params params = {},
                                  const char* spec = "mc")
{
    const auto golden = cleanup(source);
    const auto [full0, repl_full0] =
        optimize(cleanup(source), 0, false, params, spec);
    const auto [inc0, repl_inc0] =
        optimize(cleanup(source), 0, true, params, spec);
    EXPECT_EQ(inc0, full0) << what << ": sequential engine diverged";
    EXPECT_EQ(repl_inc0, repl_full0) << what;

    const auto [full1, repl_full1] =
        optimize(cleanup(source), 1, false, params, spec);
    for (const uint32_t threads : {1u, 2u, 8u}) {
        const auto [inc, repl] =
            optimize(cleanup(source), threads, true, params, spec);
        EXPECT_EQ(inc, full1)
            << what << ": " << threads << " threads diverged";
        EXPECT_EQ(repl, repl_full1) << what << ": " << threads << " threads";
    }

    // And the deterministic result is still the right function.
    std::istringstream is{full1};
    const auto reparsed = read_bench(is);
    if (golden.num_pis() <= 16)
        EXPECT_TRUE(exhaustive_equal(reparsed, golden)) << what;
    else
        EXPECT_TRUE(random_simulation_equal(reparsed, golden, 16)) << what;
}

TEST(incremental_differential, arithmetic_family)
{
    expect_incremental_invariant(gen_adder(16), "adder16");
    expect_incremental_invariant(gen_multiplier(4), "multiplier4");
}

TEST(incremental_differential, control_family)
{
    expect_incremental_invariant(gen_decoder(4), "decoder4");
    expect_incremental_invariant(gen_voter(7), "voter7");
}

TEST(incremental_differential, aes_family)
{
    xag net;
    std::array<signal, 8> in;
    for (auto& s : in)
        s = net.create_pi();
    for (const auto s : aes_sbox_circuit(net, in))
        net.create_po(s);
    expect_incremental_invariant(net, "aes-sbox");
}

TEST(incremental_differential, des_family)
{
    expect_incremental_invariant(gen_des(1), "des1");
}

TEST(incremental_differential, lightweight_family)
{
    expect_incremental_invariant(gen_simon(16, 4), "simon16x4");
    expect_incremental_invariant(gen_keccak_f(8), "keccak8");
}

TEST(incremental_differential, size_baseline_engine)
{
    expect_incremental_invariant(gen_adder(12), "size-adder12", {},
                                 "size-baseline");
}

TEST(incremental_differential, incremental_engages_across_foreign_pass)
{
    // In an iterated mc+xor flow, the xor pass mutates the network between
    // two mc passes while the journal is armed — the second mc pass's
    // first round must still refresh incrementally (the journal captured
    // the foreign pass's changes), not fall back to a full rebuild.
    auto net = gen_adder(16);
    flow_params params;
    params.iterate_until_convergence = true;
    pass_context ctx{context_params(params)};
    run_flow(net, make_flow("mc+xor", params), ctx);

    int mc_passes = 0;
    for (const auto& p : ctx.history) {
        if (p.pass_name != "mc-rewrite" || p.rounds.empty())
            continue;
        ++mc_passes;
        const auto& first = p.rounds.front().cut_stats;
        if (mc_passes == 1)
            EXPECT_FALSE(first.incremental) << "no journal before round 1";
        else
            EXPECT_TRUE(first.incremental)
                << "mc pass " << mc_passes
                << " fell back to a full rebuild across the xor pass";
        // Later rounds of any mc pass are always incremental.
        for (size_t r = 1; r < p.rounds.size(); ++r)
            EXPECT_TRUE(p.rounds[r].cut_stats.incremental);
    }
    EXPECT_GE(mc_passes, 2) << "flow never iterated into a second mc pass";
}

TEST(incremental_differential, iterated_flow_across_passes)
{
    // `--iterate mc+xor`: the xor pass mutates the network between mc
    // passes *while the journal is armed*, so the next mc round updates
    // incrementally across a foreign pass's changes; the cleanup-style
    // object replacement inside the flow engine must fall back to a full
    // rebuild.  Either way: byte-identical to the oracle.
    flow_params params;
    params.iterate_until_convergence = true;
    expect_incremental_invariant(gen_adder(12), "iterated-adder12", params,
                                 "mc+xor");
    expect_incremental_invariant(gen_comparator_lt_unsigned(6),
                                 "iterated-cmp6", params, "mc+xor+cleanup");
}

TEST(incremental_differential, incremental_actually_skips_work)
{
    // The bench gate's (incremental_round, ci.sh) unit-level twin.  Round
    // 1 rebuilds everything; round 2 reuses whatever survived round 1's
    // replacements; and once a round commits nothing, the next refresh
    // re-enumerates *zero* nodes — the steady-state payoff.
    auto net = gen_adder(64);
    pass_context ctx;
    rewrite_params params; // incremental_cuts defaults on
    const auto r1 = mc_rewrite_round(net, ctx, params);
    ASSERT_GT(r1.replacements, 0u);
    EXPECT_EQ(r1.cut_stats.clean_nodes, 0u); // first refresh is full

    const auto r2 = mc_rewrite_round(net, ctx, params);
    EXPECT_GT(r2.cut_stats.clean_nodes, 0u);

    ASSERT_EQ(r2.replacements, 0u) << "adder64 converges in two rounds";
    const auto r3 = mc_rewrite_round(net, ctx, params);
    EXPECT_EQ(r3.cut_stats.reenumerated_nodes, 0u);
    EXPECT_EQ(r3.cut_stats.merged_pairs, 0u);
    EXPECT_GT(r3.cut_stats.clean_nodes, 0u);
    EXPECT_EQ(r3.cut_stats.total_cuts, r2.cut_stats.total_cuts);
}

} // namespace
} // namespace mcx
