#include "db/mc_database.h"
#include "db/size_database.h"
#include "spectral/classification.h"
#include "xag/simulate.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace mcx {
namespace {

TEST(serialization, single_output_roundtrip)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    net.create_po(!net.create_xor(net.create_and(a, !b), c));

    const auto text = serialize_single_output(net);
    const auto back = deserialize_single_output(text);
    EXPECT_EQ(back.num_pis(), 3u);
    EXPECT_EQ(simulate(back), simulate(net));
}

TEST(serialization, rejects_malformed)
{
    EXPECT_THROW(deserialize_single_output(""), std::invalid_argument);
    EXPECT_THROW(deserialize_single_output("2 1 q 2 4 2"),
                 std::invalid_argument);
    EXPECT_THROW(deserialize_single_output("2 1 a 2 99 2"),
                 std::invalid_argument);
}

TEST(mc_database_suite, lazily_builds_optimal_entries)
{
    mc_database db;
    // Majority representative: must cost exactly one AND (paper Ex. 3.1).
    const auto maj = truth_table{3, 0xe8};
    const auto cls = classify_affine(maj);
    ASSERT_TRUE(cls.success);
    const auto& e = db.lookup_or_build(cls.representative);
    EXPECT_EQ(e.num_ands, 1u);
    EXPECT_TRUE(e.optimal);
    EXPECT_EQ(simulate(e.circuit)[0], cls.representative);
    EXPECT_EQ(db.size(), 1u);
    // Second lookup is a cache hit.
    db.lookup_or_build(cls.representative);
    EXPECT_EQ(db.size(), 1u);
}

TEST(mc_database_suite, save_and_load_roundtrip)
{
    mc_database db;
    std::mt19937_64 rng{51};
    std::vector<truth_table> reps;
    for (int i = 0; i < 5; ++i) {
        truth_table f{4};
        f.words()[0] = rng() & tt_mask(4);
        const auto cls = classify_affine(f, {.iteration_limit = 2'000'000});
        if (!cls.success)
            continue;
        reps.push_back(cls.representative);
        db.lookup_or_build(cls.representative);
    }
    std::stringstream buffer;
    db.save(buffer);
    auto loaded = mc_database::load(buffer);
    EXPECT_EQ(loaded.size(), db.size());
    for (const auto& r : reps) {
        const auto& e = loaded.lookup_or_build(r);
        EXPECT_EQ(simulate(e.circuit)[0], r);
    }
}

TEST(mc_database_suite, heuristic_fallback_without_exact)
{
    mc_database db{{.use_exact = false}};
    const auto cls = classify_affine(truth_table{3, 0xe8});
    ASSERT_TRUE(cls.success);
    const auto& e = db.lookup_or_build(cls.representative);
    EXPECT_FALSE(e.optimal);
    EXPECT_EQ(simulate(e.circuit)[0], cls.representative);
    EXPECT_EQ(db.exact_entries(), 0u);
    EXPECT_EQ(db.heuristic_entries(), 1u);
}

TEST(size_database_suite, builds_minimal_entries)
{
    size_database db;
    // The AND/OR NPN class costs a single gate.
    const truth_table and2{2, 0x8};
    const auto& e = db.lookup_or_build(and2);
    EXPECT_EQ(e.num_gates, 1u);
    EXPECT_TRUE(e.optimal);
    EXPECT_EQ(simulate(e.circuit)[0], and2);
}

} // namespace
} // namespace mcx
