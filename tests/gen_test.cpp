#include "gen/aes.h"
#include "gen/arithmetic.h"
#include "gen/control.h"
#include "gen/des.h"
#include "gen/hashes.h"
#include "gen/word_ops.h"
#include "xag/simulate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>

namespace mcx {
namespace {

/// Simulate a network on one assignment given as value words per PI group.
std::vector<bool> run(const xag& net, const std::vector<bool>& inputs)
{
    return simulate_pattern(net, inputs);
}

std::vector<bool> bits_of(uint64_t value, uint32_t width)
{
    std::vector<bool> b(width);
    for (uint32_t i = 0; i < width; ++i)
        b[i] = (value >> i) & 1;
    return b;
}

uint64_t value_of(const std::vector<bool>& bits, uint32_t offset,
                  uint32_t width)
{
    uint64_t v = 0;
    for (uint32_t i = 0; i < width; ++i)
        if (bits[offset + i])
            v |= uint64_t{1} << i;
    return v;
}

TEST(gen_arithmetic, adder_matches_integers)
{
    const auto net = gen_adder(8);
    std::mt19937_64 rng{61};
    for (int rep = 0; rep < 50; ++rep) {
        const uint64_t a = rng() & 0xff, b = rng() & 0xff;
        auto in = bits_of(a, 8);
        const auto bb = bits_of(b, 8);
        in.insert(in.end(), bb.begin(), bb.end());
        const auto out = run(net, in);
        EXPECT_EQ(value_of(out, 0, 9), a + b);
    }
}

TEST(gen_arithmetic, barrel_shifter_rotates)
{
    const auto net = gen_barrel_shifter(16);
    std::mt19937_64 rng{62};
    for (int rep = 0; rep < 30; ++rep) {
        const uint64_t data = rng() & 0xffff;
        const uint32_t amount = rng() % 16;
        auto in = bits_of(data, 16);
        const auto ab = bits_of(amount, 4);
        in.insert(in.end(), ab.begin(), ab.end());
        const auto out = run(net, in);
        const uint64_t expected =
            ((data << amount) | (data >> (16 - amount))) & 0xffff;
        EXPECT_EQ(value_of(out, 0, 16), amount ? expected : data);
    }
}

TEST(gen_arithmetic, divisor_matches_integers)
{
    const auto net = gen_divisor(8);
    std::mt19937_64 rng{63};
    for (int rep = 0; rep < 60; ++rep) {
        const uint64_t a = rng() & 0xff;
        const uint64_t b = 1 + (rng() % 255);
        auto in = bits_of(a, 8);
        const auto bb = bits_of(b, 8);
        in.insert(in.end(), bb.begin(), bb.end());
        const auto out = run(net, in);
        EXPECT_EQ(value_of(out, 0, 8), a / b) << a << "/" << b;
        EXPECT_EQ(value_of(out, 8, 8), a % b) << a << "%" << b;
    }
}

TEST(gen_arithmetic, multiplier_and_square)
{
    const auto mul = gen_multiplier(7);
    const auto squ = gen_square(7);
    std::mt19937_64 rng{64};
    for (int rep = 0; rep < 40; ++rep) {
        const uint64_t a = rng() & 0x7f, b = rng() & 0x7f;
        auto in = bits_of(a, 7);
        const auto bb = bits_of(b, 7);
        in.insert(in.end(), bb.begin(), bb.end());
        EXPECT_EQ(value_of(run(mul, in), 0, 14), a * b);
        EXPECT_EQ(value_of(run(squ, bits_of(a, 7)), 0, 14), a * a);
    }
}

TEST(gen_arithmetic, sqrt_matches_integers)
{
    const auto net = gen_sqrt(12);
    std::mt19937_64 rng{65};
    for (int rep = 0; rep < 50; ++rep) {
        const uint64_t x = rng() & 0xfff;
        const auto out = run(net, bits_of(x, 12));
        EXPECT_EQ(value_of(out, 0, 6),
                  static_cast<uint64_t>(std::sqrt(static_cast<double>(x))));
    }
}

TEST(gen_arithmetic, max_of_four)
{
    const auto net = gen_max(8, 4);
    std::mt19937_64 rng{66};
    for (int rep = 0; rep < 30; ++rep) {
        std::vector<bool> in;
        uint64_t expected = 0;
        for (int w = 0; w < 4; ++w) {
            const uint64_t v = rng() & 0xff;
            expected = std::max(expected, v);
            const auto vb = bits_of(v, 8);
            in.insert(in.end(), vb.begin(), vb.end());
        }
        EXPECT_EQ(value_of(run(net, in), 0, 8), expected);
    }
}

TEST(gen_arithmetic, comparators_match)
{
    const auto ltu = gen_comparator_lt_unsigned(8);
    const auto leu = gen_comparator_leq_unsigned(8);
    const auto lts = gen_comparator_lt_signed(8);
    const auto les = gen_comparator_leq_signed(8);
    std::mt19937_64 rng{67};
    for (int rep = 0; rep < 60; ++rep) {
        const uint64_t a = rng() & 0xff, b = rng() & 0xff;
        auto in = bits_of(a, 8);
        const auto bb = bits_of(b, 8);
        in.insert(in.end(), bb.begin(), bb.end());
        const auto sa = static_cast<int8_t>(a), sb = static_cast<int8_t>(b);
        EXPECT_EQ(run(ltu, in)[0], a < b);
        EXPECT_EQ(run(leu, in)[0], a <= b);
        EXPECT_EQ(run(lts, in)[0], sa < sb);
        EXPECT_EQ(run(les, in)[0], sa <= sb);
    }
}

TEST(gen_arithmetic, log2_integer_part)
{
    const auto net = gen_log2(16);
    std::mt19937_64 rng{68};
    for (int rep = 0; rep < 40; ++rep) {
        const uint64_t x = 1 + (rng() & 0xfffe);
        const auto out = run(net, bits_of(x, 16));
        const uint64_t ilog =
            static_cast<uint64_t>(std::floor(std::log2(static_cast<double>(x))));
        EXPECT_EQ(value_of(out, 0, 4), ilog) << "x=" << x;
    }
}

TEST(gen_arithmetic, sine_approximates)
{
    const uint32_t bits = 12;
    const auto net = gen_sine(bits);
    for (const double t : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        const auto angle =
            static_cast<uint64_t>(t * std::pow(2.0, bits)); // fraction of pi/2
        const auto out = run(net, bits_of(angle, bits));
        const double measured =
            static_cast<double>(value_of(out, 0, bits)) /
            std::pow(2.0, bits - 2);
        const double expected = std::sin(t * 1.5707963267948966);
        EXPECT_NEAR(measured, expected, 0.02) << "t=" << t;
    }
}

TEST(gen_arithmetic, int2float_smoke)
{
    const auto net = gen_int2float(11, 4, 3);
    // 0 -> all-zero; powers of two -> exponent ramp, zero mantissa.
    EXPECT_EQ(value_of(run(net, bits_of(0, 11)), 0, 8), 0u);
    for (uint32_t p = 0; p < 11; ++p) {
        const auto out = run(net, bits_of(uint64_t{1} << p, 11));
        EXPECT_TRUE(out[0]); // nonzero flag
        EXPECT_EQ(value_of(out, 1, 4), p + 1) << "p=" << p;
        EXPECT_EQ(value_of(out, 5, 3), 0u) << "p=" << p;
    }
    // 0b110 -> exponent of 4, mantissa 100.
    const auto out = run(net, bits_of(0b110, 11));
    EXPECT_EQ(value_of(out, 1, 4), 3u);
    EXPECT_EQ(value_of(out, 5, 3), 0b100u);
}

TEST(gen_control, decoder_one_hot)
{
    const auto net = gen_decoder(4);
    for (uint64_t a = 0; a < 16; ++a) {
        const auto out = run(net, bits_of(a, 4));
        for (uint64_t i = 0; i < 16; ++i)
            EXPECT_EQ(out[i], i == a);
    }
}

TEST(gen_control, priority_encoder_highest_wins)
{
    const auto net = gen_priority_encoder(8);
    std::mt19937_64 rng{69};
    for (int rep = 0; rep < 40; ++rep) {
        const uint64_t req = rng() & 0xff;
        const auto out = run(net, bits_of(req, 8));
        if (req == 0) {
            EXPECT_FALSE(out[3]);
            continue;
        }
        EXPECT_TRUE(out[3]);
        const uint64_t highest = 63 - __builtin_clzll(req);
        EXPECT_EQ(value_of(out, 0, 3), highest);
    }
}

TEST(gen_control, round_robin_arbiter_grants_fairly)
{
    const auto net = gen_round_robin_arbiter(6);
    std::mt19937_64 rng{70};
    for (int rep = 0; rep < 50; ++rep) {
        const uint64_t req = rng() & 0x3f;
        const uint32_t seat = rng() % 6;
        auto in = bits_of(req, 6);
        const auto pb = bits_of(uint64_t{1} << seat, 6);
        in.insert(in.end(), pb.begin(), pb.end());
        const auto out = run(net, in);
        if (req == 0) {
            for (int i = 0; i < 7; ++i)
                EXPECT_FALSE(out[i]);
            continue;
        }
        // Expected: the first request at or after `seat`, cyclically.
        uint32_t winner = seat;
        while (!((req >> winner) & 1))
            winner = (winner + 1) % 6;
        for (uint32_t i = 0; i < 6; ++i)
            EXPECT_EQ(out[i], i == winner) << "req=" << req << " seat=" << seat;
        EXPECT_TRUE(out[6]);
    }
}

TEST(gen_control, voter_is_majority)
{
    const auto net = gen_voter(15);
    std::mt19937_64 rng{71};
    for (int rep = 0; rep < 40; ++rep) {
        const uint64_t v = rng() & 0x7fff;
        const auto out = run(net, bits_of(v, 15));
        EXPECT_EQ(out[0], __builtin_popcountll(v) > 7);
    }
}

TEST(gen_control, structured_generators_build)
{
    const auto alu = gen_alu_control();
    EXPECT_EQ(alu.num_pos(), 26u);
    EXPECT_GT(alu.num_gates(), 0u);

    const auto router = gen_xy_router(15);
    EXPECT_EQ(router.num_pis(), 60u);
    EXPECT_GE(router.num_pos(), 30u);

    const auto rnd = gen_random_control(147, 900, 142, 1);
    EXPECT_EQ(rnd.num_pis(), 147u);
    EXPECT_EQ(rnd.num_pos(), 142u);
    rnd.check_integrity();
}

TEST(gen_aes, sbox_matches_reference_exhaustively)
{
    // Reference spot values from FIPS-197.
    EXPECT_EQ(aes_sbox_reference(0x00), 0x63);
    EXPECT_EQ(aes_sbox_reference(0x01), 0x7c);
    EXPECT_EQ(aes_sbox_reference(0x53), 0xed);

    xag net;
    std::array<signal, 8> in;
    for (auto& s : in)
        s = net.create_pi();
    for (const auto s : aes_sbox_circuit(net, in))
        net.create_po(s);
    const auto tts = simulate(net);
    for (uint32_t x = 0; x < 256; ++x) {
        uint8_t y = 0;
        for (int b = 0; b < 8; ++b)
            y |= static_cast<uint8_t>(tts[b].get_bit(x)) << b;
        ASSERT_EQ(y, aes_sbox_reference(static_cast<uint8_t>(x)))
            << "x=" << x;
    }
    // ~36 AND gates per S-box (tower-field construction).
    EXPECT_LE(net.num_ands(), 40u);
}

TEST(gen_aes, fips197_vector)
{
    const std::array<uint8_t, 16> key{0x00, 0x01, 0x02, 0x03, 0x04, 0x05,
                                      0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
                                      0x0c, 0x0d, 0x0e, 0x0f};
    const std::array<uint8_t, 16> pt{0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                                     0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                                     0xcc, 0xdd, 0xee, 0xff};
    const std::array<uint8_t, 16> expected{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                           0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                           0x70, 0xb4, 0xc5, 0x5a};
    EXPECT_EQ(aes128_encrypt_reference(pt, key), expected);

    const auto net = gen_aes128();
    std::vector<bool> in;
    for (const auto byte : pt)
        for (int b = 0; b < 8; ++b)
            in.push_back((byte >> b) & 1);
    for (const auto byte : key)
        for (int b = 0; b < 8; ++b)
            in.push_back((byte >> b) & 1);
    const auto out = run(net, in);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(value_of(out, 8 * i, 8), expected[i]) << "byte " << i;
}

TEST(gen_des, reference_matches_canonical_vector)
{
    // The classic worked example (appears in many DES tutorials).
    EXPECT_EQ(des_encrypt_reference(0x0123456789ABCDEFull,
                                    0x133457799BBCDFF1ull),
              0x85E813540F0AB405ull);
}

TEST(gen_des, circuit_matches_reference)
{
    const auto net = gen_des();
    std::mt19937_64 rng{72};
    for (int rep = 0; rep < 3; ++rep) {
        const uint64_t pt = rng();
        const uint64_t key = rng();
        std::vector<bool> in;
        // PI order: plaintext bits 1..64 (MSB first), then key bits.
        for (int i = 0; i < 64; ++i)
            in.push_back((pt >> (63 - i)) & 1);
        for (int i = 0; i < 64; ++i)
            in.push_back((key >> (63 - i)) & 1);
        const auto out = run(net, in);
        const auto expected = des_encrypt_reference(pt, key);
        uint64_t got = 0;
        for (int i = 0; i < 64; ++i)
            got |= static_cast<uint64_t>(out[i]) << (63 - i);
        ASSERT_EQ(got, expected);
    }
}

namespace {

std::string hex_digest(const std::vector<bool>& out)
{
    static const char* digits = "0123456789abcdef";
    std::string s;
    for (size_t byte = 0; byte * 8 < out.size(); ++byte) {
        uint32_t v = 0;
        for (int b = 0; b < 8; ++b)
            v |= static_cast<uint32_t>(out[8 * byte + b]) << b;
        s.push_back(digits[v >> 4]);
        s.push_back(digits[v & 0xf]);
    }
    return s;
}

std::vector<bool> block_bits(const std::array<uint8_t, 64>& block)
{
    std::vector<bool> bits;
    for (const auto byte : block)
        for (int b = 0; b < 8; ++b)
            bits.push_back((byte >> b) & 1);
    return bits;
}

} // namespace

TEST(gen_hashes, md5_known_digests)
{
    const auto net = gen_md5();
    const auto empty = pad_single_block({}, false);
    EXPECT_EQ(hex_digest(run(net, block_bits(empty))),
              "d41d8cd98f00b204e9800998ecf8427e");
    const auto abc = pad_single_block({'a', 'b', 'c'}, false);
    EXPECT_EQ(hex_digest(run(net, block_bits(abc))),
              "900150983cd24fb0d6963f7d28e17f72");
}

TEST(gen_hashes, sha1_known_digests)
{
    const auto net = gen_sha1();
    const auto empty = pad_single_block({}, true);
    EXPECT_EQ(hex_digest(run(net, block_bits(empty))),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    const auto abc = pad_single_block({'a', 'b', 'c'}, true);
    EXPECT_EQ(hex_digest(run(net, block_bits(abc))),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(gen_hashes, sha256_known_digests)
{
    const auto net = gen_sha256();
    const auto empty = pad_single_block({}, true);
    EXPECT_EQ(
        hex_digest(run(net, block_bits(empty))),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    const auto abc = pad_single_block({'a', 'b', 'c'}, true);
    EXPECT_EQ(
        hex_digest(run(net, block_bits(abc))),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(gen_sizes, table2_interface_shapes)
{
    // Paper Table 2 interface columns.
    EXPECT_EQ(gen_aes128().num_pis(), 256u);
    EXPECT_EQ(gen_aes128().num_pos(), 128u);
    EXPECT_EQ(gen_des().num_pis(), 128u);
    EXPECT_EQ(gen_des().num_pos(), 64u);
    EXPECT_EQ(gen_des_expanded().num_pis(), 832u);
    EXPECT_EQ(gen_md5().num_pis(), 512u);
    EXPECT_EQ(gen_md5().num_pos(), 128u);
    EXPECT_EQ(gen_sha1().num_pos(), 160u);
    EXPECT_EQ(gen_sha256().num_pos(), 256u);
    EXPECT_EQ(gen_comparator_lt_signed(32).num_pis(), 64u);
}

} // namespace
} // namespace mcx
