#include "gen/arithmetic.h"
#include "io/bench.h"
#include "xag/cleanup.h"
#include "io/bristol.h"
#include "io/verilog.h"
#include "xag/simulate.h"
#include "xag/verify.h"
#include "xag/xag.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace mcx {
namespace {

xag sample_network()
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto g1 = net.create_and(a, !b);
    const auto g2 = net.create_xor(g1, c);
    net.create_po(g2);
    net.create_po(!g1);
    net.create_po(net.get_constant(true));
    return net;
}

xag random_network(uint64_t seed)
{
    std::mt19937_64 rng{seed};
    xag net;
    std::vector<signal> pool;
    for (int i = 0; i < 6; ++i)
        pool.push_back(net.create_pi());
    for (int i = 0; i < 50; ++i) {
        const auto a = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        const auto b = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        pool.push_back((rng() & 1) ? net.create_and(a, b)
                                   : net.create_xor(a, b));
    }
    for (int i = 0; i < 4; ++i)
        net.create_po(pool[pool.size() - 1 - i] ^ ((rng() & 1) != 0));
    return net;
}

TEST(bristol_io, roundtrip_preserves_function)
{
    for (const uint64_t seed : {1u, 2u, 3u}) {
        const auto net = random_network(seed);
        std::stringstream buffer;
        write_bristol(net, buffer);
        const auto back = read_bristol(buffer);
        EXPECT_EQ(back.num_pis(), net.num_pis());
        EXPECT_EQ(back.num_pos(), net.num_pos());
        EXPECT_TRUE(exhaustive_equal(net, back)) << "seed " << seed;
    }
}

TEST(bristol_io, constants_survive)
{
    const auto net = sample_network();
    std::stringstream buffer;
    write_bristol(net, buffer);
    const auto back = read_bristol(buffer);
    EXPECT_TRUE(exhaustive_equal(net, back));
}

TEST(bristol_io, and_count_preserved)
{
    // Bristol export adds INV/EQW but never AND gates: the MPC cost of the
    // exported circuit equals the AND count of the PO-reachable cone.
    const auto net = cleanup(random_network(7));
    std::stringstream buffer;
    write_bristol(net, buffer);
    std::string line;
    uint32_t and_count = 0;
    while (std::getline(buffer, line))
        if (line.find("AND") != std::string::npos)
            ++and_count;
    EXPECT_EQ(and_count, net.num_ands());
}

TEST(bristol_io, rejects_malformed)
{
    std::stringstream bad{"not a circuit"};
    EXPECT_THROW(read_bristol(bad), std::invalid_argument);
    std::stringstream bad2{"1 3\n1 2\n1 1\n\n2 1 0 7 2 AND\n"};
    EXPECT_THROW(read_bristol(bad2), std::invalid_argument);
}

TEST(bristol_io, rejects_malformed_table)
{
    // Every entry must raise a clean std::invalid_argument — no crash, no
    // huge allocation, no silently wrong circuit.
    const struct {
        const char* label;
        const char* text;
    } cases[] = {
        {"empty", ""},
        {"header only", "2 5\n"},
        {"zero wires", "1 0\n1 1\n1 1\n\n"},
        {"allocation bomb wires", "1 99999999999\n1 2\n1 1\n\n"},
        {"inputs exceed wires", "1 3\n1 9\n1 1\n\n2 1 0 1 2 AND\n"},
        {"outputs exceed wires", "1 3\n1 2\n1 9\n\n2 1 0 1 2 AND\n"},
        {"input value bomb", "1 8\n4000000000\n"},
        {"truncated input widths", "1 8\n2 4\n"},
        {"truncated output list", "1 8\n1 4\n2 2\n"},
        {"truncated gate", "1 3\n1 2\n1 1\n\n2 1 0\n"},
        {"missing gate kind", "1 3\n1 2\n1 1\n\n2 1 0 1 2\n"},
        {"bad arity", "1 3\n1 2\n1 1\n\n7 1 0 1 0 1 0 1 0 2 AND\n"},
        {"multi-output gate", "1 4\n1 2\n1 1\n\n2 2 0 1 2 3 AND\n"},
        {"unsupported gate", "1 3\n1 2\n1 1\n\n2 1 0 1 2 MAJ\n"},
        {"input wire out of range", "1 3\n1 2\n1 1\n\n2 1 0 9 2 AND\n"},
        {"output wire out of range", "1 3\n1 2\n1 1\n\n2 1 0 1 9 AND\n"},
        {"use of undefined wire", "2 4\n1 2\n1 1\n\n2 1 0 3 2 AND\n"
                                  "2 1 0 1 3 AND\n"},
    };
    for (const auto& c : cases) {
        std::stringstream is{c.text};
        EXPECT_THROW(read_bristol(is), std::invalid_argument) << c.label;
    }
}

TEST(bench_io, roundtrip_preserves_function)
{
    for (const uint64_t seed : {4u, 5u}) {
        const auto net = random_network(seed);
        std::stringstream buffer;
        write_bench(net, buffer);
        const auto back = read_bench(buffer);
        EXPECT_TRUE(exhaustive_equal(net, back)) << "seed " << seed;
    }
}

TEST(bench_io, reads_classic_gates)
{
    std::stringstream src{R"(
# comment
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
t1 = NAND(a, b)
t2 = NOR(a, c)
t3 = OR(t1, t2, c)
f = XNOR(t3, a)
)"};
    const auto net = read_bench(src);
    EXPECT_EQ(net.num_pis(), 3u);
    EXPECT_EQ(net.num_pos(), 1u);
    // Cross-check one input pattern by hand: a=1,b=1,c=0:
    // t1 = 0, t2 = 0, t3 = 0, f = !(0 ^ 1) = 0.
    EXPECT_FALSE(simulate_pattern(net, {true, true, false})[0]);
}

TEST(bench_io, unresolved_gate_throws)
{
    std::stringstream src{"INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n"};
    EXPECT_THROW(read_bench(src), std::invalid_argument);
}

TEST(bench_io, rejects_malformed_table)
{
    const struct {
        const char* label;
        const char* text;
    } cases[] = {
        {"input missing close paren", "INPUT(a\nOUTPUT(f)\nf = BUFF(a)\n"},
        {"output missing close paren", "INPUT(a)\nOUTPUT(f\nf = BUFF(a)\n"},
        {"gate missing close paren", "INPUT(a)\nOUTPUT(f)\nf = BUFF(a\n"},
        {"gate missing open paren", "INPUT(a)\nOUTPUT(f)\nf = BUFFa)\n"},
        {"parens before equals", "INPUT(a)\nOUTPUT(f)\nf(x) = a\n"},
        {"close before open", "INPUT(a)\nOUTPUT(f)\nf = )BUFF(a\n"},
        {"empty operand list", "INPUT(a)\nOUTPUT(f)\nf = AND()\n"},
        {"empty not", "INPUT(a)\nOUTPUT(f)\nf = NOT()\n"},
        {"bad constant", "INPUT(a)\nOUTPUT(f)\nf = CONST7\n"},
        {"unsupported gate", "INPUT(a)\nINPUT(b)\nOUTPUT(f)\n"
                             "f = MAJ(a, b, a)\n"},
        {"undefined output", "INPUT(a)\nOUTPUT(nope)\nf = BUFF(a)\n"},
        {"combinational cycle", "INPUT(a)\nOUTPUT(f)\n"
                                "f = AND(a, g)\ng = AND(a, f)\n"},
    };
    for (const auto& c : cases) {
        std::stringstream is{c.text};
        EXPECT_THROW(read_bench(is), std::invalid_argument) << c.label;
    }
}

TEST(verilog_io, emits_valid_structure)
{
    const auto net = gen_adder(4);
    std::stringstream buffer;
    write_verilog(net, buffer);
    const auto text = buffer.str();
    EXPECT_NE(text.find("module mcx_circuit"), std::string::npos);
    EXPECT_NE(text.find("endmodule"), std::string::npos);
    EXPECT_NE(text.find(" & "), std::string::npos);
    EXPECT_NE(text.find(" ^ "), std::string::npos);
}

TEST(dot_io, emits_graph)
{
    const auto net = sample_network();
    std::stringstream buffer;
    write_dot(net, buffer);
    const auto text = buffer.str();
    EXPECT_NE(text.find("digraph xag"), std::string::npos);
    EXPECT_NE(text.find("style=dashed"), std::string::npos);
}

} // namespace
} // namespace mcx
