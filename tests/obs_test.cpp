// The observability subsystem (docs/observability.md): metrics registry
// merge semantics under concurrent writers, scoped-trace ring buffers
// (nesting, overflow, drop accounting), the Chrome trace-event writer,
// and the determinism contract — optimizer output is byte-identical with
// tracing/metrics on or off at any thread count.
#include "core/flow.h"
#include "gen/arithmetic.h"
#include "gen/control.h"
#include "io/bench.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xag/cleanup.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace mcx {
namespace {

// --------------------------------------------------------------- metrics

TEST(metrics, concurrent_writers_merge_exactly)
{
    const auto m = obs::register_metric("test.obs.concurrent");
    const uint64_t before = m.value();

    constexpr int num_threads = 8;
    constexpr uint64_t adds_per_thread = 20'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t)
        threads.emplace_back([&] {
            for (uint64_t i = 0; i < adds_per_thread; ++i)
                m.add();
        });
    for (auto& t : threads)
        t.join();

    // Counting is monotone and commutative, so the striped relaxed
    // scheme is exact: every add lands in the merged total.
    EXPECT_EQ(m.value() - before, num_threads * adds_per_thread);
}

TEST(metrics, registration_is_idempotent)
{
    const auto a = obs::register_metric("test.obs.idempotent");
    const auto b = obs::register_metric("test.obs.idempotent");
    const uint64_t before = a.value();
    a.add(3);
    b.add(4);
    // Both handles point at the same cells.
    EXPECT_EQ(a.value() - before, 7u);
    EXPECT_EQ(b.value() - before, 7u);
}

TEST(metrics, default_handle_is_inert)
{
    const obs::metric m;
    EXPECT_FALSE(m.valid());
    m.add(42); // must not crash
    EXPECT_EQ(m.value(), 0u);
}

TEST(metrics, disabled_registry_freezes_totals)
{
    const auto m = obs::register_metric("test.obs.freeze");
    m.add();
    const uint64_t frozen = m.value();
    obs::set_metrics_enabled(false);
    m.add(100);
    EXPECT_EQ(m.value(), frozen);
    obs::set_metrics_enabled(true);
    m.add();
    EXPECT_EQ(m.value(), frozen + 1);
}

TEST(metrics, snapshot_is_sorted_and_complete)
{
    obs::register_metric("test.obs.zzz").add(5);
    obs::register_metric("test.obs.aaa").add(9);
    const auto snap = obs::metrics_snapshot();
    EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end(),
                               [](const auto& a, const auto& b) {
                                   return a.name < b.name;
                               }));
    const auto find = [&](const std::string& name) -> const uint64_t* {
        for (const auto& mv : snap)
            if (mv.name == name)
                return &mv.value;
        return nullptr;
    };
    const auto* aaa = find("test.obs.aaa");
    const auto* zzz = find("test.obs.zzz");
    ASSERT_NE(aaa, nullptr);
    ASSERT_NE(zzz, nullptr);
    EXPECT_GE(*aaa, 9u);
    EXPECT_GE(*zzz, 5u);
}

TEST(metrics, process_stats_are_sane)
{
    const auto stats = obs::read_process_stats();
#if defined(__linux__)
    EXPECT_GT(stats.peak_rss_bytes, 0u);
#endif
    EXPECT_GE(stats.cpu_seconds, 0.0);
    EXPECT_GE(stats.wall_seconds, 0.0);
}

TEST(metrics, progress_state_roundtrip)
{
    obs::set_progress_pass("mc-rewrite");
    obs::set_progress_round(3);
    const auto [pass, round] = obs::progress_state();
    EXPECT_STREQ(pass, "mc-rewrite");
    EXPECT_EQ(round, 3u);
    obs::set_progress_pass(nullptr);
    obs::set_progress_round(0);
}

// --------------------------------------------------------------- tracing

TEST(tracing, spans_record_nesting_and_lanes)
{
    obs::trace::clear();
    obs::trace::enable();
    {
        const obs::trace::trace_span outer{"test.outer"};
        {
            obs::trace::trace_span inner{"test.inner"};
            inner.set_arg(17);
        }
        obs::trace::instant("test.marker");
    }
    std::thread worker{[] {
        obs::trace::set_lane(2);
        const obs::trace::trace_span s{"test.worker-span"};
    }};
    worker.join();
    obs::trace::disable();

    const auto events = obs::trace::collect();
    const auto find = [&](const std::string& name) -> const
        obs::trace::trace_event* {
        for (const auto& ev : events)
            if (name == ev.name)
                return &ev;
        return nullptr;
    };
    const auto* outer = find("test.outer");
    const auto* inner = find("test.inner");
    const auto* marker = find("test.marker");
    const auto* lane2 = find("test.worker-span");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(marker, nullptr);
    ASSERT_NE(lane2, nullptr);

    // RAII gives proper containment, instants zero duration.
    EXPECT_LE(outer->start_ns, inner->start_ns);
    EXPECT_GE(outer->end_ns, inner->end_ns);
    EXPECT_TRUE(inner->has_arg);
    EXPECT_EQ(inner->arg, 17u);
    EXPECT_EQ(marker->kind, obs::trace::event_kind::instant);
    EXPECT_EQ(marker->start_ns, marker->end_ns);
    EXPECT_EQ(lane2->lane, 2u);
    EXPECT_EQ(outer->lane, 0u);
}

TEST(tracing, ring_overflow_drops_oldest_and_counts)
{
    obs::trace::clear();
    obs::trace::enable(/*ring_capacity=*/8);
    constexpr uint64_t recorded = 100;
    // A fresh thread gets a fresh ring at the small capacity (existing
    // rings keep whatever capacity they were created with).
    std::thread t{[] {
        obs::trace::set_lane(5);
        for (uint64_t i = 0; i < recorded; ++i)
            obs::trace::instant("test.flood");
    }};
    t.join();
    obs::trace::disable();

    uint64_t kept = 0;
    for (const auto& ev : obs::trace::collect())
        if (ev.lane == 5)
            ++kept;
    EXPECT_LE(kept, 8u);
    EXPECT_GT(kept, 0u);
    EXPECT_GE(obs::trace::dropped(), recorded - 8);

    obs::trace::clear();
    EXPECT_EQ(obs::trace::dropped(), 0u);
    EXPECT_TRUE(obs::trace::collect().empty());
}

TEST(tracing, disabled_spans_record_nothing)
{
    obs::trace::clear();
    ASSERT_FALSE(obs::trace::enabled());
    {
        const obs::trace::trace_span s{"test.silent"};
        obs::trace::instant("test.silent-instant");
    }
    EXPECT_TRUE(obs::trace::collect().empty());
}

// ---------------------------------------------------------- trace writer

size_t count_occurrences(const std::string& haystack,
                         const std::string& needle)
{
    size_t count = 0;
    for (size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST(trace_writer, emits_balanced_nested_events)
{
    using obs::trace::event_kind;
    using obs::trace::trace_event;
    std::vector<trace_event> events;
    const auto span = [&](const char* name, uint64_t start, uint64_t end,
                          uint32_t lane) {
        events.push_back({name, start, end, 0, lane, event_kind::span,
                          false});
    };
    // Deliberately unordered input: collect() makes no order promise.
    span("sibling", 4000, 5000, 0);
    span("outer", 1000, 9000, 0);
    span("inner", 2000, 3000, 0);
    span("other-lane", 1500, 6000, 1);
    events.push_back({"mark", 2500, 2500, 7, 0, event_kind::instant, true});

    std::ostringstream os;
    obs::trace::write_chrome_trace(os, events);
    const auto json = os.str();

    // Structurally balanced and closed.
    EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
    EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

    // One B and one E per span, per-lane thread metadata, the instant.
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 4u);
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 4u);
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), 1u);
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"M\""), 3u); // process + 2
    EXPECT_NE(json.find("\"name\":\"main/worker-0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"worker-1\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":7}"), std::string::npos);

    // Nesting order: outer opens before inner, inner closes before outer.
    const auto b_outer = json.find("\"name\":\"outer\",\"ph\":\"B\"");
    const auto b_inner = json.find("\"name\":\"inner\",\"ph\":\"B\"");
    const auto e_outer = json.find("\"name\":\"outer\",\"ph\":\"E\"");
    const auto e_inner = json.find("\"name\":\"inner\",\"ph\":\"E\"");
    ASSERT_NE(b_outer, std::string::npos);
    ASSERT_NE(e_outer, std::string::npos);
    EXPECT_LT(b_outer, b_inner);
    EXPECT_LT(e_inner, e_outer);

    // Timestamps are microseconds relative to the earliest event (1000ns).
    EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":8.000"), std::string::npos);
}

TEST(trace_writer, empty_input_is_valid)
{
    std::ostringstream os;
    obs::trace::write_chrome_trace(os, {});
    const auto json = os.str();
    EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

// ------------------------------------------------- determinism contract

/// Optimize through the flow engine and return the serialized result.
std::string optimize(xag net, uint32_t threads)
{
    flow_params params;
    params.num_threads = threads;
    pass_context ctx{context_params(params)};
    run_flow(net, make_flow("mc+xor", params), ctx);
    std::ostringstream os;
    write_bench(cleanup(net), os);
    return os.str();
}

TEST(determinism, output_identical_with_tracing_on_or_off)
{
    const auto source = cleanup(gen_adder(12));
    // 0 = pass defaults (sequential engine), then explicit 1 and 4.
    for (const uint32_t threads : {0u, 1u, 4u}) {
        obs::trace::disable();
        const auto off = optimize(source, threads);

        obs::trace::clear();
        obs::trace::enable();
        const auto on = optimize(source, threads);
        obs::trace::disable();

        EXPECT_EQ(off, on) << threads << " threads";
        // And tracing actually recorded the run it rode along with.
        EXPECT_FALSE(obs::trace::collect().empty()) << threads;
        obs::trace::clear();
    }
}

TEST(determinism, output_identical_with_metrics_on_or_off)
{
    const auto source = cleanup(gen_voter(7));
    const auto on = optimize(source, 4);
    obs::set_metrics_enabled(false);
    const auto off = optimize(source, 4);
    obs::set_metrics_enabled(true);
    EXPECT_EQ(on, off);
}

TEST(determinism, flow_records_expected_span_names)
{
    obs::trace::clear();
    obs::trace::enable();
    optimize(cleanup(gen_adder(8)), 2);
    obs::trace::disable();

    const auto events = obs::trace::collect();
    const auto has = [&](const char* name) {
        for (const auto& ev : events)
            if (std::string_view{ev.name} == name)
                return true;
        return false;
    };
    EXPECT_TRUE(has("flow"));
    EXPECT_TRUE(has("mc-rewrite"));
    EXPECT_TRUE(has("round"));
    EXPECT_TRUE(has("phase.evaluate"));
    EXPECT_TRUE(has("phase.commit"));
    EXPECT_TRUE(has("phase.cut-refresh"));
    EXPECT_TRUE(has("xor-resynthesis"));
    obs::trace::clear();
}

} // namespace
} // namespace mcx
