// The parallel subsystem: work-stealing thread pool, sharded databases,
// and the determinism contract of the two-phase rewrite round
// (docs/parallel.md) — the optimized network and the replacement counts
// must be byte-identical for every thread count.
#include "core/flow.h"
#include "db/mc_database.h"
#include "db/sharded_store.h"
#include "gen/aes.h"
#include "gen/arithmetic.h"
#include "gen/control.h"
#include "gen/des.h"
#include "gen/hashes.h"
#include "gen/lightweight.h"
#include "io/bench.h"
#include "par/thread_pool.h"
#include "tt/truth_table.h"
#include "xag/cleanup.h"
#include "xag/verify.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mcx {
namespace {

// ------------------------------------------------------------- work_deque

TEST(work_deque, owner_pops_lifo_thieves_steal_fifo)
{
    work_deque dq;
    dq.reset(8);
    for (uint32_t c = 0; c < 5; ++c)
        dq.push(c);

    uint32_t got = 0;
    ASSERT_TRUE(dq.steal(got)); // thief takes the oldest
    EXPECT_EQ(got, 0u);
    ASSERT_TRUE(dq.pop(got)); // owner takes the newest
    EXPECT_EQ(got, 4u);
    ASSERT_TRUE(dq.steal(got));
    EXPECT_EQ(got, 1u);
    ASSERT_TRUE(dq.pop(got));
    EXPECT_EQ(got, 3u);
    ASSERT_TRUE(dq.pop(got)); // last element: owner wins the race
    EXPECT_EQ(got, 2u);
    EXPECT_FALSE(dq.pop(got));
    EXPECT_FALSE(dq.steal(got));

    // Reset clears leftovers and is reusable.
    dq.reset(2);
    dq.push(7);
    ASSERT_TRUE(dq.pop(got));
    EXPECT_EQ(got, 7u);
    EXPECT_FALSE(dq.steal(got));
}

// ------------------------------------------------------------ thread_pool

TEST(thread_pool, every_index_runs_exactly_once)
{
    thread_pool pool{4};
    EXPECT_EQ(pool.num_workers(), 4u);

    constexpr size_t n = 10'000;
    std::vector<std::atomic<uint32_t>> counts(n);
    std::atomic<uint32_t> bad_worker{0};
    pool.parallel_for(
        0, n,
        [&](size_t i, uint32_t worker) {
            counts[i].fetch_add(1, std::memory_order_relaxed);
            if (worker >= 4)
                bad_worker.fetch_add(1, std::memory_order_relaxed);
        },
        /*grain=*/7);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(counts[i].load(), 1u) << "index " << i;
    EXPECT_EQ(bad_worker.load(), 0u);
}

TEST(thread_pool, uneven_work_completes_with_small_grain)
{
    // Front-loaded work with grain 1 forces the initial round-robin deal
    // out of balance, so completion exercises pop and steal together.
    thread_pool pool{4};
    constexpr size_t n = 256;
    std::vector<std::atomic<uint32_t>> counts(n);
    pool.parallel_for(
        0, n,
        [&](size_t i, uint32_t) {
            if (i < 8) {
                volatile uint64_t sink = 0;
                for (uint64_t k = 0; k < 2'000'000; ++k)
                    sink += k;
            }
            counts[i].fetch_add(1, std::memory_order_relaxed);
        },
        /*grain=*/1);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(counts[i].load(), 1u) << "index " << i;
}

TEST(thread_pool, single_worker_runs_inline)
{
    thread_pool pool{1};
    EXPECT_EQ(pool.num_workers(), 1u);
    const auto caller = std::this_thread::get_id();
    size_t visited = 0;
    pool.parallel_for(10, 20, [&](size_t i, uint32_t worker) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(worker, 0u);
        EXPECT_GE(i, 10u);
        EXPECT_LT(i, 20u);
        ++visited; // safe: inline execution is sequential
    });
    EXPECT_EQ(visited, 10u);
}

TEST(thread_pool, worker_task_counts_sum_to_index_count)
{
    for (const uint32_t workers : {1u, 4u}) {
        thread_pool pool{workers};
        const auto total_tasks = [&] {
            uint64_t sum = 0;
            for (uint32_t w = 0; w < pool.num_workers(); ++w)
                sum += pool.stats(w).tasks;
            return sum;
        };
        const uint64_t before = total_tasks();
        constexpr size_t n = 4'321;
        std::atomic<size_t> done{0};
        pool.parallel_for(
            0, n,
            [&](size_t, uint32_t) {
                done.fetch_add(1, std::memory_order_relaxed);
            },
            /*grain=*/3);
        ASSERT_EQ(done.load(), n);
        // Every body index executed is attributed to exactly one worker.
        EXPECT_EQ(total_tasks() - before, n) << workers << " workers";
    }
}

TEST(thread_pool, exceptions_propagate_and_pool_survives)
{
    for (const uint32_t workers : {1u, 4u}) {
        thread_pool pool{workers};
        EXPECT_THROW(
            pool.parallel_for(0, 1000,
                              [&](size_t i, uint32_t) {
                                  if (i == 137)
                                      throw std::runtime_error{"boom"};
                              }),
            std::runtime_error);

        // The team is intact afterwards.
        std::atomic<size_t> done{0};
        pool.parallel_for(0, 100, [&](size_t, uint32_t) {
            done.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(done.load(), 100u) << workers << " workers";
    }
}

TEST(thread_pool, nested_parallel_for_is_rejected)
{
    for (const uint32_t workers : {1u, 3u}) {
        thread_pool pool{workers};
        std::atomic<uint32_t> rejected{0};
        pool.parallel_for(0, 8, [&](size_t, uint32_t) {
            try {
                pool.parallel_for(0, 4, [](size_t, uint32_t) {});
            } catch (const std::logic_error&) {
                rejected.fetch_add(1, std::memory_order_relaxed);
            }
        });
        EXPECT_EQ(rejected.load(), 8u) << workers << " workers";

        // A second pool is equally off-limits from inside a body: the
        // rejection guards the thread, not one pool instance.
        thread_pool other{2};
        std::atomic<uint32_t> cross_rejected{0};
        pool.parallel_for(0, 4, [&](size_t, uint32_t) {
            try {
                other.parallel_for(0, 4, [](size_t, uint32_t) {});
            } catch (const std::logic_error&) {
                cross_rejected.fetch_add(1, std::memory_order_relaxed);
            }
        });
        EXPECT_EQ(cross_rejected.load(), 4u);
    }
}

// -------------------------------------------------------- sharded database

TEST(sharded_database, concurrent_misses_build_each_class_once)
{
    mc_database db{{.use_exact = false}}; // heuristic builds keep this fast

    std::mt19937_64 rng{2024};
    std::vector<truth_table> reps;
    for (int i = 0; i < 60; ++i)
        reps.push_back(truth_table{4, rng() & tt_mask(4)});
    // Dedup: misses must equal the number of *distinct* representatives.
    std::sort(reps.begin(), reps.end(),
              [](const truth_table& a, const truth_table& b) {
                  return a.word() < b.word();
              });
    reps.erase(std::unique(reps.begin(), reps.end()), reps.end());

    constexpr int num_threads = 8;
    constexpr int rounds = 5;
    std::vector<std::thread> threads;
    std::atomic<uint32_t> mismatches{0};
    for (int t = 0; t < num_threads; ++t)
        threads.emplace_back([&, t] {
            std::mt19937_64 order_rng{static_cast<uint64_t>(t)};
            auto mine = reps;
            for (int r = 0; r < rounds; ++r) {
                std::shuffle(mine.begin(), mine.end(), order_rng);
                for (const auto& rep : mine) {
                    const auto& e = db.lookup_or_build(rep);
                    // Every thread must see the same finished entry.
                    if (e.circuit.num_pis() != rep.num_vars() ||
                        e.num_ands != e.circuit.num_ands())
                        mismatches.fetch_add(1,
                                             std::memory_order_relaxed);
                }
            }
        });
    for (auto& t : threads)
        t.join();

    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(db.size(), reps.size());
    EXPECT_EQ(db.misses(), reps.size()); // once-per-class synthesis
    EXPECT_EQ(db.hits() + db.misses(),
              static_cast<uint64_t>(num_threads) * rounds * reps.size());
}

TEST(sharded_database, builder_exception_releases_the_slot)
{
    // A throwing builder must not leave a permanently not-ready slot
    // behind (that would hang every later lookup of the key); the next
    // lookup takes the build over.
    sharded_store<int, int> store;
    EXPECT_THROW(store.lookup_or_build(
                     7, [](int) -> int { throw std::runtime_error{"boom"}; }),
                 std::runtime_error);
    EXPECT_EQ(store.lookup_or_build(7, [](int k) { return 2 * k; }), 14);
    EXPECT_EQ(store.lookup_or_build(7, [](int) { return -1; }), 14);
    EXPECT_EQ(store.misses(), 2u); // the failed attempt and the takeover
    EXPECT_EQ(store.hits(), 1u);
}

// ------------------------------------------- two-phase round determinism

/// Optimize through the two-phase engine at `threads` workers and return
/// (serialized network, total replacements).
std::pair<std::string, uint64_t> optimize(xag net, uint32_t threads,
                                          flow_params params = {},
                                          const char* spec = "mc+xor")
{
    params.num_threads = threads;
    pass_context ctx{context_params(params)};
    const auto result = run_flow(net, make_flow(spec, params), ctx);
    uint64_t replacements = 0;
    for (const auto& p : result.passes)
        for (const auto& r : p.rounds)
            replacements += r.replacements;
    std::ostringstream os;
    write_bench(cleanup(net), os);
    return {os.str(), replacements};
}

void expect_thread_count_invariant(const xag& source,
                                   const char* what,
                                   flow_params params = {},
                                   const char* spec = "mc+xor")
{
    const auto golden = cleanup(source);
    const auto [net1, repl1] = optimize(cleanup(source), 1, params, spec);
    const auto [net2, repl2] = optimize(cleanup(source), 2, params, spec);
    const auto [net8, repl8] = optimize(cleanup(source), 8, params, spec);
    EXPECT_EQ(net1, net2) << what << ": 2 threads diverged";
    EXPECT_EQ(net1, net8) << what << ": 8 threads diverged";
    EXPECT_EQ(repl1, repl2) << what;
    EXPECT_EQ(repl1, repl8) << what;

    // And the deterministic result is still the right function.
    std::istringstream is{net1};
    const auto reparsed = read_bench(is);
    if (golden.num_pis() <= 16)
        EXPECT_TRUE(exhaustive_equal(reparsed, golden)) << what;
    else
        EXPECT_TRUE(random_simulation_equal(reparsed, golden, 16)) << what;
}

TEST(two_phase_determinism, arithmetic_family)
{
    expect_thread_count_invariant(gen_adder(16), "adder16");
    expect_thread_count_invariant(gen_multiplier(4), "multiplier4");
    expect_thread_count_invariant(gen_comparator_lt_unsigned(6),
                                  "comparator6");
}

TEST(two_phase_determinism, control_family)
{
    expect_thread_count_invariant(gen_decoder(4), "decoder4");
    expect_thread_count_invariant(gen_voter(7), "voter7");
    expect_thread_count_invariant(gen_priority_encoder(8), "prio8");
}

TEST(two_phase_determinism, aes_family)
{
    xag net;
    std::array<signal, 8> in;
    for (auto& s : in)
        s = net.create_pi();
    for (const auto s : aes_sbox_circuit(net, in))
        net.create_po(s);
    expect_thread_count_invariant(net, "aes-sbox");
}

TEST(two_phase_determinism, des_family)
{
    expect_thread_count_invariant(gen_des(1), "des1");
}

TEST(two_phase_determinism, lightweight_family)
{
    expect_thread_count_invariant(gen_simon(16, 4), "simon16x4");
    expect_thread_count_invariant(gen_keccak_f(8), "keccak8");
}

TEST(two_phase_determinism, hashes_family_budgeted)
{
    // Full-size MD5 under the integration suite's budget (3-cuts,
    // heuristic database, one round, mc only) — hash-scale structure
    // without hash-scale runtime.
    flow_params budget;
    budget.max_rounds = 1;
    budget.rewrite.cut_size = 3;
    budget.rewrite.cut_limit = 4;
    budget.rewrite.db.use_exact = false;
    expect_thread_count_invariant(gen_md5(), "md5", budget, "mc");
}

TEST(two_phase_determinism, size_baseline_engine)
{
    expect_thread_count_invariant(gen_adder(12), "size-adder12", {},
                                  "size-baseline");
}

TEST(two_phase_determinism, zero_gain_and_unbatched_paths)
{
    flow_params params;
    params.rewrite.allow_zero_gain = true;
    expect_thread_count_invariant(gen_adder(12), "zero-gain", params);

    flow_params unbatched;
    unbatched.rewrite.batched_simulation = false;
    expect_thread_count_invariant(gen_adder(12), "unbatched", unbatched);
}

} // namespace
} // namespace mcx
