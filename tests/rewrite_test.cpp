#include "core/mffc.h"
#include "core/rewrite.h"
#include "sat/equivalence.h"
#include "xag/cleanup.h"
#include "xag/depth.h"
#include "xag/simulate.h"
#include "xag/verify.h"

#include <gtest/gtest.h>

#include <random>

namespace mcx {
namespace {

xag full_adder()
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto cin = net.create_pi();
    const auto axb = net.create_xor(a, b);
    net.create_po(net.create_xor(axb, cin)); // sum
    net.create_po(net.create_or(net.create_and(a, b),
                                net.create_and(axb, cin))); // cout
    return net;
}

xag ripple_adder(uint32_t bits, bool cheap_majority)
{
    xag net;
    std::vector<signal> x, y;
    for (uint32_t i = 0; i < bits; ++i)
        x.push_back(net.create_pi());
    for (uint32_t i = 0; i < bits; ++i)
        y.push_back(net.create_pi());
    auto carry = net.get_constant(false);
    for (uint32_t i = 0; i < bits; ++i) {
        net.create_po(net.create_xor(net.create_xor(x[i], y[i]), carry));
        carry = cheap_majority ? net.create_maj(x[i], y[i], carry)
                               : net.create_maj_naive(x[i], y[i], carry);
    }
    net.create_po(carry);
    return net;
}

xag random_network(uint64_t seed, uint32_t pis, uint32_t gates, uint32_t pos)
{
    std::mt19937_64 rng{seed};
    xag net;
    std::vector<signal> pool;
    for (uint32_t i = 0; i < pis; ++i)
        pool.push_back(net.create_pi());
    for (uint32_t i = 0; i < gates; ++i) {
        const auto a = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        const auto b = pool[rng() % pool.size()] ^ ((rng() & 1) != 0);
        pool.push_back((rng() % 3) ? net.create_and(a, b)
                                   : net.create_xor(a, b));
    }
    for (uint32_t i = 0; i < pos && i < pool.size(); ++i)
        net.create_po(pool[pool.size() - 1 - i]);
    return net;
}

TEST(mffc_measure, simple_chain)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto g1 = net.create_and(a, b);
    const auto g2 = net.create_and(g1, c);
    net.create_po(g2);
    const std::vector<uint32_t> leaves{a.node(), b.node(), c.node()};
    // g1 is referenced only by g2: both ANDs belong to the MFFC of g2.
    EXPECT_EQ(mffc_and_count(net, g2.node(), leaves), 2u);
    EXPECT_EQ(mffc_gate_count(net, g2.node(), leaves), 2u);
}

TEST(mffc_measure, shared_node_excluded)
{
    xag net;
    const auto a = net.create_pi();
    const auto b = net.create_pi();
    const auto c = net.create_pi();
    const auto g1 = net.create_and(a, b);
    const auto g2 = net.create_and(g1, c);
    const auto g3 = net.create_xor(g1, c); // second fanout of g1
    net.create_po(g2);
    net.create_po(g3);
    const std::vector<uint32_t> leaves{a.node(), b.node(), c.node()};
    EXPECT_EQ(mffc_and_count(net, g2.node(), leaves), 1u); // g1 is shared
}

TEST(mc_rewrite_suite, full_adder_reaches_mc_one)
{
    // Paper Example 3.1 / Fig. 2: the full adder has multiplicative
    // complexity (at most) 1; the textbook structure starts with 3 ANDs.
    auto net = full_adder();
    const auto golden = simulate(net);
    ASSERT_EQ(net.num_ands(), 3u);

    const auto result = mc_rewrite(net);
    EXPECT_EQ(net.num_ands(), 1u);
    EXPECT_EQ(simulate(net), golden);
    EXPECT_TRUE(result.converged);
    EXPECT_GE(result.rounds.front().replacements, 1u);
}

TEST(mc_rewrite_suite, ripple_adder_reaches_n_ands)
{
    // Paper Table 2: the n-bit adder optimum is n AND gates (ref [31]).
    for (const uint32_t bits : {4u, 8u}) {
        auto net = ripple_adder(bits, false);
        const auto golden = simulate(net);
        // 5 ANDs per naive majority, except stage 0 which folds against the
        // constant carry-in down to a single AND.
        EXPECT_EQ(net.num_ands(), 5 * bits - 4);
        mc_rewrite(net);
        EXPECT_EQ(net.num_ands(), bits);
        EXPECT_EQ(simulate(net), golden);
    }
}

TEST(mc_rewrite_suite, already_optimal_adder_unchanged)
{
    auto net = ripple_adder(6, true); // 6 ANDs: the known optimum
    const auto before = net.num_ands();
    const auto result = mc_rewrite(net);
    EXPECT_EQ(net.num_ands(), before);
    EXPECT_TRUE(result.converged);
}

TEST(mc_rewrite_suite, and_count_never_increases)
{
    for (const uint64_t seed : {7u, 8u, 9u}) {
        auto net = random_network(seed, 8, 80, 6);
        const auto before = net.num_ands();
        mc_rewrite(net);
        EXPECT_LE(net.num_ands(), before);
        net.check_integrity();
    }
}

TEST(mc_rewrite_suite, function_preserved_on_random_networks)
{
    for (const uint64_t seed : {10u, 11u, 12u, 13u}) {
        auto net = random_network(seed, 10, 120, 8);
        const auto golden = cleanup(net);
        mc_rewrite(net);
        EXPECT_TRUE(exhaustive_equal(net, golden)) << "seed " << seed;
    }
}

TEST(mc_rewrite_suite, formal_equivalence_after_rewrite)
{
    auto net = ripple_adder(8, false);
    const auto golden = cleanup(net);
    mc_rewrite(net);
    const auto report = sat::check_equivalence(cleanup(net), golden);
    EXPECT_EQ(report.result, sat::equivalence_result::equivalent);
}

TEST(mc_rewrite_suite, one_round_vs_convergence)
{
    auto net1 = ripple_adder(12, false);
    mc_database db;
    classification_cache cache;
    const auto one = mc_rewrite_round(net1, db, cache);
    EXPECT_LT(one.ands_after, one.ands_before);

    auto net2 = ripple_adder(12, false);
    const auto conv = mc_rewrite(net2, db, cache);
    EXPECT_LE(net2.num_ands(), net1.num_ands());
    EXPECT_GE(conv.rounds.size(), 1u);
    EXPECT_TRUE(conv.converged);
}

TEST(mc_rewrite_suite, cache_is_effective_across_rounds)
{
    auto net = ripple_adder(10, false);
    mc_database db;
    classification_cache cache;
    mc_rewrite(net, db, cache);
    EXPECT_GT(cache.hits(), 0u);
    EXPECT_GT(cache.size(), 0u);
}

TEST(mc_rewrite_suite, respects_cut_size_parameter)
{
    // Both cut sizes must improve the naive adder; greedy commitment means
    // neither strictly dominates the other in general.
    const auto initial = ripple_adder(8, false).num_ands();
    rewrite_params small;
    small.cut_size = 3;
    auto net3 = ripple_adder(8, false);
    mc_rewrite(net3, small);
    EXPECT_LT(net3.num_ands(), initial);

    rewrite_params large;
    large.cut_size = 6;
    auto net6 = ripple_adder(8, false);
    mc_rewrite(net6, large);
    EXPECT_LT(net6.num_ands(), initial);
    EXPECT_EQ(net6.num_ands(), 8u);
}

TEST(size_rewrite_suite, reduces_naive_structures)
{
    // A chain of naive majorities has plenty of local redundancy for the
    // generic optimizer.
    auto net = ripple_adder(8, false);
    const auto golden = simulate(net);
    const auto gates_before = net.num_gates();
    size_rewrite(net);
    EXPECT_LT(net.num_gates(), gates_before);
    EXPECT_EQ(simulate(net), golden);
    net.check_integrity();
}

TEST(size_rewrite_suite, function_preserved_on_random_networks)
{
    for (const uint64_t seed : {14u, 15u}) {
        auto net = random_network(seed, 8, 90, 6);
        const auto golden = cleanup(net);
        size_rewrite(net);
        EXPECT_TRUE(exhaustive_equal(net, golden)) << "seed " << seed;
        net.check_integrity();
    }
}

TEST(size_rewrite_suite, does_not_optimize_ands_specifically)
{
    // The headline comparison of the paper: generic size optimization keeps
    // many more AND gates than MC-aware rewriting on arithmetic logic.
    auto generic = ripple_adder(12, false);
    size_rewrite(generic);
    auto mc_aware = ripple_adder(12, false);
    mc_rewrite(mc_aware);
    EXPECT_GT(generic.num_ands(), mc_aware.num_ands());
}

TEST(mc_rewrite_suite, zero_gain_disabled_by_default)
{
    auto net = ripple_adder(4, true);
    mc_database db;
    classification_cache cache;
    const auto stats = mc_rewrite_round(net, db, cache);
    EXPECT_EQ(stats.ands_after, stats.ands_before);
}

} // namespace
} // namespace mcx
